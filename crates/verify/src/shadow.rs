//! The shadow-model oracle.
//!
//! [`ShadowDevice`] wraps a real device and mirrors every host command
//! into [`ShadowModel`], a trivially-correct reference: a committed page
//! image plus one uncommitted page map per transaction. The model never
//! issues device commands of its own during normal operation (so wrapped
//! runs are timing-identical to bare ones); it only *checks* the bytes the
//! host reads anyway. The single exception is
//! [`ShadowDevice::verify_recovered`], which sweeps every modeled page
//! after a crash + recovery and therefore advances the simulated clock.
//!
//! ## In-doubt worlds
//!
//! When a command *fails* (most often because a power fuse tripped
//! mid-operation) the device is allowed to land in more than one state:
//!
//! * a failed plain write or trim leaves that page holding either the old
//!   or the new value — two worlds, tracked per page;
//! * a failed `commit` leaves the whole transaction either entirely
//!   applied or entirely discarded — two worlds for the *set* of pages,
//!   all-or-nothing;
//! * a failed `submit_tx` batch may have recorded any prefix of the batch
//!   in the transaction's uncommitted view — tracked per page of the
//!   batch.
//!
//! Later reads collapse the worlds: an observed value must match one of
//! the candidates (else the oracle panics), and once observed, the
//! survivor becomes the single truth. A torn commit that exposes the new
//! value for one page and the old value for another is caught exactly by
//! this narrowing: the first read commits the model to one world and the
//! second read contradicts it.
//!
//! ## In-flight (split-phase) commits
//!
//! A successful `commit_submit` makes the transaction's versions visible
//! at once — the model folds them into the committed image — but they are
//! not durable until the commit group flushes. Each submitted-unflushed
//! commit is tracked with the pre-submit value of every page it wrote, so
//! a crash can roll visibility back to the old image and re-open the
//! outcome as an all-or-nothing in-doubt transaction (the group flush is
//! one X-L2P table write plus one meta program: it either covered the
//! whole group or none of it). A successful `commit_wait` (or `flush`, or
//! plain traffic to a staged page, which forces the device to flush the
//! group first) retires the records as durable. While a page has a staged
//! writer, reads of it prove nothing about the durable worlds underneath,
//! so world-narrowing is suspended for that page.
//!
//! ## Snapshot transactions (MVCC)
//!
//! A transaction the host opened with [`TxBlockDevice::begin`] reads from
//! a frozen copy of the committed image taken at `begin` time, and its
//! commit is validated first-committer-wins. The model mirrors both
//! sides:
//!
//! * every change to the committed image ticks a monotone clock and
//!   stamps the changed page; `begin(tid)` records the clock, and the
//!   model keeps a full clone of the committed image (plus the then-open
//!   doubt candidates) as the tid's frozen view. Reads by the tid of
//!   pages it did not write must match the view — not the live image —
//!   which is the snapshot-isolation check.
//! * a commit the device *admits* while some written page carries a
//!   newer stamp than the snapshot is a lost update — panic. A commit the
//!   device *refuses* with `Conflict` while no written page was
//!   overwritten after the snapshot is a spurious conflict — also panic.
//!   Pages whose stamp is uncertain (failed writes, crash worlds) are
//!   excluded from both directions of the check.
//!
//! Snapshots are RAM-only on the device, so [`ShadowModel::crash`] drops
//! every view; the clock itself survives (it orders history, it is not
//! state).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt::Write as _;

use xftl_ftl::{
    BlockDevice, CmdId, CommitTicket, DevCounters, DevError, IoCmd, Lpn, Result, Tid,
    TxBlockDevice, NO_TID,
};

/// Short printable digest of a page's contents for panic diagnostics.
fn digest(data: &[u8]) -> String {
    let mut s = String::from("[");
    for b in data.iter().take(8) {
        let _ = write!(s, "{b:02x}");
    }
    if data.len() > 8 {
        s.push('…');
    }
    let _ = write!(s, "; {} B]", data.len());
    s
}

/// A failed commit: the device may hold the whole transaction or none of
/// it. Pages the host overwrites afterwards drop out (their outcome is no
/// longer observable).
#[derive(Debug, Clone)]
struct DoubtTx {
    tid: Tid,
    pages: BTreeMap<Lpn, Vec<u8>>,
}

/// A commit acknowledged at `commit_submit` but not yet durable: its
/// group flush is still pending. `pages` maps each written page to
/// (pre-submit committed value, staged value); `None` = absent (zeros).
#[derive(Debug, Clone)]
struct UnflushedCommit {
    tid: Tid,
    /// Commit-group id the device's ticket carried; groups flush in
    /// order, so a successful wait on group `g` makes every record with
    /// `group <= g` durable.
    group: u64,
    pages: BTreeMap<Lpn, (Option<Vec<u8>>, Vec<u8>)>,
}

/// The committed image as a snapshot transaction saw it at `begin`:
/// the frozen page values plus the doubt candidates that were open then
/// (a read through the snapshot may surface either world).
#[derive(Debug, Clone)]
struct SnapshotView {
    pages: HashMap<Lpn, Vec<u8>>,
    doubt: HashMap<Lpn, Vec<Vec<u8>>>,
}

impl SnapshotView {
    fn matches(&self, lpn: Lpn, observed: &[u8]) -> bool {
        let base_ok = match self.pages.get(&lpn) {
            Some(v) => v == observed,
            None => observed.iter().all(|&b| b == 0),
        };
        base_ok
            || self
                .doubt
                .get(&lpn)
                .is_some_and(|cands| cands.iter().any(|c| c == observed))
    }
}

/// The trivially-correct in-memory reference model of a transactional
/// block device. See the [module docs](self) for the in-doubt machinery.
#[derive(Debug)]
pub struct ShadowModel {
    page_size: usize,
    /// Committed page image; absent pages read as zeros.
    committed: HashMap<Lpn, Vec<u8>>,
    /// Uncommitted per-transaction views (copy-on-write overlays).
    pending: HashMap<Tid, BTreeMap<Lpn, Vec<u8>>>,
    /// Pages a failed `submit_tx` may or may not have recorded for a tid.
    pending_doubt: HashMap<Tid, BTreeMap<Lpn, Vec<u8>>>,
    /// Extra candidate values for pages whose plain write/trim failed.
    doubt_pages: HashMap<Lpn, Vec<Vec<u8>>>,
    /// Pages trimmed since the last successful `flush`, with the values a
    /// crash may resurrect: a trim only edits the RAM mapping table, so
    /// until a checkpoint lands, recovery's roll-forward scan can re-find
    /// the old data page and bring the pre-trim value back.
    unsynced_trims: HashMap<Lpn, Vec<Vec<u8>>>,
    /// Failed commits awaiting all-or-nothing resolution.
    doubt_txns: Vec<DoubtTx>,
    /// Commits submitted but not yet flushed (split-phase pipeline), in
    /// submission order: visible in `committed`, not yet durable.
    unflushed: Vec<UnflushedCommit>,
    /// Monotone clock ticked on every committed-image change. Survives
    /// crashes (it orders history; it is not device state).
    commit_counter: u64,
    /// Clock stamp of the last committed-image change per page.
    page_seq: HashMap<Lpn, u64>,
    /// Pages whose stamp is uncertain (a failed write may or may not have
    /// landed; a crash re-opened old worlds): first-committer-wins
    /// decisions touching them are accepted either way.
    seq_doubt: HashSet<Lpn>,
    /// Active snapshot transactions: tid → clock value at `begin`.
    snapshots: HashMap<Tid, u64>,
    /// Frozen committed image per snapshot transaction.
    snapshot_views: HashMap<Tid, SnapshotView>,
    checked_reads: u64,
}

impl ShadowModel {
    /// Fresh model for a freshly formatted device (all pages read zeros).
    pub fn new(page_size: usize) -> Self {
        ShadowModel {
            page_size,
            committed: HashMap::new(),
            pending: HashMap::new(),
            pending_doubt: HashMap::new(),
            doubt_pages: HashMap::new(),
            unsynced_trims: HashMap::new(),
            doubt_txns: Vec::new(),
            unflushed: Vec::new(),
            commit_counter: 0,
            page_seq: HashMap::new(),
            seq_doubt: HashSet::new(),
            snapshots: HashMap::new(),
            snapshot_views: HashMap::new(),
            checked_reads: 0,
        }
    }

    /// Bytes per page the model was built for.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of reads the oracle has checked so far.
    pub fn checked_reads(&self) -> u64 {
        self.checked_reads
    }

    /// Number of unresolved in-doubt pages and transactions.
    pub fn doubt_count(&self) -> usize {
        self.doubt_pages.len() + self.doubt_txns.len()
    }

    /// Models a power loss: every uncommitted transaction view dies with
    /// the device RAM. In-doubt worlds persist — they describe the flash.
    /// Trims that never reached a checkpoint become in-doubt pages: the
    /// recovery scan may resurrect the pre-trim value. Commits whose
    /// group flush never landed roll visibility back and become in-doubt
    /// transactions.
    pub fn crash(&mut self) {
        self.spill_unflushed(u64::MAX);
        self.pending.clear();
        self.pending_doubt.clear();
        // Snapshots live in device RAM (the commit-sequence clock resets
        // at recovery): every open view dies with the power.
        self.snapshots.clear();
        self.snapshot_views.clear();
        let trims: Vec<(Lpn, Vec<Vec<u8>>)> = self.unsynced_trims.drain().collect();
        for (lpn, cands) in trims {
            // A committed value implies a durable program newer than any
            // page the trim unmapped; resurrection is impossible there.
            if !self.committed.contains_key(&lpn) {
                self.doubt_pages.entry(lpn).or_default().extend(cands);
            }
        }
        // Every page whose post-crash value is uncertain also has an
        // uncertain change-clock: exclude it from first-committer-wins
        // verdicts.
        self.seq_doubt.extend(self.doubt_pages.keys().copied());
        for tx in &self.doubt_txns {
            self.seq_doubt.extend(tx.pages.keys().copied());
        }
    }

    /// Every page the model has an opinion about (committed or in doubt).
    pub fn tracked_lpns(&self) -> BTreeSet<Lpn> {
        let mut s: BTreeSet<Lpn> = self.committed.keys().copied().collect();
        s.extend(self.doubt_pages.keys().copied());
        s.extend(self.unsynced_trims.keys().copied());
        for tx in &self.doubt_txns {
            s.extend(tx.pages.keys().copied());
        }
        for rec in &self.unflushed {
            s.extend(rec.pages.keys().copied());
        }
        s
    }

    /// Number of commits submitted but not yet durable.
    pub fn unflushed_commits(&self) -> usize {
        self.unflushed.len()
    }

    /// Number of snapshot transactions currently open in the model.
    pub fn active_snapshots(&self) -> usize {
        self.snapshots.len()
    }

    /// The committed image changed for `lpn`: tick the clock and stamp
    /// the page. The model stamps *every* change (the device only bumps
    /// its sequence while snapshots are open) — harmless, because stamps
    /// taken before a `begin` are never newer than that snapshot.
    fn bump_page(&mut self, lpn: Lpn) {
        self.commit_counter += 1;
        self.page_seq.insert(lpn, self.commit_counter);
    }

    /// `begin(tid)` succeeded: record the clock and freeze the committed
    /// view (including the doubt candidates open right now — a snapshot
    /// read may legally surface any of those worlds).
    pub fn apply_begin(&mut self, tid: Tid) {
        let mut doubt: HashMap<Lpn, Vec<Vec<u8>>> = HashMap::new();
        for (lpn, cands) in &self.doubt_pages {
            doubt.entry(*lpn).or_default().extend(cands.iter().cloned());
        }
        for tx in &self.doubt_txns {
            for (lpn, v) in &tx.pages {
                doubt.entry(*lpn).or_default().push(v.clone());
            }
        }
        self.snapshots.insert(tid, self.commit_counter);
        self.snapshot_views.insert(
            tid,
            SnapshotView {
                pages: self.committed.clone(),
                doubt,
            },
        );
    }

    /// Pages `tid` wrote (surely or maybe) since its snapshot began.
    fn written_lpns(&self, tid: Tid) -> Vec<Lpn> {
        let mut lpns: BTreeSet<Lpn> = self
            .pending
            .get(&tid)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        if let Some(m) = self.pending_doubt.get(&tid) {
            lpns.extend(m.keys().copied());
        }
        lpns.into_iter().collect()
    }

    /// The device admitted `tid`'s commit. For a snapshot transaction that
    /// must mean first-committer-wins validation passed: no page it wrote
    /// may carry a stamp newer than the snapshot.
    ///
    /// # Panics
    /// When a written page was overwritten after the snapshot began (and
    /// its stamp is not in doubt) — the device admitted a lost update.
    fn validate_snapshot_commit(&mut self, tid: Tid) {
        let Some(&snap) = self.snapshots.get(&tid) else {
            return;
        };
        for lpn in self.written_lpns(tid) {
            let seq = self.page_seq.get(&lpn).copied().unwrap_or(0);
            assert!(
                seq <= snap || self.seq_doubt.contains(&lpn),
                "shadow oracle: commit(tid={tid}) was admitted but lpn {lpn} changed at \
                 clock {seq}, after the snapshot began at {snap} — first-committer-wins \
                 admitted a lost update",
            );
        }
        self.snapshots.remove(&tid);
        self.snapshot_views.remove(&tid);
    }

    /// The device refused `tid`'s commit with `Conflict` and aborted it.
    /// The refusal must be legitimate: some written page really was
    /// overwritten after the snapshot began (or its stamp is in doubt).
    ///
    /// # Panics
    /// When no written page justifies the conflict — a spurious abort.
    pub fn apply_conflict(&mut self, tid: Tid) {
        if let Some(&snap) = self.snapshots.get(&tid) {
            let legitimate = self.written_lpns(tid).into_iter().any(|lpn| {
                self.page_seq.get(&lpn).copied().unwrap_or(0) > snap
                    || self.seq_doubt.contains(&lpn)
            });
            assert!(
                legitimate,
                "shadow oracle: commit(tid={tid}) was refused with Conflict but no page \
                 it wrote changed after its snapshot (clock {snap}) — spurious conflict",
            );
        }
        self.apply_abort(tid);
    }

    /// True if a staged (submitted, unflushed) commit wrote `lpn`.
    fn lpn_is_staged(&self, lpn: Lpn) -> bool {
        self.unflushed.iter().any(|r| r.pages.contains_key(&lpn))
    }

    /// Plain traffic reaching a staged page forces the device to flush
    /// the open commit group first (the split-phase ordering rule), so
    /// everything staged became durable before the command ran.
    fn note_plain_conflict(&mut self, lpn: Lpn) {
        if self.lpn_is_staged(lpn) {
            self.mark_unflushed_durable(u64::MAX);
        }
    }

    /// The group flush landed for every record with `group <= group`:
    /// their staged values are durable. The fold carries the newest
    /// program sequence for those pages, so older worlds — resurrectable
    /// trims, failed-write candidates, failed-commit outcomes — vanish.
    fn mark_unflushed_durable(&mut self, group: u64) {
        let (durable, keep): (Vec<_>, Vec<_>) =
            self.unflushed.drain(..).partition(|rec| rec.group <= group);
        self.unflushed = keep;
        for rec in durable {
            for lpn in rec.pages.into_keys() {
                self.unsynced_trims.remove(&lpn);
                self.doubt_pages.remove(&lpn);
                let mut i = 0;
                while i < self.doubt_txns.len() {
                    self.doubt_txns[i].pages.remove(&lpn);
                    if self.doubt_txns[i].pages.is_empty() {
                        self.doubt_txns.remove(i);
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }

    /// Models the loss (or in-doubt outcome) of unflushed commit groups
    /// `..= group`: visibility rolls back to the pre-submit image and
    /// each record re-opens as an all-or-nothing in-doubt transaction.
    /// Pages written by more than one spilled record can't keep the
    /// all-or-nothing shape (their worlds interleave); those records
    /// degrade to per-page doubt — a sound superset.
    fn spill_unflushed(&mut self, group: u64) {
        let (spill, keep): (Vec<_>, Vec<_>) =
            self.unflushed.drain(..).partition(|rec| rec.group <= group);
        self.unflushed = keep;
        if spill.is_empty() {
            return;
        }
        // Roll visibility back in reverse submission order, landing on
        // the pre-record baseline even when records chain on one page.
        for rec in spill.iter().rev() {
            for (lpn, (old, _new)) in &rec.pages {
                match old {
                    Some(v) => {
                        self.committed.insert(*lpn, v.clone());
                    }
                    None => {
                        self.committed.remove(lpn);
                    }
                }
            }
        }
        let mut counts: HashMap<Lpn, usize> = HashMap::new();
        for rec in &spill {
            for lpn in rec.pages.keys() {
                *counts.entry(*lpn).or_default() += 1;
                // Whether the group flush landed is unknown, so the
                // page's change-clock is too.
                self.seq_doubt.insert(*lpn);
            }
        }
        for rec in spill {
            if rec.pages.keys().any(|l| counts[l] > 1) {
                for (lpn, (_, new)) in rec.pages {
                    self.doubt_pages.entry(lpn).or_default().push(new);
                }
            } else {
                let pages: BTreeMap<Lpn, Vec<u8>> = rec
                    .pages
                    .into_iter()
                    .map(|(lpn, (_, new))| (lpn, new))
                    .collect();
                self.doubt_txns.push(DoubtTx {
                    tid: rec.tid,
                    pages,
                });
            }
        }
    }

    fn committed_bytes(&self, lpn: Lpn) -> &[u8] {
        static ZEROS: [u8; 0] = [];
        match self.committed.get(&lpn) {
            Some(v) => v,
            // Unwritten pages read as zeros; compare against a lazily
            // produced slice by special-casing in `committed_matches`.
            None => &ZEROS,
        }
    }

    fn committed_matches(&self, lpn: Lpn, observed: &[u8]) -> bool {
        let base = self.committed_bytes(lpn);
        if base.is_empty() {
            observed.iter().all(|&b| b == 0)
        } else {
            base == observed
        }
    }

    /// True if `observed` is consistent with *some* allowed world for the
    /// committed view of `lpn` (base value, failed-write candidates, or a
    /// failed commit's new value). Non-mutating.
    fn committed_view_matches(&self, lpn: Lpn, observed: &[u8]) -> bool {
        if self.committed_matches(lpn, observed) {
            return true;
        }
        if let Some(cands) = self.doubt_pages.get(&lpn) {
            if cands.iter().any(|c| c == observed) {
                return true;
            }
        }
        self.doubt_txns
            .iter()
            .any(|tx| tx.pages.get(&lpn).is_some_and(|v| v == observed))
    }

    /// Checks one observed read and narrows in-doubt worlds accordingly.
    /// `reader` is `Some(tid)` for `read_tx`, `None` for a plain read.
    ///
    /// # Panics
    /// When the observed bytes match no allowed world.
    pub fn check_read(&mut self, reader: Option<Tid>, lpn: Lpn, observed: &[u8]) {
        self.checked_reads += 1;
        if let Some(tid) = reader.filter(|&t| t != NO_TID) {
            let sure = self.pending.get(&tid).and_then(|m| m.get(&lpn)).cloned();
            let doubt = self
                .pending_doubt
                .get(&tid)
                .and_then(|m| m.get(&lpn))
                .cloned();
            match (sure, doubt) {
                // Read-your-own-writes: a transaction must see its own
                // uncommitted version, exactly.
                (Some(v), None) => {
                    assert!(
                        v == observed,
                        "shadow oracle: read_tx(tid={tid}, lpn={lpn}) returned {} but the \
                         transaction's own uncommitted write was {} — read-your-own-writes \
                         violated",
                        digest(observed),
                        digest(&v),
                    );
                    return;
                }
                // A failed submit_tx left this page maybe-recorded for
                // `tid`: the batch value, the earlier sure value, or (when
                // nothing was surely pending) the committed view are the
                // allowed worlds.
                (sure_opt, Some(dv)) => {
                    let sure_ok = sure_opt.as_ref().is_some_and(|v| v == observed);
                    let doubt_ok = dv == observed;
                    let committed_ok =
                        sure_opt.is_none() && self.committed_view_matches(lpn, observed);
                    // A snapshot transaction that falls past its own
                    // writes reads its frozen view, not the live image.
                    let view_ok = sure_opt.is_none()
                        && self
                            .snapshot_views
                            .get(&tid)
                            .is_some_and(|v| v.matches(lpn, observed));
                    assert!(
                        sure_ok || doubt_ok || committed_ok || view_ok,
                        "shadow oracle: read_tx(tid={tid}, lpn={lpn}) returned {} but no \
                         allowed world holds it (failed batch value {}, prior pending \
                         value {})",
                        digest(observed),
                        digest(&dv),
                        sure_opt.as_ref().map_or_else(String::new, |v| digest(v)),
                    );
                    if doubt_ok && !sure_ok && !committed_ok && !view_ok {
                        // The batch page did land: promote it to a real
                        // uncommitted write.
                        self.pending.entry(tid).or_default().insert(lpn, dv);
                        self.drop_pending_doubt(tid, lpn);
                    } else if !doubt_ok {
                        self.drop_pending_doubt(tid, lpn);
                        if committed_ok && !view_ok {
                            self.resolve_committed(lpn, observed);
                        }
                    }
                    return;
                }
                // No uncommitted version for this tid: falls through to
                // the committed view — which is also the isolation check,
                // because other transactions' pending writes are never
                // allowed values.
                (None, None) => {}
            }
            // A snapshot transaction reads its frozen view, not the live
            // committed image: later commits must stay invisible.
            if let Some(view) = self.snapshot_views.get(&tid) {
                assert!(
                    view.matches(lpn, observed),
                    "shadow oracle: read_tx(tid={tid}, lpn={lpn}) returned {} but the \
                     snapshot's frozen view holds {} — snapshot isolation violated",
                    digest(observed),
                    view.pages
                        .get(&lpn)
                        .map_or_else(|| String::from("[zeros]"), |v| digest(v)),
                );
                return;
            }
        }
        let ok = self.committed_view_matches(lpn, observed);
        let who = match reader {
            Some(t) => format!("read_tx(tid={t}, lpn={lpn})"),
            None => format!("read(lpn={lpn})"),
        };
        let doubt_tids: Vec<Tid> = self
            .doubt_txns
            .iter()
            .filter(|tx| tx.pages.contains_key(&lpn))
            .map(|tx| tx.tid)
            .collect();
        assert!(
            ok,
            "shadow oracle: {who} returned {}, expected committed value {} \
             ({} failed-write candidate(s), in-doubt commit(s) of tids {doubt_tids:?} \
             on this page) — isolation or durability violated",
            digest(observed),
            digest(self.committed_bytes(lpn)),
            self.doubt_pages.get(&lpn).map_or(0, Vec::len),
        );
        self.resolve_committed(lpn, observed);
    }

    fn drop_pending_doubt(&mut self, tid: Tid, lpn: Lpn) {
        if let Some(m) = self.pending_doubt.get_mut(&tid) {
            m.remove(&lpn);
            if m.is_empty() {
                self.pending_doubt.remove(&tid);
            }
        }
    }

    /// Collapses in-doubt worlds for `lpn` after observing its committed
    /// value. A failed commit whose new value was observed (and differs
    /// from the old) is thereby *proven committed*: all of its pages merge
    /// into the committed image, so a later read seeing another of its
    /// pages still holding the old value panics — that is the torn-commit
    /// (all-or-nothing) check.
    fn resolve_committed(&mut self, lpn: Lpn, observed: &[u8]) {
        // A staged (unflushed-commit) page reads from the copy-on-write
        // version, not the durable image: the observation proves nothing
        // about the worlds a crash could expose, so don't narrow them.
        if self.lpn_is_staged(lpn) {
            return;
        }
        let any_doubt = self.doubt_pages.contains_key(&lpn)
            || self.doubt_txns.iter().any(|tx| tx.pages.contains_key(&lpn));
        if !any_doubt {
            return;
        }
        let base_matches = self.committed_matches(lpn, observed);
        let mut i = 0;
        while i < self.doubt_txns.len() {
            let Some(v) = self.doubt_txns[i].pages.get(&lpn) else {
                i += 1;
                continue;
            };
            let new_matches = v == observed;
            if new_matches && !base_matches {
                // Outcome proven: the commit made it to flash.
                let tx = self.doubt_txns.remove(i);
                for (l, val) in tx.pages {
                    self.committed.insert(l, val);
                }
            } else if base_matches && !new_matches {
                // Outcome proven: the commit never became durable.
                self.doubt_txns.remove(i);
            } else if !base_matches && !new_matches {
                // Some other world explains this page; this transaction's
                // outcome is no longer observable through it.
                self.doubt_txns[i].pages.remove(&lpn);
                if self.doubt_txns[i].pages.is_empty() {
                    self.doubt_txns.remove(i);
                } else {
                    i += 1;
                }
            } else {
                // Old and new value coincide here: no information.
                i += 1;
            }
        }
        self.committed.insert(lpn, observed.to_vec());
        self.doubt_pages.remove(&lpn);
    }

    /// A plain write (or committed page of a successful commit) landed.
    fn apply_write(&mut self, lpn: Lpn, data: &[u8]) {
        self.committed.insert(lpn, data.to_vec());
        self.doubt_pages.remove(&lpn);
        self.bump_page(lpn);
        // A sure write pins the page's change-clock again.
        self.seq_doubt.remove(&lpn);
        // The fresh program carries the newest sequence number, so the
        // roll-forward scan can never resurrect a pre-trim page here.
        self.unsynced_trims.remove(&lpn);
        // Any in-doubt commit outcome for this page is now unobservable.
        let mut i = 0;
        while i < self.doubt_txns.len() {
            self.doubt_txns[i].pages.remove(&lpn);
            if self.doubt_txns[i].pages.is_empty() {
                self.doubt_txns.remove(i);
            } else {
                i += 1;
            }
        }
    }

    fn apply_trim(&mut self, lpn: Lpn) {
        // Everything a crash could resurrect: the pre-trim committed
        // value, any failed-write candidates still on flash, and values
        // recorded by earlier trims of the same page.
        let mut resurrectable = self.unsynced_trims.remove(&lpn).unwrap_or_default();
        if let Some(old) = self.committed.get(&lpn) {
            if !old.is_empty() {
                resurrectable.push(old.clone());
            }
        }
        if let Some(cands) = self.doubt_pages.get(&lpn) {
            resurrectable.extend(cands.iter().cloned());
        }
        self.apply_write(lpn, &[]);
        self.committed.remove(&lpn); // absent = zeros
        if !resurrectable.is_empty() {
            self.unsynced_trims.insert(lpn, resurrectable);
        }
    }

    /// A successful flush checkpoints the mapping table: every trim issued
    /// so far is durable and can no longer resurrect.
    fn apply_flush(&mut self) {
        self.unsynced_trims.clear();
    }

    /// A plain write/trim failed: the page holds either the old or the
    /// attempted value. An empty candidate models "trimmed to zeros".
    fn doubt_write(&mut self, lpn: Lpn, data: &[u8]) {
        let cand = if data.is_empty() {
            vec![0; self.page_size]
        } else {
            data.to_vec()
        };
        self.doubt_pages.entry(lpn).or_default().push(cand);
        // The change may or may not have landed: the stamp is uncertain.
        self.seq_doubt.insert(lpn);
    }

    fn apply_tx_write(&mut self, tid: Tid, lpn: Lpn, data: &[u8]) {
        self.pending
            .entry(tid)
            .or_default()
            .insert(lpn, data.to_vec());
        self.drop_pending_doubt(tid, lpn);
    }

    fn apply_commit(&mut self, tid: Tid) {
        self.validate_snapshot_commit(tid);
        if let Some(pages) = self.pending.remove(&tid) {
            for (lpn, data) in pages {
                self.apply_write(lpn, &data);
            }
        }
        // Maybe-recorded batch pages become per-page committed doubts:
        // each was either part of the committed transaction or never
        // existed.
        if let Some(pages) = self.pending_doubt.remove(&tid) {
            for (lpn, data) in pages {
                self.doubt_write(lpn, &data);
            }
        }
    }

    /// A `commit_submit` succeeded: the transaction's versions become
    /// visible now; durability waits for the group flush. Only the
    /// committed image moves — older worlds (trim resurrections,
    /// failed-write candidates) stay open until the group proves durable,
    /// because a crash before the flush would re-expose them.
    fn apply_commit_submit(&mut self, tid: Tid, group: u64) {
        self.validate_snapshot_commit(tid);
        let pages = self.pending.remove(&tid).unwrap_or_default();
        let mut rec: BTreeMap<Lpn, (Option<Vec<u8>>, Vec<u8>)> = BTreeMap::new();
        for (lpn, data) in pages {
            let old = self.committed.get(&lpn).cloned();
            self.committed.insert(lpn, data.clone());
            self.bump_page(lpn);
            rec.insert(lpn, (old, data));
        }
        if !rec.is_empty() {
            self.unflushed.push(UnflushedCommit {
                tid,
                group,
                pages: rec,
            });
        }
        // Maybe-recorded batch pages: same worlds as in `apply_commit`.
        if let Some(pages) = self.pending_doubt.remove(&tid) {
            for (lpn, data) in pages {
                self.doubt_write(lpn, &data);
            }
        }
    }

    fn doubt_commit(&mut self, tid: Tid) {
        let mut pages = self.pending.remove(&tid).unwrap_or_default();
        if let Some(doubt) = self.pending_doubt.remove(&tid) {
            // A maybe-recorded page that the failed commit maybe
            // published: fold it into per-page doubt (superset of the
            // reachable worlds, never excludes the real one).
            for (lpn, data) in doubt {
                self.doubt_write(lpn, &data);
            }
        }
        pages.retain(|_, v| !v.is_empty());
        if !pages.is_empty() {
            self.doubt_txns.push(DoubtTx { tid, pages });
        }
    }

    fn apply_abort(&mut self, tid: Tid) {
        self.pending.remove(&tid);
        self.pending_doubt.remove(&tid);
        self.snapshots.remove(&tid);
        self.snapshot_views.remove(&tid);
    }

    fn doubt_submit_tx(&mut self, tid: Tid, pages: &[(Lpn, &[u8])]) {
        let m = self.pending_doubt.entry(tid).or_default();
        for (lpn, data) in pages {
            // Only pages not already surely-pending are in doubt; a
            // re-write of a surely-pending page keeps the old sure value
            // as one world and the new value as the other — approximate
            // by moving it to doubt with the *new* value and leaving the
            // old value reachable via the committed view only if it was
            // committed. To stay sound (never reject a reachable state)
            // we union both: keep the sure entry AND record the doubt.
            m.insert(*lpn, data.to_vec());
        }
    }
}

/// A verifying wrapper around a real block device.
///
/// Forwards every command to the wrapped device, then mirrors the outcome
/// into a [`ShadowModel`] and asserts that everything the host reads is a
/// value the specification allows. Construction assumes a freshly
/// formatted device (all pages read as zeros).
///
/// To take the stack through a power cycle, use [`ShadowDevice::into_parts`]
/// to recover the inner device, then [`ShadowDevice::resume`] with the
/// surviving model, then [`ShadowDevice::verify_recovered`] to sweep the
/// committed image for durability.
#[derive(Debug)]
pub struct ShadowDevice<D> {
    inner: D,
    model: ShadowModel,
}

impl<D: BlockDevice> ShadowDevice<D> {
    /// Wraps a freshly formatted device.
    pub fn new(inner: D) -> Self {
        let model = ShadowModel::new(inner.page_size());
        ShadowDevice { inner, model }
    }

    /// Re-wraps a device after crash recovery with the model that
    /// witnessed the pre-crash history. Uncommitted transactions are
    /// discarded from the model (recovery implicitly aborts them).
    pub fn resume(inner: D, mut model: ShadowModel) -> Self {
        assert!(
            model.page_size() == inner.page_size(),
            "shadow oracle: resumed device page size {} != model page size {}",
            inner.page_size(),
            model.page_size(),
        );
        model.crash();
        ShadowDevice { inner, model }
    }

    /// Splits the wrapper, e.g. to power-cycle and recover the device.
    pub fn into_parts(self) -> (D, ShadowModel) {
        (self.inner, self.model)
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Mutable access to the wrapped device — the escape hatch tests use
    /// to arm power fuses. Commands issued directly on the inner device
    /// bypass the model; only use it for failure injection and probes.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// The reference model (for assertions on oracle state in tests).
    pub fn model(&self) -> &ShadowModel {
        &self.model
    }

    /// Reads back every page the model tracks and checks each against the
    /// committed image — the durability sweep after crash + recovery.
    /// Returns the number of pages checked. Advances the simulated clock
    /// (these are real device reads).
    ///
    /// # Panics
    /// When any page fails to read or holds a value outside the model's
    /// allowed worlds.
    pub fn verify_recovered(&mut self) -> usize {
        let lpns: Vec<Lpn> = self.model.tracked_lpns().into_iter().collect();
        let mut buf = vec![0u8; self.model.page_size()];
        for &lpn in &lpns {
            match self.inner.read(lpn, &mut buf) {
                Ok(()) => self.model.check_read(None, lpn, &buf),
                Err(e) => panic!(
                    "shadow oracle: read(lpn={lpn}) failed during post-recovery \
                     durability sweep: {e:?}"
                ),
            }
        }
        lpns.len()
    }
}

impl<D: BlockDevice> BlockDevice for ShadowDevice<D> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn capacity_pages(&self) -> u64 {
        self.inner.capacity_pages()
    }

    fn read(&mut self, lpn: Lpn, buf: &mut [u8]) -> Result<()> {
        self.inner.read(lpn, buf)?;
        self.model.check_read(None, lpn, buf);
        Ok(())
    }

    fn write(&mut self, lpn: Lpn, buf: &[u8]) -> Result<()> {
        match self.inner.write(lpn, buf) {
            Ok(()) => {
                self.model.note_plain_conflict(lpn);
                self.model.apply_write(lpn, buf);
                Ok(())
            }
            Err(e) => {
                // The device flushes the open commit group before a plain
                // write to a staged page; dying here leaves the group in
                // doubt alongside the page itself.
                if self.model.lpn_is_staged(lpn) {
                    self.model.spill_unflushed(u64::MAX);
                }
                self.model.doubt_write(lpn, buf);
                Err(e)
            }
        }
    }

    fn trim(&mut self, lpn: Lpn) -> Result<()> {
        match self.inner.trim(lpn) {
            Ok(()) => {
                self.model.note_plain_conflict(lpn);
                self.model.apply_trim(lpn);
                Ok(())
            }
            Err(e) => {
                if self.model.lpn_is_staged(lpn) {
                    self.model.spill_unflushed(u64::MAX);
                }
                self.model.doubt_write(lpn, &[]);
                Err(e)
            }
        }
    }

    fn flush(&mut self) -> Result<()> {
        // Durability of plain writes is modeled eagerly: the log-structured
        // FTLs roll forward all committed data pages at recovery whether or
        // not a flush intervened, so the committed image is unchanged here.
        // Trims are the exception — only the checkpoint a flush forces
        // makes them durable. A flush also drives the open commit group
        // to durability.
        self.inner.flush()?;
        self.model.mark_unflushed_durable(u64::MAX);
        self.model.apply_flush();
        Ok(())
    }

    fn counters(&self) -> DevCounters {
        self.inner.counters()
    }

    fn submit(&mut self, cmds: &[IoCmd<'_>]) -> Result<CmdId> {
        match self.inner.submit(cmds) {
            Ok(id) => {
                for cmd in cmds {
                    match cmd {
                        IoCmd::Write { lpn, data } => {
                            self.model.note_plain_conflict(*lpn);
                            self.model.apply_write(*lpn, data);
                        }
                        IoCmd::Trim { lpn } => {
                            self.model.note_plain_conflict(*lpn);
                            self.model.apply_trim(*lpn);
                        }
                        // An ordering fence: no data moves, nothing to
                        // mirror.
                        IoCmd::Barrier => {}
                    }
                }
                Ok(id)
            }
            Err(e) => {
                if cmds.iter().any(|c| match c {
                    IoCmd::Write { lpn, .. } | IoCmd::Trim { lpn } => {
                        self.model.lpn_is_staged(*lpn)
                    }
                    IoCmd::Barrier => false,
                }) {
                    self.model.spill_unflushed(u64::MAX);
                }
                // Any prefix of the batch may have been serviced.
                for cmd in cmds {
                    match cmd {
                        IoCmd::Write { lpn, data } => self.model.doubt_write(*lpn, data),
                        IoCmd::Trim { lpn } => self.model.doubt_write(*lpn, &[]),
                        IoCmd::Barrier => {}
                    }
                }
                Err(e)
            }
        }
    }

    fn complete_until(&mut self, barrier: CmdId) -> Result<()> {
        self.inner.complete_until(barrier)
    }
}

impl<D: TxBlockDevice> TxBlockDevice for ShadowDevice<D> {
    fn begin(&mut self, tid: Tid) -> Result<()> {
        self.inner.begin(tid)?;
        self.model.apply_begin(tid);
        Ok(())
    }

    fn read_tx(&mut self, tid: Tid, lpn: Lpn, buf: &mut [u8]) -> Result<()> {
        self.inner.read_tx(tid, lpn, buf)?;
        self.model.check_read(Some(tid), lpn, buf);
        Ok(())
    }

    fn write_tx(&mut self, tid: Tid, lpn: Lpn, buf: &[u8]) -> Result<()> {
        match self.inner.write_tx(tid, lpn, buf) {
            Ok(()) => {
                if tid == NO_TID {
                    // tid 0 is non-transactional traffic by contract.
                    self.model.note_plain_conflict(lpn);
                    self.model.apply_write(lpn, buf);
                } else {
                    self.model.apply_tx_write(tid, lpn, buf);
                }
                Ok(())
            }
            Err(e) => {
                if tid == NO_TID {
                    if self.model.lpn_is_staged(lpn) {
                        self.model.spill_unflushed(u64::MAX);
                    }
                    self.model.doubt_write(lpn, buf);
                }
                // For tid != 0 a failed write_tx records nothing in the
                // transaction's view (or the device is dead and the view
                // dies at recovery): the model stays unchanged.
                Err(e)
            }
        }
    }

    fn commit_submit(&mut self, tid: Tid) -> Result<CommitTicket> {
        match self.inner.commit_submit(tid) {
            Ok(ticket) => {
                if ticket.is_immediate() {
                    // The device completed the commit synchronously (a
                    // read-only transaction, or a personality with no
                    // pipeline): it is durable now.
                    self.model.apply_commit(tid);
                } else {
                    self.model.apply_commit_submit(tid, ticket.group().0);
                }
                Ok(ticket)
            }
            // First-committer-wins refusal: the device aborted the
            // transaction cleanly — verify the refusal was earned, then
            // mirror the rollback.
            Err(DevError::Conflict) => {
                self.model.apply_conflict(tid);
                Err(DevError::Conflict)
            }
            // End-of-life refusal: the guard fires before the commit
            // gains any visibility, so nothing is in doubt — the
            // transaction stays active with its uncommitted view intact
            // (the caller may still abort it).
            Err(DevError::ReadOnly) => Err(DevError::ReadOnly),
            Err(e) => {
                self.model.doubt_commit(tid);
                Err(e)
            }
        }
    }

    fn commit_wait(&mut self, ticket: CommitTicket) -> Result<()> {
        let (group, immediate) = (ticket.group().0, ticket.is_immediate());
        match self.inner.commit_wait(ticket) {
            Ok(()) => {
                if !immediate {
                    self.model.mark_unflushed_durable(group);
                }
                Ok(())
            }
            Err(e) => {
                // The group flush died mid-program: every record it was
                // to cover is now in doubt, all-or-nothing.
                if !immediate {
                    self.model.spill_unflushed(group);
                }
                Err(e)
            }
        }
    }

    fn abort(&mut self, tid: Tid) -> Result<()> {
        match self.inner.abort(tid) {
            Ok(()) => {
                self.model.apply_abort(tid);
                Ok(())
            }
            // A failed abort means the device died mid-command; the
            // transaction's view is gone either way, but resolution waits
            // for the post-recovery `resume`, which discards it.
            Err(e) => Err(e),
        }
    }

    fn submit_tx(&mut self, tid: Tid, pages: &[(Lpn, &[u8])]) -> Result<CmdId> {
        match self.inner.submit_tx(tid, pages) {
            Ok(id) => {
                for (lpn, data) in pages {
                    if tid == NO_TID {
                        self.model.note_plain_conflict(*lpn);
                        self.model.apply_write(*lpn, data);
                    } else {
                        self.model.apply_tx_write(tid, *lpn, data);
                    }
                }
                Ok(id)
            }
            Err(e) => {
                if tid == NO_TID {
                    if pages.iter().any(|(lpn, _)| self.model.lpn_is_staged(*lpn)) {
                        self.model.spill_unflushed(u64::MAX);
                    }
                    for (lpn, data) in pages {
                        self.model.doubt_write(*lpn, data);
                    }
                } else {
                    // Any prefix may have been recorded in the tid's view.
                    self.model.doubt_submit_tx(tid, pages);
                }
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xftl_core::XFtl;
    use xftl_flash::{FlashChip, FlashConfig, SimClock};

    fn fresh(blocks: usize, logical: u64) -> ShadowDevice<XFtl> {
        let clock = SimClock::new();
        let chip = FlashChip::new(FlashConfig::tiny(blocks), clock);
        ShadowDevice::new(XFtl::format(chip, logical).unwrap())
    }

    fn page(dev: &ShadowDevice<XFtl>, fill: u8) -> Vec<u8> {
        vec![fill; dev.page_size()]
    }

    #[test]
    fn clean_transaction_history_passes() {
        let mut dev = fresh(24, 48);
        let old = page(&dev, 1);
        let new = page(&dev, 2);
        let mut buf = page(&dev, 0);

        dev.write(5, &old).unwrap();
        dev.write_tx(7, 5, &new).unwrap();

        // Read-your-own-writes for tid 7; isolation for everyone else.
        dev.read_tx(7, 5, &mut buf).unwrap();
        assert_eq!(buf, new);
        dev.read(5, &mut buf).unwrap();
        assert_eq!(buf, old);
        dev.read_tx(9, 5, &mut buf).unwrap();
        assert_eq!(buf, old);

        dev.commit(7).unwrap();
        dev.read(5, &mut buf).unwrap();
        assert_eq!(buf, new);

        // Abort path: tid 9 writes and discards.
        dev.write_tx(9, 6, &old).unwrap();
        dev.abort(9).unwrap();
        dev.read(6, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        assert!(dev.model().checked_reads() >= 5);
    }

    #[test]
    fn batched_submit_tx_is_mirrored() {
        let mut dev = fresh(24, 48);
        let a = page(&dev, 3);
        let b = page(&dev, 4);
        let batch: Vec<(Lpn, &[u8])> = vec![(10, &a[..]), (11, &b[..])];
        let id = dev.submit_tx(6, &batch).unwrap();
        dev.commit(6).unwrap(); // commit is a queue barrier
        let _ = id;
        let mut buf = page(&dev, 0);
        dev.read(10, &mut buf).unwrap();
        assert_eq!(buf, a);
        dev.read(11, &mut buf).unwrap();
        assert_eq!(buf, b);
    }

    #[test]
    fn committed_image_survives_power_cycle() {
        let mut dev = fresh(24, 48);
        let keep = page(&dev, 5);
        let lose = page(&dev, 6);
        dev.write(1, &keep).unwrap();
        dev.write_tx(3, 2, &lose).unwrap();
        dev.commit(3).unwrap();
        dev.write_tx(4, 8, &lose).unwrap(); // stays uncommitted

        let (ftl, model) = dev.into_parts();
        let mut chip = ftl.into_chip();
        chip.power_cycle();
        let mut dev = ShadowDevice::resume(XFtl::recover(chip).unwrap(), model);
        let checked = dev.verify_recovered();
        assert!(checked >= 2);

        let mut buf = page(&dev, 0);
        dev.read(8, &mut buf).unwrap(); // uncommitted tx rolled back
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn unsynced_trim_may_resurrect_across_crash() {
        let mut dev = fresh(24, 48);
        let old = page(&dev, 9);
        dev.write(2, &old).unwrap();
        dev.flush().unwrap();
        // Trim without a flush: the mapping edit lives only in FTL RAM,
        // so the crash may legally bring `old` back (roll-forward re-finds
        // the data page) or keep the page trimmed.
        dev.trim(2).unwrap();
        let mut buf = page(&dev, 0);
        dev.read(2, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "trimmed page reads zeros");

        let (ftl, model) = dev.into_parts();
        let mut chip = ftl.into_chip();
        chip.power_cycle();
        let mut dev = ShadowDevice::resume(XFtl::recover(chip).unwrap(), model);
        // Whichever world the device picked, the sweep must accept it.
        dev.verify_recovered();

        // A flushed trim, by contrast, must stay trimmed.
        dev.trim(2).unwrap();
        dev.flush().unwrap();
        let (ftl, model) = dev.into_parts();
        let mut chip = ftl.into_chip();
        chip.power_cycle();
        let mut dev = ShadowDevice::resume(XFtl::recover(chip).unwrap(), model);
        dev.verify_recovered();
        dev.read(2, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "flushed trim is durable");
    }

    #[test]
    fn torn_commit_resolves_to_one_world() {
        let mut dev = fresh(24, 48);
        let old = page(&dev, 7);
        let new = page(&dev, 8);
        dev.write(0, &old).unwrap();
        dev.write(1, &old).unwrap();
        dev.write_tx(5, 0, &new).unwrap();
        dev.write_tx(5, 1, &new).unwrap();

        // Tear the commit on its first flash program.
        dev.inner_mut().base_mut().chip_mut().arm_power_fuse(1);
        assert!(dev.commit(5).is_err());
        assert_eq!(dev.model().doubt_count(), 1);

        let (ftl, model) = dev.into_parts();
        let mut chip = ftl.into_chip();
        chip.power_cycle();
        let mut dev = ShadowDevice::resume(XFtl::recover(chip).unwrap(), model);
        dev.verify_recovered();
        // Whichever world survived, both pages must agree (all-or-nothing):
        // verify_recovered read both pages, so the doubt is fully resolved.
        assert_eq!(dev.model().doubt_count(), 0);
        let mut a = page(&dev, 0);
        let mut b = page(&dev, 0);
        dev.read(0, &mut a).unwrap();
        dev.read(1, &mut b).unwrap();
        assert_eq!(a, b);
    }

    /// Deliberately broken FTL: `abort` reports success but forgets to
    /// drop the transaction's copy-on-write pages, so a later commit of
    /// the same tid (or a read through it) exposes rolled-back data.
    struct BrokenAbort(XFtl);

    impl BlockDevice for BrokenAbort {
        fn page_size(&self) -> usize {
            self.0.page_size()
        }
        fn capacity_pages(&self) -> u64 {
            self.0.capacity_pages()
        }
        fn read(&mut self, lpn: Lpn, buf: &mut [u8]) -> Result<()> {
            self.0.read(lpn, buf)
        }
        fn write(&mut self, lpn: Lpn, buf: &[u8]) -> Result<()> {
            self.0.write(lpn, buf)
        }
        fn trim(&mut self, lpn: Lpn) -> Result<()> {
            self.0.trim(lpn)
        }
        fn flush(&mut self) -> Result<()> {
            self.0.flush()
        }
        fn counters(&self) -> DevCounters {
            self.0.counters()
        }
    }

    impl TxBlockDevice for BrokenAbort {
        fn read_tx(&mut self, tid: Tid, lpn: Lpn, buf: &mut [u8]) -> Result<()> {
            self.0.read_tx(tid, lpn, buf)
        }
        fn write_tx(&mut self, tid: Tid, lpn: Lpn, buf: &[u8]) -> Result<()> {
            self.0.write_tx(tid, lpn, buf)
        }
        fn commit_submit(&mut self, tid: Tid) -> Result<CommitTicket> {
            self.0.commit_submit(tid)
        }
        fn commit_wait(&mut self, ticket: CommitTicket) -> Result<()> {
            self.0.commit_wait(ticket)
        }
        fn abort(&mut self, _tid: Tid) -> Result<()> {
            Ok(()) // the seeded bug: rollback dropped on the floor
        }
    }

    #[test]
    #[should_panic(expected = "shadow oracle")]
    fn mutation_broken_abort_is_caught() {
        let clock = SimClock::new();
        let chip = FlashChip::new(FlashConfig::tiny(24), clock);
        let mut dev = ShadowDevice::new(BrokenAbort(XFtl::format(chip, 48).unwrap()));
        let old = vec![1u8; dev.page_size()];
        let new = vec![2u8; dev.page_size()];
        dev.write(0, &old).unwrap();
        dev.write_tx(7, 0, &new).unwrap();
        dev.abort(7).unwrap();
        // The broken device still holds tid 7's page; committing now
        // publishes data the host rolled back. The oracle fires on the
        // next read.
        dev.commit(7).unwrap();
        let mut buf = vec![0u8; dev.page_size()];
        dev.read(0, &mut buf).unwrap();
    }

    /// Deliberately broken FTL: `write_tx` writes in place (plain write),
    /// leaking uncommitted data to every reader.
    struct LeakyWriteTx(XFtl);

    impl BlockDevice for LeakyWriteTx {
        fn page_size(&self) -> usize {
            self.0.page_size()
        }
        fn capacity_pages(&self) -> u64 {
            self.0.capacity_pages()
        }
        fn read(&mut self, lpn: Lpn, buf: &mut [u8]) -> Result<()> {
            self.0.read(lpn, buf)
        }
        fn write(&mut self, lpn: Lpn, buf: &[u8]) -> Result<()> {
            self.0.write(lpn, buf)
        }
        fn trim(&mut self, lpn: Lpn) -> Result<()> {
            self.0.trim(lpn)
        }
        fn flush(&mut self) -> Result<()> {
            self.0.flush()
        }
        fn counters(&self) -> DevCounters {
            self.0.counters()
        }
    }

    impl TxBlockDevice for LeakyWriteTx {
        fn read_tx(&mut self, tid: Tid, lpn: Lpn, buf: &mut [u8]) -> Result<()> {
            self.0.read_tx(tid, lpn, buf)
        }
        fn write_tx(&mut self, _tid: Tid, lpn: Lpn, buf: &[u8]) -> Result<()> {
            self.0.write(lpn, buf) // the seeded bug: no copy-on-write
        }
        fn commit_submit(&mut self, tid: Tid) -> Result<CommitTicket> {
            self.0.commit_submit(tid)
        }
        fn commit_wait(&mut self, ticket: CommitTicket) -> Result<()> {
            self.0.commit_wait(ticket)
        }
        fn abort(&mut self, tid: Tid) -> Result<()> {
            self.0.abort(tid)
        }
    }

    #[test]
    #[should_panic(expected = "shadow oracle")]
    fn mutation_isolation_leak_is_caught() {
        let clock = SimClock::new();
        let chip = FlashChip::new(FlashConfig::tiny(24), clock);
        let mut dev = ShadowDevice::new(LeakyWriteTx(XFtl::format(chip, 48).unwrap()));
        let old = vec![1u8; dev.page_size()];
        let new = vec![2u8; dev.page_size()];
        dev.write(0, &old).unwrap();
        dev.write_tx(7, 0, &new).unwrap();
        // A plain read must still see the old value; the leaky device
        // exposes tid 7's uncommitted write.
        let mut buf = vec![0u8; dev.page_size()];
        dev.read(0, &mut buf).unwrap();
    }

    #[test]
    fn snapshot_history_passes_the_oracle() {
        let mut dev = fresh(24, 48);
        let old = page(&dev, 1);
        let new = page(&dev, 2);
        let mut buf = page(&dev, 0);

        dev.write(5, &old).unwrap();
        dev.begin(1).unwrap();
        assert_eq!(dev.model().active_snapshots(), 1);

        // A later committer moves the live image; the snapshot must not
        // see it — and the oracle must accept the stale value it returns.
        dev.write_tx(2, 5, &new).unwrap();
        dev.commit(2).unwrap();
        dev.read(5, &mut buf).unwrap();
        assert_eq!(buf, new);
        dev.read_tx(1, 5, &mut buf).unwrap();
        assert_eq!(buf, old);
        // Unborn pages read zeros through the view too.
        dev.read_tx(1, 9, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));

        // Disjoint write commits cleanly; the view is released.
        dev.write_tx(1, 7, &new).unwrap();
        dev.read_tx(1, 7, &mut buf).unwrap(); // read-your-own-writes
        assert_eq!(buf, new);
        dev.commit(1).unwrap();
        assert_eq!(dev.model().active_snapshots(), 0);
    }

    #[test]
    fn legitimate_conflict_passes_the_oracle() {
        let mut dev = fresh(24, 48);
        let a = page(&dev, 3);
        let b = page(&dev, 4);
        dev.begin(1).unwrap();
        dev.begin(2).unwrap();
        dev.write_tx(1, 5, &a).unwrap();
        dev.write_tx(2, 5, &b).unwrap();
        dev.commit(1).unwrap();
        // First committer won page 5; tid 2 must lose, and the oracle
        // verifies the refusal was earned (not spurious).
        assert_eq!(dev.commit(2), Err(DevError::Conflict));
        assert_eq!(dev.model().active_snapshots(), 0);
        let mut buf = page(&dev, 0);
        dev.read(5, &mut buf).unwrap();
        assert_eq!(buf, a);
        // The loser's snapshot is fully released: a retry on a fresh
        // snapshot succeeds.
        dev.begin(2).unwrap();
        dev.write_tx(2, 5, &b).unwrap();
        dev.commit(2).unwrap();
        dev.read(5, &mut buf).unwrap();
        assert_eq!(buf, b);
    }

    #[test]
    fn snapshots_die_with_the_model_crash() {
        let mut dev = fresh(24, 48);
        let v = page(&dev, 6);
        dev.write(3, &v).unwrap();
        dev.begin(4).unwrap();
        let (ftl, model) = dev.into_parts();
        let mut chip = ftl.into_chip();
        chip.power_cycle();
        let dev = ShadowDevice::resume(XFtl::recover(chip).unwrap(), model);
        assert_eq!(dev.model().active_snapshots(), 0);
    }

    /// Deliberately broken FTL: `begin` reports success but never
    /// registers the snapshot, so the transaction reads the live image
    /// and later commits skip first-committer-wins validation.
    struct BrokenBegin(XFtl);

    impl BlockDevice for BrokenBegin {
        fn page_size(&self) -> usize {
            self.0.page_size()
        }
        fn capacity_pages(&self) -> u64 {
            self.0.capacity_pages()
        }
        fn read(&mut self, lpn: Lpn, buf: &mut [u8]) -> Result<()> {
            self.0.read(lpn, buf)
        }
        fn write(&mut self, lpn: Lpn, buf: &[u8]) -> Result<()> {
            self.0.write(lpn, buf)
        }
        fn trim(&mut self, lpn: Lpn) -> Result<()> {
            self.0.trim(lpn)
        }
        fn flush(&mut self) -> Result<()> {
            self.0.flush()
        }
        fn counters(&self) -> DevCounters {
            self.0.counters()
        }
    }

    impl TxBlockDevice for BrokenBegin {
        fn begin(&mut self, _tid: Tid) -> Result<()> {
            Ok(()) // the seeded bug: snapshot registration dropped
        }
        fn read_tx(&mut self, tid: Tid, lpn: Lpn, buf: &mut [u8]) -> Result<()> {
            self.0.read_tx(tid, lpn, buf)
        }
        fn write_tx(&mut self, tid: Tid, lpn: Lpn, buf: &[u8]) -> Result<()> {
            self.0.write_tx(tid, lpn, buf)
        }
        fn commit_submit(&mut self, tid: Tid) -> Result<CommitTicket> {
            self.0.commit_submit(tid)
        }
        fn commit_wait(&mut self, ticket: CommitTicket) -> Result<()> {
            self.0.commit_wait(ticket)
        }
        fn abort(&mut self, tid: Tid) -> Result<()> {
            self.0.abort(tid)
        }
    }

    #[test]
    #[should_panic(expected = "shadow oracle")]
    fn mutation_broken_begin_is_caught() {
        let clock = SimClock::new();
        let chip = FlashChip::new(FlashConfig::tiny(24), clock);
        let mut dev = ShadowDevice::new(BrokenBegin(XFtl::format(chip, 48).unwrap()));
        let old = vec![1u8; dev.page_size()];
        let new = vec![2u8; dev.page_size()];
        dev.write(0, &old).unwrap();
        dev.begin(1).unwrap();
        // Another transaction commits over the page; the broken device
        // never registered tid 1's snapshot, so its read leaks the new
        // value — the oracle's frozen view still holds the old one.
        dev.write_tx(2, 0, &new).unwrap();
        dev.commit(2).unwrap();
        let mut buf = vec![0u8; dev.page_size()];
        dev.read_tx(1, 0, &mut buf).unwrap();
    }
}
