//! # xftl-verify — shadow-model oracle and flash physics auditor
//!
//! Machine-checkable transactional correctness for the X-FTL stack. The
//! crate contributes two cooperating checkers, both free when the `verify`
//! feature of the workspace root is off (this crate simply is not built):
//!
//! * [`shadow::ShadowDevice`] — wraps any [`xftl_ftl::BlockDevice`] /
//!   [`xftl_ftl::TxBlockDevice`] and mirrors every command into a
//!   trivially-correct in-memory reference model. Every read the host
//!   issues is compared against the model, which checks, per operation:
//!   read-your-own-writes within a transaction, isolation of uncommitted
//!   writes between transactions, all-or-nothing visibility at
//!   commit/abort, and durability of the committed image across
//!   `power_cycle()` + recovery. A violation panics with a diagnostic
//!   prefixed `shadow oracle:` naming the transaction and page.
//! * [`audit`] — the flash physics / metadata auditor. Walks the raw
//!   [`xftl_flash::FlashChip`] array and the FTL's mapping state between
//!   operations (using silent probes that charge no simulated time) and
//!   checks erase-before-program, in-order programming within each block,
//!   device-global OOB sequence monotonicity, and X-L2P sanity: every
//!   pinned physical page is still programmed, GC never reclaimed a pinned
//!   old version, and the table's committed count never exceeds its size.
//!   It also enforces bad-block discipline: a block the chip retired after
//!   an erase failure holds no data, is listed in the FTL's persisted
//!   bad-block table, and can never be allocated again.
//!
//! The oracle deliberately knows nothing about how the FTLs work — it is a
//! specification, not a re-implementation. Failed operations (a power fuse
//! tripping mid-command) put the affected pages *in doubt*: the model
//! tracks every state the device is allowed to be in and narrows the set
//! as later reads observe the survivor, so torn commits that expose a
//! partial transaction are detected without the oracle having to predict
//! which world the crash picked.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod shadow;

pub use audit::{audit_base, audit_chip, audit_xftl, AuditReport, AuditViolation, Auditable};
pub use shadow::{ShadowDevice, ShadowModel};
