//! The flash physics and metadata auditor.
//!
//! Where the shadow oracle checks the device's *functional* contract
//! through the host interface, the auditor opens the lid: it walks the
//! raw NAND array with [`FlashChip::probe_silent`] (no simulated time, no
//! statistics) and cross-checks the FTL's mapping structures against it.
//!
//! Checked invariants:
//!
//! * **Erase-before-program, in order** — within every block, the pages
//!   below the write point are programmed (or torn by a power loss) and
//!   the pages at or above it are erased; no gaps, no out-of-order
//!   programs.
//! * **OOB sequence sanity** — program sequence numbers are strictly
//!   increasing within a block, globally unique, and below the chip's
//!   next-sequence counter.
//! * **L2P sanity** — every mapped logical page points at a programmed
//!   data page whose OOB records the same logical page number.
//! * **X-L2P sanity** — every entry pins a live programmed data page with
//!   matching OOB metadata; for active (uncommitted) entries the old
//!   committed version is still programmed too (GC must never reclaim a
//!   pinned rollback copy); and `committed_len() <= len() <= capacity()`.
//! * **Bad-block discipline** — a block the chip has retired (erase
//!   failure) holds no programmed or torn pages (the failed erase still
//!   wipes the cells, and nothing may program it afterwards), is present
//!   in the FTL's bad-block table, and sits on no allocation path (free
//!   pool or open write frontier).
//! * **Degradation discipline** — a device whose free pool is empty after
//!   real block retirements must have left the `Healthy` state.
//! * **Wear discipline** — with static wear leveling enabled, the
//!   erase-count spread across usable pool blocks stays within ~2x the
//!   configured `wear_delta_cap`.

use std::collections::HashMap;
use std::fmt;

use xftl_core::{TxStatus, XFtl};
use xftl_flash::{BlockHealth, FlashChip, PageKind, PageProbe, Ppa};
use xftl_ftl::{DeviceState, FtlBase, Lpn, PageMappedFtl, Tid, TxFlashFtl};

use crate::shadow::ShadowDevice;

/// Counters from a successful audit, to prove coverage in tests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AuditReport {
    /// Programmed pages seen on the chip.
    pub programmed_pages: u64,
    /// Torn pages seen on the chip (power-loss victims, allowed).
    pub torn_pages: u64,
    /// Logical pages with a current L2P mapping.
    pub mapped_lpns: u64,
    /// X-L2P entries checked (0 for non-transactional FTLs).
    pub xl2p_entries: usize,
    /// X-L2P entries belonging to staged (submitted, unflushed) commits.
    pub staged_entries: usize,
    /// Blocks the chip has retired after erase failures.
    pub retired_blocks: u64,
}

/// A violated physics or metadata invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditViolation {
    /// An erased page sits below the block's write point.
    GapInBlock {
        /// Block with the gap.
        block: u32,
        /// Erased page index below the write point.
        page: u32,
    },
    /// A programmed or torn page sits at or above the write point.
    ProgramBeyondWritePoint {
        /// Offending block.
        block: u32,
        /// Page index at or above the write point.
        page: u32,
    },
    /// OOB sequence numbers not strictly increasing within a block.
    SeqOutOfOrder {
        /// Offending block.
        block: u32,
        /// Page whose sequence regressed.
        page: u32,
        /// Sequence of the previous programmed page in the block.
        prev_seq: u64,
        /// Sequence found on this page.
        seq: u64,
    },
    /// The same OOB sequence number appears on two live pages.
    SeqDuplicate {
        /// Duplicated sequence number.
        seq: u64,
        /// First page carrying it.
        first: Ppa,
        /// Second page carrying it.
        second: Ppa,
    },
    /// A page carries a sequence the chip has not issued yet.
    SeqFromFuture {
        /// Offending page.
        ppa: Ppa,
        /// Sequence found on the page.
        seq: u64,
        /// The chip's next unissued sequence.
        next_seq: u64,
    },
    /// The L2P maps a logical page to a non-programmed physical page.
    MappedPageMissing {
        /// Logical page.
        lpn: Lpn,
        /// Physical page the L2P points at.
        ppa: Ppa,
        /// Observed page state (`"erased"` or `"torn"`).
        state: &'static str,
    },
    /// The L2P maps a logical page to a page with wrong OOB metadata.
    MappedOobMismatch {
        /// Logical page.
        lpn: Lpn,
        /// Physical page the L2P points at.
        ppa: Ppa,
        /// Logical page recorded in the OOB.
        oob_lpn: Lpn,
        /// Page kind recorded in the OOB.
        kind: PageKind,
    },
    /// An X-L2P entry pins a physical page that is no longer programmed:
    /// GC reclaimed a pinned new version.
    Xl2pDanglingPpa {
        /// Owning transaction.
        tid: Tid,
        /// Logical page of the entry.
        lpn: Lpn,
        /// Pinned physical page.
        ppa: Ppa,
        /// Observed page state.
        state: &'static str,
    },
    /// An X-L2P entry's pinned page carries inconsistent OOB metadata.
    Xl2pOobMismatch {
        /// Owning transaction.
        tid: Tid,
        /// Logical page of the entry.
        lpn: Lpn,
        /// Pinned physical page.
        ppa: Ppa,
        /// Logical page recorded in the OOB.
        oob_lpn: Lpn,
        /// Transaction id recorded in the OOB.
        oob_tid: Tid,
        /// Page kind recorded in the OOB.
        kind: PageKind,
    },
    /// The old committed version pinned by an *active* entry is gone:
    /// GC reclaimed the rollback copy of an uncommitted page.
    Xl2pPinnedOldLost {
        /// Owning transaction.
        tid: Tid,
        /// Logical page of the entry.
        lpn: Lpn,
        /// Physical page of the lost old version.
        old: Ppa,
        /// Observed page state.
        state: &'static str,
    },
    /// The X-L2P table holds more entries than its capacity.
    Xl2pOverflow {
        /// Current entry count.
        len: usize,
        /// Configured capacity.
        capacity: usize,
    },
    /// More committed entries than entries exist at all.
    Xl2pCommittedCount {
        /// Committed entry count.
        committed: usize,
        /// Total entry count.
        len: usize,
    },
    /// A retired block holds a programmed or torn page: the FTL reused a
    /// block the chip already reported an erase failure on.
    RetiredBlockReused {
        /// Retired block.
        block: u32,
        /// Non-erased page found on it.
        page: u32,
        /// Observed page state (`"programmed"` or `"torn"`).
        state: &'static str,
    },
    /// The chip retired a block but the FTL's bad-block table does not
    /// list it — a future format/recovery could hand it back out.
    RetiredBlockUntracked {
        /// Retired block missing from the table.
        block: u32,
    },
    /// A retired block sits in the free pool or an open write frontier.
    RetiredBlockAllocatable {
        /// Retired block on an allocation path.
        block: u32,
    },
    /// With static wear leveling enabled, the erase-count spread across
    /// usable pool blocks exceeds the policy's tolerance: the leveler is
    /// failing to recycle cold blocks.
    FrontierWearExcess {
        /// Most-worn usable pool block.
        hot_block: u32,
        /// Its erase count.
        hot_erases: u64,
        /// Least-worn usable pool block.
        cold_block: u32,
        /// Its erase count.
        cold_erases: u64,
        /// Largest spread the configured `wear_delta_cap` tolerates.
        allowed: u64,
    },
    /// The device still reports `Healthy` even though its free pool is
    /// empty and blocks have been retired — the degradation state machine
    /// missed an exhaustion transition.
    StateHealthyButExhausted {
        /// Number of retired blocks.
        bad_blocks: usize,
    },
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flash auditor: ")?;
        match self {
            AuditViolation::GapInBlock { block, page } => write!(
                f,
                "block {block} has erased page {page} below its write point \
                 (in-order programming violated)"
            ),
            AuditViolation::ProgramBeyondWritePoint { block, page } => write!(
                f,
                "block {block} has a non-erased page {page} at or above its write point"
            ),
            AuditViolation::SeqOutOfOrder {
                block,
                page,
                prev_seq,
                seq,
            } => write!(
                f,
                "block {block} page {page} has seq {seq} after seq {prev_seq} \
                 (program order broken)"
            ),
            AuditViolation::SeqDuplicate { seq, first, second } => write!(
                f,
                "seq {seq} appears on both {first:?} and {second:?} (global uniqueness broken)"
            ),
            AuditViolation::SeqFromFuture { ppa, seq, next_seq } => write!(
                f,
                "{ppa:?} carries seq {seq} but the chip's next seq is only {next_seq}"
            ),
            AuditViolation::MappedPageMissing { lpn, ppa, state } => {
                write!(f, "L2P maps lpn {lpn} to {ppa:?}, but that page is {state}")
            }
            AuditViolation::MappedOobMismatch {
                lpn,
                ppa,
                oob_lpn,
                kind,
            } => write!(
                f,
                "L2P maps lpn {lpn} to {ppa:?}, but its OOB says lpn {oob_lpn}, kind {kind:?}"
            ),
            AuditViolation::Xl2pDanglingPpa {
                tid,
                lpn,
                ppa,
                state,
            } => write!(
                f,
                "X-L2P entry (tid {tid}, lpn {lpn}) pins {ppa:?}, but that page is {state} \
                 — GC reclaimed a pinned new version"
            ),
            AuditViolation::Xl2pOobMismatch {
                tid,
                lpn,
                ppa,
                oob_lpn,
                oob_tid,
                kind,
            } => write!(
                f,
                "X-L2P entry (tid {tid}, lpn {lpn}) pins {ppa:?}, but its OOB says \
                 lpn {oob_lpn}, tid {oob_tid}, kind {kind:?}"
            ),
            AuditViolation::Xl2pPinnedOldLost {
                tid,
                lpn,
                old,
                state,
            } => write!(
                f,
                "old committed version {old:?} of lpn {lpn}, pinned by active tid {tid}, \
                 is {state} — GC reclaimed a rollback copy"
            ),
            AuditViolation::Xl2pOverflow { len, capacity } => {
                write!(f, "X-L2P table holds {len} entries, capacity is {capacity}")
            }
            AuditViolation::Xl2pCommittedCount { committed, len } => write!(
                f,
                "X-L2P table reports {committed} committed entries out of {len} total"
            ),
            AuditViolation::RetiredBlockReused { block, page, state } => write!(
                f,
                "retired block {block} holds a {state} page {page} — the FTL reused a \
                 block that failed erase"
            ),
            AuditViolation::RetiredBlockUntracked { block } => write!(
                f,
                "chip retired block {block} but the FTL bad-block table does not list it"
            ),
            AuditViolation::RetiredBlockAllocatable { block } => write!(
                f,
                "retired block {block} is still on an allocation path (free pool or frontier)"
            ),
            AuditViolation::FrontierWearExcess {
                hot_block,
                hot_erases,
                cold_block,
                cold_erases,
                allowed,
            } => write!(
                f,
                "wear spread {spread} (block {hot_block}: {hot_erases} erases vs \
                 block {cold_block}: {cold_erases}) exceeds the leveler's tolerance {allowed}",
                spread = hot_erases - cold_erases
            ),
            AuditViolation::StateHealthyButExhausted { bad_blocks } => write!(
                f,
                "device reports Healthy with an empty free pool and {bad_blocks} retired \
                 blocks — degradation transition missed"
            ),
        }
    }
}

impl std::error::Error for AuditViolation {}

/// Audits the raw NAND array: erase-before-program, in-order programming,
/// and OOB sequence sanity. See the [module docs](self).
///
/// # Errors
/// The first violated invariant.
pub fn audit_chip(chip: &FlashChip) -> Result<AuditReport, AuditViolation> {
    let geo = chip.config().geometry;
    let next_seq = chip.next_seq();
    let mut report = AuditReport::default();
    let mut seen: HashMap<u64, Ppa> = HashMap::new();
    for block in 0..geo.blocks as u32 {
        let retired = chip.block_health(block) == BlockHealth::Retired;
        if retired {
            report.retired_blocks += 1;
        }
        let write_point = chip
            .write_point(block)
            .unwrap_or(geo.pages_per_block as u32);
        let mut prev_seq: Option<u64> = None;
        for page in 0..geo.pages_per_block as u32 {
            let ppa = Ppa::new(block, page);
            match chip.probe_silent(ppa) {
                PageProbe::Erased => {
                    if page < write_point {
                        return Err(AuditViolation::GapInBlock { block, page });
                    }
                }
                PageProbe::Torn => {
                    if retired {
                        // A failed erase still wipes the cells, so any
                        // later content proves a post-retirement program.
                        return Err(AuditViolation::RetiredBlockReused {
                            block,
                            page,
                            state: "torn",
                        });
                    }
                    if page >= write_point {
                        return Err(AuditViolation::ProgramBeyondWritePoint { block, page });
                    }
                    report.torn_pages += 1;
                }
                PageProbe::Programmed(oob) => {
                    if retired {
                        return Err(AuditViolation::RetiredBlockReused {
                            block,
                            page,
                            state: "programmed",
                        });
                    }
                    if page >= write_point {
                        return Err(AuditViolation::ProgramBeyondWritePoint { block, page });
                    }
                    report.programmed_pages += 1;
                    if oob.seq >= next_seq {
                        return Err(AuditViolation::SeqFromFuture {
                            ppa,
                            seq: oob.seq,
                            next_seq,
                        });
                    }
                    if let Some(prev) = prev_seq {
                        if oob.seq <= prev {
                            return Err(AuditViolation::SeqOutOfOrder {
                                block,
                                page,
                                prev_seq: prev,
                                seq: oob.seq,
                            });
                        }
                    }
                    prev_seq = Some(oob.seq);
                    if let Some(first) = seen.insert(oob.seq, ppa) {
                        return Err(AuditViolation::SeqDuplicate {
                            seq: oob.seq,
                            first,
                            second: ppa,
                        });
                    }
                }
            }
        }
    }
    Ok(report)
}

/// Audits the chip plus the engine's L2P: every mapped logical page must
/// point at a programmed data page recording the same `lpn` in its OOB.
///
/// # Errors
/// The first violated invariant.
pub fn audit_base(base: &FtlBase) -> Result<AuditReport, AuditViolation> {
    let chip = base.chip();
    let mut report = audit_chip(chip)?;
    // Bad-block discipline: every block the chip retired must be in the
    // FTL's table and off every allocation path. (The FTL table may list
    // *more* blocks than the chip if a recovered root outlives a chip
    // swap; that direction is harmless and not checked.)
    for block in chip.retired_blocks() {
        if !base.is_bad_block(block) {
            return Err(AuditViolation::RetiredBlockUntracked { block });
        }
        if base.is_allocatable(block) {
            return Err(AuditViolation::RetiredBlockAllocatable { block });
        }
    }
    // Degradation-state discipline: once blocks have actually been lost
    // and the free pool has drained to nothing, the health state machine
    // must have left `Healthy` — a device that silently writes on fumes
    // is how acked commits get lost at end of life.
    if base.device_state() == DeviceState::Healthy
        && base.free_block_count() == 0
        && base.bad_block_count() > 0
    {
        return Err(AuditViolation::StateHealthyButExhausted {
            bad_blocks: base.bad_block_count(),
        });
    }
    // Wear discipline: with the scrubber (and its static wear leveler)
    // enabled, no usable pool block may lag the hottest block by more
    // than ~2x the configured cap. The leveler relocates one block per
    // tick, so transient spread above the 1x trigger threshold is
    // legitimate; 2x plus a block of slack means it stopped working.
    if let Some(cfg) = base.scrub_config() {
        let geo = chip.config().geometry;
        let mut hot: Option<(u32, u64)> = None;
        let mut cold: Option<(u32, u64)> = None;
        for block in base.first_pool_block()..geo.blocks as u32 {
            if base.is_bad_block(block) {
                continue;
            }
            let erases = chip.erase_count(block);
            if hot.is_none_or(|(_, e)| erases > e) {
                hot = Some((block, erases));
            }
            if cold.is_none_or(|(_, e)| erases < e) {
                cold = Some((block, erases));
            }
        }
        if let (Some((hot_block, hot_erases)), Some((cold_block, cold_erases))) = (hot, cold) {
            let allowed = cfg
                .wear_delta_cap
                .saturating_mul(2)
                .saturating_add(geo.pages_per_block as u64);
            if hot_erases - cold_erases > allowed {
                return Err(AuditViolation::FrontierWearExcess {
                    hot_block,
                    hot_erases,
                    cold_block,
                    cold_erases,
                    allowed,
                });
            }
        }
    }
    for lpn in 0..base.capacity_pages() {
        // `l2p_peek` resolves non-resident slabs by silently reading the
        // persisted translation page, so the audit itself perturbs neither
        // the mapping cache nor the stats it is checking.
        let Some(ppa) = base.l2p_peek(lpn) else {
            continue;
        };
        report.mapped_lpns += 1;
        match chip.probe_silent(ppa) {
            PageProbe::Erased => {
                return Err(AuditViolation::MappedPageMissing {
                    lpn,
                    ppa,
                    state: "erased",
                })
            }
            PageProbe::Torn => {
                return Err(AuditViolation::MappedPageMissing {
                    lpn,
                    ppa,
                    state: "torn",
                })
            }
            PageProbe::Programmed(oob) => {
                if oob.lpn != lpn || oob.kind != PageKind::Data {
                    return Err(AuditViolation::MappedOobMismatch {
                        lpn,
                        ppa,
                        oob_lpn: oob.lpn,
                        kind: oob.kind,
                    });
                }
            }
        }
    }
    Ok(report)
}

/// Full X-FTL audit: chip physics, L2P, and X-L2P sanity.
///
/// For every entry the pinned new version must be a live programmed data
/// page with matching OOB (`tid` may have been re-stamped to 0 by GC only
/// for committed, already-folded entries). For every *active* entry — and
/// every entry of a staged, not-yet-flushed commit group — the old
/// committed version, the rollback copy, must still be programmed.
/// Committed entries whose fold already landed and whose mapping has
/// since been superseded by a later transaction are exempt from the
/// liveness check: their page is legitimately reclaimable garbage
/// awaiting `release_committed`.
///
/// # Errors
/// The first violated invariant.
pub fn audit_xftl(dev: &XFtl) -> Result<AuditReport, AuditViolation> {
    let base = dev.base();
    let mut report = audit_base(base)?;
    let table = dev.xl2p();
    if table.len() > table.capacity() {
        return Err(AuditViolation::Xl2pOverflow {
            len: table.len(),
            capacity: table.capacity(),
        });
    }
    if table.committed_len() > table.len() {
        return Err(AuditViolation::Xl2pCommittedCount {
            committed: table.committed_len(),
            len: table.len(),
        });
    }
    let chip = base.chip();
    for entry in table.iter() {
        report.xl2p_entries += 1;
        let current = base.l2p_peek(entry.lpn);
        // A committed entry of a staged (submitted, unflushed) commit is
        // the live read path for its page even though the L2P does not
        // point at it yet: it gets the full liveness check, and — like an
        // active entry — its old L2P version must survive as the rollback
        // copy, because a crash before the group flush loses the commit.
        let staged = entry.status == TxStatus::Committed && dev.staged_tids().contains(&entry.tid);
        if staged {
            report.staged_entries += 1;
        }
        if entry.status == TxStatus::Committed && !staged && current != Some(entry.ppa) {
            // Folded and already superseded: the pinned page is garbage.
            continue;
        }
        match chip.probe_silent(entry.ppa) {
            PageProbe::Erased => {
                return Err(AuditViolation::Xl2pDanglingPpa {
                    tid: entry.tid,
                    lpn: entry.lpn,
                    ppa: entry.ppa,
                    state: "erased",
                })
            }
            PageProbe::Torn => {
                return Err(AuditViolation::Xl2pDanglingPpa {
                    tid: entry.tid,
                    lpn: entry.lpn,
                    ppa: entry.ppa,
                    state: "torn",
                })
            }
            PageProbe::Programmed(oob) => {
                let tid_ok = match entry.status {
                    TxStatus::Active => oob.tid == entry.tid,
                    // GC re-stamps the L2P-current copy to tid 0.
                    TxStatus::Committed => oob.tid == entry.tid || oob.tid == 0,
                };
                if oob.lpn != entry.lpn || oob.kind != PageKind::Data || !tid_ok {
                    return Err(AuditViolation::Xl2pOobMismatch {
                        tid: entry.tid,
                        lpn: entry.lpn,
                        ppa: entry.ppa,
                        oob_lpn: oob.lpn,
                        oob_tid: oob.tid,
                        kind: oob.kind,
                    });
                }
            }
        }
        if entry.status == TxStatus::Active || staged {
            if let Some(old) = current {
                let state = match chip.probe_silent(old) {
                    PageProbe::Programmed(_) => None,
                    PageProbe::Erased => Some("erased"),
                    PageProbe::Torn => Some("torn"),
                };
                if let Some(state) = state {
                    return Err(AuditViolation::Xl2pPinnedOldLost {
                        tid: entry.tid,
                        lpn: entry.lpn,
                        old,
                        state,
                    });
                }
            }
        }
    }
    Ok(report)
}

/// Devices the auditor knows how to open up.
pub trait Auditable {
    /// Runs the full audit for this device type.
    ///
    /// # Errors
    /// The first violated invariant.
    fn audit(&self) -> Result<AuditReport, AuditViolation>;
}

impl Auditable for XFtl {
    fn audit(&self) -> Result<AuditReport, AuditViolation> {
        audit_xftl(self)
    }
}

impl Auditable for PageMappedFtl {
    fn audit(&self) -> Result<AuditReport, AuditViolation> {
        audit_base(self.base())
    }
}

impl Auditable for TxFlashFtl {
    fn audit(&self) -> Result<AuditReport, AuditViolation> {
        audit_base(self.base())
    }
}

impl<D: Auditable + xftl_ftl::BlockDevice> ShadowDevice<D> {
    /// Audits the wrapped device, panicking with the violation message on
    /// failure (so tests can sprinkle audits without plumbing `Result`).
    ///
    /// # Panics
    /// When an invariant is violated.
    pub fn audit(&self) -> AuditReport {
        match self.inner().audit() {
            Ok(report) => report,
            Err(v) => panic!("{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xftl_flash::{FlashConfig, SimClock};
    use xftl_ftl::{BlockDevice, TxBlockDevice};

    fn fresh_xftl(blocks: usize, logical: u64) -> XFtl {
        let clock = SimClock::new();
        let chip = FlashChip::new(FlashConfig::tiny(blocks), clock);
        XFtl::format(chip, logical).unwrap()
    }

    #[test]
    fn clean_workload_audits_green() {
        let mut dev = fresh_xftl(32, 64);
        let ps = dev.page_size();
        for round in 0u8..4 {
            for lpn in 0..32u64 {
                dev.write(lpn, &vec![round.wrapping_add(lpn as u8); ps])
                    .unwrap();
            }
        }
        dev.write_tx(3, 2, &vec![0xAA; ps]).unwrap();
        dev.write_tx(4, 7, &vec![0xBB; ps]).unwrap();
        dev.commit(3).unwrap();
        let report = audit_xftl(&dev).unwrap();
        assert!(report.programmed_pages > 0);
        assert!(report.mapped_lpns >= 32);
        assert!(report.xl2p_entries >= 1);
    }

    #[test]
    fn baseline_ftls_audit_green() {
        let clock = SimClock::new();
        let chip = FlashChip::new(FlashConfig::tiny(24), clock);
        let mut dev = PageMappedFtl::format(chip, 48).unwrap();
        let ps = dev.page_size();
        for lpn in 0..16u64 {
            dev.write(lpn, &vec![lpn as u8; ps]).unwrap();
        }
        dev.flush().unwrap();
        let report = dev.audit().unwrap();
        assert_eq!(report.mapped_lpns, 16);
    }

    #[test]
    fn staged_commits_are_audited_live_until_their_group_flushes() {
        let mut dev = fresh_xftl(32, 64);
        let ps = dev.page_size();
        dev.write(0, &vec![1; ps]).unwrap();
        dev.write(1, &vec![2; ps]).unwrap();
        dev.write_tx(5, 0, &vec![3; ps]).unwrap();
        dev.write_tx(6, 1, &vec![4; ps]).unwrap();
        let t5 = dev.commit_submit(5).unwrap();
        let t6 = dev.commit_submit(6).unwrap();
        let report = audit_xftl(&dev).unwrap();
        assert_eq!(report.staged_entries, 2, "both staged commits checked");
        dev.commit_wait(t6).unwrap();
        dev.commit_wait(t5).unwrap();
        let report = audit_xftl(&dev).unwrap();
        assert_eq!(
            report.staged_entries, 0,
            "flushed group leaves nothing staged"
        );
    }

    #[test]
    fn mutation_lost_staged_rollback_copy_is_caught() {
        let mut dev = fresh_xftl(32, 64);
        let ps = dev.page_size();
        dev.write(5, &vec![1; ps]).unwrap();
        dev.write_tx(9, 5, &vec![2; ps]).unwrap();
        let _ticket = dev.commit_submit(9).unwrap();
        // The commit is staged, not durable: a crash still rolls back to
        // the old version, so reclaiming it now is a GC bug.
        let old = dev.base().l2p_peek(5).unwrap();
        dev.base_mut().chip_mut().erase(old.block).unwrap();
        // The wiped rollback copy is also the L2P-current page, so the
        // audit may trip on either check; what matters is that the loss
        // is not silently tolerated just because the entry is Committed.
        let err = audit_xftl(&dev).unwrap_err();
        assert!(
            matches!(
                err,
                AuditViolation::Xl2pPinnedOldLost { tid: 9, lpn: 5, .. }
                    | AuditViolation::MappedPageMissing { lpn: 5, .. }
            ),
            "expected a pinned-old/mapped-page loss, got: {err}"
        );
    }

    #[test]
    fn mutation_reclaimed_pinned_page_is_caught() {
        let mut dev = fresh_xftl(32, 64);
        let ps = dev.page_size();
        dev.write(5, &vec![1; ps]).unwrap();
        dev.write_tx(9, 5, &vec![2; ps]).unwrap();
        // Simulate a GC bug: erase the block holding the old committed
        // version that active tid 9 pins for rollback.
        let old = dev.base().l2p_peek(5).unwrap();
        dev.base_mut().chip_mut().erase(old.block).unwrap();
        let err = audit_xftl(&dev).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.starts_with("flash auditor:"),
            "unexpected message: {msg}"
        );
    }

    #[test]
    fn mutation_reused_retired_block_is_caught() {
        use xftl_flash::{FaultKind, FaultPlan, FaultTrigger, Oob};
        let mut dev = fresh_xftl(32, 64);
        let ps = dev.page_size();
        dev.write(0, &vec![1; ps]).unwrap();
        // Retire a pooled block via a forced erase failure...
        let chip = dev.base_mut().chip_mut();
        chip.set_fault_plan(
            FaultPlan::new(9).trigger(FaultTrigger::new(FaultKind::EraseFail).on_block(20)),
        );
        assert!(chip.erase(20).is_err());
        // ...then emulate a buggy allocator silently handing it back out.
        // The program physically succeeds — real NAND does not police
        // retirement — so only the auditor can catch the reuse.
        chip.program(Ppa::new(20, 0), &vec![7u8; ps], Oob::data(63))
            .unwrap();
        let err = audit_chip(dev.base().chip()).unwrap_err();
        assert!(
            matches!(err, AuditViolation::RetiredBlockReused { block: 20, .. }),
            "expected RetiredBlockReused, got: {err}"
        );
    }

    #[test]
    fn mutation_untracked_retirement_is_caught() {
        use xftl_flash::{FaultKind, FaultPlan, FaultTrigger};
        let mut dev = fresh_xftl(32, 64);
        let chip = dev.base_mut().chip_mut();
        chip.set_fault_plan(
            FaultPlan::new(10).trigger(FaultTrigger::new(FaultKind::EraseFail).on_block(21)),
        );
        assert!(chip.erase(21).is_err());
        // The FTL never saw the failure (injected behind its back), so its
        // bad-block table is stale: retired on-chip yet still pooled.
        let err = audit_base(dev.base()).unwrap_err();
        assert!(
            matches!(err, AuditViolation::RetiredBlockUntracked { block: 21 }),
            "expected RetiredBlockUntracked, got: {err}"
        );
    }

    #[test]
    fn fault_driven_retirement_audits_green_through_the_ftl() {
        use xftl_flash::{FaultKind, FaultPlan, FaultTrigger};
        let mut dev = fresh_xftl(32, 64);
        let ps = dev.page_size();
        // The first GC erase fails; the FTL must retire the victim and
        // keep every structure consistent with the chip's health marks.
        dev.base_mut()
            .chip_mut()
            .set_fault_plan(FaultPlan::new(11).trigger(FaultTrigger::new(FaultKind::EraseFail)));
        for i in 0..1_200u64 {
            dev.write(i % 16, &vec![(i % 251) as u8; ps]).unwrap();
        }
        assert!(dev.base().bad_block_count() >= 1);
        let report = audit_xftl(&dev).unwrap();
        assert_eq!(report.retired_blocks, 1);
    }

    #[test]
    fn torn_pages_are_tolerated_but_counted() {
        let mut dev = fresh_xftl(32, 64);
        let ps = dev.page_size();
        dev.write(0, &vec![3; ps]).unwrap();
        dev.base_mut().chip_mut().arm_power_fuse(1);
        let _ = dev.write(1, &vec![4; ps]);
        let mut chip = dev.into_chip();
        chip.power_cycle();
        // The torn page is physics-legal; the recovered device must audit
        // green around it.
        let dev = XFtl::recover(chip).unwrap();
        let report = audit_xftl(&dev).unwrap();
        assert!(report.torn_pages <= 1);
    }
}
