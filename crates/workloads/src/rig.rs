//! Experiment rig: assembles the full stack — flash chip, FTL personality,
//! SATA link, file system, database — for one experimental configuration,
//! and provides crash/recover plumbing and cross-layer statistics
//! snapshots (the rows of the paper's Table 1).

use std::cell::RefCell;
use std::rc::Rc;

use xftl_core::XFtl;
use xftl_db::{Connection, DbJournalMode, SharedFs};
use xftl_flash::{AgingModel, FaultPlan, FlashChip, FlashConfigBuilder, Nanos, SimClock};
use xftl_fs::{FileSystem, FsConfig, FsError, FsStats, Ino, JournalMode};
use xftl_ftl::{
    AtomicWriteFtl, BlockDevice, CmdId, CommitTicket, DevCounters, DevError, DeviceState, FtlStats,
    GcPolicy, IoCmd, LinkConfig, Lpn, PageMappedFtl, Result, SataLink, ScrubConfig, Tid,
    TxBlockDevice,
};

use xftl_trace::Telemetry;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The three system configurations the paper compares (§6.3): SQLite in
/// rollback or WAL mode over the original FTL, or journaling off over
/// X-FTL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Rollback journal on the plain page-mapping FTL, ext4 ordered.
    Rbj,
    /// Write-ahead log on the plain page-mapping FTL, ext4 ordered.
    Wal,
    /// Journaling off on X-FTL; file-system journaling off too.
    XFtl,
}

impl Mode {
    /// The SQLite journal mode for this configuration.
    pub fn db_mode(self) -> DbJournalMode {
        match self {
            Mode::Rbj => DbJournalMode::Rollback,
            Mode::Wal => DbJournalMode::Wal,
            Mode::XFtl => DbJournalMode::Off,
        }
    }

    /// The file-system journal mode for this configuration.
    pub fn fs_mode(self) -> JournalMode {
        match self {
            Mode::Rbj | Mode::Wal => JournalMode::Ordered,
            Mode::XFtl => JournalMode::Off,
        }
    }

    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Mode::Rbj => "RBJ",
            Mode::Wal => "WAL",
            Mode::XFtl => "X-FTL",
        }
    }
}

/// Hardware profile: the OpenSSD development board or the newer Samsung
/// S830 consumer SSD of Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Profile {
    OpenSsd,
    S830,
}

/// A device of any FTL personality behind its SATA link.
#[derive(Debug)]
#[allow(missing_docs)]
// One AnyDev exists per rig, never in collections; boxing the X-FTL
// variant (whose commit-pipeline state tips the size ratio) would only
// add indirection to every forwarded device call.
#[allow(clippy::large_enum_variant)]
pub enum AnyDev {
    Plain(SataLink<PageMappedFtl>),
    X(SataLink<XFtl>),
    AtomicW(SataLink<AtomicWriteFtl>),
}

macro_rules! fwd {
    ($self:ident, $d:ident => $body:expr) => {
        match $self {
            AnyDev::Plain($d) => $body,
            AnyDev::X($d) => $body,
            AnyDev::AtomicW($d) => $body,
        }
    };
}

impl BlockDevice for AnyDev {
    fn page_size(&self) -> usize {
        fwd!(self, d => d.page_size())
    }
    fn capacity_pages(&self) -> u64 {
        fwd!(self, d => d.capacity_pages())
    }
    fn read(&mut self, lpn: Lpn, buf: &mut [u8]) -> Result<()> {
        fwd!(self, d => d.read(lpn, buf))
    }
    fn write(&mut self, lpn: Lpn, buf: &[u8]) -> Result<()> {
        fwd!(self, d => d.write(lpn, buf))
    }
    fn trim(&mut self, lpn: Lpn) -> Result<()> {
        fwd!(self, d => d.trim(lpn))
    }
    fn flush(&mut self) -> Result<()> {
        fwd!(self, d => d.flush())
    }
    fn counters(&self) -> DevCounters {
        fwd!(self, d => d.counters())
    }
    fn submit(&mut self, cmds: &[IoCmd<'_>]) -> Result<CmdId> {
        fwd!(self, d => d.submit(cmds))
    }
    fn complete_until(&mut self, barrier: CmdId) -> Result<()> {
        fwd!(self, d => d.complete_until(barrier))
    }
}

/// The rig erases the FTL personality behind an enum, so the compile-time
/// `TxBlockDevice` capability becomes a rig-level invariant instead: only
/// [`AnyDev::X`] actually speaks the transactional commands, and the rig
/// builds `Off`-mode volumes only over that personality. Reaching a tx
/// command on another personality is a rig configuration bug and panics.
impl TxBlockDevice for AnyDev {
    fn begin(&mut self, tid: Tid) -> Result<()> {
        match self {
            AnyDev::X(d) => d.begin(tid),
            _ => panic!("rig bug: transactional command on a non-X-FTL personality"),
        }
    }

    fn read_tx(&mut self, tid: Tid, lpn: Lpn, buf: &mut [u8]) -> Result<()> {
        match self {
            AnyDev::X(d) => d.read_tx(tid, lpn, buf),
            _ => panic!("rig bug: transactional command on a non-X-FTL personality"),
        }
    }
    fn write_tx(&mut self, tid: Tid, lpn: Lpn, buf: &[u8]) -> Result<()> {
        match self {
            AnyDev::X(d) => d.write_tx(tid, lpn, buf),
            _ => panic!("rig bug: transactional command on a non-X-FTL personality"),
        }
    }
    fn commit_submit(&mut self, tid: Tid) -> Result<CommitTicket> {
        match self {
            AnyDev::X(d) => d.commit_submit(tid),
            _ => panic!("rig bug: transactional command on a non-X-FTL personality"),
        }
    }
    fn commit_wait(&mut self, ticket: CommitTicket) -> Result<()> {
        match self {
            AnyDev::X(d) => d.commit_wait(ticket),
            _ => panic!("rig bug: transactional command on a non-X-FTL personality"),
        }
    }
    fn commit(&mut self, tid: Tid) -> Result<()> {
        match self {
            AnyDev::X(d) => d.commit(tid),
            _ => panic!("rig bug: transactional command on a non-X-FTL personality"),
        }
    }
    fn abort(&mut self, tid: Tid) -> Result<()> {
        match self {
            AnyDev::X(d) => d.abort(tid),
            _ => panic!("rig bug: transactional command on a non-X-FTL personality"),
        }
    }
    fn submit_tx(&mut self, tid: Tid, pages: &[(Lpn, &[u8])]) -> Result<CmdId> {
        match self {
            AnyDev::X(d) => d.submit_tx(tid, pages),
            _ => panic!("rig bug: transactional command on a non-X-FTL personality"),
        }
    }
}

impl AnyDev {
    /// FTL-attributed statistics of whichever personality is inside.
    pub fn ftl_stats(&self) -> FtlStats {
        match self {
            AnyDev::Plain(d) => *d.inner().stats(),
            AnyDev::X(d) => *d.inner().stats(),
            AnyDev::AtomicW(d) => *d.inner().stats(),
        }
    }

    /// Raw flash statistics.
    pub fn flash_stats(&self) -> xftl_flash::FlashStats {
        match self {
            AnyDev::Plain(d) => d.inner().flash_stats(),
            AnyDev::X(d) => d.inner().flash_stats(),
            AnyDev::AtomicW(d) => d.inner().flash_stats(),
        }
    }

    /// Resets device statistics (chip + FTL counters).
    pub fn reset_stats(&mut self) {
        match self {
            AnyDev::Plain(d) => d.inner_mut().reset_stats(),
            AnyDev::X(d) => d.inner_mut().reset_stats(),
            AnyDev::AtomicW(d) => d.inner_mut().reset_stats(),
        }
    }

    /// The telemetry handle installed on the underlying chip. All clones
    /// share one sink, so this is how upper layers (and a rig recovered
    /// from a crash) rejoin the stack-wide telemetry: the chip carries the
    /// handle across power cycles.
    pub fn recorder(&self) -> Telemetry {
        match self {
            AnyDev::Plain(d) => d.inner().base().recorder().clone(),
            AnyDev::X(d) => d.inner().base().recorder().clone(),
            AnyDev::AtomicW(d) => d.inner().base().recorder().clone(),
        }
    }

    /// Installs (or clears) the background-scrub / wear-leveling policy
    /// on whichever personality is inside. The policy lives in FTL RAM,
    /// so the rig re-installs it after every simulated power cycle.
    pub fn set_scrub_config(&mut self, cfg: Option<ScrubConfig>) {
        match self {
            AnyDev::Plain(d) => d.inner_mut().base_mut().set_scrub_config(cfg),
            AnyDev::X(d) => d.inner_mut().base_mut().set_scrub_config(cfg),
            AnyDev::AtomicW(d) => d.inner_mut().base_mut().set_scrub_config(cfg),
        }
    }

    /// Current device-health state (persisted by the FTL; survives
    /// power cycles).
    pub fn device_state(&self) -> DeviceState {
        match self {
            AnyDev::Plain(d) => d.inner().base().device_state(),
            AnyDev::X(d) => d.inner().base().device_state(),
            AnyDev::AtomicW(d) => d.inner().base().device_state(),
        }
    }

    /// Blocks retired to the bad-block table.
    pub fn bad_block_count(&self) -> usize {
        match self {
            AnyDev::Plain(d) => d.inner().base().bad_block_count(),
            AnyDev::X(d) => d.inner().base().bad_block_count(),
            AnyDev::AtomicW(d) => d.inner().base().bad_block_count(),
        }
    }
}

/// Rig parameters.
#[derive(Debug, Clone, Copy)]
pub struct RigConfig {
    /// System configuration under test.
    pub mode: Mode,
    /// Hardware profile.
    pub profile: Profile,
    /// Flash blocks (128 pages of 8 KB each on the OpenSSD geometry).
    pub blocks: usize,
    /// Logical pages the device exports.
    pub logical_pages: u64,
    /// OS page-cache capacity (pages).
    pub fs_cache_pages: usize,
    /// X-L2P capacity when `mode == XFtl`.
    pub xl2p_capacity: usize,
    /// Pre-format aging: fraction of the logical space filled with cold
    /// data, plus churn rounds, to set the GC validity regime (Figure 5's
    /// 30/50/70 % knob). `None` = fresh drive.
    pub aging: Option<Aging>,
    /// Overrides the file-system journal mode implied by `mode` (the FIO
    /// benchmark compares ext4 *full* journaling, which no SQLite mode
    /// maps to).
    pub fs_mode_override: Option<JournalMode>,
    /// GC victim policy; the aged-drive experiments use `Fifo` (the
    /// OpenSSD-era behaviour that makes victim validity track utilization).
    pub gc_policy: GcPolicy,
    /// Overrides the hardware profile's flash channel count — the knob of
    /// the channel-scaling experiment. `None` keeps the profile's default
    /// (OpenSSD: 1, S830: 4).
    pub channels: Option<u32>,
    /// Seed for aging and workload randomness.
    pub seed: u64,
    /// Background NAND fault environment installed on the chip before
    /// formatting (the plan is a property of the silicon and survives
    /// every power cycle). `None` = perfect flash.
    pub fault: Option<FaultEnv>,
    /// Background-scrub / static wear-leveling policy installed on the
    /// FTL. Unlike the fault plan this is *host* configuration, not a
    /// property of the silicon, so the rig re-installs it after every
    /// simulated power cycle. `None` = scrubber off (the default).
    pub scrub: Option<ScrubConfig>,
}

/// Background fault rates for a rig, in per-operation probabilities.
/// This is the `Copy`-able parameter form of [`FaultPlan::background`];
/// the rig builds the actual plan (and its deterministic RNG stream)
/// from it at format time.
#[derive(Debug, Clone, Copy)]
pub struct FaultEnv {
    /// Seed of the fault plan's dedicated RNG stream.
    pub seed: u64,
    /// Program status-failure probability per page program.
    pub program_fail: f64,
    /// Erase status-failure probability per block erase (each first
    /// failure retires the block permanently).
    pub erase_fail: f64,
    /// Correctable bit-flip probability per page read.
    pub read_flip: f64,
    /// Uncorrectable (beyond ECC strength) probability per page read.
    pub uncorrectable: f64,
    /// Deterministic wear-out curve (read disturb, retention, erase
    /// wear) layered under the probabilistic rates. `None` = silicon
    /// that never ages.
    pub aging: Option<AgingModel>,
}

impl FaultEnv {
    /// The fault plan this environment describes.
    pub fn plan(&self) -> FaultPlan {
        let plan = FaultPlan::background(
            self.seed,
            self.program_fail,
            self.erase_fail,
            self.read_flip,
            self.uncorrectable,
        );
        match self.aging {
            Some(model) => plan.aging(model),
            None => plan,
        }
    }
}

/// Aging parameters: fill the drive, then churn, before mkfs.
#[derive(Debug, Clone, Copy)]
pub struct Aging {
    /// Fraction of logical pages written with cold data.
    pub fill: f64,
    /// Random overwrites, as a multiple of the filled page count.
    pub churn: f64,
}

impl RigConfig {
    /// A small configuration for tests (tiny geometry is NOT used here:
    /// the rig always uses the paper's 8 KB/128 geometry).
    pub fn small(mode: Mode) -> RigConfig {
        RigConfig {
            mode,
            profile: Profile::OpenSsd,
            blocks: 64,
            logical_pages: 5_000,
            fs_cache_pages: 1024,
            xl2p_capacity: 500,
            aging: None,
            fs_mode_override: None,
            gc_policy: GcPolicy::Greedy,
            channels: None,
            seed: 42,
            fault: None,
            scrub: None,
        }
    }
}

impl RigConfig {
    /// The effective file-system journal mode.
    pub fn fs_mode(&self) -> JournalMode {
        self.fs_mode_override.unwrap_or_else(|| self.mode.fs_mode())
    }
}

/// The assembled stack.
pub struct Rig {
    /// The mounted file system (shared with open connections).
    pub fs: SharedFs<AnyDev>,
    /// The simulated clock every layer charges.
    pub clock: SimClock,
    cfg: RigConfig,
}

/// A cross-layer statistics snapshot (one Table 1 row, plus extras).
#[derive(Debug, Clone, Copy, Default)]
#[allow(missing_docs)]
pub struct Snapshot {
    pub fs: FsStats,
    pub ftl: FtlStats,
    pub flash: xftl_flash::FlashStats,
    pub dev: DevCounters,
    pub now_ns: Nanos,
}

impl Rig {
    /// Builds the stack: flash → (aging) → FTL → SATA link → mkfs.
    pub fn build(cfg: RigConfig) -> Rig {
        let clock = SimClock::new();
        let mut builder = match cfg.profile {
            Profile::OpenSsd => FlashConfigBuilder::openssd(),
            Profile::S830 => FlashConfigBuilder::s830(),
        }
        .blocks(cfg.blocks);
        if let Some(ch) = cfg.channels {
            builder = builder.channels(ch);
        }
        let flash_cfg = builder.build();
        let link = match cfg.profile {
            Profile::OpenSsd => LinkConfig::SATA2,
            Profile::S830 => LinkConfig::SATA3,
        };
        let mut chip = FlashChip::new(flash_cfg, clock.clone());
        // One telemetry handle serves every layer; installed on the chip
        // pre-format so the FTL, file system, and database all clone it.
        chip.set_recorder(Telemetry::new());
        if let Some(env) = cfg.fault {
            chip.set_fault_plan(env.plan());
        }
        let mut dev = match cfg.mode {
            Mode::XFtl => AnyDev::X(SataLink::new(
                XFtl::format_with_capacity(chip, cfg.logical_pages, cfg.xl2p_capacity)
                    .expect("format"),
                link,
                clock.clone(),
            )),
            _ => AnyDev::Plain(SataLink::new(
                PageMappedFtl::format(chip, cfg.logical_pages).expect("format"),
                link,
                clock.clone(),
            )),
        };
        match &mut dev {
            AnyDev::Plain(d) => d.inner_mut().base_mut().set_gc_policy(cfg.gc_policy),
            AnyDev::X(d) => d.inner_mut().base_mut().set_gc_policy(cfg.gc_policy),
            AnyDev::AtomicW(d) => d.inner_mut().base_mut().set_gc_policy(cfg.gc_policy),
        }
        dev.set_scrub_config(cfg.scrub);
        if let Some(aging) = cfg.aging {
            age_device(&mut dev, aging, cfg.seed);
        }
        let fs_cfg = FsConfig {
            inode_count: 256,
            journal_pages: 256.min(cfg.logical_pages / 8).max(16),
            cache_pages: cfg.fs_cache_pages,
        };
        let mut fs = match cfg.fs_mode() {
            JournalMode::Off => FileSystem::mkfs_tx(dev, JournalMode::Off, fs_cfg),
            mode => FileSystem::mkfs(dev, mode, fs_cfg),
        }
        .expect("mkfs");
        let telemetry = fs.device().recorder();
        fs.set_recorder(clock.clone(), telemetry);
        Rig {
            fs: Rc::new(RefCell::new(fs)),
            clock,
            cfg,
        }
    }

    /// Opens a database on the rig, in the mode's journal configuration.
    pub fn open_db(&self, name: &str) -> Connection<AnyDev> {
        let mut conn =
            Connection::open(Rc::clone(&self.fs), name, self.cfg.mode.db_mode()).expect("open db");
        conn.set_recorder(self.clock.clone(), self.telemetry());
        conn
    }

    /// Like [`Rig::open_db`], but surfaces the open error instead of
    /// panicking. A database whose journal needs write-back cannot be
    /// opened once the device degrades to end-of-life read-only mode;
    /// the endurance experiments report that as a measured outcome.
    pub fn try_open_db(&self, name: &str) -> xftl_db::Result<Connection<AnyDev>> {
        let mut conn = Connection::open(Rc::clone(&self.fs), name, self.cfg.mode.db_mode())?;
        conn.set_recorder(self.clock.clone(), self.telemetry());
        Ok(conn)
    }

    /// The stack-wide telemetry handle (histograms and, with the `trace`
    /// feature, the structured event ring).
    pub fn telemetry(&self) -> Telemetry {
        self.fs.borrow().device().recorder()
    }

    /// The configuration this rig was built with.
    pub fn config(&self) -> &RigConfig {
        &self.cfg
    }

    /// Current device-health state ([`DeviceState::ReadOnly`] once the
    /// free pool is exhausted by retired blocks — the end-of-life
    /// experiments poll this between transactions).
    pub fn device_state(&self) -> DeviceState {
        self.fs.borrow().device().device_state()
    }

    /// Cross-layer statistics snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let fs = self.fs.borrow();
        let dev = fs.device();
        let (ftl, flash) = match dev {
            AnyDev::Plain(d) => (*d.inner().stats(), d.inner().flash_stats()),
            AnyDev::X(d) => (*d.inner().stats(), d.inner().flash_stats()),
            AnyDev::AtomicW(d) => (*d.inner().stats(), d.inner().flash_stats()),
        };
        Snapshot {
            fs: *fs.stats(),
            ftl,
            flash,
            dev: dev.counters(),
            now_ns: self.clock.now(),
        }
    }

    /// Resets all statistics layers (clock keeps running).
    pub fn reset_stats(&self) {
        let mut fs = self.fs.borrow_mut();
        fs.reset_stats();
        fs.device_mut().reset_stats();
    }

    /// Dismantles the rig into its parts for custom crash experiments
    /// (Table 5 needs per-phase recovery timing). All `Connection`s must
    /// have been dropped.
    pub fn teardown(self) -> (FileSystem<AnyDev>, SimClock, RigConfig) {
        let Rig { fs, clock, cfg } = self;
        let fs = Rc::try_unwrap(fs)
            .expect("connections still open")
            .into_inner();
        (fs, clock, cfg)
    }

    /// Reassembles a rig around a recovered device.
    pub fn reassemble(dev: AnyDev, clock: SimClock, cfg: RigConfig) -> Rig {
        let fs = Self::mount_any(dev, &clock, &cfg);
        Rig {
            fs: Rc::new(RefCell::new(fs)),
            clock,
            cfg,
        }
    }

    fn mount_any(dev: AnyDev, clock: &SimClock, cfg: &RigConfig) -> FileSystem<AnyDev> {
        // The chip carried the telemetry handle through the power cycle;
        // rejoin the freshly mounted file system to it.
        let telemetry = dev.recorder();
        let mut fs = match cfg.fs_mode() {
            JournalMode::Off => FileSystem::mount_tx(dev, JournalMode::Off, cfg.fs_cache_pages),
            mode => FileSystem::mount(dev, mode, cfg.fs_cache_pages),
        }
        .expect("mount");
        fs.set_recorder(clock.clone(), telemetry);
        fs
    }

    /// Simulates a power loss and full recovery: the file system and all
    /// caches are dropped, the device is rebuilt from flash through its
    /// recovery path, and the volume is re-mounted. Returns the recovered
    /// rig and the simulated time the *device-level* recovery took.
    ///
    /// All `Connection`s into the old rig must have been dropped.
    pub fn crash_and_recover(self) -> (Rig, Nanos) {
        let Rig { fs, clock, cfg } = self;
        let fs = Rc::try_unwrap(fs)
            .expect("connections still open")
            .into_inner();
        let dev = fs.into_device();
        let t0 = clock.now();
        let dev = match dev {
            AnyDev::Plain(link) => {
                let chip = link.into_inner().into_chip();
                AnyDev::Plain(SataLink::new(
                    PageMappedFtl::recover(chip).expect("recover"),
                    link_for(cfg.profile),
                    clock.clone(),
                ))
            }
            AnyDev::X(link) => {
                let chip = link.into_inner().into_chip();
                AnyDev::X(SataLink::new(
                    XFtl::recover_with_capacity(chip, cfg.xl2p_capacity).expect("recover"),
                    link_for(cfg.profile),
                    clock.clone(),
                ))
            }
            AnyDev::AtomicW(link) => {
                let chip = link.into_inner().into_chip();
                AnyDev::AtomicW(SataLink::new(
                    AtomicWriteFtl::recover(chip).expect("recover"),
                    link_for(cfg.profile),
                    clock.clone(),
                ))
            }
        };
        let recovery_ns = clock.now() - t0;
        let mut dev = dev;
        match &mut dev {
            AnyDev::Plain(d) => d.inner_mut().base_mut().set_gc_policy(cfg.gc_policy),
            AnyDev::X(d) => d.inner_mut().base_mut().set_gc_policy(cfg.gc_policy),
            AnyDev::AtomicW(d) => d.inner_mut().base_mut().set_gc_policy(cfg.gc_policy),
        }
        dev.set_scrub_config(cfg.scrub);
        let fs = Self::mount_any(dev, &clock, &cfg);
        (
            Rig {
                fs: Rc::new(RefCell::new(fs)),
                clock,
                cfg,
            },
            recovery_ns,
        )
    }

    /// Creates (or reuses) `name` pre-sized to `pages` zeroed pages and
    /// makes the allocation durable. Concurrent writers that only
    /// overwrite pre-sized pages touch no shared allocator metadata —
    /// bitmap or inode-map growth would make every writer pair conflict
    /// at the device, drowning the interleavings the harness is after.
    pub fn prepare_concurrent_file(&self, name: &str, pages: u64) -> Ino {
        let mut fs = self.fs.borrow_mut();
        let ino = if fs.exists(name) {
            fs.open(name).expect("open concurrent file")
        } else {
            fs.create(name).expect("create concurrent file")
        };
        let ps = fs.page_size() as u64;
        let zeros = vec![0u8; ps as usize];
        for p in 0..pages {
            fs.write(ino, p * ps, &zeros, None).expect("pre-size");
        }
        fs.sync_all().expect("pre-size sync");
        ino
    }

    /// Runs one deterministic round of interleaved snapshot writers over
    /// the X-FTL `begin`/first-committer-wins path: every writer opens a
    /// snapshot transaction, their page writes interleave round-robin
    /// (writer 0 step 0, writer 1 step 0, …, writer 0 step 1, …), then
    /// each fsyncs — commits — in writer order. Conflict losers are
    /// tallied, not fatal; any other error panics.
    ///
    /// Page images come from [`concurrent_fill`], so callers can verify
    /// exactly which writer's version survived.
    pub fn run_concurrent_writers(&self, ino: Ino, plan: &ConcurrentPlan) -> ConcurrentOutcome {
        let mut fs = self.fs.borrow_mut();
        let ps = fs.page_size() as u64;
        let tids: Vec<Tid> = plan
            .writers
            .iter()
            .map(|_| fs.begin_tx_concurrent().expect("begin concurrent"))
            .collect();
        let depth = plan.writers.iter().map(Vec::len).max().unwrap_or(0);
        for step in 0..depth {
            for (w, pages) in plan.writers.iter().enumerate() {
                if let Some(&page) = pages.get(step) {
                    let img = concurrent_fill(ps as usize, plan.tag, w, page);
                    fs.write(ino, page * ps, &img, Some(tids[w]))
                        .expect("snapshot write");
                }
            }
        }
        let mut committed = Vec::new();
        let mut conflicted = Vec::new();
        let mut commit_latency_ns = Vec::new();
        for (w, &tid) in tids.iter().enumerate() {
            let t0 = self.clock.now();
            match fs.fsync(ino, Some(tid)) {
                Ok(()) => {
                    committed.push(w);
                    commit_latency_ns.push(self.clock.now() - t0);
                }
                Err(FsError::Dev(DevError::Conflict)) => conflicted.push(w),
                Err(e) => panic!("concurrent writer {w} (tid {tid}) failed: {e:?}"),
            }
        }
        ConcurrentOutcome {
            tids,
            committed,
            conflicted,
            commit_latency_ns,
        }
    }

    /// Like [`Rig::run_concurrent_writers`], but commits through the
    /// split-phase pipeline: every writer's commit is *submitted* first —
    /// first-committer-wins validation and visibility happen at the
    /// submit — then the surviving tickets are redeemed in writer order.
    /// Staged commits coalesce into shared group flushes, which is the
    /// device-level scaling the concurrent bench measures. Each winner's
    /// submit-to-durable latency lands in
    /// [`ConcurrentOutcome::commit_latency_ns`].
    pub fn run_concurrent_writers_pipelined(
        &self,
        ino: Ino,
        plan: &ConcurrentPlan,
    ) -> ConcurrentOutcome {
        let mut fs = self.fs.borrow_mut();
        let ps = fs.page_size() as u64;
        let tids: Vec<Tid> = plan
            .writers
            .iter()
            .map(|_| fs.begin_tx_concurrent().expect("begin concurrent"))
            .collect();
        let depth = plan.writers.iter().map(Vec::len).max().unwrap_or(0);
        for step in 0..depth {
            for (w, pages) in plan.writers.iter().enumerate() {
                if let Some(&page) = pages.get(step) {
                    let img = concurrent_fill(ps as usize, plan.tag, w, page);
                    fs.write(ino, page * ps, &img, Some(tids[w]))
                        .expect("snapshot write");
                }
            }
        }
        let mut conflicted = Vec::new();
        let mut tickets: Vec<(usize, CommitTicket, Nanos)> = Vec::new();
        for (w, &tid) in tids.iter().enumerate() {
            let t0 = self.clock.now();
            match fs.fsync_submit(ino, tid) {
                Ok(ticket) => tickets.push((w, ticket, t0)),
                Err(FsError::Dev(DevError::Conflict)) => conflicted.push(w),
                Err(e) => panic!("concurrent writer {w} (tid {tid}) failed: {e:?}"),
            }
        }
        let mut committed = Vec::new();
        let mut commit_latency_ns = Vec::new();
        for (w, ticket, t0) in tickets {
            fs.fsync_wait(ticket).expect("fsync_wait");
            committed.push(w);
            commit_latency_ns.push(self.clock.now() - t0);
        }
        ConcurrentOutcome {
            tids,
            committed,
            conflicted,
            commit_latency_ns,
        }
    }
}

/// One deterministic multi-writer round for the MVCC harness: which
/// pages of the shared file each writer overwrites, in issue order.
#[derive(Debug, Clone)]
pub struct ConcurrentPlan {
    /// Per-writer page-index scripts (outer index = writer).
    pub writers: Vec<Vec<u64>>,
    /// Byte tag baked into every page image (disambiguates rounds).
    pub tag: u8,
}

/// What one [`Rig::run_concurrent_writers`] round did.
#[derive(Debug, Clone)]
pub struct ConcurrentOutcome {
    /// Device transaction id each writer ran under, in writer order.
    pub tids: Vec<Tid>,
    /// Writers (by index) whose commit was admitted, in commit order.
    pub committed: Vec<usize>,
    /// Writers (by index) that lost first-committer-wins validation.
    pub conflicted: Vec<usize>,
    /// Simulated commit latency of each admitted writer (parallel to
    /// `committed`): fsync-start-to-durable for the blocking runner,
    /// submit-to-redeemed for the pipelined one.
    pub commit_latency_ns: Vec<Nanos>,
}

/// The page image writer `writer` writes for page `page` in a round
/// tagged `tag`: a cheap, collision-free mix so two writers' images for
/// the same page always differ.
pub fn concurrent_fill(page_size: usize, tag: u8, writer: usize, page: u64) -> Vec<u8> {
    let w = (writer as u8).wrapping_mul(31).wrapping_add(1);
    let p = (page as u8).wrapping_mul(7);
    (0..page_size)
        .map(|i| tag ^ w ^ p.wrapping_add(i as u8))
        .collect()
}

/// SATA link parameters for a hardware profile.
pub fn link_for(profile: Profile) -> LinkConfig {
    match profile {
        Profile::OpenSsd => LinkConfig::SATA2,
        Profile::S830 => LinkConfig::SATA3,
    }
}

/// Ages the raw device before mkfs: fills a fraction of the logical space
/// with cold data (pages the FS will never trim), then churns random
/// overwrites so garbage collection reaches its steady state. This is the
/// reproduction of §6.3.1's "controlled aging" that sets the ratio of
/// valid pages carried by GC.
pub fn age_device(dev: &mut AnyDev, aging: Aging, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let logical = dev.capacity_pages();
    let ps = dev.page_size();
    let filled = ((logical as f64) * aging.fill) as u64;
    let mut page = vec![0u8; ps];
    // Cold fill occupies the TAIL of the logical space so the file
    // system's metadata and data regions (allocated low-first) stay
    // usable.
    let cold_start = logical - filled;
    for lpn in cold_start..logical {
        page[0] = lpn as u8;
        dev.write(lpn, &page).expect("aging fill");
    }
    let churn_ops = (filled as f64 * aging.churn) as u64;
    for _ in 0..churn_ops {
        let lpn = cold_start + rng.gen_range(0..filled.max(1));
        page[0] = lpn as u8;
        dev.write(lpn, &page).expect("aging churn");
    }
    dev.flush().expect("aging flush");
    dev.reset_stats();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rig_builds_and_runs_sql_in_all_modes() {
        for mode in [Mode::Rbj, Mode::Wal, Mode::XFtl] {
            let rig = Rig::build(RigConfig::small(mode));
            let mut db = rig.open_db("t.db");
            db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
                .unwrap();
            db.execute("INSERT INTO t VALUES (1, 10)").unwrap();
            let rows = db.query("SELECT v FROM t WHERE id = 1").unwrap();
            assert_eq!(rows[0][0], xftl_db::Value::Int(10), "{mode:?}");
            assert!(rig.clock.now() > 0);
        }
    }

    #[test]
    fn snapshot_reflects_layers() {
        let rig = Rig::build(RigConfig::small(Mode::Rbj));
        let mut db = rig.open_db("t.db");
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 10)").unwrap();
        drop(db);
        let snap = rig.snapshot();
        assert!(snap.fs.fsyncs > 0);
        assert!(snap.ftl.data_writes > 0);
        assert!(snap.flash.programs > 0);
        assert!(snap.now_ns > 0);
    }

    #[test]
    fn crash_and_recover_preserves_committed_data() {
        for mode in [Mode::Rbj, Mode::Wal, Mode::XFtl] {
            let rig = Rig::build(RigConfig::small(mode));
            {
                let mut db = rig.open_db("t.db");
                db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
                    .unwrap();
                db.execute("INSERT INTO t VALUES (1, 77)").unwrap();
            }
            let (rig, recovery_ns) = rig.crash_and_recover();
            assert!(recovery_ns > 0);
            let mut db = rig.open_db("t.db");
            let rows = db.query("SELECT v FROM t WHERE id = 1").unwrap();
            assert_eq!(rows[0][0], xftl_db::Value::Int(77), "{mode:?}");
        }
    }

    #[test]
    fn aging_drives_gc_validity_up() {
        // A heavily-aged drive must show a higher mean GC victim validity
        // than a fresh one under the same workload.
        let run = |aging: Option<Aging>| {
            let rig = Rig::build(RigConfig {
                aging,
                ..RigConfig::small(Mode::XFtl)
            });
            let mut db = rig.open_db("t.db");
            db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
                .unwrap();
            let filler = "x".repeat(400);
            for i in 0..3000i64 {
                db.execute_with(
                    "INSERT OR REPLACE INTO t VALUES (?, ?)",
                    &[
                        xftl_db::Value::Int(i % 300),
                        xftl_db::Value::Text(filler.clone()),
                    ],
                )
                .unwrap();
            }
            drop(db);
            rig.snapshot().ftl.mean_gc_validity()
        };
        let fresh = run(None);
        let aged = run(Some(Aging {
            fill: 0.85,
            churn: 1.0,
        }));
        let aged_v = aged.expect("aged drive must garbage-collect");
        if let Some(fresh_v) = fresh {
            assert!(
                aged_v > fresh_v,
                "aged validity {aged_v} should exceed fresh {fresh_v}"
            );
        }
        assert!(aged_v > 0.3, "aged validity {aged_v} unexpectedly low");
    }

    #[test]
    fn same_seed_runs_are_bit_identical() {
        // The channel model is queued but threadless: everything advances
        // on the simulated clock, so two identical runs must produce
        // byte-for-byte identical statistics at every layer.
        let run = || {
            let rig = Rig::build(RigConfig {
                channels: Some(4),
                ..RigConfig::small(Mode::XFtl)
            });
            let mut db = rig.open_db("t.db");
            db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
                .unwrap();
            for i in 0..200i64 {
                db.execute_with(
                    "INSERT OR REPLACE INTO t VALUES (?, ?)",
                    &[
                        xftl_db::Value::Int(i % 40),
                        xftl_db::Value::Text("payload".repeat(30)),
                    ],
                )
                .unwrap();
            }
            drop(db);
            format!("{:?}", rig.snapshot())
        };
        assert_eq!(run(), run(), "simulation must be deterministic");
    }

    #[test]
    fn more_channels_run_the_same_workload_faster() {
        let time_with = |channels: u32| {
            let rig = Rig::build(RigConfig {
                channels: Some(channels),
                ..RigConfig::small(Mode::XFtl)
            });
            let mut db = rig.open_db("t.db");
            db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
                .unwrap();
            let t0 = rig.clock.now();
            for i in 0..120i64 {
                db.execute_with(
                    "INSERT OR REPLACE INTO t VALUES (?, ?)",
                    &[
                        xftl_db::Value::Int(i % 30),
                        xftl_db::Value::Text("x".repeat(600)),
                    ],
                )
                .unwrap();
            }
            rig.clock.now() - t0
        };
        let one = time_with(1);
        let four = time_with(4);
        assert!(
            four < one,
            "4 channels ({four} ns) should beat 1 channel ({one} ns)"
        );
    }

    #[test]
    fn faulty_rig_runs_sql_and_recovers_correctly() {
        // A rig built over misbehaving silicon must answer SQL queries
        // exactly as a clean one does: the FTL's retry and bad-block
        // machinery absorbs every injected fault below the host.
        for mode in [Mode::Rbj, Mode::XFtl] {
            let rig = Rig::build(RigConfig {
                fault: Some(FaultEnv {
                    seed: 0xBAD_F1A5,
                    program_fail: 1e-2,
                    erase_fail: 5e-3,
                    read_flip: 5e-2,
                    uncorrectable: 1e-3,
                    aging: None,
                }),
                ..RigConfig::small(mode)
            });
            {
                let mut db = rig.open_db("t.db");
                db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
                    .unwrap();
                for i in 0..200i64 {
                    db.execute_with(
                        "INSERT OR REPLACE INTO t VALUES (?, ?)",
                        &[xftl_db::Value::Int(i % 50), xftl_db::Value::Int(i)],
                    )
                    .unwrap();
                }
            }
            let snap = rig.snapshot();
            assert!(
                snap.flash.program_fails > 0 || snap.flash.corrected_reads > 0,
                "{mode:?}: fault environment never fired"
            );
            let (rig, _) = rig.crash_and_recover();
            let mut db = rig.open_db("t.db");
            for id in 0..50i64 {
                let rows = db
                    .query_with("SELECT v FROM t WHERE id = ?", &[xftl_db::Value::Int(id)])
                    .unwrap();
                assert_eq!(
                    rows[0][0],
                    xftl_db::Value::Int(150 + id),
                    "{mode:?}: id {id} after faulty run + recovery"
                );
            }
        }
    }

    #[test]
    fn xftl_mode_beats_wal_beats_rbj_on_updates() {
        // The paper's headline ordering, on a small update-only workload.
        let time_for = |mode: Mode| {
            let rig = Rig::build(RigConfig::small(mode));
            let mut db = rig.open_db("t.db");
            db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
                .unwrap();
            for i in 0..50i64 {
                db.execute_with("INSERT INTO t VALUES (?, 0)", &[xftl_db::Value::Int(i)])
                    .unwrap();
            }
            let t0 = rig.clock.now();
            for i in 0..100i64 {
                db.execute_with(
                    "UPDATE t SET v = v + 1 WHERE id = ?",
                    &[xftl_db::Value::Int(i % 50)],
                )
                .unwrap();
            }
            rig.clock.now() - t0
        };
        let rbj = time_for(Mode::Rbj);
        let wal = time_for(Mode::Wal);
        let xftl = time_for(Mode::XFtl);
        assert!(xftl < wal, "X-FTL ({xftl} ns) should beat WAL ({wal} ns)");
        assert!(wal < rbj, "WAL ({wal} ns) should beat RBJ ({rbj} ns)");
    }
}
