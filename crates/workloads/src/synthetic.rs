//! The paper's synthetic workload (§6.2): a TPC-H `partsupp`-style table
//! of 60,000 tuples of 220 bytes; each transaction reads a fixed number of
//! tuples at random keys, updates their `supplycost`, and commits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xftl_db::{Connection, DbError, Value};
use xftl_ftl::BlockDevice;

use crate::rig::Rig;

/// Host CPU time charged per SQL statement (see `tpcc::CPU_STMT_NS`).
const CPU_STMT_NS: u64 = 70_000;

/// Synthetic workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Rows in the partsupp table (paper: 60,000).
    pub tuples: usize,
    /// Bytes per tuple including the comment filler (paper: 220).
    pub tuple_bytes: usize,
    /// Tuples read + updated per transaction (Figure 5 sweeps 1..20).
    pub updates_per_txn: usize,
    /// Transactions to run (paper: 1,000 per configuration).
    pub txns: usize,
    /// Workload RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            tuples: 60_000,
            tuple_bytes: 220,
            updates_per_txn: 5,
            txns: 1_000,
            seed: 7,
        }
    }
}

/// Creates and populates the partsupp table.
///
/// # Errors
/// Propagates database errors — in particular the typed end-of-life
/// refusals ([`DbError::ReadOnly`], device `OutOfSpace`) a fault-heavy
/// environment can produce mid-load.
pub fn load_partsupply<D: BlockDevice>(
    db: &mut Connection<D>,
    cfg: &SyntheticConfig,
) -> xftl_db::Result<()> {
    db.execute(
        "CREATE TABLE partsupp (ps_id INTEGER PRIMARY KEY, ps_partkey INT, \
         ps_suppkey INT, ps_supplycost REAL, ps_comment TEXT)",
    )?;
    // Fixed fields take ~40 bytes in record form; the comment pads the
    // tuple to the configured width.
    let comment_len = cfg.tuple_bytes.saturating_sub(40);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let comment: String = (0..comment_len)
        .map(|i| (b'a' + (i % 26) as u8) as char)
        .collect();
    // Bulk-load in batches inside explicit transactions so population does
    // not dominate the measured run.
    let batch = 500;
    let mut i = 0usize;
    while i < cfg.tuples {
        db.execute("BEGIN")?;
        for _ in 0..batch.min(cfg.tuples - i) {
            db.execute_with(
                "INSERT INTO partsupp VALUES (?, ?, ?, ?, ?)",
                &[
                    Value::Int(i as i64 + 1),
                    Value::Int((i % 20_000) as i64 + 1),
                    Value::Int(rng.gen_range(1..=1_000)),
                    Value::Real(rng.gen_range(1.0..1_000.0)),
                    Value::Text(comment.clone()),
                ],
            )?;
            i += 1;
        }
        db.execute("COMMIT")?;
    }
    Ok(())
}

/// Outcome of a synthetic run.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct SyntheticResult {
    /// Simulated execution time of the transaction phase, nanoseconds.
    pub elapsed_ns: u64,
    pub txns: usize,
}

/// Runs the transaction phase: `txns` transactions of
/// `updates_per_txn` read-modify-write operations each.
///
/// # Errors
/// Propagates database errors so harnesses can report a device that died
/// mid-run (end-of-life `ReadOnly`, pool `OutOfSpace`) as a typed result
/// instead of a panic.
pub fn run_transactions<D: BlockDevice>(
    db: &mut Connection<D>,
    rig_clock: &xftl_flash::SimClock,
    cfg: &SyntheticConfig,
) -> xftl_db::Result<SyntheticResult> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xDEAD_BEEF);
    let t0 = rig_clock.now();
    for _ in 0..cfg.txns {
        rig_clock.advance((2 + 2 * cfg.updates_per_txn as u64) * CPU_STMT_NS);
        db.execute("BEGIN")?;
        for _ in 0..cfg.updates_per_txn {
            let key = rng.gen_range(1..=cfg.tuples as i64);
            let rows = db.query_with(
                "SELECT ps_supplycost FROM partsupp WHERE ps_id = ?",
                &[Value::Int(key)],
            )?;
            let cost = rows
                .first()
                .and_then(|r| r[0].as_f64())
                .ok_or(DbError::Corrupt("partsupp tuple missing"))?;
            db.execute_with(
                "UPDATE partsupp SET ps_supplycost = ? WHERE ps_id = ?",
                &[Value::Real((cost + 1.0) % 1_000.0), Value::Int(key)],
            )?;
        }
        db.execute("COMMIT")?;
    }
    Ok(SyntheticResult {
        elapsed_ns: rig_clock.now() - t0,
        txns: cfg.txns,
    })
}

/// Convenience: build + load + run on a rig, returning the result and the
/// final statistics snapshot.
///
/// # Errors
/// Propagates database errors from the load and transaction phases.
pub fn run_on_rig(
    rig: &Rig,
    cfg: &SyntheticConfig,
) -> xftl_db::Result<(SyntheticResult, crate::rig::Snapshot)> {
    let mut db = rig.open_db("synthetic.db");
    load_partsupply(&mut db, cfg)?;
    rig.reset_stats();
    db.reset_stats();
    let result = run_transactions(&mut db, &rig.clock, cfg)?;
    drop(db);
    Ok((result, rig.snapshot()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rig::{Mode, Rig, RigConfig};

    fn tiny_cfg() -> SyntheticConfig {
        SyntheticConfig {
            tuples: 400,
            tuple_bytes: 220,
            updates_per_txn: 3,
            txns: 20,
            seed: 1,
        }
    }

    #[test]
    fn loads_and_updates() {
        let rig = Rig::build(RigConfig::small(Mode::XFtl));
        let mut db = rig.open_db("s.db");
        let cfg = tiny_cfg();
        load_partsupply(&mut db, &cfg).unwrap();
        let rows = db.query("SELECT COUNT(*) FROM partsupp").unwrap();
        assert_eq!(rows[0][0], Value::Int(400));
        let r = run_transactions(&mut db, &rig.clock, &cfg).unwrap();
        assert_eq!(r.txns, 20);
        assert!(r.elapsed_ns > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let elapsed = |(): ()| {
            let rig = Rig::build(RigConfig::small(Mode::Wal));
            let mut db = rig.open_db("s.db");
            let cfg = tiny_cfg();
            load_partsupply(&mut db, &cfg).unwrap();
            run_transactions(&mut db, &rig.clock, &cfg)
                .unwrap()
                .elapsed_ns
        };
        assert_eq!(elapsed(()), elapsed(()), "simulation must be deterministic");
    }

    #[test]
    fn tuple_width_close_to_target() {
        // 220-byte tuples: ~35 rows per 8 KB page, as the paper's layout
        // implies. Verify the record is in the right ballpark.
        let rig = Rig::build(RigConfig::small(Mode::Rbj));
        let mut db = rig.open_db("s.db");
        let cfg = SyntheticConfig {
            tuples: 10,
            ..tiny_cfg()
        };
        load_partsupply(&mut db, &cfg).unwrap();
        let rows = db
            .query("SELECT ps_comment FROM partsupp WHERE ps_id = 1")
            .unwrap();
        if let Value::Text(c) = &rows[0][0] {
            assert!(c.len() >= 170 && c.len() <= 220);
        } else {
            panic!("comment missing");
        }
    }
}
