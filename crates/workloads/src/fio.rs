//! FIO-style file-system benchmark (§6.3.4, Figures 8–9).
//!
//! The paper measures 8 KB random-write IOPS into a large file with an
//! fsync every 1/5/10/15/20 writes, comparing ext4 ordered and full
//! journaling against journaling-off over X-FTL. Figure 8 uses a single
//! thread; Figure 9 uses 16 concurrent threads on a newer drive. Threads
//! are simulated as round-robin jobs: interleaving order stands in for
//! host-side concurrency, while device-side parallelism is real — each
//! fsync submits its dirty pages as one queued batch that the flash array
//! overlaps across its channels.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xftl_flash::SECOND;
use xftl_fs::Ino;
use xftl_ftl::CommitTicket;

use crate::rig::Rig;

/// FIO run parameters.
#[derive(Debug, Clone, Copy)]
pub struct FioConfig {
    /// Concurrent jobs, each with its own file and fsync cadence.
    pub jobs: usize,
    /// File size each job writes into (paper: 4 GB; scaled down by
    /// default to bound simulator memory).
    pub file_bytes: u64,
    /// Page writes between fsyncs (the Figure 8 x-axis: 1/5/10/15/20).
    pub writes_per_fsync: usize,
    /// Simulated duration of the measurement.
    pub duration_secs: u64,
    /// Workload RNG seed.
    pub seed: u64,
    /// Outstanding split-phase commits per job (1 = classic blocking
    /// fsync). At depth N a job keeps up to N-1 commit tickets in flight,
    /// redeeming the oldest only when the ring is full — so transaction
    /// N+1's writes overlap transaction N's in-flight commit and the
    /// device coalesces the staged commits into one group flush. Only the
    /// `Off`-mode (X-FTL) rig has a split phase; other modes must run at
    /// depth 1.
    pub queue_depth: usize,
}

impl Default for FioConfig {
    fn default() -> Self {
        FioConfig {
            jobs: 1,
            file_bytes: 256 * 1024 * 1024,
            writes_per_fsync: 5,
            duration_secs: 30,
            seed: 99,
            queue_depth: 1,
        }
    }
}

/// Result of one FIO run.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct FioResult {
    pub writes: u64,
    pub fsyncs: u64,
    pub elapsed_ns: u64,
    /// 8 KB write IOPS over the simulated duration.
    pub iops: f64,
}

/// Runs the benchmark on a rig's file system.
pub fn run(rig: &Rig, cfg: &FioConfig) -> FioResult {
    let ps = rig.fs.borrow().page_size() as u64;
    // FIO's numjobs creates one file per job; `file_bytes` is the total
    // working-set size split across them, so memory stays bounded while
    // per-job fsyncs cover only that job's dirty pages (no cross-job
    // amortization — matching real FIO).
    let pages_per_file = (cfg.file_bytes / ps / cfg.jobs as u64).max(1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let files: Vec<Ino> = (0..cfg.jobs)
        .map(|j| {
            rig.fs
                .borrow_mut()
                .create(&format!("fio-job-{j}"))
                .expect("create")
        })
        .collect();
    let page = vec![0x5Au8; ps as usize];
    let deadline = rig.clock.now() + cfg.duration_secs * SECOND;
    let qd = cfg.queue_depth.max(1);
    let mut writes = 0u64;
    let mut fsyncs = 0u64;
    let mut pending = vec![0usize; cfg.jobs];
    let mut tickets: Vec<VecDeque<CommitTicket>> = vec![VecDeque::new(); cfg.jobs];
    let t0 = rig.clock.now();
    'outer: loop {
        for (j, &ino) in files.iter().enumerate() {
            if rig.clock.now() >= deadline {
                break 'outer;
            }
            let off = rng.gen_range(0..pages_per_file) * ps;
            rig.fs
                .borrow_mut()
                .write(ino, off, &page, None)
                .expect("write");
            writes += 1;
            pending[j] += 1;
            if pending[j] >= cfg.writes_per_fsync {
                if qd > 1 {
                    // Split phase: submit now, redeem the oldest ticket
                    // only once the ring is full — the commit pipeline.
                    let tid = rig.fs.borrow_mut().begin_tx();
                    let t = rig
                        .fs
                        .borrow_mut()
                        .fsync_submit(ino, tid)
                        .expect("fsync_submit");
                    tickets[j].push_back(t);
                    if tickets[j].len() >= qd {
                        let oldest = tickets[j].pop_front().expect("ring is full");
                        rig.fs.borrow_mut().fsync_wait(oldest).expect("fsync_wait");
                    }
                } else {
                    rig.fs.borrow_mut().fsync(ino, None).expect("fsync");
                }
                fsyncs += 1;
                pending[j] = 0;
            }
        }
    }
    // Drain the pipeline so every measured fsync is durable.
    for ring in &mut tickets {
        while let Some(t) = ring.pop_front() {
            rig.fs.borrow_mut().fsync_wait(t).expect("fsync_wait");
        }
    }
    let elapsed_ns = rig.clock.now() - t0;
    FioResult {
        writes,
        fsyncs,
        elapsed_ns,
        iops: writes as f64 / (elapsed_ns as f64 / SECOND as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rig::{Mode, Rig, RigConfig};
    use xftl_fs::JournalMode;

    fn cfg(writes_per_fsync: usize) -> FioConfig {
        FioConfig {
            jobs: 1,
            file_bytes: 4 * 1024 * 1024,
            writes_per_fsync,
            duration_secs: 2,
            seed: 5,
            queue_depth: 1,
        }
    }

    fn rig(mode: Mode) -> Rig {
        Rig::build(RigConfig {
            blocks: 96,
            logical_pages: 8_000,
            ..RigConfig::small(mode)
        })
    }

    #[test]
    fn produces_iops() {
        let r = rig(Mode::XFtl);
        let res = run(&r, &cfg(5));
        assert!(res.writes > 0);
        assert!(res.iops > 0.0);
        assert!(res.fsyncs > 0);
    }

    #[test]
    fn fewer_fsyncs_mean_higher_iops() {
        // Figure 8's monotone trend along the x-axis.
        let r1 = run(&rig(Mode::XFtl), &cfg(1));
        let r20 = run(&rig(Mode::XFtl), &cfg(20));
        assert!(
            r20.iops > r1.iops,
            "sparser fsyncs should raise IOPS ({} vs {})",
            r20.iops,
            r1.iops
        );
    }

    #[test]
    fn xftl_beats_ordered_beats_full() {
        // Figure 8's mode ordering.
        let x = run(&rig(Mode::XFtl), &cfg(5)).iops;
        let ordered = run(&rig(Mode::Wal), &cfg(5)).iops; // Wal rig = ext4 ordered
        let full_rig = Rig::build(RigConfig {
            blocks: 96,
            logical_pages: 8_000,
            fs_mode_override: Some(JournalMode::Full),
            ..RigConfig::small(Mode::Rbj)
        });
        let full = run(&full_rig, &cfg(5)).iops;
        assert!(x > ordered, "X-FTL {x} should beat ordered {ordered}");
        assert!(ordered > full, "ordered {ordered} should beat full {full}");
    }

    #[test]
    fn deeper_queue_means_higher_iops() {
        // The pipelining win: at depth 4 a job overlaps three in-flight
        // commits and the device coalesces their group flushes.
        let r1 = run(&rig(Mode::XFtl), &cfg(5));
        let r4 = run(
            &rig(Mode::XFtl),
            &FioConfig {
                queue_depth: 4,
                ..cfg(5)
            },
        );
        assert!(
            r4.iops > r1.iops,
            "queue depth 4 should beat depth 1 ({} vs {})",
            r4.iops,
            r1.iops
        );
    }

    #[test]
    fn pipelined_run_stays_durable() {
        // Draining the ring must leave everything consistent; re-reads see
        // the last written image.
        let r = rig(Mode::XFtl);
        let res = run(
            &r,
            &FioConfig {
                queue_depth: 8,
                ..cfg(1)
            },
        );
        assert!(res.fsyncs > 0);
        r.fs.borrow_mut().sync_all().expect("sync_all");
    }

    #[test]
    fn multiple_jobs_interleave() {
        let r = rig(Mode::XFtl);
        let res = run(&r, &FioConfig { jobs: 4, ..cfg(5) });
        assert!(res.writes > 4);
        assert_eq!(r.fs.borrow().list().len(), 4, "one file per job");
        assert!(res.fsyncs > 0);
    }
}
