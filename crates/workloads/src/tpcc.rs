//! TPC-C benchmark (§6.3.3, Tables 3–4), DBT2-style.
//!
//! All five transaction types are implemented against the SQL engine. The
//! paper runs 10 warehouses through SQLite with a single connection (the
//! locking granularity of SQLite is the whole file); the default scale
//! here is smaller so the database fits a simulated drive comfortably —
//! the WAL-vs-X-FTL ratios are driven by the transaction mix, not the row
//! counts. Composite integer keys encode (warehouse, district, ...) so
//! every hot path is a rowid lookup or rowid-range scan, as SQLite's
//! planner would achieve with its integer primary keys.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xftl_db::{Connection, Value};
use xftl_flash::SimClock;
use xftl_flash::SECOND;
use xftl_ftl::BlockDevice;

/// Host CPU time charged per SQL statement (SQLite parse + VM execution
/// on the paper's Core i7 host). Storage latencies dwarf this for write
/// transactions; it is what bounds the read-only mixes (Table 4's
/// selection-only and join-only rows).
pub const CPU_STMT_NS: u64 = 70_000;
/// Extra host CPU time for the Stock-Level nested-loop join.
pub const CPU_JOIN_NS: u64 = 1_400_000;

/// Scale parameters (the paper: 10 warehouses via DBT2).
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct TpccScale {
    pub warehouses: i64,
    pub districts_per_warehouse: i64,
    pub customers_per_district: i64,
    pub items: i64,
    /// Orders pre-loaded per district (one third stay undelivered).
    pub initial_orders: i64,
}

impl Default for TpccScale {
    fn default() -> Self {
        TpccScale {
            warehouses: 2,
            districts_per_warehouse: 10,
            customers_per_district: 30,
            items: 1_000,
            initial_orders: 30,
        }
    }
}

impl TpccScale {
    fn d_key(&self, w: i64, d: i64) -> i64 {
        w * 100 + d
    }
    fn c_key(&self, w: i64, d: i64, c: i64) -> i64 {
        self.d_key(w, d) * 100_000 + c
    }
    fn o_key(&self, w: i64, d: i64, o: i64) -> i64 {
        self.d_key(w, d) * 10_000_000 + o
    }
    fn s_key(&self, w: i64, i: i64) -> i64 {
        w * 1_000_000 + i
    }
}

/// Transaction-type percentages (Table 3 rows).
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct TpccMix {
    pub delivery: u8,
    pub order_status: u8,
    pub payment: u8,
    pub stock_level: u8,
    pub new_order: u8,
}

/// Table 3: write-intensive.
pub const WRITE_INTENSIVE: TpccMix = TpccMix {
    delivery: 4,
    order_status: 4,
    payment: 43,
    stock_level: 4,
    new_order: 45,
};
/// Table 3: read-intensive.
pub const READ_INTENSIVE: TpccMix = TpccMix {
    delivery: 0,
    order_status: 50,
    payment: 0,
    stock_level: 45,
    new_order: 5,
};
/// Table 3: selection-only (100 % Order-Status).
pub const SELECTION_ONLY: TpccMix = TpccMix {
    delivery: 0,
    order_status: 100,
    payment: 0,
    stock_level: 0,
    new_order: 0,
};
/// Table 3: join-only (100 % Stock-Level).
pub const JOIN_ONLY: TpccMix = TpccMix {
    delivery: 0,
    order_status: 0,
    payment: 0,
    stock_level: 100,
    new_order: 0,
};

/// Creates the TPC-C schema and loads the initial population.
pub fn load<D: BlockDevice>(db: &mut Connection<D>, scale: &TpccScale, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for ddl in [
        "CREATE TABLE warehouse (w_id INTEGER PRIMARY KEY, w_name TEXT, w_ytd REAL)",
        "CREATE TABLE district (d_key INTEGER PRIMARY KEY, d_w_id INT, d_id INT, \
         d_ytd REAL, d_next_o_id INT)",
        "CREATE TABLE customer (c_key INTEGER PRIMARY KEY, c_w_id INT, c_d_id INT, c_id INT, \
         c_balance REAL, c_ytd_payment REAL, c_payment_cnt INT, c_data TEXT)",
        "CREATE TABLE history (h_id INTEGER PRIMARY KEY, h_c_key INT, h_amount REAL, h_data TEXT)",
        "CREATE TABLE orders (o_key INTEGER PRIMARY KEY, o_d_key INT, o_c_key INT, \
         o_carrier_id INT, o_ol_cnt INT)",
        "CREATE INDEX ix_orders_cust ON orders (o_c_key)",
        "CREATE TABLE new_order (no_o_key INTEGER PRIMARY KEY)",
        "CREATE TABLE order_line (ol_key INTEGER PRIMARY KEY, ol_o_key INT, ol_i_id INT, \
         ol_qty INT, ol_amount REAL, ol_dist_info TEXT)",
        "CREATE TABLE item (i_id INTEGER PRIMARY KEY, i_name TEXT, i_price REAL)",
        "CREATE TABLE stock (s_key INTEGER PRIMARY KEY, s_w_id INT, s_i_id INT, \
         s_quantity INT, s_ytd INT, s_order_cnt INT)",
    ] {
        db.execute(ddl).expect("tpcc ddl");
    }
    // Items.
    db.execute("BEGIN").expect("begin");
    for i in 1..=scale.items {
        db.execute_with(
            "INSERT INTO item VALUES (?, ?, ?)",
            &[
                Value::Int(i),
                Value::Text(format!("item-{i}")),
                Value::Real(rng.gen_range(1.0..100.0)),
            ],
        )
        .expect("item");
        if i % 500 == 0 {
            db.execute("COMMIT").expect("commit");
            db.execute("BEGIN").expect("begin");
        }
    }
    db.execute("COMMIT").expect("commit");
    for w in 1..=scale.warehouses {
        db.execute("BEGIN").expect("begin");
        db.execute_with(
            "INSERT INTO warehouse VALUES (?, ?, 0.0)",
            &[Value::Int(w), Value::Text(format!("wh-{w}"))],
        )
        .expect("warehouse");
        for i in 1..=scale.items {
            db.execute_with(
                "INSERT INTO stock VALUES (?, ?, ?, ?, 0, 0)",
                &[
                    Value::Int(scale.s_key(w, i)),
                    Value::Int(w),
                    Value::Int(i),
                    Value::Int(rng.gen_range(10..100)),
                ],
            )
            .expect("stock");
            if i % 500 == 0 {
                db.execute("COMMIT").expect("commit");
                db.execute("BEGIN").expect("begin");
            }
        }
        db.execute("COMMIT").expect("commit");
        for d in 1..=scale.districts_per_warehouse {
            db.execute("BEGIN").expect("begin");
            db.execute_with(
                "INSERT INTO district VALUES (?, ?, ?, 0.0, ?)",
                &[
                    Value::Int(scale.d_key(w, d)),
                    Value::Int(w),
                    Value::Int(d),
                    Value::Int(scale.initial_orders + 1),
                ],
            )
            .expect("district");
            for c in 1..=scale.customers_per_district {
                db.execute_with(
                    "INSERT INTO customer VALUES (?, ?, ?, ?, 0.0, 0.0, 0, ?)",
                    &[
                        Value::Int(scale.c_key(w, d, c)),
                        Value::Int(w),
                        Value::Int(d),
                        Value::Int(c),
                        Value::Text("customer-data".into()),
                    ],
                )
                .expect("customer");
            }
            // Initial orders; the last third are undelivered (new_order).
            for o in 1..=scale.initial_orders {
                let c = rng.gen_range(1..=scale.customers_per_district);
                let ol_cnt = rng.gen_range(5..=15i64);
                let okey = scale.o_key(w, d, o);
                db.execute_with(
                    "INSERT INTO orders VALUES (?, ?, ?, ?, ?)",
                    &[
                        Value::Int(okey),
                        Value::Int(scale.d_key(w, d)),
                        Value::Int(scale.c_key(w, d, c)),
                        if o <= scale.initial_orders * 2 / 3 {
                            Value::Int(rng.gen_range(1..=10))
                        } else {
                            Value::Null
                        },
                        Value::Int(ol_cnt),
                    ],
                )
                .expect("order");
                if o > scale.initial_orders * 2 / 3 {
                    db.execute_with("INSERT INTO new_order VALUES (?)", &[Value::Int(okey)])
                        .expect("new_order");
                }
                for l in 1..=ol_cnt {
                    let i = rng.gen_range(1..=scale.items);
                    db.execute_with(
                        "INSERT INTO order_line VALUES (?, ?, ?, ?, ?, 'dist-info')",
                        &[
                            Value::Int(okey * 100 + l),
                            Value::Int(okey),
                            Value::Int(i),
                            Value::Int(rng.gen_range(1..=10)),
                            Value::Real(rng.gen_range(1.0..100.0)),
                        ],
                    )
                    .expect("order_line");
                }
            }
            db.execute("COMMIT").expect("commit");
        }
    }
}

/// One driver holding per-district order counters.
pub struct TpccDriver {
    scale: TpccScale,
    rng: StdRng,
    /// Next order id per (warehouse, district).
    next_o_id: Vec<i64>,
    /// Oldest undelivered order per (warehouse, district).
    oldest_undelivered: Vec<i64>,
    /// Shared clock, charged [`CPU_STMT_NS`] per statement.
    clock: Option<SimClock>,
}

impl TpccDriver {
    /// Builds a driver for a freshly-loaded database.
    pub fn new(scale: TpccScale, seed: u64) -> Self {
        let slots = (scale.warehouses * scale.districts_per_warehouse) as usize;
        TpccDriver {
            rng: StdRng::seed_from_u64(seed),
            next_o_id: vec![scale.initial_orders + 1; slots],
            oldest_undelivered: vec![scale.initial_orders * 2 / 3 + 1; slots],
            scale,
            clock: None,
        }
    }

    /// Attaches the clock used for host-CPU accounting.
    pub fn with_clock(mut self, clock: SimClock) -> Self {
        self.clock = Some(clock);
        self
    }

    fn cpu(&self, statements: u64) {
        if let Some(c) = &self.clock {
            c.advance(statements * CPU_STMT_NS);
        }
    }

    fn cpu_join(&self) {
        if let Some(c) = &self.clock {
            c.advance(CPU_JOIN_NS);
        }
    }

    fn slot(&self, w: i64, d: i64) -> usize {
        ((w - 1) * self.scale.districts_per_warehouse + (d - 1)) as usize
    }

    fn pick_wd(&mut self) -> (i64, i64) {
        (
            self.rng.gen_range(1..=self.scale.warehouses),
            self.rng.gen_range(1..=self.scale.districts_per_warehouse),
        )
    }

    /// New-Order: the tpmC metric transaction.
    pub fn new_order<D: BlockDevice>(&mut self, db: &mut Connection<D>) {
        self.cpu(3);
        let (w, d) = self.pick_wd();
        let c = self.rng.gen_range(1..=self.scale.customers_per_district);
        let sc = self.scale;
        db.execute("BEGIN").expect("begin");
        let slot = self.slot(w, d);
        let o_id = self.next_o_id[slot];
        self.next_o_id[slot] += 1;
        db.execute_with(
            "UPDATE district SET d_next_o_id = ? WHERE d_key = ?",
            &[Value::Int(o_id + 1), Value::Int(sc.d_key(w, d))],
        )
        .expect("district bump");
        let okey = sc.o_key(w, d, o_id);
        let ol_cnt = self.rng.gen_range(5..=15i64);
        db.execute_with(
            "INSERT INTO orders VALUES (?, ?, ?, NULL, ?)",
            &[
                Value::Int(okey),
                Value::Int(sc.d_key(w, d)),
                Value::Int(sc.c_key(w, d, c)),
                Value::Int(ol_cnt),
            ],
        )
        .expect("order insert");
        db.execute_with("INSERT INTO new_order VALUES (?)", &[Value::Int(okey)])
            .expect("new_order insert");
        self.cpu(4 * ol_cnt as u64);
        for l in 1..=ol_cnt {
            let i = self.rng.gen_range(1..=sc.items);
            let price = db
                .query_with("SELECT i_price FROM item WHERE i_id = ?", &[Value::Int(i)])
                .expect("item read")[0][0]
                .as_f64()
                .expect("price");
            let skey = sc.s_key(w, i);
            let qty_rows = db
                .query_with(
                    "SELECT s_quantity FROM stock WHERE s_key = ?",
                    &[Value::Int(skey)],
                )
                .expect("stock read");
            let qty = qty_rows[0][0].as_i64().expect("qty");
            let order_qty = self.rng.gen_range(1..=10i64);
            let new_qty = if qty - order_qty >= 10 {
                qty - order_qty
            } else {
                qty - order_qty + 91
            };
            db.execute_with(
                "UPDATE stock SET s_quantity = ?, s_ytd = s_ytd + ?, \
                 s_order_cnt = s_order_cnt + 1 WHERE s_key = ?",
                &[Value::Int(new_qty), Value::Int(order_qty), Value::Int(skey)],
            )
            .expect("stock update");
            db.execute_with(
                "INSERT INTO order_line VALUES (?, ?, ?, ?, ?, 'dist-info')",
                &[
                    Value::Int(okey * 100 + l),
                    Value::Int(okey),
                    Value::Int(i),
                    Value::Int(order_qty),
                    Value::Real(price * order_qty as f64),
                ],
            )
            .expect("order_line insert");
        }
        db.execute("COMMIT").expect("commit");
    }

    /// Payment.
    pub fn payment<D: BlockDevice>(&mut self, db: &mut Connection<D>) {
        self.cpu(6);
        let (w, d) = self.pick_wd();
        let c = self.rng.gen_range(1..=self.scale.customers_per_district);
        let amount = self.rng.gen_range(1.0..5_000.0);
        let sc = self.scale;
        db.execute("BEGIN").expect("begin");
        db.execute_with(
            "UPDATE warehouse SET w_ytd = w_ytd + ? WHERE w_id = ?",
            &[Value::Real(amount), Value::Int(w)],
        )
        .expect("warehouse update");
        db.execute_with(
            "UPDATE district SET d_ytd = d_ytd + ? WHERE d_key = ?",
            &[Value::Real(amount), Value::Int(sc.d_key(w, d))],
        )
        .expect("district update");
        db.execute_with(
            "UPDATE customer SET c_balance = c_balance - ?, c_ytd_payment = c_ytd_payment + ?, \
             c_payment_cnt = c_payment_cnt + 1 WHERE c_key = ?",
            &[
                Value::Real(amount),
                Value::Real(amount),
                Value::Int(sc.c_key(w, d, c)),
            ],
        )
        .expect("customer update");
        db.execute_with(
            "INSERT INTO history (h_c_key, h_amount, h_data) VALUES (?, ?, 'payment')",
            &[Value::Int(sc.c_key(w, d, c)), Value::Real(amount)],
        )
        .expect("history insert");
        db.execute("COMMIT").expect("commit");
    }

    /// Order-Status (read-only selection).
    pub fn order_status<D: BlockDevice>(&mut self, db: &mut Connection<D>) {
        self.cpu(3);
        let (w, d) = self.pick_wd();
        let c = self.rng.gen_range(1..=self.scale.customers_per_district);
        let ckey = self.scale.c_key(w, d, c);
        db.query_with(
            "SELECT c_balance, c_payment_cnt FROM customer WHERE c_key = ?",
            &[Value::Int(ckey)],
        )
        .expect("customer read");
        let last = db
            .query_with(
                "SELECT MAX(o_key) FROM orders WHERE o_c_key = ?",
                &[Value::Int(ckey)],
            )
            .expect("last order");
        if let Some(okey) = last.first().and_then(|r| r[0].as_i64()) {
            db.query_with(
                "SELECT ol_i_id, ol_qty, ol_amount FROM order_line \
                 WHERE ol_key >= ? AND ol_key <= ?",
                &[Value::Int(okey * 100), Value::Int(okey * 100 + 99)],
            )
            .expect("order lines");
        }
    }

    /// Delivery: delivers the oldest undelivered order of each district.
    pub fn delivery<D: BlockDevice>(&mut self, db: &mut Connection<D>) {
        self.cpu(5 * self.scale.districts_per_warehouse as u64 + 2);
        let w = self.rng.gen_range(1..=self.scale.warehouses);
        let carrier = self.rng.gen_range(1..=10i64);
        let sc = self.scale;
        db.execute("BEGIN").expect("begin");
        for d in 1..=sc.districts_per_warehouse {
            let slot = self.slot(w, d);
            let o_id = self.oldest_undelivered[slot];
            if o_id >= self.next_o_id[slot] {
                continue; // nothing undelivered in this district
            }
            self.oldest_undelivered[slot] += 1;
            let okey = sc.o_key(w, d, o_id);
            let deleted = db
                .execute_with(
                    "DELETE FROM new_order WHERE no_o_key = ?",
                    &[Value::Int(okey)],
                )
                .expect("new_order delete")
                .affected();
            if deleted == 0 {
                continue;
            }
            db.execute_with(
                "UPDATE orders SET o_carrier_id = ? WHERE o_key = ?",
                &[Value::Int(carrier), Value::Int(okey)],
            )
            .expect("order update");
            let total = db
                .query_with(
                    "SELECT SUM(ol_amount) FROM order_line WHERE ol_key >= ? AND ol_key <= ?",
                    &[Value::Int(okey * 100), Value::Int(okey * 100 + 99)],
                )
                .expect("sum lines")[0][0]
                .as_f64()
                .unwrap_or(0.0);
            let ckey = db
                .query_with(
                    "SELECT o_c_key FROM orders WHERE o_key = ?",
                    &[Value::Int(okey)],
                )
                .expect("order read")[0][0]
                .as_i64()
                .expect("customer key");
            db.execute_with(
                "UPDATE customer SET c_balance = c_balance + ? WHERE c_key = ?",
                &[Value::Real(total), Value::Int(ckey)],
            )
            .expect("customer credit");
        }
        db.execute("COMMIT").expect("commit");
    }

    /// Stock-Level (the join transaction).
    pub fn stock_level<D: BlockDevice>(&mut self, db: &mut Connection<D>) {
        self.cpu(1);
        self.cpu_join();
        let (w, d) = self.pick_wd();
        let threshold = self.rng.gen_range(10..=20i64);
        let next = self.next_o_id[self.slot(w, d)];
        let from = (next - 20).max(1);
        let lo = self.scale.o_key(w, d, from) * 100;
        let hi = self.scale.o_key(w, d, next) * 100;
        db.query_with(
            "SELECT COUNT(DISTINCT ol.ol_i_id) FROM order_line ol \
             JOIN stock s ON ol.ol_i_id = s.s_i_id \
             WHERE ol.ol_key >= ? AND ol.ol_key < ? AND s.s_w_id = ? AND s.s_quantity < ?",
            &[
                Value::Int(lo),
                Value::Int(hi),
                Value::Int(w),
                Value::Int(threshold),
            ],
        )
        .expect("stock level join");
    }

    /// Runs one transaction drawn from the mix.
    pub fn run_one<D: BlockDevice>(&mut self, db: &mut Connection<D>, mix: &TpccMix) {
        let p = self.rng.gen_range(0..100u32);
        let d = mix.delivery as u32;
        let os = d + mix.order_status as u32;
        let pay = os + mix.payment as u32;
        let sl = pay + mix.stock_level as u32;
        if p < d {
            self.delivery(db);
        } else if p < os {
            self.order_status(db);
        } else if p < pay {
            self.payment(db);
        } else if p < sl {
            self.stock_level(db);
        } else {
            self.new_order(db);
        }
    }
}

/// Result of one mix run.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct TpccResult {
    pub txns: usize,
    pub elapsed_ns: u64,
    /// Transactions per simulated minute (the paper's Table 4 metric).
    pub tpm: f64,
}

/// Runs `txns` transactions of the given mix, returning throughput in
/// transactions per simulated minute.
pub fn run_mix<D: BlockDevice>(
    db: &mut Connection<D>,
    clock: &xftl_flash::SimClock,
    driver: &mut TpccDriver,
    mix: &TpccMix,
    txns: usize,
) -> TpccResult {
    let t0 = clock.now();
    for _ in 0..txns {
        driver.run_one(db, mix);
    }
    let elapsed_ns = clock.now() - t0;
    let minutes = elapsed_ns as f64 / (60.0 * SECOND as f64);
    TpccResult {
        txns,
        elapsed_ns,
        tpm: txns as f64 / minutes.max(1e-12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rig::{Mode, Rig, RigConfig};

    fn tiny_scale() -> TpccScale {
        TpccScale {
            warehouses: 1,
            districts_per_warehouse: 2,
            customers_per_district: 5,
            items: 50,
            initial_orders: 6,
        }
    }

    fn rig_cfg(mode: Mode) -> RigConfig {
        RigConfig {
            blocks: 96,
            logical_pages: 8_000,
            ..RigConfig::small(mode)
        }
    }

    #[test]
    fn mixes_sum_to_100() {
        for m in [WRITE_INTENSIVE, READ_INTENSIVE, SELECTION_ONLY, JOIN_ONLY] {
            assert_eq!(
                m.delivery as u32
                    + m.order_status as u32
                    + m.payment as u32
                    + m.stock_level as u32
                    + m.new_order as u32,
                100
            );
        }
    }

    #[test]
    fn loads_and_runs_every_transaction_type() {
        let rig = Rig::build(rig_cfg(Mode::XFtl));
        let mut db = rig.open_db("tpcc.db");
        let scale = tiny_scale();
        load(&mut db, &scale, 3);
        let mut driver = TpccDriver::new(scale, 4);
        driver.new_order(&mut db);
        driver.payment(&mut db);
        driver.order_status(&mut db);
        driver.delivery(&mut db);
        driver.stock_level(&mut db);
        // Consistency spot-checks.
        let orders = db.query("SELECT COUNT(*) FROM orders").unwrap()[0][0]
            .as_i64()
            .unwrap();
        assert!(orders > scale.initial_orders * 2, "orders grew");
        let hist = db.query("SELECT COUNT(*) FROM history").unwrap()[0][0]
            .as_i64()
            .unwrap();
        assert_eq!(hist, 1, "one payment recorded");
    }

    #[test]
    fn new_order_preserves_order_line_counts() {
        let rig = Rig::build(rig_cfg(Mode::Wal));
        let mut db = rig.open_db("tpcc.db");
        let scale = tiny_scale();
        load(&mut db, &scale, 5);
        let before = db.query("SELECT COUNT(*) FROM order_line").unwrap()[0][0]
            .as_i64()
            .unwrap();
        let mut driver = TpccDriver::new(scale, 6);
        driver.new_order(&mut db);
        let after = db.query("SELECT COUNT(*) FROM order_line").unwrap()[0][0]
            .as_i64()
            .unwrap();
        let cnt = db
            .query("SELECT o_ol_cnt FROM orders ORDER BY o_key DESC LIMIT 1")
            .unwrap()[0][0]
            .as_i64()
            .unwrap();
        assert_eq!(after - before, cnt, "order_line rows match o_ol_cnt");
    }

    #[test]
    fn mix_run_reports_throughput() {
        let rig = Rig::build(rig_cfg(Mode::XFtl));
        let mut db = rig.open_db("tpcc.db");
        let scale = tiny_scale();
        load(&mut db, &scale, 7);
        let mut driver = TpccDriver::new(scale, 8);
        let r = run_mix(&mut db, &rig.clock, &mut driver, &WRITE_INTENSIVE, 20);
        assert_eq!(r.txns, 20);
        assert!(r.tpm > 0.0);
    }

    #[test]
    fn read_mixes_write_nothing() {
        let rig = Rig::build(rig_cfg(Mode::Wal));
        let mut db = rig.open_db("tpcc.db");
        let scale = tiny_scale();
        load(&mut db, &scale, 9);
        db.reset_stats();
        let mut driver = TpccDriver::new(scale, 10);
        run_mix(&mut db, &rig.clock, &mut driver, &SELECTION_ONLY, 10);
        run_mix(&mut db, &rig.clock, &mut driver, &JOIN_ONLY, 10);
        assert_eq!(db.pager_stats().db_writes, 0);
        assert_eq!(db.pager_stats().journal_writes, 0);
        assert_eq!(db.pager_stats().fsyncs, 0);
    }
}
