//! # xftl-workloads — the paper's workload generators and experiment rig
//!
//! * [`rig`] — assembles the full stack (flash → FTL → SATA → FS → DB)
//!   for one experimental configuration, with crash/recover plumbing and
//!   cross-layer statistics snapshots.
//! * [`synthetic`] — the partsupp update workload of §6.3.1.
//! * [`android`] — statement-stream synthesizers matching Table 2's
//!   published Android trace statistics.
//! * [`tpcc`] — TPC-C with the paper's four transaction mixes.
//! * [`fio`] — the random-write file-system benchmark of §6.3.4.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Workload drivers are experiment code, not device firmware: a failed SQL
// statement or device command means the experiment itself is broken, and
// panicking with the error is the desired failure mode — the same
// rationale clippy.toml applies to tests. The simulator stack (flash,
// ftl, core, fs, db) keeps the strict wall.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod android;
pub mod fio;
pub mod rig;
pub mod synthetic;
pub mod tpcc;

pub use rig::{
    concurrent_fill, Aging, AnyDev, ConcurrentOutcome, ConcurrentPlan, Mode, Profile, Rig,
    RigConfig, Snapshot,
};
