//! Android smartphone trace synthesizers (§6.2, Table 2).
//!
//! The paper replays SQL traces captured from four real applications (RL
//! Benchmark, Gmail, Facebook, the stock web browser). The traces
//! themselves are not published; what *is* published is their structure —
//! Table 2: number of database files, tables, and statements of each kind,
//! plus the average number of updated pages per transaction. These
//! generators synthesize statement streams matching those published
//! statistics exactly (at scale 1.0), with per-application touches the
//! paper calls out: Facebook stores thumbnail blobs, the browser is
//! join-heavy, Gmail is insert-heavy.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xftl_db::{Connection, Value};

use crate::rig::Rig;

/// Published per-trace statistics (Table 2).
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)] // fields mirror Table 2's row labels
pub struct TraceSpec {
    pub name: &'static str,
    pub db_files: usize,
    pub tables: usize,
    pub selects: usize,
    pub joins: usize,
    pub inserts: usize,
    pub updates: usize,
    pub deletes: usize,
    pub ddl: usize,
    /// Published average updated pages per transaction (for Table 2).
    pub paper_pages_per_txn: f64,
    /// Write statements grouped per transaction by the synthesizer.
    pub txn_batch: usize,
    /// Blob payload bytes attached to a fraction of inserts (0 = none).
    pub blob_bytes: usize,
    /// Text payload bytes for ordinary inserts.
    pub text_bytes: usize,
}

/// RL Benchmark: write-intensive single-file microbenchmark.
pub const RL_BENCHMARK: TraceSpec = TraceSpec {
    name: "RL Benchmark",
    db_files: 1,
    tables: 3,
    selects: 5_200,
    joins: 0,
    inserts: 51_002,
    updates: 26_000,
    deletes: 2,
    ddl: 30,
    paper_pages_per_txn: 3.31,
    txn_batch: 2,
    blob_bytes: 0,
    text_bytes: 60,
};

/// Gmail: insert-heavy mail store across 2 files / 31 tables.
pub const GMAIL: TraceSpec = TraceSpec {
    name: "Gmail",
    db_files: 2,
    tables: 31,
    selects: 3_540,
    joins: 1_381,
    inserts: 7_288,
    updates: 889,
    deletes: 2_357,
    ddl: 78,
    paper_pages_per_txn: 4.93,
    txn_batch: 3,
    blob_bytes: 0,
    text_bytes: 400,
};

/// Facebook: 11 files, thumbnails stored as blobs.
pub const FACEBOOK: TraceSpec = TraceSpec {
    name: "Facebook",
    db_files: 11,
    tables: 72,
    selects: 1_687,
    joins: 28,
    inserts: 2_403,
    updates: 430,
    deletes: 117,
    ddl: 259,
    paper_pages_per_txn: 2.29,
    txn_batch: 1,
    blob_bytes: 4_096,
    text_bytes: 150,
};

/// Web browser: history/cookie churn, join-heavy.
pub const WEB_BROWSER: TraceSpec = TraceSpec {
    name: "WebBrowser",
    db_files: 6,
    tables: 26,
    selects: 1_954,
    joins: 1_351,
    inserts: 1_261,
    updates: 1_813,
    deletes: 1_373,
    ddl: 177,
    paper_pages_per_txn: 2.95,
    txn_batch: 1,
    blob_bytes: 0,
    text_bytes: 120,
};

/// All four traces, in the paper's presentation order.
pub const ALL_TRACES: [TraceSpec; 4] = [RL_BENCHMARK, GMAIL, FACEBOOK, WEB_BROWSER];

impl TraceSpec {
    /// Total statement count (the paper's "# of queries").
    pub fn total_queries(&self) -> usize {
        self.selects + self.joins + self.inserts + self.updates + self.deletes + self.ddl
    }
}

/// One replayable operation.
#[derive(Debug, Clone)]
#[allow(missing_docs)]
pub enum TraceOp {
    Begin(usize),
    Commit(usize),
    Stmt {
        file: usize,
        sql: String,
        params: Vec<Value>,
    },
}

/// Result of replaying one trace.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct TraceResult {
    pub elapsed_ns: u64,
    pub statements: usize,
    pub write_txns: usize,
    /// Measured DB pages written per write transaction.
    pub measured_pages_per_txn: f64,
}

/// Synthesizes a statement stream matching `spec`'s statistics, scaled by
/// `scale` (1.0 = the full published counts).
pub fn synthesize(spec: &TraceSpec, scale: f64, seed: u64) -> Vec<TraceOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let sc = |n: usize| ((n as f64 * scale).round() as usize).max(if n > 0 { 1 } else { 0 });
    let tables_per_file = spec.tables.div_ceil(spec.db_files);
    let mut ops = Vec::new();

    // DDL phase: create every table, then spend the remaining DDL budget
    // on indexes (RL Benchmark's trace also drops a table at the end; the
    // two DELETE statements there are modelled as deletes).
    let mut table_names: Vec<(usize, String)> = Vec::new();
    for t in 0..spec.tables {
        let file = t / tables_per_file;
        let name = format!("t{file}_{t}");
        ops.push(TraceOp::Stmt {
            file,
            sql: format!("CREATE TABLE {name} (id INTEGER PRIMARY KEY, k INT, s TEXT, b BLOB)"),
            params: vec![],
        });
        table_names.push((file, name));
    }
    // One real index per table; the rest of the DDL budget replays as
    // idempotent re-issues (the traces' PRAGMA/DDL chatter does not keep
    // adding indexes).
    let index_budget = spec.ddl.saturating_sub(spec.tables);
    for i in 0..index_budget {
        let (file, name) = &table_names[i % table_names.len()];
        ops.push(TraceOp::Stmt {
            file: *file,
            sql: format!("CREATE INDEX IF NOT EXISTS ix_{name} ON {name} (k)"),
            params: vec![],
        });
    }

    // DML phase: interleave statement kinds in proportion to the remaining
    // budget, grouping consecutive writes into transactions of txn_batch.
    #[derive(Clone, Copy, PartialEq)]
    enum Kind {
        Select,
        Join,
        Insert,
        Update,
        Delete,
    }
    let mut remaining = [
        (Kind::Select, sc(spec.selects)),
        (Kind::Join, sc(spec.joins)),
        (Kind::Insert, sc(spec.inserts)),
        (Kind::Update, sc(spec.updates)),
        (Kind::Delete, sc(spec.deletes)),
    ];
    // Per-table live-row tracking so updates/deletes hit real rows.
    let mut next_id: Vec<i64> = vec![1; table_names.len()];
    let mut low_id: Vec<i64> = vec![1; table_names.len()];
    let text: String = "lorem ipsum dolor sit amet "
        .chars()
        .cycle()
        .take(spec.text_bytes)
        .collect();

    let mut open_txn: Option<(usize, usize)> = None; // (file, writes so far)
    loop {
        let total: usize = remaining.iter().map(|&(_, n)| n).sum();
        if total == 0 {
            break;
        }
        let mut pick = rng.gen_range(0..total);
        let kind = remaining
            .iter_mut()
            .find_map(|(k, n)| {
                if *n == 0 {
                    return None;
                }
                if pick < *n {
                    *n -= 1;
                    Some(*k)
                } else {
                    pick -= *n;
                    None
                }
            })
            .expect("non-empty remaining");
        let ti = rng.gen_range(0..table_names.len());
        let (file, name) = table_names[ti].clone();
        let is_write = matches!(kind, Kind::Insert | Kind::Update | Kind::Delete);
        if is_write {
            match open_txn {
                Some((f, _)) if f != file => {
                    ops.push(TraceOp::Commit(f));
                    ops.push(TraceOp::Begin(file));
                    open_txn = Some((file, 0));
                }
                None => {
                    ops.push(TraceOp::Begin(file));
                    open_txn = Some((file, 0));
                }
                _ => {}
            }
        } else if let Some((f, _)) = open_txn.take() {
            // Reads run outside write transactions, as SQLite's autocommit
            // reads would between app transactions.
            ops.push(TraceOp::Commit(f));
        }
        match kind {
            Kind::Select => ops.push(TraceOp::Stmt {
                file,
                sql: format!("SELECT s FROM {name} WHERE id = ?"),
                params: vec![Value::Int(
                    rng.gen_range(low_id[ti]..next_id[ti].max(low_id[ti] + 1)),
                )],
            }),
            Kind::Join => {
                // Join with a sibling table in the same file.
                let tj = table_names
                    .iter()
                    .enumerate()
                    .filter(|(j, (f, _))| *f == file && *j != ti)
                    .map(|(j, _)| j)
                    .next()
                    .unwrap_or(ti);
                let other = &table_names[tj].1;
                ops.push(TraceOp::Stmt {
                    file,
                    sql: format!(
                        "SELECT a.id FROM {name} a JOIN {other} b ON a.k = b.k WHERE a.id = ?"
                    ),
                    params: vec![Value::Int(
                        rng.gen_range(low_id[ti]..next_id[ti].max(low_id[ti] + 1)),
                    )],
                });
            }
            Kind::Insert => {
                let use_blob = spec.blob_bytes > 0 && rng.gen_bool(0.3);
                let blob = if use_blob {
                    Value::Blob(vec![0xAB; spec.blob_bytes])
                } else {
                    Value::Null
                };
                ops.push(TraceOp::Stmt {
                    file,
                    sql: format!("INSERT INTO {name} (k, s, b) VALUES (?, ?, ?)"),
                    params: vec![
                        Value::Int(rng.gen_range(0..1000)),
                        Value::Text(text.clone()),
                        blob,
                    ],
                });
                next_id[ti] += 1;
            }
            Kind::Update => ops.push(TraceOp::Stmt {
                file,
                sql: format!("UPDATE {name} SET s = ? WHERE id = ?"),
                params: vec![
                    Value::Text(text.clone()),
                    Value::Int(rng.gen_range(low_id[ti]..next_id[ti].max(low_id[ti] + 1))),
                ],
            }),
            Kind::Delete => {
                let id = low_id[ti];
                if id < next_id[ti] {
                    low_id[ti] += 1;
                }
                ops.push(TraceOp::Stmt {
                    file,
                    sql: format!("DELETE FROM {name} WHERE id = ?"),
                    params: vec![Value::Int(id)],
                });
            }
        }
        if is_write {
            if let Some((f, w)) = &mut open_txn {
                *w += 1;
                if *w >= spec.txn_batch {
                    ops.push(TraceOp::Commit(*f));
                    open_txn = None;
                }
            }
        }
    }
    if let Some((f, _)) = open_txn {
        ops.push(TraceOp::Commit(f));
    }
    ops
}

/// Host CPU time charged per replayed statement.
const CPU_STMT_NS: u64 = 70_000;

/// Replays a synthesized trace on the rig, one connection per DB file.
pub fn replay(rig: &Rig, spec: &TraceSpec, ops: &[TraceOp]) -> TraceResult {
    let mut dbs: Vec<Connection<crate::rig::AnyDev>> = (0..spec.db_files)
        .map(|f| {
            rig.open_db(&format!(
                "{}-{f}.db",
                spec.name.replace(' ', "_").to_lowercase()
            ))
        })
        .collect();
    let t0 = rig.clock.now();
    let mut statements = 0usize;
    let mut write_txns = 0usize;
    for op in ops {
        match op {
            TraceOp::Begin(f) => {
                dbs[*f].execute("BEGIN").expect("begin");
            }
            TraceOp::Commit(f) => {
                dbs[*f].execute("COMMIT").expect("commit");
                write_txns += 1;
            }
            TraceOp::Stmt { file, sql, params } => {
                rig.clock.advance(CPU_STMT_NS);
                dbs[*file]
                    .execute_with(sql, params)
                    .expect("trace statement");
                statements += 1;
            }
        }
    }
    let elapsed_ns = rig.clock.now() - t0;
    // "Updated pages per transaction": the pages each commit ships — WAL
    // frames in WAL mode (checkpoint re-copies excluded), direct DB writes
    // otherwise.
    let pages: u64 = dbs
        .iter()
        .map(|db| {
            let s = db.pager_stats();
            if s.journal_writes > 0 {
                s.journal_writes
            } else {
                s.db_writes
            }
        })
        .sum();
    TraceResult {
        elapsed_ns,
        statements,
        write_txns,
        measured_pages_per_txn: if write_txns > 0 {
            pages as f64 / write_txns as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rig::{Mode, Rig, RigConfig};

    #[test]
    fn specs_match_table2_totals() {
        assert_eq!(RL_BENCHMARK.total_queries(), 82_234);
        assert_eq!(GMAIL.total_queries(), 15_533);
        assert_eq!(FACEBOOK.total_queries(), 4_924);
        assert_eq!(WEB_BROWSER.total_queries(), 7_929);
    }

    #[test]
    fn synthesis_produces_right_statement_counts_at_scale_1() {
        let ops = synthesize(&GMAIL, 1.0, 3);
        let stmts = ops
            .iter()
            .filter(|o| matches!(o, TraceOp::Stmt { .. }))
            .count();
        assert_eq!(stmts, GMAIL.total_queries());
    }

    #[test]
    fn begins_and_commits_are_balanced() {
        let ops = synthesize(&WEB_BROWSER, 0.05, 5);
        let begins = ops
            .iter()
            .filter(|o| matches!(o, TraceOp::Begin(_)))
            .count();
        let commits = ops
            .iter()
            .filter(|o| matches!(o, TraceOp::Commit(_)))
            .count();
        assert_eq!(begins, commits);
        assert!(begins > 0);
    }

    #[test]
    fn small_scale_trace_replays_in_every_mode() {
        for mode in [Mode::Wal, Mode::XFtl] {
            let rig = Rig::build(RigConfig::small(mode));
            let spec = WEB_BROWSER;
            let ops = synthesize(&spec, 0.02, 9);
            let r = replay(&rig, &spec, &ops);
            assert!(r.statements > 100, "{mode:?}");
            assert!(r.elapsed_ns > 0);
            assert!(r.write_txns > 0);
        }
    }

    #[test]
    fn facebook_trace_carries_blobs() {
        let ops = synthesize(&FACEBOOK, 0.05, 11);
        let has_blob = ops.iter().any(|o| match o {
            TraceOp::Stmt { params, .. } => params
                .iter()
                .any(|p| matches!(p, Value::Blob(b) if b.len() >= 4096)),
            _ => false,
        });
        assert!(has_blob, "Facebook inserts must include thumbnail blobs");
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = synthesize(&GMAIL, 0.02, 123);
        let b = synthesize(&GMAIL, 0.02, 123);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (TraceOp::Stmt { sql: s1, .. }, TraceOp::Stmt { sql: s2, .. }) => {
                    assert_eq!(s1, s2);
                }
                (TraceOp::Begin(f1), TraceOp::Begin(f2)) => assert_eq!(f1, f2),
                (TraceOp::Commit(f1), TraceOp::Commit(f2)) => assert_eq!(f1, f2),
                _ => panic!("op kind mismatch"),
            }
        }
    }
}
