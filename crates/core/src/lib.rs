//! # xftl-core — X-FTL, the transactional flash translation layer
//!
//! Reproduction of the primary contribution of *X-FTL: Transactional FTL
//! for SQLite Databases* (Kang, Lee, Moon, Oh, Min — SIGMOD 2013).
//!
//! Flash storage cannot update pages in place, so every FTL already writes
//! out of place and keeps the old version around until garbage collection.
//! X-FTL turns that weakness into transactional atomicity: a small
//! *transactional L2P table* ([`xl2p::Xl2pTable`]) tracks the new versions
//! written by each in-flight transaction and pins both versions against
//! GC; `commit` atomically publishes all of a transaction's pages with one
//! small table write, and `abort` (or a crash) discards them with no flash
//! writes at all. SQLite can then run with journaling `OFF` and a file
//! system can skip data journaling, each halving its write volume.
//!
//! ```
//! use xftl_core::XFtl;
//! use xftl_flash::{FlashChip, FlashConfig, SimClock};
//! use xftl_ftl::{BlockDevice, TxBlockDevice};
//!
//! let clock = SimClock::new();
//! let chip = FlashChip::new(FlashConfig::tiny(16), clock.clone());
//! let mut dev = XFtl::format(chip, 32).unwrap();
//!
//! let old = vec![1u8; dev.page_size()];
//! let new = vec![2u8; dev.page_size()];
//! dev.write(0, &old).unwrap();
//!
//! // Transaction 7 updates page 0; nobody else sees it yet.
//! dev.write_tx(7, 0, &new).unwrap();
//! let mut buf = vec![0u8; dev.page_size()];
//! dev.read(0, &mut buf).unwrap();
//! assert_eq!(buf, old);
//!
//! // One commit command makes it durable and visible — atomically.
//! dev.commit(7).unwrap();
//! dev.read(0, &mut buf).unwrap();
//! assert_eq!(buf, new);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod xftl;
pub mod xl2p;

pub use xftl::{RecoveryBreakdown, XFtl, DEFAULT_XL2P_CAPACITY};
pub use xl2p::{Entry, TxStatus, Xl2pError, Xl2pTable};
