//! The X-FTL device: a page-mapping FTL with transactional atomicity.
//!
//! `XFtl` implements the full extended command set of §4.2 — `read(tid,p)`,
//! `write(tid,p)`, `commit(tid)`, `abort(tid)` — on top of the shared FTL
//! engine. Because the engine is copy-on-write anyway, transactional
//! atomicity costs almost nothing extra: a `write_tx` is an ordinary
//! out-of-place page write whose new address is parked in the X-L2P table
//! instead of the L2P table, and `commit` makes one small table write plus
//! a meta-root update (Figure 4).
//!
//! ## Commit protocol (Figure 4)
//!
//! 1. flip the transaction's X-L2P entries to *Committed* in device RAM;
//! 2. write the X-L2P table copy-on-write to fresh flash pages and point
//!    the checkpoint root at it — **this is the durability point**;
//! 3. re-map the committed LPNs in the L2P table, invalidating the old
//!    versions (idempotent; recovery re-derives it from step 2's table).
//!
//! Old committed versions are invalidated only *after* step 2, so a crash
//! at any instant leaves either the old committed state or the new one
//! reachable — never neither.
//!
//! ## Abort
//!
//! Two RAM-only steps (§5.3): drop the transaction's entries and invalidate
//! its flash pages. No flash write is needed: a crash turns in-flight
//! transactions into aborts for free.

use xftl_flash::{FlashChip, PageKind, SimClock};
use xftl_ftl::{
    BlockDevice, CmdId, CmdQueue, DevCounters, DevError, FtlBase, FtlStats, IoCmd, Lpn, NoHook,
    Result, Tid, TxBlockDevice,
};
use xftl_trace::{OpClass, Recorder};

use crate::xl2p::{TxStatus, Xl2pError, Xl2pTable};

/// Default X-L2P capacity (the paper's small configuration: 500 entries,
/// one 8 KB flash page).
pub const DEFAULT_XL2P_CAPACITY: usize = 500;

/// Simulated-time breakdown of a recovery, for the paper's Table 5: the
/// X-L2P portion (load + fold + re-checkpoint) is what the paper reports
/// as X-FTL's 3.5 ms "SQLite restart time"; the scan portion is the
/// common FTL work the paper excludes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryBreakdown {
    /// Total simulated recovery time.
    pub total_ns: u64,
    /// Base FTL recovery (checkpoint load + log scan) — the "common" part.
    pub scan_ns: u64,
    /// X-L2P processing: fold committed entries, persist the result.
    pub xl2p_ns: u64,
}

/// The transactional FTL.
#[derive(Debug)]
pub struct XFtl {
    base: FtlBase,
    table: Xl2pTable,
    queue: CmdQueue,
}

impl XFtl {
    /// Formats a fresh chip to export `logical_pages`, with the default
    /// X-L2P capacity.
    pub fn format(chip: FlashChip, logical_pages: u64) -> Result<Self> {
        Self::format_with_capacity(chip, logical_pages, DEFAULT_XL2P_CAPACITY)
    }

    /// Formats with an explicit X-L2P capacity (500 and 1000 in the paper;
    /// the ablation bench sweeps this).
    pub fn format_with_capacity(
        chip: FlashChip,
        logical_pages: u64,
        xl2p_capacity: usize,
    ) -> Result<Self> {
        Ok(XFtl {
            base: FtlBase::format(chip, logical_pages)?,
            table: Xl2pTable::new(xl2p_capacity),
            queue: CmdQueue::default(),
        })
    }

    /// Rebuilds the device from flash after a power loss.
    ///
    /// Implements §5.4: load the L2P checkpoint and the persisted X-L2P
    /// table; fold entries with *Committed* status into the L2P table
    /// (idempotent); treat entries of in-flight transactions as aborted.
    /// Ordinary (tid = 0) post-checkpoint writes are rolled forward by
    /// sequence number, interleaved correctly with the commit fold.
    pub fn recover(chip: FlashChip) -> Result<Self> {
        Self::recover_with_capacity(chip, DEFAULT_XL2P_CAPACITY)
    }

    /// [`XFtl::recover`] with an explicit X-L2P capacity.
    pub fn recover_with_capacity(chip: FlashChip, xl2p_capacity: usize) -> Result<Self> {
        Ok(Self::recover_with_breakdown(chip, xl2p_capacity)?.0)
    }

    /// Recovery with a simulated-time breakdown (Table 5 instrumentation).
    pub fn recover_with_breakdown(
        chip: FlashChip,
        xl2p_capacity: usize,
    ) -> Result<(Self, RecoveryBreakdown)> {
        let clock = chip.clock().clone();
        let t0 = clock.now();
        let (mut base, log) = FtlBase::recover(chip)?;
        let t_scan = clock.now();
        // Merge plain roll-forward events with the commit fold, ordered by
        // global program sequence (a committed transaction's pages become
        // current at the instant its X-L2P table write hit flash).
        let mut merged: Vec<(u64, Lpn, xftl_flash::Ppa)> = Vec::new();
        for e in &log.events {
            if e.kind == PageKind::Data && e.tid == 0 && e.seq > log.ckpt_seq {
                merged.push((e.seq, e.lpn, e.ppa));
            }
        }
        if let Some((table_seq, bytes)) = &log.xl2p {
            if *table_seq > log.ckpt_seq {
                let geo_ps = base.page_size();
                let ppb = base.pages_per_block();
                for entry in Xl2pTable::decode_pages(bytes, geo_ps, ppb) {
                    if entry.status == TxStatus::Committed {
                        merged.push((*table_seq, entry.lpn, entry.ppa));
                    }
                    // Active entries: implicit abort — simply not folded.
                }
            }
        }
        merged.sort_by_key(|&(seq, _, _)| seq);
        for (_, lpn, ppa) in merged {
            base.apply_event(lpn, ppa);
        }
        // Persist the recovered state and retire the old X-L2P table; the
        // fresh checkpoint now owns every committed fold.
        base.clear_xl2p_roots();
        base.checkpoint(&mut NoHook)?;
        let t_end = clock.now();
        let breakdown = RecoveryBreakdown {
            total_ns: t_end - t0,
            scan_ns: t_scan - t0,
            xl2p_ns: t_end - t_scan,
        };
        Ok((
            XFtl {
                base,
                table: Xl2pTable::new(xl2p_capacity),
                queue: CmdQueue::default(),
            },
            breakdown,
        ))
    }

    /// Checkpoints the L2P table and releases committed X-L2P entries,
    /// whose folds the checkpoint now covers.
    fn checkpoint_and_release(&mut self) -> Result<()> {
        self.base.clear_xl2p_roots();
        self.base.checkpoint(&mut self.table)?;
        self.table.release_committed();
        Ok(())
    }

    /// Pre-write bookkeeping shared by `write_tx` and `submit_tx`: ensure
    /// the X-L2P table can absorb an entry for `(tid, lpn)`.
    fn reserve_tx_slot(&mut self, tid: Tid, lpn: Lpn) -> Result<()> {
        // A reused transaction id rewriting a page whose entry is still
        // *Committed* would repurpose that entry — erasing the only
        // persistent record of the earlier commit's fold. Persist the L2P
        // (releasing committed entries) first, so the fold is durable
        // before the slot is reused.
        if self
            .table
            .lookup(tid, lpn)
            .is_some_and(|e| e.status == crate::xl2p::TxStatus::Committed)
        {
            self.checkpoint_and_release()?;
        }
        // Make room: committed entries become releasable after an L2P
        // checkpoint; a table full of *active* entries is a host error.
        if self.table.lookup(tid, lpn).is_none() && self.table.is_full() {
            if self.table.committed_len() > 0 {
                self.checkpoint_and_release()?;
            }
            if self.table.is_full() {
                return Err(DevError::XL2pFull);
            }
        }
        Ok(())
    }

    /// Post-write bookkeeping shared by `write_tx` and `submit_tx`.
    fn record_tx_write(&mut self, tid: Tid, lpn: Lpn, ppa: xftl_flash::Ppa) {
        match self.table.upsert(tid, lpn, ppa) {
            Ok(None) => {}
            Ok(Some(superseded)) => {
                // The transaction rewrote its own page: the intermediate
                // version is garbage immediately.
                self.base.invalidate(superseded);
            }
            Err(Xl2pError::Full) => unreachable!("capacity checked by reserve_tx_slot"),
        }
    }

    /// Number of live X-L2P entries (for tests and stats).
    pub fn xl2p_len(&self) -> usize {
        self.table.len()
    }

    /// FTL-attributed statistics.
    pub fn stats(&self) -> &FtlStats {
        self.base.stats()
    }

    /// Raw media statistics.
    pub fn flash_stats(&self) -> xftl_flash::FlashStats {
        self.base.flash_stats()
    }

    /// Resets statistics between experiment phases.
    pub fn reset_stats(&mut self) {
        self.base.reset_stats();
    }

    /// Shared simulated clock.
    pub fn clock(&self) -> SimClock {
        self.base.clock()
    }

    /// Powers down, keeping only the flash medium.
    pub fn into_chip(self) -> FlashChip {
        self.base.into_chip()
    }

    /// Direct engine access, for failure injection in tests.
    pub fn base_mut(&mut self) -> &mut FtlBase {
        &mut self.base
    }

    /// Read-only engine access, for the verify oracle's audits.
    pub fn base(&self) -> &FtlBase {
        &self.base
    }

    /// Read-only X-L2P table access, for the verify oracle's audits.
    pub fn xl2p(&self) -> &Xl2pTable {
        &self.table
    }
}

impl BlockDevice for XFtl {
    fn page_size(&self) -> usize {
        self.base.page_size()
    }

    fn capacity_pages(&self) -> u64 {
        self.base.capacity_pages()
    }

    fn read(&mut self, lpn: Lpn, buf: &mut [u8]) -> Result<()> {
        self.base.counters_mut().host_reads += 1;
        self.base.read_committed(lpn, buf)
    }

    fn write(&mut self, lpn: Lpn, buf: &[u8]) -> Result<()> {
        self.base.counters_mut().host_writes += 1;
        self.base.write_committed(lpn, buf, &mut self.table)
    }

    fn trim(&mut self, lpn: Lpn) -> Result<()> {
        self.base.counters_mut().trims += 1;
        self.base.trim_lpn(lpn)
    }

    fn flush(&mut self) -> Result<()> {
        self.base.counters_mut().flushes += 1;
        // A flush is also a full queue barrier.
        self.base.drain();
        self.queue.retire(CmdId(u64::MAX));
        if self.base.has_dirty_mapping() {
            self.checkpoint_and_release()?;
        }
        Ok(())
    }

    fn counters(&self) -> DevCounters {
        *self.base.counters()
    }

    fn submit(&mut self, cmds: &[IoCmd<'_>]) -> Result<CmdId> {
        self.base.counters_mut().batches += 1;
        let mut done = 0;
        for cmd in cmds {
            match cmd {
                IoCmd::Write { lpn, data } => {
                    self.base.counters_mut().host_writes += 1;
                    done = done.max(self.base.write_committed_queued(
                        *lpn,
                        data,
                        &mut self.table,
                    )?);
                }
                IoCmd::Trim { lpn } => {
                    self.base.counters_mut().trims += 1;
                    self.base.trim_lpn(*lpn)?;
                }
            }
        }
        Ok(self.queue.issue(done))
    }

    fn complete_until(&mut self, barrier: CmdId) -> Result<()> {
        if let Some(done) = self.queue.retire(barrier) {
            self.base.wait_for(done);
        }
        Ok(())
    }
}

impl TxBlockDevice for XFtl {
    fn read_tx(&mut self, tid: Tid, lpn: Lpn, buf: &mut [u8]) -> Result<()> {
        self.base.counters_mut().host_reads += 1;
        // §5.3: if the reader wrote this page, return its own version;
        // otherwise the committed copy from the L2P table.
        match self.table.lookup(tid, lpn) {
            Some(entry) => {
                let ppa = entry.ppa;
                self.base.read_at(ppa, buf)?;
                Ok(())
            }
            None => self.base.read_committed(lpn, buf),
        }
    }

    fn write_tx(&mut self, tid: Tid, lpn: Lpn, buf: &[u8]) -> Result<()> {
        if tid == 0 {
            return self.write(lpn, buf);
        }
        self.base.counters_mut().host_writes += 1;
        self.reserve_tx_slot(tid, lpn)?;
        let ppa = self.base.write_cow(lpn, tid, buf, &mut self.table)?;
        self.record_tx_write(tid, lpn, ppa);
        Ok(())
    }

    fn commit(&mut self, tid: Tid) -> Result<()> {
        self.base.counters_mut().commits += 1;
        let t_start = self.base.clock().now();
        // Commit is a full queue barrier: the X-L2P table write below
        // drains the chip, so retiring every outstanding ticket here
        // keeps the ledger bounded even for hosts that never flush.
        self.queue.retire(CmdId(u64::MAX));
        if !self.table.has_tid(tid) {
            // Read-only transaction: nothing to persist, but commit is
            // still a queue barrier for earlier batches.
            self.base.drain();
            let t_end = self.base.clock().now();
            self.base
                .recorder()
                .record_span(OpClass::TxCommit, tid, 0, t_start, t_end);
            return Ok(());
        }
        // Step 1: flip statuses in device RAM.
        self.table.mark_committed(tid);
        // Step 2 (durability point): CoW-write the X-L2P table and update
        // the checkpoint root to reference it.
        let pages = self
            .table
            .encode_pages(self.base.page_size(), self.base.pages_per_block());
        self.base.persist_xl2p(&pages, &mut self.table)?;
        // Step 3: re-map committed LPNs; old versions become reclaimable.
        let folds: Vec<(Lpn, xftl_flash::Ppa)> =
            self.table.entries_of(tid).map(|e| (e.lpn, e.ppa)).collect();
        for (lpn, ppa) in folds {
            self.base.fold_mapping(lpn, ppa);
        }
        // Housekeeping: once committed entries crowd the table, persist the
        // L2P and release them.
        if self.table.committed_len() > self.table.capacity() / 2 {
            self.checkpoint_and_release()?;
        }
        let t_end = self.base.clock().now();
        self.base
            .recorder()
            .record_span(OpClass::TxCommit, tid, 0, t_start, t_end);
        Ok(())
    }

    fn abort(&mut self, tid: Tid) -> Result<()> {
        self.base.counters_mut().aborts += 1;
        let t_start = self.base.clock().now();
        // §5.3: two steps, no flash writes — drop the transaction's
        // *active* entries, invalidate their pages. Entries that already
        // committed (and the committed versions in L2P) are untouchable:
        // an abort arriving after a successful commit is a no-op.
        for ppa in self.table.remove_active_of_tid(tid) {
            self.base.invalidate(ppa);
        }
        // Whatever batches the aborting host had in flight are dead; no
        // one will wait on their tickets.
        self.queue.retire(CmdId(u64::MAX));
        let t_end = self.base.clock().now();
        self.base
            .recorder()
            .record_span(OpClass::TxAbort, tid, 0, t_start, t_end);
        Ok(())
    }

    fn submit_tx(&mut self, tid: Tid, pages: &[(Lpn, &[u8])]) -> Result<CmdId> {
        self.base.counters_mut().batches += 1;
        let mut done = 0;
        for (lpn, data) in pages {
            self.base.counters_mut().host_writes += 1;
            if tid == 0 {
                done = done.max(
                    self.base
                        .write_committed_queued(*lpn, data, &mut self.table)?,
                );
                continue;
            }
            self.reserve_tx_slot(tid, *lpn)?;
            let (ppa, d) = self
                .base
                .write_cow_queued(*lpn, tid, data, &mut self.table)?;
            done = done.max(d);
            self.record_tx_write(tid, *lpn, ppa);
        }
        // No wait here: commit(tid) drains before the X-L2P table write,
        // so the durability point still covers every page of the batch.
        Ok(self.queue.issue(done))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xftl_flash::{FlashChip, FlashConfig};

    fn dev() -> XFtl {
        let chip = FlashChip::new(FlashConfig::tiny(16), SimClock::new());
        XFtl::format_with_capacity(chip, 32, 8).unwrap()
    }

    fn page(d: &XFtl, byte: u8) -> Vec<u8> {
        vec![byte; d.page_size()]
    }

    #[test]
    fn transactional_write_is_invisible_until_commit() {
        let mut d = dev();
        let old = page(&d, 1);
        let new = page(&d, 2);
        d.write(0, &old).unwrap();
        d.write_tx(7, 0, &new).unwrap();
        let mut out = page(&d, 0);
        // Plain readers (and other transactions) see the committed copy.
        d.read(0, &mut out).unwrap();
        assert_eq!(out, old);
        d.read_tx(9, 0, &mut out).unwrap();
        assert_eq!(out, old);
        // The writer sees its own version.
        d.read_tx(7, 0, &mut out).unwrap();
        assert_eq!(out, new);
        // After commit, everyone sees the new version.
        d.commit(7).unwrap();
        d.read(0, &mut out).unwrap();
        assert_eq!(out, new);
    }

    #[test]
    fn abort_restores_committed_state() {
        let mut d = dev();
        let old = page(&d, 1);
        let new = page(&d, 2);
        d.write(0, &old).unwrap();
        d.write_tx(7, 0, &new).unwrap();
        d.abort(7).unwrap();
        let mut out = page(&d, 0);
        d.read(0, &mut out).unwrap();
        assert_eq!(out, old);
        d.read_tx(7, 0, &mut out).unwrap();
        assert_eq!(out, old, "aborted writer sees committed state again");
        assert_eq!(d.xl2p_len(), 0);
    }

    #[test]
    fn abort_writes_nothing_to_flash() {
        let mut d = dev();
        let a = page(&d, 1);
        d.write_tx(3, 0, &a).unwrap();
        let before = d.flash_stats().programs;
        d.abort(3).unwrap();
        assert_eq!(d.flash_stats().programs, before, "abort is RAM-only");
    }

    #[test]
    fn commit_writes_one_table_page_and_meta() {
        // Roomy table so the committed-release housekeeping threshold
        // (capacity / 2) does not fire inside the measured commit.
        let chip = FlashChip::new(FlashConfig::tiny(16), SimClock::new());
        let mut d = XFtl::format_with_capacity(chip, 32, 24).unwrap();
        let a = page(&d, 1);
        for lpn in 0..5 {
            d.write_tx(3, lpn, &a).unwrap();
        }
        let before = d.flash_stats().programs;
        d.commit(3).unwrap();
        let cost = d.flash_stats().programs - before;
        assert_eq!(cost, 2, "commit = 1 X-L2P page + 1 meta page, got {cost}");
    }

    #[test]
    fn commit_then_crash_is_durable() {
        let mut d = dev();
        let a = page(&d, 0xA1);
        let b = page(&d, 0xB2);
        d.write_tx(5, 3, &a).unwrap();
        d.write_tx(5, 4, &b).unwrap();
        d.commit(5).unwrap();
        // Power loss with no flush after commit.
        let mut d2 = XFtl::recover(d.into_chip()).unwrap();
        let mut out = page(&d2, 0);
        d2.read(3, &mut out).unwrap();
        assert_eq!(out, a);
        d2.read(4, &mut out).unwrap();
        assert_eq!(out, b);
    }

    #[test]
    fn uncommitted_tx_rolls_back_on_crash() {
        let mut d = dev();
        let old = page(&d, 1);
        let new = page(&d, 2);
        d.write(0, &old).unwrap();
        d.flush().unwrap();
        d.write_tx(9, 0, &new).unwrap();
        d.write_tx(9, 1, &new).unwrap();
        // Crash before commit: the transaction evaporates.
        let mut d2 = XFtl::recover(d.into_chip()).unwrap();
        let mut out = page(&d2, 0);
        d2.read(0, &mut out).unwrap();
        assert_eq!(out, old);
        d2.read(1, &mut out).unwrap();
        assert!(
            out.iter().all(|&x| x == 0),
            "never-committed page reads as zeros"
        );
    }

    #[test]
    fn crash_mid_commit_keeps_old_state() {
        let mut d = dev();
        let old = page(&d, 1);
        let new = page(&d, 2);
        d.write(0, &old).unwrap();
        d.write(1, &old).unwrap();
        d.flush().unwrap();
        d.write_tx(9, 0, &new).unwrap();
        d.write_tx(9, 1, &new).unwrap();
        // Tear the X-L2P table write itself: the commit never became
        // durable, so recovery must roll back.
        d.base_mut().chip_mut().arm_power_fuse(1);
        assert!(d.commit(9).is_err());
        let mut d2 = XFtl::recover(d.into_chip()).unwrap();
        let mut out = page(&d2, 0);
        d2.read(0, &mut out).unwrap();
        assert_eq!(out, old);
        d2.read(1, &mut out).unwrap();
        assert_eq!(out, old);
    }

    #[test]
    fn crash_right_after_table_write_commits() {
        let mut d = dev();
        let old = page(&d, 1);
        let new = page(&d, 2);
        d.write(0, &old).unwrap();
        d.flush().unwrap();
        d.write_tx(9, 0, &new).unwrap();
        // Fuse fires on the *meta* write (2nd program of the commit):
        // table page landed, root did not -> commit is NOT durable.
        d.base_mut().chip_mut().arm_power_fuse(2);
        assert!(d.commit(9).is_err());
        let mut d2 = XFtl::recover(d.into_chip()).unwrap();
        let mut out = page(&d2, 0);
        d2.read(0, &mut out).unwrap();
        assert_eq!(out, old, "commit without root update must roll back");
    }

    #[test]
    fn repeated_writes_by_same_tx_reuse_entry() {
        let mut d = dev();
        let a = page(&d, 1);
        let b = page(&d, 2);
        d.write_tx(4, 0, &a).unwrap();
        d.write_tx(4, 0, &b).unwrap();
        assert_eq!(d.xl2p_len(), 1, "same (tid, lpn) shares one entry");
        let mut out = page(&d, 0);
        d.read_tx(4, 0, &mut out).unwrap();
        assert_eq!(out, b);
        d.commit(4).unwrap();
        d.read(0, &mut out).unwrap();
        assert_eq!(out, b);
    }

    #[test]
    fn xl2p_full_of_active_transactions_errors() {
        let mut d = dev(); // capacity 8
        let a = page(&d, 1);
        for tid in 1..=8u64 {
            d.write_tx(tid, tid - 1, &a).unwrap();
        }
        assert_eq!(d.write_tx(9, 20, &a), Err(DevError::XL2pFull));
        // Committing one frees a slot.
        d.commit(1).unwrap();
        assert!(d.write_tx(9, 20, &a).is_ok());
    }

    #[test]
    fn xl2p_full_recovers_via_abort() {
        // The table-full abort path: when every slot belongs to an active
        // transaction, aborting one must free its slots immediately (no
        // checkpoint needed) and leave the committed image untouched.
        let mut d = dev(); // capacity 8
        let a = page(&d, 1);
        for tid in 1..=8u64 {
            d.write_tx(tid, tid - 1, &a).unwrap();
        }
        assert_eq!(d.write_tx(9, 20, &a), Err(DevError::XL2pFull));
        d.abort(3).unwrap();
        assert_eq!(d.xl2p_len(), 7, "abort released exactly tid 3's slot");
        d.write_tx(9, 20, &a).unwrap();
        // The failed write left no trace: tid 9 owns only lpn 20.
        let mut out = page(&d, 0);
        d.read_tx(9, 2, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0), "aborted tid 3's page is gone");
        d.commit(9).unwrap();
        d.read(20, &mut out).unwrap();
        assert_eq!(out, a);
    }

    #[test]
    fn committed_entries_released_by_barrier() {
        let mut d = dev();
        let a = page(&d, 1);
        d.write_tx(1, 0, &a).unwrap();
        d.commit(1).unwrap();
        assert_eq!(d.xl2p_len(), 1, "committed entry parked until checkpoint");
        d.flush().unwrap();
        assert_eq!(d.xl2p_len(), 0, "checkpoint releases committed entries");
    }

    #[test]
    fn two_transactions_are_isolated() {
        let mut d = dev();
        let base_v = page(&d, 0x10);
        let v1 = page(&d, 0x11);
        let v2 = page(&d, 0x22);
        d.write(5, &base_v).unwrap();
        d.write_tx(1, 5, &v1).unwrap();
        // A different page for tx 2 (SQLite is single-writer per file; the
        // device itself does not arbitrate write-write conflicts).
        d.write_tx(2, 6, &v2).unwrap();
        let mut out = page(&d, 0);
        d.read_tx(1, 5, &mut out).unwrap();
        assert_eq!(out, v1);
        d.read_tx(2, 5, &mut out).unwrap();
        assert_eq!(out, base_v);
        d.read_tx(1, 6, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0));
        d.read_tx(2, 6, &mut out).unwrap();
        assert_eq!(out, v2);
        d.commit(1).unwrap();
        d.abort(2).unwrap();
        d.read(5, &mut out).unwrap();
        assert_eq!(out, v1);
        d.read(6, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0));
    }

    #[test]
    fn committed_data_survives_gc_and_crash() {
        let mut d = dev();
        // Commit a transaction, then churn plain writes to force GC to
        // relocate the committed pages before any checkpoint.
        let keep = page(&d, 0x77);
        d.write_tx(1, 30, &keep).unwrap();
        d.write_tx(1, 31, &keep).unwrap();
        d.commit(1).unwrap();
        let junk = page(&d, 0x01);
        for i in 0..300u64 {
            d.write(i % 6, &junk).unwrap();
        }
        assert!(d.stats().gc_runs > 0);
        let mut d2 = XFtl::recover(d.into_chip()).unwrap();
        let mut out = page(&d2, 0);
        d2.read(30, &mut out).unwrap();
        assert_eq!(out, keep);
        d2.read(31, &mut out).unwrap();
        assert_eq!(out, keep);
    }

    #[test]
    fn active_tx_pages_survive_gc() {
        let mut d = dev();
        let old = page(&d, 0x0F);
        let new = page(&d, 0xF0);
        d.write(30, &old).unwrap();
        d.write_tx(1, 30, &new).unwrap();
        // Churn to force GC while the transaction is still active: both the
        // old committed version and the new pinned version must survive.
        let junk = page(&d, 2);
        for i in 0..300u64 {
            d.write(i % 6, &junk).unwrap();
        }
        assert!(d.stats().gc_runs > 0);
        let mut out = page(&d, 0);
        d.read(30, &mut out).unwrap();
        assert_eq!(out, old);
        d.read_tx(1, 30, &mut out).unwrap();
        assert_eq!(out, new);
        d.commit(1).unwrap();
        d.read(30, &mut out).unwrap();
        assert_eq!(out, new);
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut d = dev();
        let a = page(&d, 5);
        d.write_tx(1, 2, &a).unwrap();
        d.commit(1).unwrap();
        let d2 = XFtl::recover(d.into_chip()).unwrap();
        let mut d3 = XFtl::recover(d2.into_chip()).unwrap();
        let mut out = page(&d3, 0);
        d3.read(2, &mut out).unwrap();
        assert_eq!(out, a);
    }

    #[test]
    fn commit_of_unknown_tid_is_noop() {
        let mut d = dev();
        assert!(d.commit(42).is_ok());
        assert!(d.abort(42).is_ok());
    }

    #[test]
    fn batched_tx_writes_overlap_across_channels() {
        let cfg = xftl_flash::FlashConfigBuilder::tiny().channels(4).build();
        let chip = FlashChip::new(cfg, SimClock::new());
        let mut d = XFtl::format_with_capacity(chip, 32, 24).unwrap();
        let clock = d.clock();
        let data = vec![0x5Au8; d.page_size()];
        let t0 = clock.now();
        for lpn in 0..4u64 {
            d.write_tx(1, lpn, &data).unwrap();
        }
        d.commit(1).unwrap();
        let serial = clock.now() - t0;
        let batch: Vec<(Lpn, &[u8])> = (4..8u64).map(|lpn| (lpn, &data[..])).collect();
        let t1 = clock.now();
        d.submit_tx(2, &batch).unwrap();
        d.commit(2).unwrap();
        let batched = clock.now() - t1;
        assert!(
            batched < serial,
            "queued tx batch + commit ({batched} ns) must beat serial ({serial} ns)"
        );
        let mut out = page(&d, 0);
        for lpn in 4..8u64 {
            d.read(lpn, &mut out).unwrap();
            assert_eq!(out, data, "lpn {lpn} committed");
        }
        assert_eq!(d.counters().batches, 1);
    }

    #[test]
    fn batched_tx_writes_roll_back_on_crash_before_commit() {
        let mut d = dev();
        let old = page(&d, 1);
        let new = page(&d, 2);
        d.write(0, &old).unwrap();
        d.flush().unwrap();
        let batch: Vec<(Lpn, &[u8])> = vec![(0, &new[..]), (1, &new[..])];
        d.submit_tx(5, &batch).unwrap();
        // Crash with the batch dispatched but never committed.
        let mut d2 = XFtl::recover(d.into_chip()).unwrap();
        let mut out = page(&d2, 0);
        d2.read(0, &mut out).unwrap();
        assert_eq!(out, old);
    }

    #[test]
    fn interleaved_plain_and_tx_writes_recover_in_order() {
        // A tid-0 write *after* a commit to the same page must win, and
        // one *before* the tx write must lose, even across a crash.
        let mut d = dev();
        let v1 = page(&d, 1);
        let v2 = page(&d, 2);
        let v3 = page(&d, 3);
        d.write(0, &v1).unwrap(); // plain
        d.write_tx(1, 0, &v2).unwrap();
        d.commit(1).unwrap(); // v2 current
        d.write(0, &v3).unwrap(); // plain, after commit: v3 current
        let mut d2 = XFtl::recover(d.into_chip()).unwrap();
        let mut out = page(&d2, 0);
        d2.read(0, &mut out).unwrap();
        assert_eq!(out, v3);
    }
}
