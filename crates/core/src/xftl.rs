//! The X-FTL device: a page-mapping FTL with transactional atomicity.
//!
//! `XFtl` implements the full extended command set of §4.2 — `read(tid,p)`,
//! `write(tid,p)`, `commit(tid)`, `abort(tid)` — on top of the shared FTL
//! engine. Because the engine is copy-on-write anyway, transactional
//! atomicity costs almost nothing extra: a `write_tx` is an ordinary
//! out-of-place page write whose new address is parked in the X-L2P table
//! instead of the L2P table, and `commit` makes one small table write plus
//! a meta-root update (Figure 4).
//!
//! ## Commit protocol (Figure 4), pipelined
//!
//! 1. flip the transaction's X-L2P entries to *Committed* in device RAM;
//! 2. write the X-L2P table copy-on-write to fresh flash pages and point
//!    the checkpoint root at it — **this is the durability point**;
//! 3. re-map the committed LPNs in the L2P table, invalidating the old
//!    versions (idempotent; recovery re-derives it from step 2's table).
//!
//! Old committed versions are invalidated only *after* step 2, so a crash
//! at any instant leaves either the old committed state or the new one
//! reachable — never neither.
//!
//! The command set is split-phase: `commit_submit(tid)` performs step 1
//! only and *stages* the transaction into the current commit group, and
//! `commit_wait(ticket)` triggers the **group flush** — steps 2 and 3 for
//! every staged transaction at once, sharing a single X-L2P table write
//! and a single meta-root program. Between submit and flush the staged
//! versions are visible (reads are routed through the X-L2P table) but
//! not durable; the next transaction's data writes stream into the
//! channel queues underneath the staged commits, which is where the
//! pipeline's throughput comes from. Any operation that must order after
//! a staged fold (a plain write/trim to a staged page, a checkpoint, a
//! flush) forces the group flush first, so the one-writer-at-a-time
//! semantics of the blocking command are preserved exactly.
//!
//! A power loss before the group flush loses every staged transaction
//! *whole*: the persisted X-L2P table still shows their entries Active
//! (or absent), so recovery aborts them — the unacknowledged commit
//! never half-applies.
//!
//! ## Abort
//!
//! Two RAM-only steps (§5.3): drop the transaction's entries and invalidate
//! its flash pages. No flash write is needed: a crash turns in-flight
//! transactions into aborts for free.
//!
//! ## MVCC: snapshots, version chains, first-committer-wins
//!
//! The copy-on-write X-L2P design already retains every pre-image a
//! transaction displaces; promoting that into multi-version concurrency
//! control costs only RAM bookkeeping:
//!
//! * `begin(tid)` captures the device's **commit sequence** (bumped by
//!   every `commit_submit` and, while snapshots are active, every plain
//!   write/trim). All MVCC machinery is inert while no snapshot is
//!   registered — legacy hosts see bit-identical behavior.
//! * While any snapshot is active, a fold that would invalidate the
//!   displaced version *retains* it instead, appending `(old_seq, ppa)`
//!   to the page's RAM-only version chain in the X-L2P table.
//! * `read_tx(tid, lpn)` for a snapshot transaction resolves, in order:
//!   its own X-L2P entry, the newest staged commit at or below its
//!   snapshot, the L2P copy if its fold sequence is old enough, else a
//!   chain walk to the newest retained version at or below the snapshot.
//! * `commit_submit` validates first-committer-wins: if any page the
//!   transaction wrote has a committed version newer than its snapshot,
//!   the transaction aborts with [`DevError::Conflict`] (its versions
//!   feed GC, its write intents release) — the winner is always the
//!   first committer, deterministically.
//! * Chains prune as snapshots retire; pruned copies are invalidated
//!   (GC food). Everything is RAM-only: a power cut kills snapshots,
//!   and recovery rebuilds validity from L2P membership, so retained
//!   versions orphaned by a crash become garbage automatically.

use std::collections::HashMap;

use xftl_flash::{FlashChip, PageKind, SimClock};
use xftl_ftl::{
    BlockDevice, CmdId, CmdQueue, CommitTicket, DevCounters, DevError, DeviceState, FtlBase,
    FtlStats, IoCmd, Lpn, NoHook, Result, Tid, TxBlockDevice,
};
use xftl_trace::{OpClass, Recorder};

use crate::xl2p::{TxStatus, Xl2pError, Xl2pTable};

/// Default X-L2P capacity (the paper's small configuration: 500 entries,
/// one 8 KB flash page).
pub const DEFAULT_XL2P_CAPACITY: usize = 500;

/// Simulated-time breakdown of a recovery, for the paper's Table 5: the
/// X-L2P portion (load + fold + re-checkpoint) is what the paper reports
/// as X-FTL's 3.5 ms "SQLite restart time"; the scan portion is the
/// common FTL work the paper excludes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryBreakdown {
    /// Total simulated recovery time.
    pub total_ns: u64,
    /// Base FTL recovery (checkpoint load + log scan) — the "common" part.
    pub scan_ns: u64,
    /// X-L2P processing: fold committed entries, persist the result.
    pub xl2p_ns: u64,
}

/// The transactional FTL.
#[derive(Debug)]
pub struct XFtl {
    base: FtlBase,
    table: Xl2pTable,
    queue: CmdQueue,
    /// Transactions staged by `commit_submit` into the open commit group,
    /// in submission order (= fold order at the group flush). A tid may
    /// appear twice if it was reused and committed twice in one window.
    staged: Vec<Tid>,
    /// Newest staged writer per logical page: reads of a staged page are
    /// routed through the (GC-chased) X-L2P entry of this tid instead of
    /// the not-yet-updated L2P table.
    staged_writers: HashMap<Lpn, Tid>,
    /// Id the open commit group's ticket carries; groups flush in order,
    /// so a ticket is durable exactly when its id is below this counter.
    next_group: u64,
    /// Global commit sequence: the MVCC visibility clock. Bumped by every
    /// `commit_submit` that stages pages and, while snapshots are active,
    /// by every plain write/trim. RAM-only — it resets at recovery, which
    /// is sound because snapshots never survive power loss either.
    commit_seq: u64,
    /// Active snapshot per transaction: the commit sequence `begin(tid)`
    /// captured. Present only between `begin` and the transaction's
    /// commit/abort/conflict resolution.
    snapshots: HashMap<Tid, u64>,
    /// Commit sequence assigned to each staged-but-unflushed commit, so
    /// snapshot readers can tell which staged versions their snapshot
    /// already saw. Cleared by the group flush.
    staged_seq_of: HashMap<Tid, u64>,
}

impl XFtl {
    /// Formats a fresh chip to export `logical_pages`, with the default
    /// X-L2P capacity.
    pub fn format(chip: FlashChip, logical_pages: u64) -> Result<Self> {
        Self::format_with_capacity(chip, logical_pages, DEFAULT_XL2P_CAPACITY)
    }

    /// Formats with an explicit X-L2P capacity (500 and 1000 in the paper;
    /// the ablation bench sweeps this).
    pub fn format_with_capacity(
        chip: FlashChip,
        logical_pages: u64,
        xl2p_capacity: usize,
    ) -> Result<Self> {
        Ok(XFtl {
            base: FtlBase::format(chip, logical_pages)?,
            table: Xl2pTable::new(xl2p_capacity),
            queue: CmdQueue::default(),
            staged: Vec::new(),
            staged_writers: HashMap::new(),
            next_group: 1,
            commit_seq: 0,
            snapshots: HashMap::new(),
            staged_seq_of: HashMap::new(),
        })
    }

    /// Rebuilds the device from flash after a power loss.
    ///
    /// Implements §5.4: load the L2P checkpoint and the persisted X-L2P
    /// table; fold entries with *Committed* status into the L2P table
    /// (idempotent); treat entries of in-flight transactions as aborted.
    /// Ordinary (tid = 0) post-checkpoint writes are rolled forward by
    /// sequence number, interleaved correctly with the commit fold.
    pub fn recover(chip: FlashChip) -> Result<Self> {
        Self::recover_with_capacity(chip, DEFAULT_XL2P_CAPACITY)
    }

    /// [`XFtl::recover`] with an explicit X-L2P capacity.
    pub fn recover_with_capacity(chip: FlashChip, xl2p_capacity: usize) -> Result<Self> {
        Ok(Self::recover_with_breakdown(chip, xl2p_capacity)?.0)
    }

    /// Recovery with a simulated-time breakdown (Table 5 instrumentation).
    pub fn recover_with_breakdown(
        chip: FlashChip,
        xl2p_capacity: usize,
    ) -> Result<(Self, RecoveryBreakdown)> {
        let clock = chip.clock().clone();
        let t0 = clock.now();
        let (mut base, log) = FtlBase::recover(chip)?;
        let t_scan = clock.now();
        // Merge plain roll-forward events with the commit fold, ordered by
        // global program sequence (a committed transaction's pages become
        // current at the instant its X-L2P table write hit flash).
        let mut merged: Vec<(u64, Lpn, xftl_flash::Ppa)> = Vec::new();
        for e in &log.events {
            if e.kind == PageKind::Data && e.tid == 0 && e.seq > log.ckpt_seq {
                merged.push((e.seq, e.lpn, e.ppa));
            }
        }
        if let Some((table_seq, bytes)) = &log.xl2p {
            if *table_seq > log.ckpt_seq {
                let geo_ps = base.page_size();
                let ppb = base.pages_per_block();
                for entry in Xl2pTable::decode_pages(bytes, geo_ps, ppb) {
                    if entry.status == TxStatus::Committed {
                        merged.push((*table_seq, entry.lpn, entry.ppa));
                    }
                    // Active entries: implicit abort — simply not folded.
                }
            }
        }
        merged.sort_by_key(|&(seq, _, _)| seq);
        for (_, lpn, ppa) in merged {
            base.apply_event(lpn, ppa)?;
        }
        // Persist the recovered state and retire the old X-L2P table; the
        // fresh checkpoint now owns every committed fold. A device that
        // has degraded to read-only cannot take a checkpoint — keep the
        // folds in RAM and the old roots on flash, and serve reads from
        // the recovered mapping (re-recovery replays the same fold).
        if base.device_state() != DeviceState::ReadOnly {
            base.clear_xl2p_roots();
            base.checkpoint(&mut NoHook)?;
        }
        let t_end = clock.now();
        let breakdown = RecoveryBreakdown {
            total_ns: t_end - t0,
            scan_ns: t_scan - t0,
            xl2p_ns: t_end - t_scan,
        };
        Ok((
            XFtl {
                base,
                table: Xl2pTable::new(xl2p_capacity),
                queue: CmdQueue::default(),
                staged: Vec::new(),
                staged_writers: HashMap::new(),
                next_group: 1,
                commit_seq: 0,
                snapshots: HashMap::new(),
                staged_seq_of: HashMap::new(),
            },
            breakdown,
        ))
    }

    /// Checkpoints the L2P table and releases committed X-L2P entries,
    /// whose folds the checkpoint now covers. Staged commits flush first:
    /// releasing an entry whose fold has not been applied would lose the
    /// commit while the device is still running.
    fn checkpoint_and_release(&mut self) -> Result<()> {
        self.flush_staged_commits()?;
        self.checkpoint_and_release_raw()
    }

    /// The release itself, for callers that already flushed (or are the
    /// flush): persist the L2P, drop the folded entries.
    fn checkpoint_and_release_raw(&mut self) -> Result<()> {
        self.base.clear_xl2p_roots();
        self.base.checkpoint(&mut self.table)?;
        self.table.release_committed();
        Ok(())
    }

    /// The group flush — steps 2 and 3 of Figure 4 for *every* staged
    /// transaction at once: one copy-on-write X-L2P table write and one
    /// meta-root program make the whole group durable, then the folds are
    /// applied in submission order. This is where concurrent
    /// `commit_submit`s coalesce; with N staged commits the meta-page
    /// cost is 1/N per transaction.
    fn flush_staged_commits(&mut self) -> Result<()> {
        if self.staged.is_empty() {
            return Ok(());
        }
        let t_start = self.base.clock().now();
        // The persist below drains the chip at its durability barrier, so
        // every outstanding ticket is retired here (ledger bound, as in
        // the classic blocking commit).
        self.queue.retire(CmdId(u64::MAX));
        // Step 2 (durability point), once for the whole group.
        let pages = self
            .table
            .encode_pages(self.base.page_size(), self.base.pages_per_block());
        self.base.persist_xl2p(&pages, &mut self.table)?;
        // Step 3: fold in submission order, so a page committed by two
        // staged transactions ends up at the later writer's version.
        // Displaced versions a live snapshot can still see are retained
        // in the RAM version chains instead of being invalidated.
        let staged = std::mem::take(&mut self.staged);
        self.staged_writers.clear();
        for &tid in &staged {
            let seq = self.staged_seq_of.get(&tid).copied().unwrap_or(0);
            // Only *committed* entries fold: the host may have started
            // writing the transaction's next batch after commit_submit,
            // and those still-active versions must not leak into the L2P.
            let folds: Vec<(Lpn, xftl_flash::Ppa)> = self
                .table
                .entries_of(tid)
                .filter(|e| e.status == crate::xl2p::TxStatus::Committed)
                .map(|e| (e.lpn, e.ppa))
                .collect();
            for (lpn, ppa) in folds {
                let old_seq = self.table.l2p_seq_of(lpn);
                if self.snapshot_sees(old_seq) {
                    let old = self.base.l2p_get(lpn)?;
                    if old != Some(ppa) {
                        self.table.retain_version(lpn, old_seq, old);
                        self.base.stats_mut().versions_retained += 1;
                        let displaced = self.base.fold_mapping_retain(lpn, ppa)?;
                        debug_assert_eq!(displaced, old);
                    }
                } else {
                    self.base.fold_mapping(lpn, ppa)?;
                }
                self.table.note_l2p_version(lpn, seq);
            }
        }
        self.staged_seq_of.clear();
        self.next_group += 1;
        let stats = self.base.stats_mut();
        stats.group_commit_flushes += 1;
        stats.commits_coalesced += staged.len() as u64;
        let t_end = self.base.clock().now();
        for &tid in &staged {
            self.base
                .recorder()
                .record_span(OpClass::TxCommit, tid, 0, t_start, t_end);
        }
        self.base.recorder().record_span(
            OpClass::GroupCommitCoalesce,
            0,
            staged.len() as u64,
            t_start,
            t_end,
        );
        // Housekeeping: once committed entries crowd the table, persist
        // the L2P and release them.
        if self.table.committed_len() > self.table.capacity() / 2 {
            self.checkpoint_and_release_raw()?;
        }
        // Retention is deliberately coarse (any active snapshot retains);
        // drop whatever no snapshot can actually reach.
        self.prune_dead_versions();
        Ok(())
    }

    /// Oldest active snapshot, the horizon below which retained versions
    /// are still readable.
    fn min_snapshot(&self) -> Option<u64> {
        self.snapshots.values().copied().min()
    }

    /// True if some active snapshot can still see a version whose
    /// sequence is `seq` — the retention test. A version newer than
    /// every snapshot is invisible to all of them (they each see
    /// something older), so displacing it frees the copy immediately.
    fn snapshot_sees(&self, seq: u64) -> bool {
        self.snapshots.values().any(|&s| s >= seq)
    }

    /// Invalidates every retained version no active snapshot can read —
    /// the discarded copies become GC food.
    fn prune_dead_versions(&mut self) {
        let freed = self.table.prune_versions(self.min_snapshot());
        if freed.is_empty() {
            return;
        }
        self.base.stats_mut().versions_pruned += freed.len() as u64;
        for ppa in freed {
            self.base.invalidate(ppa);
        }
    }

    /// Releases `tid`'s snapshot (if it holds one) and prunes versions
    /// only that snapshot still needed.
    fn release_snapshot(&mut self, tid: Tid) {
        if self.snapshots.remove(&tid).is_some() {
            self.prune_dead_versions();
        }
    }

    /// Bumps the visibility clock and, when the displaced version of
    /// `lpn` differs from the freshly-written `ppa`, retains it in the
    /// version chain before pointing the L2P at the new copy. The plain
    /// write/trim path under active snapshots.
    fn retain_and_fold(&mut self, lpn: Lpn, ppa: xftl_flash::Ppa) -> Result<()> {
        self.commit_seq += 1;
        let seq = self.commit_seq;
        let old_seq = self.table.l2p_seq_of(lpn);
        if self.snapshot_sees(old_seq) {
            let old = self.base.l2p_get(lpn)?;
            if old != Some(ppa) {
                self.table.retain_version(lpn, old_seq, old);
                self.base.stats_mut().versions_retained += 1;
                let displaced = self.base.fold_mapping_retain(lpn, ppa)?;
                debug_assert_eq!(displaced, old);
            }
        } else {
            self.base.fold_mapping(lpn, ppa)?;
        }
        self.table.note_plain_version(lpn, seq);
        Ok(())
    }

    /// Plain committed write, snapshot-aware: with no snapshots active it
    /// is the classic fold (bit-identical legacy behavior); otherwise the
    /// displaced version is retained for snapshot readers.
    fn write_plain(&mut self, lpn: Lpn, buf: &[u8]) -> Result<()> {
        if self.snapshots.is_empty() {
            self.base.write_committed(lpn, buf, &mut self.table)?;
        } else {
            let ppa = self.base.write_cow(lpn, 0, buf, &mut self.table)?;
            self.retain_and_fold(lpn, ppa)?;
        }
        // The overwrite's own data program is now the page's durable
        // record; a stale committed entry left behind would resurrect
        // the old version if a later commit re-persisted the table.
        self.table.supersede_committed(lpn, 0);
        Ok(())
    }

    /// Queued flavor of [`XFtl::write_plain`] for the batched paths.
    fn write_plain_queued(&mut self, lpn: Lpn, buf: &[u8]) -> Result<u64> {
        let done = if self.snapshots.is_empty() {
            self.base
                .write_committed_queued(lpn, buf, &mut self.table)?
        } else {
            let (ppa, done) = self.base.write_cow_queued(lpn, 0, buf, &mut self.table)?;
            self.retain_and_fold(lpn, ppa)?;
            done
        };
        self.table.supersede_committed(lpn, 0);
        Ok(done)
    }

    /// Snapshot-aware trim: the dropped mapping's copy is retained while
    /// any snapshot might still read it.
    fn trim_plain(&mut self, lpn: Lpn) -> Result<()> {
        if self.snapshots.is_empty() {
            return self.base.trim_lpn(lpn);
        }
        self.commit_seq += 1;
        let seq = self.commit_seq;
        let old_seq = self.table.l2p_seq_of(lpn);
        if self.snapshot_sees(old_seq) {
            if let Some(old) = self.base.trim_lpn_retain(lpn)? {
                self.table.retain_version(lpn, old_seq, Some(old));
                self.base.stats_mut().versions_retained += 1;
            }
        } else {
            self.base.trim_lpn(lpn)?;
        }
        self.table.note_plain_version(lpn, seq);
        Ok(())
    }

    /// Serves a snapshot transaction's read of a page it did not write:
    /// the version visible at its begin snapshot, wherever that version
    /// lives — a staged commit, the L2P table, or the retained chain.
    fn read_snapshot(&mut self, tid: Tid, snap: u64, lpn: Lpn, buf: &mut [u8]) -> Result<()> {
        let t_start = self.base.clock().now();
        // Newest staged (submitted, unflushed) commit the snapshot saw.
        let mut staged_ppa = None;
        for &stid in self.staged.iter().rev() {
            if self.staged_seq_of.get(&stid).copied().unwrap_or(0) > snap {
                continue;
            }
            if let Some(e) = self.table.lookup(stid, lpn) {
                if e.status == TxStatus::Committed {
                    staged_ppa = Some(e.ppa);
                    break;
                }
            }
        }
        if let Some(ppa) = staged_ppa {
            self.base.read_at(ppa, buf)?;
        } else if self.table.l2p_seq_of(lpn) <= snap {
            self.base.read_committed(lpn, buf)?;
        } else {
            match self.table.version_at(lpn, snap) {
                Some((chain_len, at)) => {
                    match at {
                        Some(ppa) => {
                            self.base.read_at(ppa, buf)?;
                        }
                        // The page did not exist at the snapshot.
                        None => buf.fill(0),
                    }
                    let now = self.base.clock().now();
                    self.base.recorder().record_span(
                        OpClass::VersionChainLen,
                        tid,
                        chain_len as u64,
                        now,
                        now,
                    );
                }
                // Nothing retained that old: every version the snapshot
                // could see has been pruned away or never tracked (a
                // pre-MVCC page) — the committed copy is the best answer.
                None => self.base.read_committed(lpn, buf)?,
            }
        }
        let t_end = self.base.clock().now();
        self.base
            .recorder()
            .record_span(OpClass::SnapshotRead, tid, lpn, t_start, t_end);
        Ok(())
    }

    /// Routes a read of `lpn` through the staged (committed but not yet
    /// folded) version if one exists. Returns `true` if it served the
    /// read. The X-L2P entry is consulted at read time, so GC relocations
    /// of the staged page are chased for free.
    fn read_staged(&mut self, lpn: Lpn, buf: &mut [u8]) -> Result<bool> {
        let Some(&tid) = self.staged_writers.get(&lpn) else {
            return Ok(false);
        };
        let Some(entry) = self.table.lookup(tid, lpn) else {
            return Ok(false);
        };
        let ppa = entry.ppa;
        self.base.read_at(ppa, buf)?;
        Ok(true)
    }

    /// Pre-write bookkeeping shared by `write_tx` and `submit_tx`: ensure
    /// the X-L2P table can absorb an entry for `(tid, lpn)`.
    fn reserve_tx_slot(&mut self, tid: Tid, lpn: Lpn) -> Result<()> {
        // A reused transaction id rewriting a page whose entry is still
        // *Committed* would repurpose that entry — erasing the only
        // persistent record of the earlier commit's fold. Persist the L2P
        // (releasing committed entries) first, so the fold is durable
        // before the slot is reused.
        if self
            .table
            .lookup(tid, lpn)
            .is_some_and(|e| e.status == crate::xl2p::TxStatus::Committed)
        {
            self.checkpoint_and_release()?;
        }
        // Make room: committed entries become releasable after an L2P
        // checkpoint; a table full of *active* entries is a host error.
        if self.table.lookup(tid, lpn).is_none() && self.table.is_full() {
            if self.table.committed_len() > 0 {
                self.checkpoint_and_release()?;
            }
            if self.table.is_full() {
                return Err(DevError::XL2pFull);
            }
        }
        Ok(())
    }

    /// Post-write bookkeeping shared by `write_tx` and `submit_tx`.
    fn record_tx_write(&mut self, tid: Tid, lpn: Lpn, ppa: xftl_flash::Ppa) {
        match self.table.upsert(tid, lpn, ppa) {
            Ok(None) => {}
            Ok(Some(superseded)) => {
                // The transaction rewrote its own page: the intermediate
                // version is garbage immediately.
                self.base.invalidate(superseded);
            }
            Err(Xl2pError::Full) => unreachable!("capacity checked by reserve_tx_slot"),
            Err(Xl2pError::Conflict) => unreachable!("upsert runs no conflict checks"),
        }
    }

    /// Number of live X-L2P entries (for tests and stats).
    pub fn xl2p_len(&self) -> usize {
        self.table.len()
    }

    /// FTL-attributed statistics.
    pub fn stats(&self) -> &FtlStats {
        self.base.stats()
    }

    /// Raw media statistics.
    pub fn flash_stats(&self) -> xftl_flash::FlashStats {
        self.base.flash_stats()
    }

    /// Resets statistics between experiment phases.
    pub fn reset_stats(&mut self) {
        self.base.reset_stats();
    }

    /// Shared simulated clock.
    pub fn clock(&self) -> SimClock {
        self.base.clock()
    }

    /// Powers down, keeping only the flash medium.
    pub fn into_chip(self) -> FlashChip {
        self.base.into_chip()
    }

    /// Direct engine access, for failure injection in tests.
    pub fn base_mut(&mut self) -> &mut FtlBase {
        &mut self.base
    }

    /// Read-only engine access, for the verify oracle's audits.
    pub fn base(&self) -> &FtlBase {
        &self.base
    }

    /// Read-only X-L2P table access, for the verify oracle's audits.
    pub fn xl2p(&self) -> &Xl2pTable {
        &self.table
    }

    /// Transactions staged in the open commit group (submitted, visible,
    /// not yet durable), in submission order — for audits and tests.
    pub fn staged_tids(&self) -> &[Tid] {
        &self.staged
    }

    /// True if `lpn` has a staged commit fold that the L2P table does not
    /// reflect yet — for audits.
    pub fn lpn_has_staged_fold(&self, lpn: Lpn) -> bool {
        self.staged_writers.contains_key(&lpn)
    }

    /// The commit-sequence snapshot `tid` is reading at, if it began one
    /// that has not yet resolved (commit, abort, or conflict).
    pub fn snapshot_of(&self, tid: Tid) -> Option<u64> {
        self.snapshots.get(&tid).copied()
    }

    /// Number of active snapshot transactions.
    pub fn active_snapshots(&self) -> usize {
        self.snapshots.len()
    }

    /// Current MVCC visibility clock (RAM-only; resets at recovery).
    pub fn commit_seq(&self) -> u64 {
        self.commit_seq
    }
}

impl BlockDevice for XFtl {
    fn page_size(&self) -> usize {
        self.base.page_size()
    }

    fn capacity_pages(&self) -> u64 {
        self.base.capacity_pages()
    }

    fn read(&mut self, lpn: Lpn, buf: &mut [u8]) -> Result<()> {
        self.base.counters_mut().host_reads += 1;
        // A staged commit's version is visible before it is durable.
        if self.read_staged(lpn, buf)? {
            return Ok(());
        }
        self.base.read_committed(lpn, buf)
    }

    fn write(&mut self, lpn: Lpn, buf: &[u8]) -> Result<()> {
        // A plain write to a staged page must order after the staged
        // fold, or the fold would later clobber it: flush the group.
        if self.staged_writers.contains_key(&lpn) {
            self.flush_staged_commits()?;
        }
        self.base.counters_mut().host_writes += 1;
        self.write_plain(lpn, buf)
    }

    fn trim(&mut self, lpn: Lpn) -> Result<()> {
        if self.staged_writers.contains_key(&lpn) {
            self.flush_staged_commits()?;
        }
        self.base.counters_mut().trims += 1;
        self.trim_plain(lpn)
    }

    fn flush(&mut self) -> Result<()> {
        self.base.counters_mut().flushes += 1;
        // Everything staged must be durable when flush returns.
        self.flush_staged_commits()?;
        // A flush is also a full queue barrier.
        self.base.drain();
        self.queue.retire(CmdId(u64::MAX));
        if self.base.has_dirty_mapping() {
            self.checkpoint_and_release()?;
        }
        Ok(())
    }

    fn counters(&self) -> DevCounters {
        *self.base.counters()
    }

    fn submit(&mut self, cmds: &[IoCmd<'_>]) -> Result<CmdId> {
        // Same ordering rule as the unbatched paths: plain traffic to a
        // staged page forces the group flush first.
        if cmds.iter().any(|c| match c {
            IoCmd::Write { lpn, .. } | IoCmd::Trim { lpn } => self.staged_writers.contains_key(lpn),
            IoCmd::Barrier => false,
        }) {
            self.flush_staged_commits()?;
        }
        self.base.counters_mut().batches += 1;
        let mut done = 0;
        for cmd in cmds {
            match cmd {
                IoCmd::Write { lpn, data } => {
                    self.base.counters_mut().host_writes += 1;
                    done = done.max(self.write_plain_queued(*lpn, data)?);
                }
                IoCmd::Trim { lpn } => {
                    self.base.counters_mut().trims += 1;
                    self.trim_plain(*lpn)?;
                }
                IoCmd::Barrier => {
                    // Ordering without draining: raise the queue's
                    // completion floor over everything issued so far and
                    // over this batch's earlier commands.
                    self.base.counters_mut().barriers += 1;
                    self.queue.raise_barrier();
                    done = done.max(self.queue.horizon());
                    let now = self.base.clock().now();
                    self.base
                        .recorder()
                        .record_span(OpClass::BarrierDispatch, 0, 0, now, now);
                }
            }
        }
        Ok(self.queue.issue(done))
    }

    fn complete_until(&mut self, barrier: CmdId) -> Result<()> {
        if let Some(done) = self.queue.retire(barrier) {
            self.base.wait_for(done);
        }
        Ok(())
    }
}

impl TxBlockDevice for XFtl {
    fn begin(&mut self, tid: Tid) -> Result<()> {
        // tid 0 is plain traffic; it has no transaction to snapshot.
        if tid != 0 {
            self.snapshots.insert(tid, self.commit_seq);
        }
        Ok(())
    }

    fn read_tx(&mut self, tid: Tid, lpn: Lpn, buf: &mut [u8]) -> Result<()> {
        self.base.counters_mut().host_reads += 1;
        // §5.3: if the reader wrote this page, return its own version;
        // otherwise the version its snapshot pins (for a snapshot
        // transaction), or the newest committed copy — which may still be
        // a staged (unflushed) commit's version rather than the L2P's.
        match self.table.lookup(tid, lpn) {
            Some(entry) => {
                let ppa = entry.ppa;
                self.base.read_at(ppa, buf)?;
                Ok(())
            }
            None => {
                if let Some(&snap) = self.snapshots.get(&tid) {
                    return self.read_snapshot(tid, snap, lpn, buf);
                }
                if self.read_staged(lpn, buf)? {
                    return Ok(());
                }
                self.base.read_committed(lpn, buf)
            }
        }
    }

    fn write_tx(&mut self, tid: Tid, lpn: Lpn, buf: &[u8]) -> Result<()> {
        if tid == 0 {
            return self.write(lpn, buf);
        }
        self.base.counters_mut().host_writes += 1;
        self.reserve_tx_slot(tid, lpn)?;
        let ppa = self.base.write_cow(lpn, tid, buf, &mut self.table)?;
        self.record_tx_write(tid, lpn, ppa);
        Ok(())
    }

    fn commit_submit(&mut self, tid: Tid) -> Result<CommitTicket> {
        self.base.counters_mut().commits += 1;
        let now = self.base.clock().now();
        if !self.table.has_tid(tid) {
            // Read-only (or unknown) transaction: nothing to persist —
            // the commit is durable by vacuity, so the ticket is
            // immediate. The queue-barrier duty moves to commit_wait.
            // A read-only snapshot resolves here: release it.
            self.release_snapshot(tid);
            self.base
                .recorder()
                .record_span(OpClass::TxCommit, tid, 0, now, now);
            return Ok(CommitTicket::immediate(tid));
        }
        // A writer transaction needs a durability flush (X-L2P persist +
        // root write) that a read-only device can no longer perform.
        // Refuse at submit time, before the commit becomes visible —
        // commits acknowledged *before* the transition stay readable.
        if self.base.device_state() == DeviceState::ReadOnly {
            return Err(DevError::ReadOnly);
        }
        if let Some(&snap) = self.snapshots.get(&tid) {
            // A snapshot tid recommitting while still staged would fold
            // both commits under one sequence; flush the open group so
            // every commit keeps its own visibility point.
            if self.staged.contains(&tid) {
                self.flush_staged_commits()?;
            }
            // First-committer-wins: if any page this transaction wrote
            // gained a newer committed version after its snapshot, this
            // (later) committer loses and aborts cleanly — its versions
            // feed GC, its write intents release, and the host retries
            // on a fresh snapshot.
            if self.table.check_first_committer(tid, snap).is_err() {
                for ppa in self.table.remove_active_of_tid(tid) {
                    self.base.invalidate(ppa);
                }
                self.release_snapshot(tid);
                // Whatever batches the loser had in flight are dead.
                self.queue.retire(CmdId(u64::MAX));
                self.base.stats_mut().conflict_aborts += 1;
                let t_end = self.base.clock().now();
                self.base
                    .recorder()
                    .record_span(OpClass::ConflictAbort, tid, 0, now, t_end);
                return Err(DevError::Conflict);
            }
        }
        // Step 1 of Figure 4, now: flip statuses in device RAM. The new
        // versions are visible (reads route through the X-L2P entries)
        // from this instant; durability waits for the group flush.
        // Only entries that were still Active belong to *this* commit —
        // leftover Committed entries of a reused tid keep their earlier
        // commit's sequence.
        let lpns: Vec<Lpn> = self
            .table
            .entries_of(tid)
            .filter(|e| e.status == TxStatus::Active)
            .map(|e| e.lpn)
            .collect();
        self.commit_seq += 1;
        let seq = self.commit_seq;
        self.table.mark_committed(tid, seq);
        self.staged_seq_of.insert(tid, seq);
        for lpn in lpns {
            self.staged_writers.insert(lpn, tid);
            self.table.note_committed_version(lpn, seq);
        }
        self.staged.push(tid);
        self.release_snapshot(tid);
        self.base.recorder().record_span(
            OpClass::CommitPipelineDepth,
            tid,
            self.staged.len() as u64,
            now,
            now,
        );
        Ok(CommitTicket::new(tid, CmdId(self.next_group)))
    }

    fn commit_wait(&mut self, ticket: CommitTicket) -> Result<()> {
        if ticket.is_immediate() {
            // Read-only commit: still a full queue barrier, exactly as
            // the blocking command always was.
            self.base.drain();
            self.queue.retire(CmdId(u64::MAX));
            return Ok(());
        }
        // Groups flush in order, so the ticket's group is durable iff its
        // id is already behind the group counter; otherwise it is the
        // open group — flush it (coalescing everything staged so far).
        if ticket.group().0 >= self.next_group {
            self.flush_staged_commits()?;
        }
        // The flush drained the chip at its durability barrier; a ticket
        // from an earlier group has nothing left to wait for.
        Ok(())
    }

    fn abort(&mut self, tid: Tid) -> Result<()> {
        self.base.counters_mut().aborts += 1;
        let t_start = self.base.clock().now();
        // §5.3: two steps, no flash writes — drop the transaction's
        // *active* entries, invalidate their pages. Entries that already
        // committed (and the committed versions in L2P) are untouchable:
        // an abort arriving after a successful commit is a no-op.
        for ppa in self.table.remove_active_of_tid(tid) {
            self.base.invalidate(ppa);
        }
        // An aborting snapshot transaction releases its snapshot (and its
        // write intents, via the entry removal above).
        self.release_snapshot(tid);
        // Whatever batches the aborting host had in flight are dead; no
        // one will wait on their tickets.
        self.queue.retire(CmdId(u64::MAX));
        let t_end = self.base.clock().now();
        self.base
            .recorder()
            .record_span(OpClass::TxAbort, tid, 0, t_start, t_end);
        Ok(())
    }

    fn submit_tx(&mut self, tid: Tid, pages: &[(Lpn, &[u8])]) -> Result<CmdId> {
        // tid 0 is plain traffic: same staged-page ordering rule as
        // `write`/`submit`, or the group's fold would clobber the batch.
        if tid == 0
            && pages
                .iter()
                .any(|(lpn, _)| self.staged_writers.contains_key(lpn))
        {
            self.flush_staged_commits()?;
        }
        self.base.counters_mut().batches += 1;
        let mut done = 0;
        for (lpn, data) in pages {
            self.base.counters_mut().host_writes += 1;
            if tid == 0 {
                done = done.max(self.write_plain_queued(*lpn, data)?);
                continue;
            }
            self.reserve_tx_slot(tid, *lpn)?;
            let (ppa, d) = self
                .base
                .write_cow_queued(*lpn, tid, data, &mut self.table)?;
            done = done.max(d);
            self.record_tx_write(tid, *lpn, ppa);
        }
        // No wait here: commit(tid) drains before the X-L2P table write,
        // so the durability point still covers every page of the batch.
        Ok(self.queue.issue(done))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xftl_flash::{FlashChip, FlashConfig};

    fn dev() -> XFtl {
        let chip = FlashChip::new(FlashConfig::tiny(16), SimClock::new());
        XFtl::format_with_capacity(chip, 32, 8).unwrap()
    }

    fn page(d: &XFtl, byte: u8) -> Vec<u8> {
        vec![byte; d.page_size()]
    }

    #[test]
    fn transactional_write_is_invisible_until_commit() {
        let mut d = dev();
        let old = page(&d, 1);
        let new = page(&d, 2);
        d.write(0, &old).unwrap();
        d.write_tx(7, 0, &new).unwrap();
        let mut out = page(&d, 0);
        // Plain readers (and other transactions) see the committed copy.
        d.read(0, &mut out).unwrap();
        assert_eq!(out, old);
        d.read_tx(9, 0, &mut out).unwrap();
        assert_eq!(out, old);
        // The writer sees its own version.
        d.read_tx(7, 0, &mut out).unwrap();
        assert_eq!(out, new);
        // After commit, everyone sees the new version.
        d.commit(7).unwrap();
        d.read(0, &mut out).unwrap();
        assert_eq!(out, new);
    }

    #[test]
    fn abort_restores_committed_state() {
        let mut d = dev();
        let old = page(&d, 1);
        let new = page(&d, 2);
        d.write(0, &old).unwrap();
        d.write_tx(7, 0, &new).unwrap();
        d.abort(7).unwrap();
        let mut out = page(&d, 0);
        d.read(0, &mut out).unwrap();
        assert_eq!(out, old);
        d.read_tx(7, 0, &mut out).unwrap();
        assert_eq!(out, old, "aborted writer sees committed state again");
        assert_eq!(d.xl2p_len(), 0);
    }

    #[test]
    fn abort_writes_nothing_to_flash() {
        let mut d = dev();
        let a = page(&d, 1);
        d.write_tx(3, 0, &a).unwrap();
        let before = d.flash_stats().programs;
        d.abort(3).unwrap();
        assert_eq!(d.flash_stats().programs, before, "abort is RAM-only");
    }

    #[test]
    fn commit_writes_one_table_page_and_meta() {
        // Roomy table so the committed-release housekeeping threshold
        // (capacity / 2) does not fire inside the measured commit.
        let chip = FlashChip::new(FlashConfig::tiny(16), SimClock::new());
        let mut d = XFtl::format_with_capacity(chip, 32, 24).unwrap();
        let a = page(&d, 1);
        for lpn in 0..5 {
            d.write_tx(3, lpn, &a).unwrap();
        }
        let before = d.flash_stats().programs;
        d.commit(3).unwrap();
        let cost = d.flash_stats().programs - before;
        assert_eq!(cost, 2, "commit = 1 X-L2P page + 1 meta page, got {cost}");
    }

    #[test]
    fn commit_then_crash_is_durable() {
        let mut d = dev();
        let a = page(&d, 0xA1);
        let b = page(&d, 0xB2);
        d.write_tx(5, 3, &a).unwrap();
        d.write_tx(5, 4, &b).unwrap();
        d.commit(5).unwrap();
        // Power loss with no flush after commit.
        let mut d2 = XFtl::recover(d.into_chip()).unwrap();
        let mut out = page(&d2, 0);
        d2.read(3, &mut out).unwrap();
        assert_eq!(out, a);
        d2.read(4, &mut out).unwrap();
        assert_eq!(out, b);
    }

    #[test]
    fn plain_overwrite_survives_a_later_commit_and_crash() {
        // A committed entry for lpn 15 lingers in the X-L2P table after
        // commit(1); the plain overwrite must supersede it, or commit(3)
        // would re-persist the stale entry at a newer table sequence and
        // recovery would fold 22 back over 13.
        let chip = FlashChip::new(FlashConfig::tiny(40), SimClock::new());
        let mut d = XFtl::format_with_capacity(chip, 24, 64).unwrap();
        let old = page(&d, 22);
        let new = page(&d, 13);
        let other = page(&d, 5);
        d.write_tx(1, 15, &old).unwrap();
        d.commit(1).unwrap();
        d.write(15, &new).unwrap();
        d.write_tx(3, 0, &other).unwrap();
        d.commit(3).unwrap();
        let mut d2 = XFtl::recover_with_capacity(d.into_chip(), 64).unwrap();
        let mut out = page(&d2, 0);
        d2.read(15, &mut out).unwrap();
        assert_eq!(
            out, new,
            "stale committed entry resurrected the old version"
        );
        d2.read(0, &mut out).unwrap();
        assert_eq!(out, other);
    }

    #[test]
    fn overlapping_staged_commits_survive_a_crash_in_order() {
        // Two split-phase commits on the same page: the second submit
        // must flush the first group, or one persisted table would hold
        // two committed entries for lpn 7 with no recoverable order.
        let chip = FlashChip::new(FlashConfig::tiny(40), SimClock::new());
        let mut d = XFtl::format_with_capacity(chip, 24, 64).unwrap();
        let first = page(&d, 0x11);
        let second = page(&d, 0x22);
        d.write_tx(1, 7, &first).unwrap();
        let t1 = d.commit_submit(1).unwrap();
        d.write_tx(2, 7, &second).unwrap();
        let t2 = d.commit_submit(2).unwrap();
        d.commit_wait(t2).unwrap();
        d.commit_wait(t1).unwrap();
        let mut d2 = XFtl::recover_with_capacity(d.into_chip(), 64).unwrap();
        let mut out = page(&d2, 0);
        d2.read(7, &mut out).unwrap();
        assert_eq!(out, second, "later committer's version must win recovery");
    }

    #[test]
    fn uncommitted_tx_rolls_back_on_crash() {
        let mut d = dev();
        let old = page(&d, 1);
        let new = page(&d, 2);
        d.write(0, &old).unwrap();
        d.flush().unwrap();
        d.write_tx(9, 0, &new).unwrap();
        d.write_tx(9, 1, &new).unwrap();
        // Crash before commit: the transaction evaporates.
        let mut d2 = XFtl::recover(d.into_chip()).unwrap();
        let mut out = page(&d2, 0);
        d2.read(0, &mut out).unwrap();
        assert_eq!(out, old);
        d2.read(1, &mut out).unwrap();
        assert!(
            out.iter().all(|&x| x == 0),
            "never-committed page reads as zeros"
        );
    }

    #[test]
    fn crash_mid_commit_keeps_old_state() {
        let mut d = dev();
        let old = page(&d, 1);
        let new = page(&d, 2);
        d.write(0, &old).unwrap();
        d.write(1, &old).unwrap();
        d.flush().unwrap();
        d.write_tx(9, 0, &new).unwrap();
        d.write_tx(9, 1, &new).unwrap();
        // Tear the X-L2P table write itself: the commit never became
        // durable, so recovery must roll back.
        d.base_mut().chip_mut().arm_power_fuse(1);
        assert!(d.commit(9).is_err());
        let mut d2 = XFtl::recover(d.into_chip()).unwrap();
        let mut out = page(&d2, 0);
        d2.read(0, &mut out).unwrap();
        assert_eq!(out, old);
        d2.read(1, &mut out).unwrap();
        assert_eq!(out, old);
    }

    #[test]
    fn crash_right_after_table_write_commits() {
        let mut d = dev();
        let old = page(&d, 1);
        let new = page(&d, 2);
        d.write(0, &old).unwrap();
        d.flush().unwrap();
        d.write_tx(9, 0, &new).unwrap();
        // Fuse fires on the *meta* write (2nd program of the commit):
        // table page landed, root did not -> commit is NOT durable.
        d.base_mut().chip_mut().arm_power_fuse(2);
        assert!(d.commit(9).is_err());
        let mut d2 = XFtl::recover(d.into_chip()).unwrap();
        let mut out = page(&d2, 0);
        d2.read(0, &mut out).unwrap();
        assert_eq!(out, old, "commit without root update must roll back");
    }

    #[test]
    fn repeated_writes_by_same_tx_reuse_entry() {
        let mut d = dev();
        let a = page(&d, 1);
        let b = page(&d, 2);
        d.write_tx(4, 0, &a).unwrap();
        d.write_tx(4, 0, &b).unwrap();
        assert_eq!(d.xl2p_len(), 1, "same (tid, lpn) shares one entry");
        let mut out = page(&d, 0);
        d.read_tx(4, 0, &mut out).unwrap();
        assert_eq!(out, b);
        d.commit(4).unwrap();
        d.read(0, &mut out).unwrap();
        assert_eq!(out, b);
    }

    #[test]
    fn xl2p_full_of_active_transactions_errors() {
        let mut d = dev(); // capacity 8
        let a = page(&d, 1);
        for tid in 1..=8u64 {
            d.write_tx(tid, tid - 1, &a).unwrap();
        }
        assert_eq!(d.write_tx(9, 20, &a), Err(DevError::XL2pFull));
        // Committing one frees a slot.
        d.commit(1).unwrap();
        assert!(d.write_tx(9, 20, &a).is_ok());
    }

    #[test]
    fn xl2p_full_recovers_via_abort() {
        // The table-full abort path: when every slot belongs to an active
        // transaction, aborting one must free its slots immediately (no
        // checkpoint needed) and leave the committed image untouched.
        let mut d = dev(); // capacity 8
        let a = page(&d, 1);
        for tid in 1..=8u64 {
            d.write_tx(tid, tid - 1, &a).unwrap();
        }
        assert_eq!(d.write_tx(9, 20, &a), Err(DevError::XL2pFull));
        d.abort(3).unwrap();
        assert_eq!(d.xl2p_len(), 7, "abort released exactly tid 3's slot");
        d.write_tx(9, 20, &a).unwrap();
        // The failed write left no trace: tid 9 owns only lpn 20.
        let mut out = page(&d, 0);
        d.read_tx(9, 2, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0), "aborted tid 3's page is gone");
        d.commit(9).unwrap();
        d.read(20, &mut out).unwrap();
        assert_eq!(out, a);
    }

    #[test]
    fn committed_entries_released_by_barrier() {
        let mut d = dev();
        let a = page(&d, 1);
        d.write_tx(1, 0, &a).unwrap();
        d.commit(1).unwrap();
        assert_eq!(d.xl2p_len(), 1, "committed entry parked until checkpoint");
        d.flush().unwrap();
        assert_eq!(d.xl2p_len(), 0, "checkpoint releases committed entries");
    }

    #[test]
    fn two_transactions_are_isolated() {
        let mut d = dev();
        let base_v = page(&d, 0x10);
        let v1 = page(&d, 0x11);
        let v2 = page(&d, 0x22);
        d.write(5, &base_v).unwrap();
        d.write_tx(1, 5, &v1).unwrap();
        // A different page for tx 2 (SQLite is single-writer per file; the
        // device itself does not arbitrate write-write conflicts).
        d.write_tx(2, 6, &v2).unwrap();
        let mut out = page(&d, 0);
        d.read_tx(1, 5, &mut out).unwrap();
        assert_eq!(out, v1);
        d.read_tx(2, 5, &mut out).unwrap();
        assert_eq!(out, base_v);
        d.read_tx(1, 6, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0));
        d.read_tx(2, 6, &mut out).unwrap();
        assert_eq!(out, v2);
        d.commit(1).unwrap();
        d.abort(2).unwrap();
        d.read(5, &mut out).unwrap();
        assert_eq!(out, v1);
        d.read(6, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0));
    }

    #[test]
    fn committed_data_survives_gc_and_crash() {
        let mut d = dev();
        // Commit a transaction, then churn plain writes to force GC to
        // relocate the committed pages before any checkpoint.
        let keep = page(&d, 0x77);
        d.write_tx(1, 30, &keep).unwrap();
        d.write_tx(1, 31, &keep).unwrap();
        d.commit(1).unwrap();
        let junk = page(&d, 0x01);
        for i in 0..300u64 {
            d.write(i % 6, &junk).unwrap();
        }
        assert!(d.stats().gc_runs > 0);
        let mut d2 = XFtl::recover(d.into_chip()).unwrap();
        let mut out = page(&d2, 0);
        d2.read(30, &mut out).unwrap();
        assert_eq!(out, keep);
        d2.read(31, &mut out).unwrap();
        assert_eq!(out, keep);
    }

    #[test]
    fn active_tx_pages_survive_gc() {
        let mut d = dev();
        let old = page(&d, 0x0F);
        let new = page(&d, 0xF0);
        d.write(30, &old).unwrap();
        d.write_tx(1, 30, &new).unwrap();
        // Churn to force GC while the transaction is still active: both the
        // old committed version and the new pinned version must survive.
        let junk = page(&d, 2);
        for i in 0..300u64 {
            d.write(i % 6, &junk).unwrap();
        }
        assert!(d.stats().gc_runs > 0);
        let mut out = page(&d, 0);
        d.read(30, &mut out).unwrap();
        assert_eq!(out, old);
        d.read_tx(1, 30, &mut out).unwrap();
        assert_eq!(out, new);
        d.commit(1).unwrap();
        d.read(30, &mut out).unwrap();
        assert_eq!(out, new);
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut d = dev();
        let a = page(&d, 5);
        d.write_tx(1, 2, &a).unwrap();
        d.commit(1).unwrap();
        let d2 = XFtl::recover(d.into_chip()).unwrap();
        let mut d3 = XFtl::recover(d2.into_chip()).unwrap();
        let mut out = page(&d3, 0);
        d3.read(2, &mut out).unwrap();
        assert_eq!(out, a);
    }

    #[test]
    fn commit_of_unknown_tid_is_noop() {
        let mut d = dev();
        assert!(d.commit(42).is_ok());
        assert!(d.abort(42).is_ok());
    }

    #[test]
    fn group_commit_coalesces_concurrent_submits_into_one_meta_program() {
        let chip = FlashChip::new(FlashConfig::tiny(16), SimClock::new());
        let mut d = XFtl::format_with_capacity(chip, 32, 24).unwrap();
        let a = page(&d, 0xA1);
        let b = page(&d, 0xB2);
        d.write_tx(1, 0, &a).unwrap();
        d.write_tx(2, 1, &b).unwrap();
        let before = d.flash_stats().programs;
        let t1 = d.commit_submit(1).unwrap();
        let t2 = d.commit_submit(2).unwrap();
        assert_eq!(
            d.flash_stats().programs,
            before,
            "commit_submit stages without programming"
        );
        assert_eq!(d.staged_tids(), &[1, 2]);
        // Redeeming the later ticket flushes the whole group.
        d.commit_wait(t2).unwrap();
        let cost = d.flash_stats().programs - before;
        assert_eq!(cost, 2, "two commits share 1 X-L2P page + 1 meta page");
        // The earlier ticket's group already flushed: free.
        d.commit_wait(t1).unwrap();
        assert_eq!(d.flash_stats().programs - before, 2);
        assert_eq!(d.stats().group_commit_flushes, 1);
        assert_eq!(d.stats().commits_coalesced, 2);
        let mut out = page(&d, 0);
        d.read(0, &mut out).unwrap();
        assert_eq!(out, a);
        d.read(1, &mut out).unwrap();
        assert_eq!(out, b);
    }

    #[test]
    fn staged_commit_is_visible_before_its_group_flushes() {
        let mut d = dev();
        let old = page(&d, 1);
        let new = page(&d, 2);
        d.write(0, &old).unwrap();
        d.write_tx(7, 0, &new).unwrap();
        let ticket = d.commit_submit(7).unwrap();
        let before = d.flash_stats().programs;
        let mut out = page(&d, 0);
        // Plain readers and other transactions see the staged version...
        d.read(0, &mut out).unwrap();
        assert_eq!(out, new);
        d.read_tx(9, 0, &mut out).unwrap();
        assert_eq!(out, new);
        // ...without the read forcing the flush.
        assert_eq!(d.flash_stats().programs, before, "reads program nothing");
        assert_eq!(d.staged_tids(), &[7]);
        d.commit_wait(ticket).unwrap();
        assert!(d.staged_tids().is_empty());
    }

    #[test]
    fn crash_between_submit_and_wait_loses_the_whole_transaction() {
        let mut d = dev();
        let old = page(&d, 1);
        let new = page(&d, 2);
        d.write(0, &old).unwrap();
        d.write(1, &old).unwrap();
        d.flush().unwrap();
        d.write_tx(9, 0, &new).unwrap();
        d.write_tx(9, 1, &new).unwrap();
        let ticket = d.commit_submit(9).unwrap();
        assert!(!ticket.is_immediate());
        // Power fails before commit_wait: the unacknowledged commit must
        // vanish whole — all-or-nothing, never half.
        let mut d2 = XFtl::recover(d.into_chip()).unwrap();
        let mut out = page(&d2, 0);
        d2.read(0, &mut out).unwrap();
        assert_eq!(out, old);
        d2.read(1, &mut out).unwrap();
        assert_eq!(out, old);
    }

    #[test]
    fn plain_write_to_staged_page_flushes_the_group_first() {
        let mut d = dev();
        let v1 = page(&d, 1);
        let v2 = page(&d, 2);
        let v3 = page(&d, 3);
        d.write(0, &v1).unwrap();
        d.write_tx(4, 0, &v2).unwrap();
        let ticket = d.commit_submit(4).unwrap();
        // The plain write must order after the staged fold.
        d.write(0, &v3).unwrap();
        assert_eq!(d.stats().group_commit_flushes, 1, "conflict forced flush");
        let mut out = page(&d, 0);
        d.read(0, &mut out).unwrap();
        assert_eq!(out, v3, "later plain write wins over the staged commit");
        d.commit_wait(ticket).unwrap();
        d.read(0, &mut out).unwrap();
        assert_eq!(out, v3);
        // And the order survives a crash.
        let mut d2 = XFtl::recover(d.into_chip()).unwrap();
        d2.read(0, &mut out).unwrap();
        assert_eq!(out, v3);
    }

    #[test]
    fn pipelined_commits_beat_blocking_commits() {
        // tx N+1's data writes overlap tx N's in-flight commit: the
        // split-phase pipeline must finish the same work in less
        // simulated time than the blocking loop.
        let run = |pipelined: bool| -> u64 {
            let cfg = xftl_flash::FlashConfigBuilder::tiny().channels(4).build();
            let chip = FlashChip::new(cfg, SimClock::new());
            let mut d = XFtl::format_with_capacity(chip, 64, 64).unwrap();
            let clock = d.clock();
            let data = vec![0x5Au8; d.page_size()];
            let t0 = clock.now();
            let mut tickets = Vec::new();
            for tid in 1..=8u64 {
                let batch: Vec<(Lpn, &[u8])> =
                    (0..4u64).map(|i| (tid * 4 + i, &data[..])).collect();
                d.submit_tx(tid, &batch).unwrap();
                if pipelined {
                    tickets.push(d.commit_submit(tid).unwrap());
                } else {
                    d.commit(tid).unwrap();
                }
            }
            for t in tickets {
                d.commit_wait(t).unwrap();
            }
            clock.now() - t0
        };
        let blocking = run(false);
        let pipelined = run(true);
        assert!(
            pipelined < blocking,
            "pipelined commits ({pipelined} ns) must beat blocking ({blocking} ns)"
        );
    }

    #[test]
    fn batched_tx_writes_overlap_across_channels() {
        let cfg = xftl_flash::FlashConfigBuilder::tiny().channels(4).build();
        let chip = FlashChip::new(cfg, SimClock::new());
        let mut d = XFtl::format_with_capacity(chip, 32, 24).unwrap();
        let clock = d.clock();
        let data = vec![0x5Au8; d.page_size()];
        let t0 = clock.now();
        for lpn in 0..4u64 {
            d.write_tx(1, lpn, &data).unwrap();
        }
        d.commit(1).unwrap();
        let serial = clock.now() - t0;
        let batch: Vec<(Lpn, &[u8])> = (4..8u64).map(|lpn| (lpn, &data[..])).collect();
        let t1 = clock.now();
        d.submit_tx(2, &batch).unwrap();
        d.commit(2).unwrap();
        let batched = clock.now() - t1;
        assert!(
            batched < serial,
            "queued tx batch + commit ({batched} ns) must beat serial ({serial} ns)"
        );
        let mut out = page(&d, 0);
        for lpn in 4..8u64 {
            d.read(lpn, &mut out).unwrap();
            assert_eq!(out, data, "lpn {lpn} committed");
        }
        assert_eq!(d.counters().batches, 1);
    }

    #[test]
    fn batched_tx_writes_roll_back_on_crash_before_commit() {
        let mut d = dev();
        let old = page(&d, 1);
        let new = page(&d, 2);
        d.write(0, &old).unwrap();
        d.flush().unwrap();
        let batch: Vec<(Lpn, &[u8])> = vec![(0, &new[..]), (1, &new[..])];
        d.submit_tx(5, &batch).unwrap();
        // Crash with the batch dispatched but never committed.
        let mut d2 = XFtl::recover(d.into_chip()).unwrap();
        let mut out = page(&d2, 0);
        d2.read(0, &mut out).unwrap();
        assert_eq!(out, old);
    }

    #[test]
    fn disjoint_snapshot_writers_both_commit() {
        let mut d = dev();
        let a = page(&d, 0xA1);
        let b = page(&d, 0xB2);
        d.begin(1).unwrap();
        d.begin(2).unwrap();
        d.write_tx(1, 0, &a).unwrap();
        d.write_tx(2, 1, &b).unwrap();
        assert_eq!(d.xl2p().writers_of(0), &[1]);
        assert_eq!(d.xl2p().writers_of(1), &[2]);
        let t1 = d.commit_submit(1).unwrap();
        let t2 = d.commit_submit(2).unwrap();
        d.commit_wait(t2).unwrap();
        d.commit_wait(t1).unwrap();
        let mut out = page(&d, 0);
        d.read(0, &mut out).unwrap();
        assert_eq!(out, a);
        d.read(1, &mut out).unwrap();
        assert_eq!(out, b);
        assert_eq!(d.stats().conflict_aborts, 0);
        assert_eq!(d.active_snapshots(), 0);
    }

    #[test]
    fn overlapping_snapshot_writers_first_committer_wins() {
        let mut d = dev();
        let base_v = page(&d, 0x10);
        let v1 = page(&d, 0x11);
        let v2 = page(&d, 0x22);
        d.write(5, &base_v).unwrap();
        d.begin(1).unwrap();
        d.begin(2).unwrap();
        d.write_tx(1, 5, &v1).unwrap();
        d.write_tx(2, 5, &v2).unwrap();
        assert_eq!(d.xl2p().writers_of(5), &[1, 2], "both intents registered");
        // First committer wins...
        d.commit(1).unwrap();
        // ...and the second deterministically loses, aborting cleanly.
        assert_eq!(d.commit_submit(2), Err(DevError::Conflict));
        assert_eq!(d.stats().conflict_aborts, 1);
        assert_eq!(d.xl2p().writers_of(5), &[] as &[Tid], "intents released");
        assert_eq!(d.active_snapshots(), 0, "loser's snapshot released");
        let mut out = page(&d, 0);
        d.read(5, &mut out).unwrap();
        assert_eq!(out, v1, "winner's version is current");
        // The loser retries on a fresh snapshot and succeeds.
        d.begin(2).unwrap();
        d.write_tx(2, 5, &v2).unwrap();
        d.commit(2).unwrap();
        d.read(5, &mut out).unwrap();
        assert_eq!(out, v2);
    }

    #[test]
    fn snapshot_reader_ignores_concurrent_commits() {
        let mut d = dev();
        let v1 = page(&d, 1);
        let v2 = page(&d, 2);
        d.write(0, &v1).unwrap();
        d.begin(9).unwrap();
        let mut out = page(&d, 0);
        d.read_tx(9, 0, &mut out).unwrap();
        assert_eq!(out, v1);
        // A concurrent writer commits a newer version: staged first...
        d.begin(2).unwrap();
        d.write_tx(2, 0, &v2).unwrap();
        let t = d.commit_submit(2).unwrap();
        d.read_tx(9, 0, &mut out).unwrap();
        assert_eq!(out, v1, "staged commit is invisible to the snapshot");
        // ...then folded into the L2P (group flush): still invisible.
        d.commit_wait(t).unwrap();
        d.read_tx(9, 0, &mut out).unwrap();
        assert_eq!(out, v1, "folded commit is served from the version chain");
        assert!(d.xl2p().retained_versions() > 0);
        // Plain readers see the newest version all along.
        d.read(0, &mut out).unwrap();
        assert_eq!(out, v2);
        // The read-only snapshot commits; its pinned version is pruned.
        d.commit(9).unwrap();
        assert_eq!(d.xl2p().retained_versions(), 0);
        assert!(d.stats().versions_pruned > 0);
        d.read_tx(9, 0, &mut out).unwrap();
        assert_eq!(out, v2, "after release the tid reads committed state");
    }

    #[test]
    fn snapshot_survives_plain_overwrites_and_trims() {
        let mut d = dev();
        let v1 = page(&d, 1);
        let v2 = page(&d, 2);
        d.write(3, &v1).unwrap();
        d.begin(7).unwrap();
        // Plain traffic races past the snapshot: overwrite, then trim.
        d.write(3, &v2).unwrap();
        let mut out = page(&d, 0);
        d.read_tx(7, 3, &mut out).unwrap();
        assert_eq!(out, v1, "snapshot outlives a plain overwrite");
        d.trim(3).unwrap();
        d.read_tx(7, 3, &mut out).unwrap();
        assert_eq!(out, v1, "snapshot outlives a trim");
        d.read(3, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0), "plain readers see the trim");
        // A page born after the snapshot reads as zeros for the snapshot.
        d.write(4, &v2).unwrap();
        d.read_tx(7, 4, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0), "not yet born at the snapshot");
        d.abort(7).unwrap();
        assert_eq!(d.xl2p().retained_versions(), 0);
    }

    #[test]
    fn snapshot_abort_releases_intents_and_versions() {
        let mut d = dev();
        let a = page(&d, 1);
        d.begin(4).unwrap();
        d.write_tx(4, 0, &a).unwrap();
        assert_eq!(d.xl2p().writers_of(0), &[4]);
        let before = d.flash_stats().programs;
        d.abort(4).unwrap();
        assert_eq!(d.flash_stats().programs, before, "abort stays RAM-only");
        assert_eq!(d.xl2p().writers_of(0), &[] as &[Tid]);
        assert_eq!(d.active_snapshots(), 0);
        // The page is free for the next writer, no conflict.
        d.begin(5).unwrap();
        d.write_tx(5, 0, &a).unwrap();
        d.commit(5).unwrap();
    }

    #[test]
    fn conflict_check_scopes_to_written_pages_only() {
        // A snapshot writer conflicts only on pages *it wrote* — commits
        // to other pages do not poison it (no false positives).
        let mut d = dev();
        let a = page(&d, 1);
        let b = page(&d, 2);
        d.begin(1).unwrap();
        d.write_tx(1, 0, &a).unwrap();
        // Concurrent commits to a different page and a plain write.
        d.begin(2).unwrap();
        d.write_tx(2, 1, &b).unwrap();
        d.commit(2).unwrap();
        d.write(2, &b).unwrap();
        d.commit(1).unwrap();
        let mut out = page(&d, 0);
        d.read(0, &mut out).unwrap();
        assert_eq!(out, a);
        assert_eq!(d.stats().conflict_aborts, 0);
    }

    #[test]
    fn plain_overwrite_conflicts_snapshot_writer() {
        // First-committer-wins also guards against plain (tid 0) traffic
        // overwriting a page a snapshot writer has in flight.
        let mut d = dev();
        let a = page(&d, 1);
        let b = page(&d, 2);
        d.write(0, &a).unwrap();
        d.begin(1).unwrap();
        d.write_tx(1, 0, &b).unwrap();
        d.write(0, &b).unwrap(); // plain overwrite wins the race
        assert_eq!(d.commit_submit(1), Err(DevError::Conflict));
    }

    #[test]
    fn snapshots_die_at_power_loss() {
        let mut d = dev();
        let v1 = page(&d, 1);
        let v2 = page(&d, 2);
        d.write(0, &v1).unwrap();
        d.begin(9).unwrap();
        d.begin(3).unwrap();
        d.write_tx(3, 0, &v2).unwrap();
        d.commit(3).unwrap(); // retained v1 pinned for tid 9's snapshot
        assert!(d.xl2p().retained_versions() > 0);
        let mut d2 = XFtl::recover(d.into_chip()).unwrap();
        assert_eq!(d2.active_snapshots(), 0);
        assert_eq!(d2.xl2p().retained_versions(), 0);
        assert_eq!(d2.commit_seq(), 0, "the visibility clock resets");
        let mut out = page(&d2, 0);
        d2.read_tx(9, 0, &mut out).unwrap();
        assert_eq!(out, v2, "post-crash reads are read-committed");
    }

    #[test]
    fn retained_versions_survive_gc_relocation() {
        let mut d = dev();
        let keep = page(&d, 0x77);
        let newer = page(&d, 0x88);
        d.write(30, &keep).unwrap();
        d.begin(9).unwrap();
        d.write(30, &newer).unwrap(); // v_keep retained for tid 9
                                      // Churn plain writes to force GC while the chain pins v_keep.
        let junk = page(&d, 0x01);
        for i in 0..300u64 {
            d.write(i % 6, &junk).unwrap();
        }
        assert!(d.stats().gc_runs > 0);
        let mut out = page(&d, 0);
        d.read_tx(9, 30, &mut out).unwrap();
        assert_eq!(out, keep, "GC relocation chased the retained version");
        d.read(30, &mut out).unwrap();
        assert_eq!(out, newer);
        d.abort(9).unwrap();
    }

    #[test]
    fn interleaved_plain_and_tx_writes_recover_in_order() {
        // A tid-0 write *after* a commit to the same page must win, and
        // one *before* the tx write must lose, even across a crash.
        let mut d = dev();
        let v1 = page(&d, 1);
        let v2 = page(&d, 2);
        let v3 = page(&d, 3);
        d.write(0, &v1).unwrap(); // plain
        d.write_tx(1, 0, &v2).unwrap();
        d.commit(1).unwrap(); // v2 current
        d.write(0, &v3).unwrap(); // plain, after commit: v3 current
        let mut d2 = XFtl::recover(d.into_chip()).unwrap();
        let mut out = page(&d2, 0);
        d2.read(0, &mut out).unwrap();
        assert_eq!(out, v3);
    }
}
