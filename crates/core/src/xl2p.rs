//! The transactional logical-to-physical mapping table (X-L2P).
//!
//! This is the data structure at the heart of the paper (Figure 2). Each
//! entry `(tid, lpn, new_ppa, status)` records that transaction `tid` wrote
//! a new, still-uncommitted (or committed-but-not-yet-checkpointed) version
//! of logical page `lpn` at physical address `new_ppa`. The entry serves
//! the two purposes §5.3 describes:
//!
//! 1. it routes `read(tid, p)` to the transaction's own version while
//!    other readers keep seeing the committed copy in the L2P table, and
//! 2. it *pins* the new version against garbage collection while keeping
//!    the old committed version alive for rollback.
//!
//! The paper sizes each entry at 16 bytes and the whole table at 500
//! entries (8 KB — one flash page) or 1000 entries (16 KB — two pages);
//! [`Xl2pTable::encode_pages`] reproduces that layout exactly so the table
//! is persisted copy-on-write in whole flash pages at commit time.

use std::collections::HashMap;
use std::fmt;

use xftl_flash::{Oob, PageKind, Ppa};
use xftl_ftl::{DevError, GcHook, Lpn, Tid};

/// Errors raised by the X-L2P table itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Xl2pError {
    /// The table holds `capacity` entries and none can be evicted here:
    /// the caller must release committed entries (checkpoint) or make the
    /// host commit/abort an active transaction first.
    Full,
    /// First-committer-wins validation failed: some page this snapshot
    /// transaction wrote already has a committed version newer than the
    /// transaction's begin snapshot. The loser must abort and retry on a
    /// fresh snapshot.
    Conflict,
}

impl fmt::Display for Xl2pError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Xl2pError::Full => write!(f, "X-L2P table is full"),
            Xl2pError::Conflict => {
                write!(f, "snapshot write conflicts with a newer committed version")
            }
        }
    }
}

impl std::error::Error for Xl2pError {}

impl From<Xl2pError> for DevError {
    fn from(e: Xl2pError) -> Self {
        match e {
            Xl2pError::Full => DevError::XL2pFull,
            Xl2pError::Conflict => DevError::Conflict,
        }
    }
}

/// Status of the transaction owning an X-L2P entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxStatus {
    /// The transaction is in flight; its old versions are pinned.
    Active,
    /// Commit durably recorded; entry awaits release by the next L2P
    /// checkpoint.
    Committed,
}

/// One X-L2P entry. 16 bytes on flash: `tid:u32, lpn:u32, ppa:u32,
/// status:u32` — matching the paper's entry size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// Owning transaction.
    pub tid: Tid,
    /// Logical page the transaction wrote.
    pub lpn: Lpn,
    /// Physical address of the transaction's newest version of `lpn`.
    pub ppa: Ppa,
    /// Owning transaction's status.
    pub status: TxStatus,
    /// Commit-sequence ordinal stamped when the entry turns Committed
    /// (0 while Active). RAM-only bookkeeping — not part of the 16-byte
    /// flash layout — but it governs the *order* entries are serialized
    /// in: committed entries persist ascending by ordinal, so recovery
    /// can fold two commits of the same page in commit order simply by
    /// applying them in decode order.
    pub seq: u64,
}

/// Magic prefix of a persisted X-L2P table page ("XL2PTBLE").
const TABLE_MAGIC: u64 = 0x584C_3250_5442_4C45;
/// Bytes per persisted entry.
const ENTRY_BYTES: usize = 16;
/// Page header: magic + entry count.
const PAGE_HEADER: usize = 16;

/// Little-endian u64 at `off` (callers guarantee the bounds).
fn get_u64(page: &[u8], off: usize) -> u64 {
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&page[off..off + 8]);
    u64::from_le_bytes(bytes)
}

/// Little-endian u32 at `off` (callers guarantee the bounds).
fn get_u32(page: &[u8], off: usize) -> u32 {
    let mut bytes = [0u8; 4];
    bytes.copy_from_slice(&page[off..off + 4]);
    u32::from_le_bytes(bytes)
}

/// One retained pre-image in a per-LPN version chain: the page version
/// that was current until commit sequence `seq` superseded it. `ppa` is
/// `None` when the page had no committed copy yet (reads as zeros).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Version {
    /// Commit sequence at which this version *became* current (0 for the
    /// primordial "never written" version).
    pub seq: u64,
    /// Flash location of the retained copy, or `None` for an unwritten /
    /// trimmed page.
    pub ppa: Option<Ppa>,
}

/// The in-DRAM X-L2P table with O(1) lookup by `(tid, lpn)` and by `tid`.
///
/// Since the MVCC work it also owns the snapshot-read side tables. All of
/// them are RAM-only and never serialized: snapshots do not survive power
/// loss, and recovery rebuilds page validity from L2P membership, so
/// retained chain versions orphaned by a crash become garbage for free.
#[derive(Debug)]
pub struct Xl2pTable {
    capacity: usize,
    entries: Vec<Entry>,
    by_page: HashMap<(Tid, Lpn), usize>,
    by_tid: HashMap<Tid, Vec<usize>>,
    /// Per-LPN chains of retained superseded versions, ascending by `seq`.
    chains: HashMap<Lpn, Vec<Version>>,
    /// Commit sequence of the newest committed version of each LPN — the
    /// value first-committer-wins validation compares snapshots against.
    /// Bumped at `commit_submit` (visibility point), ahead of the fold.
    current_seq: HashMap<Lpn, u64>,
    /// Commit sequence of the version the L2P table currently points at.
    /// Trails `current_seq` while a staged commit awaits its group flush.
    l2p_seq: HashMap<Lpn, u64>,
    /// Per-LPN write-intent table: every transaction holding an *active*
    /// X-L2P entry for the page. Mirrors the active entries exactly
    /// (intents register at `upsert`, release at `mark_committed` or
    /// entry removal); replaces the old implicit one-writer-per-page
    /// assumption.
    intents: HashMap<Lpn, Vec<Tid>>,
}

impl Xl2pTable {
    /// Creates an empty table holding at most `capacity` entries (the
    /// paper uses 500 or 1000).
    pub fn new(capacity: usize) -> Self {
        Xl2pTable {
            capacity,
            entries: Vec::with_capacity(capacity),
            by_page: HashMap::new(),
            by_tid: HashMap::new(),
            chains: HashMap::new(),
            current_seq: HashMap::new(),
            l2p_seq: HashMap::new(),
            intents: HashMap::new(),
        }
    }

    /// Configured maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if no further entry can be inserted.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Number of entries with committed status (releasable after the next
    /// L2P checkpoint).
    pub fn committed_len(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.status == TxStatus::Committed)
            .count()
    }

    /// All entries in insertion order, for audits and diagnostics.
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.entries.iter()
    }

    /// The entry for `(tid, lpn)`, if any.
    pub fn lookup(&self, tid: Tid, lpn: Lpn) -> Option<&Entry> {
        self.by_page.get(&(tid, lpn)).map(|&i| &self.entries[i])
    }

    /// All entries belonging to `tid`.
    pub fn entries_of(&self, tid: Tid) -> impl Iterator<Item = &Entry> {
        self.by_tid
            .get(&tid)
            .into_iter()
            .flat_map(|idxs| idxs.iter().map(|&i| &self.entries[i]))
    }

    /// True if `tid` owns any entry.
    pub fn has_tid(&self, tid: Tid) -> bool {
        self.by_tid.contains_key(&tid)
    }

    /// Inserts a new active entry, or updates the physical address of an
    /// existing `(tid, lpn)` entry (a transaction re-writing the same page
    /// reuses its slot — §5.3). Returns the superseded physical address
    /// **only if it was an uncommitted intermediate version** (safe to
    /// invalidate); a *committed* entry's old address is owned by the L2P
    /// fold and is never reported for invalidation. Errors with
    /// [`Xl2pError::Full`] when the table cannot absorb a new entry.
    pub fn upsert(&mut self, tid: Tid, lpn: Lpn, ppa: Ppa) -> Result<Option<Ppa>, Xl2pError> {
        if let Some(&i) = self.by_page.get(&(tid, lpn)) {
            let old = self.entries[i].ppa;
            let was_active = self.entries[i].status == TxStatus::Active;
            self.entries[i].ppa = ppa;
            self.entries[i].status = TxStatus::Active;
            self.entries[i].seq = 0;
            if !was_active {
                // A committed slot repurposed for a new write becomes an
                // intent again.
                self.intents.entry(lpn).or_default().push(tid);
            }
            return Ok(was_active.then_some(old));
        }
        if self.is_full() {
            return Err(Xl2pError::Full);
        }
        let i = self.entries.len();
        self.entries.push(Entry {
            tid,
            lpn,
            ppa,
            status: TxStatus::Active,
            seq: 0,
        });
        self.by_page.insert((tid, lpn), i);
        self.by_tid.entry(tid).or_default().push(i);
        self.intents.entry(lpn).or_default().push(tid);
        Ok(None)
    }

    /// Flips every entry of `tid` to committed, stamping the commit's
    /// sequence ordinal (see [`Entry::seq`]). Returns the number flipped.
    /// The committed pages stop being write *intents* — the tid has won
    /// them — so they leave the intent table here.
    pub fn mark_committed(&mut self, tid: Tid, seq: u64) -> usize {
        let mut n = 0;
        let mut lpns = Vec::new();
        if let Some(idxs) = self.by_tid.get(&tid) {
            for &i in idxs {
                if self.entries[i].status == TxStatus::Active {
                    lpns.push(self.entries[i].lpn);
                    self.entries[i].seq = seq;
                }
                self.entries[i].status = TxStatus::Committed;
                n += 1;
            }
        }
        for lpn in lpns {
            self.remove_intent(lpn, tid);
        }
        n
    }

    /// Drops `tid` from the intent list of `lpn`, if present.
    fn remove_intent(&mut self, lpn: Lpn, tid: Tid) {
        if let Some(tids) = self.intents.get_mut(&lpn) {
            if let Some(pos) = tids.iter().position(|&t| t == tid) {
                tids.remove(pos);
            }
            if tids.is_empty() {
                self.intents.remove(&lpn);
            }
        }
    }

    /// Removes the entry at slot `i` (swap-remove), fixing both indices.
    /// The single choke point through which every entry leaves the table,
    /// so the write-intent table stays an exact mirror.
    fn remove_index(&mut self, i: usize) -> Entry {
        let e = self.entries.swap_remove(i);
        self.by_page.remove(&(e.tid, e.lpn));
        if e.status == TxStatus::Active {
            // Committed entries already left the intent table at
            // `mark_committed`; only an aborted intent is still listed.
            self.remove_intent(e.lpn, e.tid);
        }
        let last = self.entries.len(); // old index of the moved entry
        if let Some(v) = self.by_tid.get_mut(&e.tid) {
            v.retain(|&slot| slot != i);
        }
        if i < last {
            let moved = self.entries[i];
            self.by_page.insert((moved.tid, moved.lpn), i);
            if let Some(v) = self.by_tid.get_mut(&moved.tid) {
                for slot in v.iter_mut() {
                    if *slot == last {
                        *slot = i;
                    }
                }
            }
        }
        if self.by_tid.get(&e.tid).is_some_and(Vec::is_empty) {
            self.by_tid.remove(&e.tid);
        }
        e
    }

    /// Removes every entry of `tid`, returning their physical addresses
    /// (the abort path invalidates them).
    pub fn remove_tid(&mut self, tid: Tid) -> Vec<Ppa> {
        let mut ppas = Vec::new();
        while let Some(&i) = self.by_tid.get(&tid).and_then(|v| v.first()) {
            ppas.push(self.remove_index(i).ppa);
        }
        ppas
    }

    /// Removes only the *active* entries of `tid`, returning their
    /// physical addresses. Used by abort: entries already committed are
    /// owned by the L2P fold and must not be touched — an `abort(t)`
    /// arriving after `commit(t)` is a no-op on the committed data.
    pub fn remove_active_of_tid(&mut self, tid: Tid) -> Vec<Ppa> {
        let mut ppas = Vec::new();
        while let Some(&i) = self.by_tid.get(&tid).and_then(|v| {
            v.iter()
                .find(|&&i| self.entries[i].status == TxStatus::Active)
        }) {
            ppas.push(self.remove_index(i).ppa);
        }
        ppas
    }

    /// Releases every *committed* entry (called after an L2P checkpoint
    /// has persisted their folds). Active entries — including ones whose
    /// transaction id previously committed and was reused — stay pinned.
    /// The released pages stay valid: they are the committed versions now
    /// owned by the L2P table.
    pub fn release_committed(&mut self) {
        let mut i = 0;
        while i < self.entries.len() {
            if self.entries[i].status == TxStatus::Committed {
                self.remove_index(i);
            } else {
                i += 1;
            }
        }
    }

    /// Removes every *committed* entry for `lpn` belonging to a
    /// transaction other than `keep` — called when a newer version
    /// supersedes the page: a plain overwrite (`keep = 0`) or a later
    /// transactional commit (`keep` = the new writer). The removed
    /// entries' folds are already applied, and the newer version carries
    /// its own durable record (the overwrite's data program, or the new
    /// commit's table write). Leaving them in the table would let a
    /// later `persist` resurrect the old version at recovery: recovered
    /// folds apply at the *table page's* program sequence, which is
    /// newer than the overwrite's. Returns the number removed.
    pub fn supersede_committed(&mut self, lpn: Lpn, keep: Tid) -> usize {
        let mut n = 0;
        let mut i = 0;
        while i < self.entries.len() {
            let e = &self.entries[i];
            if e.lpn == lpn && e.tid != keep && e.status == TxStatus::Committed {
                self.remove_index(i);
                n += 1;
            } else {
                i += 1;
            }
        }
        n
    }

    // --- MVCC side tables (RAM-only, never persisted) ----------------------

    /// The transactions currently holding a write intent on `lpn`, in
    /// intent-registration order.
    pub fn writers_of(&self, lpn: Lpn) -> &[Tid] {
        self.intents.get(&lpn).map_or(&[], Vec::as_slice)
    }

    /// Number of pages with at least one registered write intent.
    pub fn intent_pages(&self) -> usize {
        self.intents.len()
    }

    /// Commit sequence of the newest committed version of `lpn` (0 if the
    /// page was never committed under sequence tracking).
    pub fn current_seq_of(&self, lpn: Lpn) -> u64 {
        self.current_seq.get(&lpn).copied().unwrap_or(0)
    }

    /// Commit sequence of the version the L2P table points at.
    pub fn l2p_seq_of(&self, lpn: Lpn) -> u64 {
        self.l2p_seq.get(&lpn).copied().unwrap_or(0)
    }

    /// Records that `seq` became the newest committed version of `lpn`
    /// at `commit_submit` time (visible at once, folded into L2P later).
    pub fn note_committed_version(&mut self, lpn: Lpn, seq: u64) {
        self.current_seq.insert(lpn, seq);
    }

    /// Records that the L2P fold of `lpn` caught up to `seq`.
    pub fn note_l2p_version(&mut self, lpn: Lpn, seq: u64) {
        self.l2p_seq.insert(lpn, seq);
    }

    /// Records a plain (non-transactional) overwrite or trim of `lpn`:
    /// visibility and L2P advance together.
    pub fn note_plain_version(&mut self, lpn: Lpn, seq: u64) {
        self.current_seq.insert(lpn, seq);
        self.l2p_seq.insert(lpn, seq);
    }

    /// First-committer-wins validation for a snapshot transaction about to
    /// commit: every page it wrote (its *active* entries) must still be at
    /// the version its snapshot saw. A newer committed version of any such
    /// page means a concurrent writer won the race — the caller aborts
    /// this transaction with [`Xl2pError::Conflict`].
    pub fn check_first_committer(&self, tid: Tid, snapshot: u64) -> Result<(), Xl2pError> {
        let conflicted = self
            .entries_of(tid)
            .any(|e| e.status == TxStatus::Active && self.current_seq_of(e.lpn) > snapshot);
        if conflicted {
            Err(Xl2pError::Conflict)
        } else {
            Ok(())
        }
    }

    /// Retains a displaced version in `lpn`'s chain for active snapshot
    /// readers: the copy at `ppa` (or the unwritten state, for `None`)
    /// was current from sequence `seq` until now.
    pub fn retain_version(&mut self, lpn: Lpn, seq: u64, ppa: Option<Ppa>) {
        let chain = self.chains.entry(lpn).or_default();
        debug_assert!(
            chain.last().is_none_or(|v| v.seq <= seq),
            "version chains append in ascending seq order"
        );
        chain.push(Version { seq, ppa });
    }

    /// The retained version of `lpn` visible at `snapshot`, along with the
    /// chain length walked to find it: the newest chain entry whose `seq`
    /// is at or below the snapshot. `None` means the chain retains nothing
    /// that old (the L2P copy or a plain-traffic fallback applies).
    pub fn version_at(&self, lpn: Lpn, snapshot: u64) -> Option<(usize, Option<Ppa>)> {
        let chain = self.chains.get(&lpn)?;
        chain
            .iter()
            .rev()
            .find(|v| v.seq <= snapshot)
            .map(|v| (chain.len(), v.ppa))
    }

    /// Number of retained versions for `lpn`.
    pub fn chain_len(&self, lpn: Lpn) -> usize {
        self.chains.get(&lpn).map_or(0, Vec::len)
    }

    /// Total retained versions across all pages.
    pub fn retained_versions(&self) -> usize {
        self.chains.values().map(Vec::len).sum()
    }

    /// Drops every retained version no active snapshot can still read and
    /// returns the freed flash copies for invalidation (GC food). A chain
    /// entry is dead once the sequence that *superseded* it — the next
    /// entry's seq, or the L2P version's seq for the newest entry — is at
    /// or below the oldest active snapshot (`None` = no snapshots at all,
    /// everything is dead). Seqs ascend along a chain, so the dead set is
    /// always a prefix.
    pub fn prune_versions(&mut self, min_snapshot: Option<u64>) -> Vec<Ppa> {
        let mut freed = Vec::new();
        let l2p_seq = &self.l2p_seq;
        self.chains.retain(|&lpn, chain| {
            let newest_next = l2p_seq.get(&lpn).copied().unwrap_or(0);
            let keep_from = match min_snapshot {
                None => chain.len(),
                Some(s) => {
                    let mut k = 0;
                    while k < chain.len() {
                        let next_seq = chain.get(k + 1).map_or(newest_next, |v| v.seq);
                        if next_seq > s {
                            break;
                        }
                        k += 1;
                    }
                    k
                }
            };
            for v in chain.drain(..keep_from) {
                if let Some(ppa) = v.ppa {
                    freed.push(ppa);
                }
            }
            !chain.is_empty()
        });
        freed
    }

    /// Serializes the table into whole flash pages of `page_size` bytes
    /// (the commit-time copy-on-write write of Figure 4).
    pub fn encode_pages(&self, page_size: usize, pages_per_block: usize) -> Vec<Vec<u8>> {
        let per_page = (page_size - PAGE_HEADER) / ENTRY_BYTES;
        if self.entries.is_empty() {
            // An empty table still persists as one page (a durable "no
            // unfolded commits" statement).
            let mut buf = vec![0u8; page_size];
            buf[0..8].copy_from_slice(&TABLE_MAGIC.to_le_bytes());
            return vec![buf];
        }
        // Committed entries persist in commit order (recovery folds them
        // in decode order, and two commits of the same page must fold
        // later-commit-last). The in-RAM vector cannot serve as that
        // order: swap-removes of released neighbours shuffle it.
        let mut ordered: Vec<Entry> = self.entries.clone();
        ordered.sort_by_key(|e| match e.status {
            TxStatus::Active => 0,
            TxStatus::Committed => e.seq,
        });
        let mut pages = Vec::new();
        for chunk in ordered.chunks(per_page) {
            let mut buf = vec![0u8; page_size];
            buf[0..8].copy_from_slice(&TABLE_MAGIC.to_le_bytes());
            buf[8..16].copy_from_slice(&(chunk.len() as u64).to_le_bytes());
            for (i, e) in chunk.iter().enumerate() {
                let off = PAGE_HEADER + i * ENTRY_BYTES;
                debug_assert!(e.tid <= u32::MAX as u64 && e.lpn <= u32::MAX as u64);
                buf[off..off + 4].copy_from_slice(&(e.tid as u32).to_le_bytes());
                buf[off + 4..off + 8].copy_from_slice(&(e.lpn as u32).to_le_bytes());
                let lin = e.ppa.linear(pages_per_block) as u32;
                buf[off + 8..off + 12].copy_from_slice(&lin.to_le_bytes());
                let status = match e.status {
                    TxStatus::Active => 1u32,
                    TxStatus::Committed => 2u32,
                };
                buf[off + 12..off + 16].copy_from_slice(&status.to_le_bytes());
            }
            pages.push(buf);
        }
        pages
    }

    /// Parses persisted table bytes (one or more concatenated pages) back
    /// into entries. Unknown statuses and garbage pages are skipped.
    pub fn decode_pages(bytes: &[u8], page_size: usize, pages_per_block: usize) -> Vec<Entry> {
        let per_page = (page_size - PAGE_HEADER) / ENTRY_BYTES;
        let mut out = Vec::new();
        for page in bytes.chunks(page_size) {
            if page.len() < PAGE_HEADER {
                continue;
            }
            let magic = get_u64(page, 0);
            if magic != TABLE_MAGIC {
                continue;
            }
            let count = (get_u64(page, 8) as usize).min(per_page);
            for i in 0..count {
                let off = PAGE_HEADER + i * ENTRY_BYTES;
                let tid = Tid::from(get_u32(page, off));
                let lpn = Lpn::from(get_u32(page, off + 4));
                let lin = u64::from(get_u32(page, off + 8));
                let status = get_u32(page, off + 12);
                let status = match status {
                    1 => TxStatus::Active,
                    2 => TxStatus::Committed,
                    _ => continue,
                };
                out.push(Entry {
                    tid,
                    lpn,
                    ppa: Ppa::from_linear(lin, pages_per_block),
                    status,
                    seq: 0,
                });
            }
        }
        out
    }
}

/// The X-L2P table chases garbage-collected pages: when GC relocates a
/// pinned version, the entry follows it (the L2P side is handled inside
/// the engine). Retained chain versions are valid pages too — GC may move
/// them regardless of the tid stamped in their OOB, so the chain chase
/// runs for every relocated data page.
impl GcHook for Xl2pTable {
    fn relocated(&mut self, oob: &Oob, old: Ppa, new: Ppa) {
        if oob.kind != PageKind::Data {
            return;
        }
        if oob.tid != 0 {
            if let Some(&i) = self.by_page.get(&(oob.tid, oob.lpn)) {
                if self.entries[i].ppa == old {
                    self.entries[i].ppa = new;
                }
            }
        }
        if let Some(chain) = self.chains.get_mut(&oob.lpn) {
            for v in chain.iter_mut() {
                if v.ppa == Some(old) {
                    v.ppa = Some(new);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(b: u32, pg: u32) -> Ppa {
        Ppa::new(b, pg)
    }

    #[test]
    fn upsert_insert_and_update() {
        let mut t = Xl2pTable::new(4);
        assert_eq!(t.upsert(1, 10, p(0, 0)), Ok(None));
        assert_eq!(t.lookup(1, 10).unwrap().ppa, p(0, 0));
        // Same (tid, lpn) reuses the slot and reports the superseded ppa.
        assert_eq!(t.upsert(1, 10, p(0, 1)), Ok(Some(p(0, 0))));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(1, 10).unwrap().ppa, p(0, 1));
    }

    #[test]
    fn full_table_rejects_new_entries_but_allows_updates() {
        let mut t = Xl2pTable::new(2);
        t.upsert(1, 0, p(0, 0)).unwrap();
        t.upsert(1, 1, p(0, 1)).unwrap();
        assert!(t.is_full());
        assert_eq!(t.upsert(2, 5, p(0, 2)), Err(Xl2pError::Full));
        assert_eq!(t.upsert(1, 0, p(0, 3)), Ok(Some(p(0, 0))));
    }

    #[test]
    fn full_error_converts_to_dev_error() {
        let mut t = Xl2pTable::new(1);
        t.upsert(1, 0, p(0, 0)).unwrap();
        let err = t.upsert(2, 1, p(0, 1)).unwrap_err();
        assert_eq!(DevError::from(err), DevError::XL2pFull);
        assert_eq!(err.to_string(), "X-L2P table is full");
    }

    #[test]
    fn commit_flips_status() {
        let mut t = Xl2pTable::new(8);
        t.upsert(1, 0, p(0, 0)).unwrap();
        t.upsert(1, 1, p(0, 1)).unwrap();
        t.upsert(2, 2, p(0, 2)).unwrap();
        assert_eq!(t.mark_committed(1, 1), 2);
        assert_eq!(t.committed_len(), 2);
        assert_eq!(t.lookup(2, 2).unwrap().status, TxStatus::Active);
    }

    #[test]
    fn remove_tid_returns_ppas_and_fixes_indices() {
        let mut t = Xl2pTable::new(8);
        t.upsert(1, 0, p(0, 0)).unwrap();
        t.upsert(2, 1, p(0, 1)).unwrap();
        t.upsert(1, 2, p(0, 2)).unwrap();
        t.upsert(3, 3, p(0, 3)).unwrap();
        let mut ppas = t.remove_tid(1);
        ppas.sort();
        assert_eq!(ppas, vec![p(0, 0), p(0, 2)]);
        assert_eq!(t.len(), 2);
        // Survivors still resolvable after swap_remove index churn.
        assert_eq!(t.lookup(2, 1).unwrap().ppa, p(0, 1));
        assert_eq!(t.lookup(3, 3).unwrap().ppa, p(0, 3));
        assert!(t.entries_of(2).count() == 1);
    }

    #[test]
    fn rewrite_of_committed_entry_spares_the_committed_version() {
        // tid commits lpn, then the reused tid rewrites it: the committed
        // version (now owned by L2P) must not be reported for
        // invalidation.
        let mut t = Xl2pTable::new(8);
        t.upsert(1, 0, p(0, 0)).unwrap();
        t.mark_committed(1, 1);
        assert_eq!(
            t.upsert(1, 0, p(0, 1)).unwrap(),
            None,
            "committed ppa stays valid"
        );
        assert_eq!(t.lookup(1, 0).unwrap().status, TxStatus::Active);
        assert_eq!(t.lookup(1, 0).unwrap().ppa, p(0, 1));
        // A second rewrite of the now-active entry DOES supersede.
        assert_eq!(t.upsert(1, 0, p(0, 2)).unwrap(), Some(p(0, 1)));
    }

    #[test]
    fn abort_after_commit_is_noop_on_committed_entries() {
        let mut t = Xl2pTable::new(8);
        t.upsert(4, 3, p(1, 0)).unwrap();
        t.mark_committed(4, 1);
        t.upsert(4, 5, p(1, 1)).unwrap(); // reused tid, active again
        let removed = t.remove_active_of_tid(4);
        assert_eq!(removed, vec![p(1, 1)]);
        assert_eq!(t.lookup(4, 3).unwrap().status, TxStatus::Committed);
        assert!(t.lookup(4, 5).is_none());
    }

    #[test]
    fn release_spares_active_entries_of_reused_tid() {
        // A tid that committed and was then reused must keep its new
        // active entries across a release.
        let mut t = Xl2pTable::new(8);
        t.upsert(2, 0, p(0, 0)).unwrap();
        t.mark_committed(2, 1);
        t.upsert(2, 1, p(0, 1)).unwrap(); // reuse: new ACTIVE entry
        t.release_committed();
        assert!(t.lookup(2, 0).is_none(), "committed entry released");
        assert_eq!(t.lookup(2, 1).unwrap().status, TxStatus::Active);
        assert_eq!(t.lookup(2, 1).unwrap().ppa, p(0, 1));
    }

    #[test]
    fn release_committed_keeps_active() {
        let mut t = Xl2pTable::new(8);
        t.upsert(1, 0, p(0, 0)).unwrap();
        t.upsert(2, 1, p(0, 1)).unwrap();
        t.mark_committed(1, 1);
        t.release_committed();
        assert_eq!(t.len(), 1);
        assert!(t.lookup(2, 1).is_some());
        assert!(t.lookup(1, 0).is_none());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut t = Xl2pTable::new(500);
        for i in 0..10u64 {
            t.upsert(7, i, p(1, i as u32)).unwrap();
        }
        t.mark_committed(7, 1);
        t.upsert(9, 100, p(2, 0)).unwrap();
        let pages = t.encode_pages(512, 8);
        assert_eq!(pages.len(), 1);
        let bytes: Vec<u8> = pages.concat();
        let entries = Xl2pTable::decode_pages(&bytes, 512, 8);
        assert_eq!(entries.len(), 11);
        assert_eq!(
            entries
                .iter()
                .filter(|e| e.status == TxStatus::Committed)
                .count(),
            10
        );
        assert!(entries
            .iter()
            .any(|e| e.tid == 9 && e.lpn == 100 && e.status == TxStatus::Active));
    }

    #[test]
    fn paper_sizing_500_entries_fit_one_8k_page() {
        let mut t = Xl2pTable::new(500);
        for i in 0..500u64 {
            t.upsert(1, i, p(0, 0)).unwrap();
        }
        let pages = t.encode_pages(8192, 128);
        assert_eq!(pages.len(), 1, "500 x 16 B entries must fit one 8 KB page");
        let mut t2 = Xl2pTable::new(1000);
        for i in 0..1000u64 {
            t2.upsert(1, i, p(0, 0)).unwrap();
        }
        assert_eq!(
            t2.encode_pages(8192, 128).len(),
            2,
            "1000 entries need 16 KB"
        );
    }

    #[test]
    fn empty_table_persists_as_one_page() {
        let t = Xl2pTable::new(4);
        let pages = t.encode_pages(512, 8);
        assert_eq!(pages.len(), 1);
        assert!(Xl2pTable::decode_pages(&pages[0], 512, 8).is_empty());
    }

    #[test]
    fn decode_skips_garbage() {
        assert!(Xl2pTable::decode_pages(&[0u8; 512], 512, 8).is_empty());
        assert!(Xl2pTable::decode_pages(&[0xFF; 512], 512, 8).is_empty());
    }

    #[test]
    fn intents_mirror_entries() {
        let mut t = Xl2pTable::new(8);
        t.upsert(1, 7, p(0, 0)).unwrap();
        t.upsert(2, 7, p(0, 1)).unwrap();
        t.upsert(2, 8, p(0, 2)).unwrap();
        assert_eq!(t.writers_of(7), &[1, 2]);
        assert_eq!(t.writers_of(8), &[2]);
        assert_eq!(t.intent_pages(), 2);
        // A rewrite reuses the slot: no duplicate intent.
        t.upsert(1, 7, p(0, 3)).unwrap();
        assert_eq!(t.writers_of(7), &[1, 2]);
        // Abort releases only the aborting tid's intents.
        t.remove_active_of_tid(2);
        assert_eq!(t.writers_of(7), &[1]);
        assert!(t.writers_of(8).is_empty());
        // Commit releases the intent even though the entry stays resident
        // (Committed) until the next L2P checkpoint.
        t.mark_committed(1, 1);
        assert_eq!(t.intent_pages(), 0);
        assert_eq!(t.len(), 1);
        // Repurposing the committed slot re-registers the intent.
        t.upsert(1, 7, p(0, 4)).unwrap();
        assert_eq!(t.writers_of(7), &[1]);
        t.remove_tid(1);
        assert_eq!(t.intent_pages(), 0);
    }

    #[test]
    fn first_committer_check_flags_newer_versions() {
        let mut t = Xl2pTable::new(8);
        t.upsert(1, 5, p(0, 0)).unwrap();
        // Nothing newer than the snapshot: clean.
        assert_eq!(t.check_first_committer(1, 3), Ok(()));
        // A concurrent writer committed lpn 5 at seq 4 > snapshot 3.
        t.note_committed_version(5, 4);
        assert_eq!(t.check_first_committer(1, 3), Err(Xl2pError::Conflict));
        // A later snapshot that saw seq 4 is unaffected.
        assert_eq!(t.check_first_committer(1, 4), Ok(()));
        // Committed entries are past validation; only active ones count.
        t.mark_committed(1, 1);
        assert_eq!(t.check_first_committer(1, 3), Ok(()));
    }

    #[test]
    fn conflict_error_converts_to_dev_error() {
        assert_eq!(DevError::from(Xl2pError::Conflict), DevError::Conflict);
        assert_eq!(
            Xl2pError::Conflict.to_string(),
            "snapshot write conflicts with a newer committed version"
        );
    }

    #[test]
    fn version_chain_visibility_and_pruning() {
        let mut t = Xl2pTable::new(8);
        // lpn 9: unwritten until seq 2, then v1@p(1,0) until seq 5, then
        // v2@p(1,1) until seq 8; L2P now holds v3 (seq 8).
        t.retain_version(9, 0, None);
        t.retain_version(9, 2, Some(p(1, 0)));
        t.retain_version(9, 5, Some(p(1, 1)));
        t.note_plain_version(9, 8);
        assert_eq!(t.version_at(9, 1), Some((3, None)));
        assert_eq!(t.version_at(9, 2), Some((3, Some(p(1, 0)))));
        assert_eq!(t.version_at(9, 4), Some((3, Some(p(1, 0)))));
        assert_eq!(t.version_at(9, 7), Some((3, Some(p(1, 1)))));
        assert_eq!(t.chain_len(9), 3);
        // Oldest snapshot at 4: the primordial version (superseded at 2)
        // is dead, v1 (superseded at 5 > 4) must stay.
        assert_eq!(t.prune_versions(Some(4)), Vec::new());
        assert_eq!(t.chain_len(9), 2);
        assert_eq!(t.version_at(9, 4), Some((2, Some(p(1, 0)))));
        // No snapshots left: everything is reclaimable.
        let mut freed = t.prune_versions(None);
        freed.sort();
        assert_eq!(freed, vec![p(1, 0), p(1, 1)]);
        assert_eq!(t.retained_versions(), 0);
        assert!(t.version_at(9, 7).is_none());
    }

    #[test]
    fn gc_hook_chases_retained_chain_versions() {
        let mut t = Xl2pTable::new(4);
        t.retain_version(3, 1, Some(p(2, 5)));
        // Chain versions carry whatever tid originally wrote them — the
        // chase must work even for plain (tid 0) pre-images.
        let oob = Oob {
            lpn: 3,
            seq: 7,
            tid: 0,
            kind: PageKind::Data,
            aux: 0,
        };
        t.relocated(&oob, p(2, 5), p(6, 0));
        assert_eq!(t.version_at(3, 1), Some((1, Some(p(6, 0)))));
    }

    #[test]
    fn gc_hook_chases_relocations() {
        let mut t = Xl2pTable::new(4);
        t.upsert(5, 9, p(1, 2)).unwrap();
        let oob = Oob {
            lpn: 9,
            seq: 100,
            tid: 5,
            kind: PageKind::Data,
            aux: 0,
        };
        t.relocated(&oob, p(1, 2), p(3, 0));
        assert_eq!(t.lookup(5, 9).unwrap().ppa, p(3, 0));
        // A non-matching relocation is ignored.
        t.relocated(&oob, p(1, 2), p(4, 0));
        assert_eq!(t.lookup(5, 9).unwrap().ppa, p(3, 0));
    }
}
