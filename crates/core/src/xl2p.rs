//! The transactional logical-to-physical mapping table (X-L2P).
//!
//! This is the data structure at the heart of the paper (Figure 2). Each
//! entry `(tid, lpn, new_ppa, status)` records that transaction `tid` wrote
//! a new, still-uncommitted (or committed-but-not-yet-checkpointed) version
//! of logical page `lpn` at physical address `new_ppa`. The entry serves
//! the two purposes §5.3 describes:
//!
//! 1. it routes `read(tid, p)` to the transaction's own version while
//!    other readers keep seeing the committed copy in the L2P table, and
//! 2. it *pins* the new version against garbage collection while keeping
//!    the old committed version alive for rollback.
//!
//! The paper sizes each entry at 16 bytes and the whole table at 500
//! entries (8 KB — one flash page) or 1000 entries (16 KB — two pages);
//! [`Xl2pTable::encode_pages`] reproduces that layout exactly so the table
//! is persisted copy-on-write in whole flash pages at commit time.

use std::collections::HashMap;
use std::fmt;

use xftl_flash::{Oob, PageKind, Ppa};
use xftl_ftl::{DevError, GcHook, Lpn, Tid};

/// Errors raised by the X-L2P table itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Xl2pError {
    /// The table holds `capacity` entries and none can be evicted here:
    /// the caller must release committed entries (checkpoint) or make the
    /// host commit/abort an active transaction first.
    Full,
}

impl fmt::Display for Xl2pError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Xl2pError::Full => write!(f, "X-L2P table is full"),
        }
    }
}

impl std::error::Error for Xl2pError {}

impl From<Xl2pError> for DevError {
    fn from(e: Xl2pError) -> Self {
        match e {
            Xl2pError::Full => DevError::XL2pFull,
        }
    }
}

/// Status of the transaction owning an X-L2P entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxStatus {
    /// The transaction is in flight; its old versions are pinned.
    Active,
    /// Commit durably recorded; entry awaits release by the next L2P
    /// checkpoint.
    Committed,
}

/// One X-L2P entry. 16 bytes on flash: `tid:u32, lpn:u32, ppa:u32,
/// status:u32` — matching the paper's entry size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// Owning transaction.
    pub tid: Tid,
    /// Logical page the transaction wrote.
    pub lpn: Lpn,
    /// Physical address of the transaction's newest version of `lpn`.
    pub ppa: Ppa,
    /// Owning transaction's status.
    pub status: TxStatus,
}

/// Magic prefix of a persisted X-L2P table page ("XL2PTBLE").
const TABLE_MAGIC: u64 = 0x584C_3250_5442_4C45;
/// Bytes per persisted entry.
const ENTRY_BYTES: usize = 16;
/// Page header: magic + entry count.
const PAGE_HEADER: usize = 16;

/// Little-endian u64 at `off` (callers guarantee the bounds).
fn get_u64(page: &[u8], off: usize) -> u64 {
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&page[off..off + 8]);
    u64::from_le_bytes(bytes)
}

/// Little-endian u32 at `off` (callers guarantee the bounds).
fn get_u32(page: &[u8], off: usize) -> u32 {
    let mut bytes = [0u8; 4];
    bytes.copy_from_slice(&page[off..off + 4]);
    u32::from_le_bytes(bytes)
}

/// The in-DRAM X-L2P table with O(1) lookup by `(tid, lpn)` and by `tid`.
#[derive(Debug)]
pub struct Xl2pTable {
    capacity: usize,
    entries: Vec<Entry>,
    by_page: HashMap<(Tid, Lpn), usize>,
    by_tid: HashMap<Tid, Vec<usize>>,
}

impl Xl2pTable {
    /// Creates an empty table holding at most `capacity` entries (the
    /// paper uses 500 or 1000).
    pub fn new(capacity: usize) -> Self {
        Xl2pTable {
            capacity,
            entries: Vec::with_capacity(capacity),
            by_page: HashMap::new(),
            by_tid: HashMap::new(),
        }
    }

    /// Configured maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if no further entry can be inserted.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Number of entries with committed status (releasable after the next
    /// L2P checkpoint).
    pub fn committed_len(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.status == TxStatus::Committed)
            .count()
    }

    /// All entries in insertion order, for audits and diagnostics.
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.entries.iter()
    }

    /// The entry for `(tid, lpn)`, if any.
    pub fn lookup(&self, tid: Tid, lpn: Lpn) -> Option<&Entry> {
        self.by_page.get(&(tid, lpn)).map(|&i| &self.entries[i])
    }

    /// All entries belonging to `tid`.
    pub fn entries_of(&self, tid: Tid) -> impl Iterator<Item = &Entry> {
        self.by_tid
            .get(&tid)
            .into_iter()
            .flat_map(|idxs| idxs.iter().map(|&i| &self.entries[i]))
    }

    /// True if `tid` owns any entry.
    pub fn has_tid(&self, tid: Tid) -> bool {
        self.by_tid.contains_key(&tid)
    }

    /// Inserts a new active entry, or updates the physical address of an
    /// existing `(tid, lpn)` entry (a transaction re-writing the same page
    /// reuses its slot — §5.3). Returns the superseded physical address
    /// **only if it was an uncommitted intermediate version** (safe to
    /// invalidate); a *committed* entry's old address is owned by the L2P
    /// fold and is never reported for invalidation. Errors with
    /// [`Xl2pError::Full`] when the table cannot absorb a new entry.
    pub fn upsert(&mut self, tid: Tid, lpn: Lpn, ppa: Ppa) -> Result<Option<Ppa>, Xl2pError> {
        if let Some(&i) = self.by_page.get(&(tid, lpn)) {
            let old = self.entries[i].ppa;
            let was_active = self.entries[i].status == TxStatus::Active;
            self.entries[i].ppa = ppa;
            self.entries[i].status = TxStatus::Active;
            return Ok(was_active.then_some(old));
        }
        if self.is_full() {
            return Err(Xl2pError::Full);
        }
        let i = self.entries.len();
        self.entries.push(Entry {
            tid,
            lpn,
            ppa,
            status: TxStatus::Active,
        });
        self.by_page.insert((tid, lpn), i);
        self.by_tid.entry(tid).or_default().push(i);
        Ok(None)
    }

    /// Flips every entry of `tid` to committed. Returns the number flipped.
    pub fn mark_committed(&mut self, tid: Tid) -> usize {
        let mut n = 0;
        if let Some(idxs) = self.by_tid.get(&tid) {
            for &i in idxs {
                self.entries[i].status = TxStatus::Committed;
                n += 1;
            }
        }
        n
    }

    /// Removes the entry at slot `i` (swap-remove), fixing both indices.
    fn remove_index(&mut self, i: usize) -> Entry {
        let e = self.entries.swap_remove(i);
        self.by_page.remove(&(e.tid, e.lpn));
        let last = self.entries.len(); // old index of the moved entry
        if let Some(v) = self.by_tid.get_mut(&e.tid) {
            v.retain(|&slot| slot != i);
        }
        if i < last {
            let moved = self.entries[i];
            self.by_page.insert((moved.tid, moved.lpn), i);
            if let Some(v) = self.by_tid.get_mut(&moved.tid) {
                for slot in v.iter_mut() {
                    if *slot == last {
                        *slot = i;
                    }
                }
            }
        }
        if self.by_tid.get(&e.tid).is_some_and(Vec::is_empty) {
            self.by_tid.remove(&e.tid);
        }
        e
    }

    /// Removes every entry of `tid`, returning their physical addresses
    /// (the abort path invalidates them).
    pub fn remove_tid(&mut self, tid: Tid) -> Vec<Ppa> {
        let mut ppas = Vec::new();
        while let Some(&i) = self.by_tid.get(&tid).and_then(|v| v.first()) {
            ppas.push(self.remove_index(i).ppa);
        }
        ppas
    }

    /// Removes only the *active* entries of `tid`, returning their
    /// physical addresses. Used by abort: entries already committed are
    /// owned by the L2P fold and must not be touched — an `abort(t)`
    /// arriving after `commit(t)` is a no-op on the committed data.
    pub fn remove_active_of_tid(&mut self, tid: Tid) -> Vec<Ppa> {
        let mut ppas = Vec::new();
        while let Some(&i) = self.by_tid.get(&tid).and_then(|v| {
            v.iter()
                .find(|&&i| self.entries[i].status == TxStatus::Active)
        }) {
            ppas.push(self.remove_index(i).ppa);
        }
        ppas
    }

    /// Releases every *committed* entry (called after an L2P checkpoint
    /// has persisted their folds). Active entries — including ones whose
    /// transaction id previously committed and was reused — stay pinned.
    /// The released pages stay valid: they are the committed versions now
    /// owned by the L2P table.
    pub fn release_committed(&mut self) {
        let mut i = 0;
        while i < self.entries.len() {
            if self.entries[i].status == TxStatus::Committed {
                self.remove_index(i);
            } else {
                i += 1;
            }
        }
    }

    /// Serializes the table into whole flash pages of `page_size` bytes
    /// (the commit-time copy-on-write write of Figure 4).
    pub fn encode_pages(&self, page_size: usize, pages_per_block: usize) -> Vec<Vec<u8>> {
        let per_page = (page_size - PAGE_HEADER) / ENTRY_BYTES;
        if self.entries.is_empty() {
            // An empty table still persists as one page (a durable "no
            // unfolded commits" statement).
            let mut buf = vec![0u8; page_size];
            buf[0..8].copy_from_slice(&TABLE_MAGIC.to_le_bytes());
            return vec![buf];
        }
        let mut pages = Vec::new();
        for chunk in self.entries.chunks(per_page) {
            let mut buf = vec![0u8; page_size];
            buf[0..8].copy_from_slice(&TABLE_MAGIC.to_le_bytes());
            buf[8..16].copy_from_slice(&(chunk.len() as u64).to_le_bytes());
            for (i, e) in chunk.iter().enumerate() {
                let off = PAGE_HEADER + i * ENTRY_BYTES;
                debug_assert!(e.tid <= u32::MAX as u64 && e.lpn <= u32::MAX as u64);
                buf[off..off + 4].copy_from_slice(&(e.tid as u32).to_le_bytes());
                buf[off + 4..off + 8].copy_from_slice(&(e.lpn as u32).to_le_bytes());
                let lin = e.ppa.linear(pages_per_block) as u32;
                buf[off + 8..off + 12].copy_from_slice(&lin.to_le_bytes());
                let status = match e.status {
                    TxStatus::Active => 1u32,
                    TxStatus::Committed => 2u32,
                };
                buf[off + 12..off + 16].copy_from_slice(&status.to_le_bytes());
            }
            pages.push(buf);
        }
        pages
    }

    /// Parses persisted table bytes (one or more concatenated pages) back
    /// into entries. Unknown statuses and garbage pages are skipped.
    pub fn decode_pages(bytes: &[u8], page_size: usize, pages_per_block: usize) -> Vec<Entry> {
        let per_page = (page_size - PAGE_HEADER) / ENTRY_BYTES;
        let mut out = Vec::new();
        for page in bytes.chunks(page_size) {
            if page.len() < PAGE_HEADER {
                continue;
            }
            let magic = get_u64(page, 0);
            if magic != TABLE_MAGIC {
                continue;
            }
            let count = (get_u64(page, 8) as usize).min(per_page);
            for i in 0..count {
                let off = PAGE_HEADER + i * ENTRY_BYTES;
                let tid = Tid::from(get_u32(page, off));
                let lpn = Lpn::from(get_u32(page, off + 4));
                let lin = u64::from(get_u32(page, off + 8));
                let status = get_u32(page, off + 12);
                let status = match status {
                    1 => TxStatus::Active,
                    2 => TxStatus::Committed,
                    _ => continue,
                };
                out.push(Entry {
                    tid,
                    lpn,
                    ppa: Ppa::from_linear(lin, pages_per_block),
                    status,
                });
            }
        }
        out
    }
}

/// The X-L2P table chases garbage-collected pages: when GC relocates a
/// pinned version, the entry follows it (the L2P side is handled inside
/// the engine).
impl GcHook for Xl2pTable {
    fn relocated(&mut self, oob: &Oob, old: Ppa, new: Ppa) {
        if oob.kind != PageKind::Data || oob.tid == 0 {
            return;
        }
        if let Some(&i) = self.by_page.get(&(oob.tid, oob.lpn)) {
            if self.entries[i].ppa == old {
                self.entries[i].ppa = new;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(b: u32, pg: u32) -> Ppa {
        Ppa::new(b, pg)
    }

    #[test]
    fn upsert_insert_and_update() {
        let mut t = Xl2pTable::new(4);
        assert_eq!(t.upsert(1, 10, p(0, 0)), Ok(None));
        assert_eq!(t.lookup(1, 10).unwrap().ppa, p(0, 0));
        // Same (tid, lpn) reuses the slot and reports the superseded ppa.
        assert_eq!(t.upsert(1, 10, p(0, 1)), Ok(Some(p(0, 0))));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(1, 10).unwrap().ppa, p(0, 1));
    }

    #[test]
    fn full_table_rejects_new_entries_but_allows_updates() {
        let mut t = Xl2pTable::new(2);
        t.upsert(1, 0, p(0, 0)).unwrap();
        t.upsert(1, 1, p(0, 1)).unwrap();
        assert!(t.is_full());
        assert_eq!(t.upsert(2, 5, p(0, 2)), Err(Xl2pError::Full));
        assert_eq!(t.upsert(1, 0, p(0, 3)), Ok(Some(p(0, 0))));
    }

    #[test]
    fn full_error_converts_to_dev_error() {
        let mut t = Xl2pTable::new(1);
        t.upsert(1, 0, p(0, 0)).unwrap();
        let err = t.upsert(2, 1, p(0, 1)).unwrap_err();
        assert_eq!(DevError::from(err), DevError::XL2pFull);
        assert_eq!(err.to_string(), "X-L2P table is full");
    }

    #[test]
    fn commit_flips_status() {
        let mut t = Xl2pTable::new(8);
        t.upsert(1, 0, p(0, 0)).unwrap();
        t.upsert(1, 1, p(0, 1)).unwrap();
        t.upsert(2, 2, p(0, 2)).unwrap();
        assert_eq!(t.mark_committed(1), 2);
        assert_eq!(t.committed_len(), 2);
        assert_eq!(t.lookup(2, 2).unwrap().status, TxStatus::Active);
    }

    #[test]
    fn remove_tid_returns_ppas_and_fixes_indices() {
        let mut t = Xl2pTable::new(8);
        t.upsert(1, 0, p(0, 0)).unwrap();
        t.upsert(2, 1, p(0, 1)).unwrap();
        t.upsert(1, 2, p(0, 2)).unwrap();
        t.upsert(3, 3, p(0, 3)).unwrap();
        let mut ppas = t.remove_tid(1);
        ppas.sort();
        assert_eq!(ppas, vec![p(0, 0), p(0, 2)]);
        assert_eq!(t.len(), 2);
        // Survivors still resolvable after swap_remove index churn.
        assert_eq!(t.lookup(2, 1).unwrap().ppa, p(0, 1));
        assert_eq!(t.lookup(3, 3).unwrap().ppa, p(0, 3));
        assert!(t.entries_of(2).count() == 1);
    }

    #[test]
    fn rewrite_of_committed_entry_spares_the_committed_version() {
        // tid commits lpn, then the reused tid rewrites it: the committed
        // version (now owned by L2P) must not be reported for
        // invalidation.
        let mut t = Xl2pTable::new(8);
        t.upsert(1, 0, p(0, 0)).unwrap();
        t.mark_committed(1);
        assert_eq!(
            t.upsert(1, 0, p(0, 1)).unwrap(),
            None,
            "committed ppa stays valid"
        );
        assert_eq!(t.lookup(1, 0).unwrap().status, TxStatus::Active);
        assert_eq!(t.lookup(1, 0).unwrap().ppa, p(0, 1));
        // A second rewrite of the now-active entry DOES supersede.
        assert_eq!(t.upsert(1, 0, p(0, 2)).unwrap(), Some(p(0, 1)));
    }

    #[test]
    fn abort_after_commit_is_noop_on_committed_entries() {
        let mut t = Xl2pTable::new(8);
        t.upsert(4, 3, p(1, 0)).unwrap();
        t.mark_committed(4);
        t.upsert(4, 5, p(1, 1)).unwrap(); // reused tid, active again
        let removed = t.remove_active_of_tid(4);
        assert_eq!(removed, vec![p(1, 1)]);
        assert_eq!(t.lookup(4, 3).unwrap().status, TxStatus::Committed);
        assert!(t.lookup(4, 5).is_none());
    }

    #[test]
    fn release_spares_active_entries_of_reused_tid() {
        // A tid that committed and was then reused must keep its new
        // active entries across a release.
        let mut t = Xl2pTable::new(8);
        t.upsert(2, 0, p(0, 0)).unwrap();
        t.mark_committed(2);
        t.upsert(2, 1, p(0, 1)).unwrap(); // reuse: new ACTIVE entry
        t.release_committed();
        assert!(t.lookup(2, 0).is_none(), "committed entry released");
        assert_eq!(t.lookup(2, 1).unwrap().status, TxStatus::Active);
        assert_eq!(t.lookup(2, 1).unwrap().ppa, p(0, 1));
    }

    #[test]
    fn release_committed_keeps_active() {
        let mut t = Xl2pTable::new(8);
        t.upsert(1, 0, p(0, 0)).unwrap();
        t.upsert(2, 1, p(0, 1)).unwrap();
        t.mark_committed(1);
        t.release_committed();
        assert_eq!(t.len(), 1);
        assert!(t.lookup(2, 1).is_some());
        assert!(t.lookup(1, 0).is_none());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut t = Xl2pTable::new(500);
        for i in 0..10u64 {
            t.upsert(7, i, p(1, i as u32)).unwrap();
        }
        t.mark_committed(7);
        t.upsert(9, 100, p(2, 0)).unwrap();
        let pages = t.encode_pages(512, 8);
        assert_eq!(pages.len(), 1);
        let bytes: Vec<u8> = pages.concat();
        let entries = Xl2pTable::decode_pages(&bytes, 512, 8);
        assert_eq!(entries.len(), 11);
        assert_eq!(
            entries
                .iter()
                .filter(|e| e.status == TxStatus::Committed)
                .count(),
            10
        );
        assert!(entries
            .iter()
            .any(|e| e.tid == 9 && e.lpn == 100 && e.status == TxStatus::Active));
    }

    #[test]
    fn paper_sizing_500_entries_fit_one_8k_page() {
        let mut t = Xl2pTable::new(500);
        for i in 0..500u64 {
            t.upsert(1, i, p(0, 0)).unwrap();
        }
        let pages = t.encode_pages(8192, 128);
        assert_eq!(pages.len(), 1, "500 x 16 B entries must fit one 8 KB page");
        let mut t2 = Xl2pTable::new(1000);
        for i in 0..1000u64 {
            t2.upsert(1, i, p(0, 0)).unwrap();
        }
        assert_eq!(
            t2.encode_pages(8192, 128).len(),
            2,
            "1000 entries need 16 KB"
        );
    }

    #[test]
    fn empty_table_persists_as_one_page() {
        let t = Xl2pTable::new(4);
        let pages = t.encode_pages(512, 8);
        assert_eq!(pages.len(), 1);
        assert!(Xl2pTable::decode_pages(&pages[0], 512, 8).is_empty());
    }

    #[test]
    fn decode_skips_garbage() {
        assert!(Xl2pTable::decode_pages(&[0u8; 512], 512, 8).is_empty());
        assert!(Xl2pTable::decode_pages(&[0xFF; 512], 512, 8).is_empty());
    }

    #[test]
    fn gc_hook_chases_relocations() {
        let mut t = Xl2pTable::new(4);
        t.upsert(5, 9, p(1, 2)).unwrap();
        let oob = Oob {
            lpn: 9,
            seq: 100,
            tid: 5,
            kind: PageKind::Data,
            aux: 0,
        };
        t.relocated(&oob, p(1, 2), p(3, 0));
        assert_eq!(t.lookup(5, 9).unwrap().ppa, p(3, 0));
        // A non-matching relocation is ignored.
        t.relocated(&oob, p(1, 2), p(4, 0));
        assert_eq!(t.lookup(5, 9).unwrap().ppa, p(3, 0));
    }
}
