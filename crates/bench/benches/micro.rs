//! Micro-benchmarks of the implementation's hot paths.
//!
//! These measure *host* (wall-clock) performance of the simulator
//! machinery, complementing the figure harnesses which report *simulated*
//! time. Useful to keep the simulator fast enough to run the paper-scale
//! experiments. Self-timed (no external bench framework): each case runs
//! a calibration pass, then enough iterations to fill ~0.2 s, and reports
//! mean ns/iteration.

// Bench code: unwrap on setup failure aborts the measurement loudly,
// which is the desired failure mode (same rationale as tests).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::cell::RefCell;
use std::hint::black_box;
use std::rc::Rc;
use std::time::Instant; // xftl-analyze: allow(sim-clock): this bench measures *host* time by design

use xftl_core::{XFtl, Xl2pTable};
use xftl_db::{record, Connection, DbJournalMode, Value};
use xftl_flash::{FlashChip, FlashConfigBuilder, Oob, Ppa, SimClock};
use xftl_fs::{FileSystem, FsConfig, JournalMode};
use xftl_ftl::{BlockDevice, PageMappedFtl, TxBlockDevice, TxFlashFtl};

/// Times `f` and prints mean ns/iter: one warm-up pass, then a measured
/// run sized so each case takes roughly 0.2 s of wall clock.
fn bench(name: &str, mut f: impl FnMut()) {
    const CALIBRATION: u32 = 32;
    let t0 = Instant::now(); // xftl-analyze: allow(sim-clock): calibration pass timing host wall clock
    for _ in 0..CALIBRATION {
        f();
    }
    let per_iter = t0.elapsed().as_nanos().max(1) / CALIBRATION as u128;
    let iters = (200_000_000 / per_iter).clamp(8, 2_000_000) as u32;
    let t1 = Instant::now(); // xftl-analyze: allow(sim-clock): measured run timing host wall clock
    for _ in 0..iters {
        f();
    }
    let mean = t1.elapsed().as_nanos() / iters as u128;
    println!("{name:<40} {mean:>12} ns/iter  ({iters} iters)");
}

fn bench_flash() {
    let clock = SimClock::new();
    let mut chip = FlashChip::new(FlashConfigBuilder::openssd().blocks(64).build(), clock);
    let page = vec![0xAAu8; 8192];
    let mut i = 0u64;
    bench("flash/program_8k", || {
        let ppa = Ppa::from_linear(i % (63 * 128), 128);
        // Reuse blocks by erasing when full.
        if ppa.page == 0 && !chip.is_erased(ppa) {
            chip.erase(ppa.block).unwrap();
        }
        chip.program(ppa, &page, Oob::data(i)).unwrap();
        i += 1;
    });
}

fn bench_device() {
    {
        let clock = SimClock::new();
        let chip = FlashChip::new(FlashConfigBuilder::openssd().blocks(64).build(), clock);
        let mut dev = PageMappedFtl::format(chip, 4000).unwrap();
        let page = vec![0x11u8; 8192];
        let mut i = 0u64;
        bench("ftl/plain_write", || {
            dev.write(i % 4000, &page).unwrap();
            i += 1;
        });
    }
    {
        let clock = SimClock::new();
        let chip = FlashChip::new(FlashConfigBuilder::openssd().blocks(64).build(), clock);
        let mut dev = TxFlashFtl::format(chip, 4000).unwrap();
        let page = vec![0x33u8; 8192];
        let mut tid = 1u64;
        bench("txflash/write_tx_commit_5pages", || {
            for p in 0..5u64 {
                dev.write_tx(tid, (tid * 5 + p) % 4000, &page).unwrap();
            }
            dev.commit(tid).unwrap();
            tid += 1;
        });
    }
    {
        let clock = SimClock::new();
        let chip = FlashChip::new(FlashConfigBuilder::openssd().blocks(64).build(), clock);
        let mut dev = XFtl::format(chip, 4000).unwrap();
        let page = vec![0x22u8; 8192];
        let mut tid = 1u64;
        bench("xftl/write_tx_commit_5pages", || {
            for p in 0..5u64 {
                dev.write_tx(tid, (tid * 5 + p) % 4000, &page).unwrap();
            }
            dev.commit(tid).unwrap();
            tid += 1;
        });
    }
}

fn bench_xl2p() {
    bench("xl2p/upsert_lookup", || {
        let mut t = Xl2pTable::new(500);
        for i in 0..400u64 {
            t.upsert(i % 8 + 1, i, Ppa::new(1, (i % 128) as u32))
                .unwrap();
        }
        for i in 0..400u64 {
            black_box(t.lookup(i % 8 + 1, i));
        }
    });
    let mut t = Xl2pTable::new(500);
    for i in 0..500u64 {
        t.upsert(1, i, Ppa::new(1, 0)).unwrap();
    }
    bench("xl2p/encode_500_entries", || {
        black_box(t.encode_pages(8192, 128));
    });
}

fn bench_record() {
    let row = vec![
        Value::Int(42),
        Value::Text("a moderately sized text field for the row".into()),
        Value::Real(3.25),
        Value::Blob(vec![7u8; 64]),
    ];
    bench("record/encode", || {
        black_box(record::encode_record(&row));
    });
    let enc = record::encode_record(&row);
    bench("record/decode", || {
        black_box(record::decode_record(&enc).unwrap());
    });
}

fn bench_sql() {
    fn db() -> Connection<XFtl> {
        let clock = SimClock::new();
        let chip = FlashChip::new(FlashConfigBuilder::openssd().blocks(80).build(), clock);
        let dev = XFtl::format(chip, 6000).unwrap();
        let fs = FileSystem::mkfs_tx(dev, JournalMode::Off, FsConfig::default()).unwrap();
        let fs = Rc::new(RefCell::new(fs));
        let mut db = Connection::open(fs, "bench.db", DbJournalMode::Off).unwrap();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
            .unwrap();
        for i in 0..500i64 {
            db.execute_with("INSERT INTO t VALUES (?, 'payload')", &[Value::Int(i)])
                .unwrap();
        }
        db
    }
    {
        let mut d = db();
        let mut i = 0i64;
        bench("sql/point_select", || {
            let rows = d
                .query_with("SELECT v FROM t WHERE id = ?", &[Value::Int(i % 500)])
                .unwrap();
            black_box(rows);
            i += 1;
        });
    }
    {
        let mut d = db();
        let mut i = 0i64;
        bench("sql/update_txn", || {
            d.execute_with("UPDATE t SET v = 'x' WHERE id = ?", &[Value::Int(i % 500)])
                .unwrap();
            i += 1;
        });
    }
}

fn main() {
    println!("host-performance micro-benchmarks (wall clock, not simulated time)");
    bench_flash();
    bench_device();
    bench_xl2p();
    bench_record();
    bench_sql();
}
