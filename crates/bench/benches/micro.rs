//! Criterion micro-benchmarks of the implementation's hot paths.
//!
//! These measure *host* (wall-clock) performance of the simulator
//! machinery, complementing the figure harnesses which report *simulated*
//! time. Useful to keep the simulator fast enough to run the paper-scale
//! experiments.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::cell::RefCell;
use std::rc::Rc;

use xftl_core::{XFtl, Xl2pTable};
use xftl_db::{record, Connection, DbJournalMode, Value};
use xftl_flash::{FlashChip, FlashConfig, Oob, Ppa, SimClock};
use xftl_fs::{FileSystem, FsConfig, JournalMode};
use xftl_ftl::{BlockDevice, PageMappedFtl, TxFlashFtl};

fn bench_flash(c: &mut Criterion) {
    c.bench_function("flash/program_8k", |b| {
        let clock = SimClock::new();
        let mut chip = FlashChip::new(FlashConfig::openssd(64), clock);
        let page = vec![0xAAu8; 8192];
        let mut i = 0u64;
        b.iter(|| {
            let ppa = Ppa::from_linear(i % (63 * 128), 128);
            // Reuse blocks by erasing when full.
            if ppa.page == 0 && !chip.is_erased(ppa) {
                chip.erase(ppa.block).unwrap();
            }
            chip.program(ppa, &page, Oob::data(i)).unwrap();
            i += 1;
        });
    });
}

fn bench_device(c: &mut Criterion) {
    c.bench_function("ftl/plain_write", |b| {
        let clock = SimClock::new();
        let chip = FlashChip::new(FlashConfig::openssd(64), clock);
        let mut dev = PageMappedFtl::format(chip, 4000).unwrap();
        let page = vec![0x11u8; 8192];
        let mut i = 0u64;
        b.iter(|| {
            dev.write(i % 4000, &page).unwrap();
            i += 1;
        });
    });
    c.bench_function("txflash/write_tx_commit_5pages", |b| {
        let clock = SimClock::new();
        let chip = FlashChip::new(FlashConfig::openssd(64), clock);
        let mut dev = TxFlashFtl::format(chip, 4000).unwrap();
        let page = vec![0x33u8; 8192];
        let mut tid = 1u64;
        b.iter(|| {
            for p in 0..5u64 {
                dev.write_tx(tid, (tid * 5 + p) % 4000, &page).unwrap();
            }
            dev.commit(tid).unwrap();
            tid += 1;
        });
    });
    c.bench_function("xftl/write_tx_commit_5pages", |b| {
        let clock = SimClock::new();
        let chip = FlashChip::new(FlashConfig::openssd(64), clock);
        let mut dev = XFtl::format(chip, 4000).unwrap();
        let page = vec![0x22u8; 8192];
        let mut tid = 1u64;
        b.iter(|| {
            for p in 0..5u64 {
                dev.write_tx(tid, (tid * 5 + p) % 4000, &page).unwrap();
            }
            dev.commit(tid).unwrap();
            tid += 1;
        });
    });
}

fn bench_xl2p(c: &mut Criterion) {
    c.bench_function("xl2p/upsert_lookup", |b| {
        b.iter_batched(
            || Xl2pTable::new(500),
            |mut t| {
                for i in 0..400u64 {
                    t.upsert(i % 8 + 1, i, Ppa::new(1, (i % 128) as u32))
                        .unwrap();
                }
                for i in 0..400u64 {
                    criterion::black_box(t.lookup(i % 8 + 1, i));
                }
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("xl2p/encode_500_entries", |b| {
        let mut t = Xl2pTable::new(500);
        for i in 0..500u64 {
            t.upsert(1, i, Ppa::new(1, 0)).unwrap();
        }
        b.iter(|| criterion::black_box(t.encode_pages(8192, 128)));
    });
}

fn bench_record(c: &mut Criterion) {
    let row = vec![
        Value::Int(42),
        Value::Text("a moderately sized text field for the row".into()),
        Value::Real(3.25),
        Value::Blob(vec![7u8; 64]),
    ];
    c.bench_function("record/encode", |b| {
        b.iter(|| criterion::black_box(record::encode_record(&row)));
    });
    let enc = record::encode_record(&row);
    c.bench_function("record/decode", |b| {
        b.iter(|| criterion::black_box(record::decode_record(&enc).unwrap()));
    });
}

fn bench_sql(c: &mut Criterion) {
    fn db() -> Connection<XFtl> {
        let clock = SimClock::new();
        let chip = FlashChip::new(FlashConfig::openssd(80), clock);
        let dev = XFtl::format(chip, 6000).unwrap();
        let fs = FileSystem::mkfs(dev, JournalMode::Off, FsConfig::default()).unwrap();
        let fs = Rc::new(RefCell::new(fs));
        let mut db = Connection::open(fs, "bench.db", DbJournalMode::Off).unwrap();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
            .unwrap();
        for i in 0..500i64 {
            db.execute_with("INSERT INTO t VALUES (?, 'payload')", &[Value::Int(i)])
                .unwrap();
        }
        db
    }
    c.bench_function("sql/point_select", |b| {
        let mut d = db();
        let mut i = 0i64;
        b.iter(|| {
            let rows = d
                .query_with("SELECT v FROM t WHERE id = ?", &[Value::Int(i % 500)])
                .unwrap();
            criterion::black_box(rows);
            i += 1;
        });
    });
    c.bench_function("sql/update_txn", |b| {
        let mut d = db();
        let mut i = 0i64;
        b.iter(|| {
            d.execute_with("UPDATE t SET v = 'x' WHERE id = ?", &[Value::Int(i % 500)])
                .unwrap();
            i += 1;
        });
    });
}

criterion_group!(
    benches,
    bench_flash,
    bench_device,
    bench_xl2p,
    bench_record,
    bench_sql
);
criterion_main!(benches);
