//! `cargo bench` entry point that regenerates every table and figure of
//! the paper at a reduced "quick" scale (full-scale runs: the binaries in
//! `crates/bench/src/bin`, or `cargo run --release -p xftl-bench --bin all`).

use xftl_bench::experiments::*;

fn main() {
    println!("================================================================");
    println!(" X-FTL reproduction — all paper tables/figures (quick scale)");
    println!(" Full scale: cargo run --release -p xftl-bench --bin all");
    println!("================================================================\n");
    let syn = synthetic_exp::SynScale::quick();
    print!("{}", synthetic_exp::fig5(syn, &[1, 5, 20]));
    print!("{}", synthetic_exp::table1(syn));
    print!("{}", synthetic_exp::fig6(syn));
    print!("{}", android_exp::table2(0.05));
    print!("{}", android_exp::fig7(0.05));
    print!("{}", tpcc_exp::tables_3_4(tpcc_exp::TpccExpScale::quick()));
    print!("{}", fio_exp::fig8(fio_exp::FioScale::quick()));
    print!("{}", fio_exp::fig9(fio_exp::FioScale::quick()));
    print!(
        "{}",
        recovery_exp::table5(recovery_exp::RecoveryScale::quick())
    );
    print!("{}", fault_exp::fault_sweep(fault_exp::FaultScale::quick()));
    print!("{}", ablation::all(true));
}
