//! Global named-metric sink feeding `BENCH_<name>.json` emission.
//!
//! Experiment functions return human-readable text tables; the
//! machine-readable numbers behind the tables are pushed here as they
//! are measured. A bench binary resets the sink, runs its experiments,
//! then drains the sink into a [`BenchReport`] written next to the text
//! output. Writes are last-write-wins per name, so an experiment that
//! re-runs a cell (Table 1 reuses Figure 5's runner) keeps exactly one
//! deterministic value per key.

use std::sync::{Mutex, PoisonError};

use xftl_trace::{BenchReport, HistSummary, Telemetry};

#[derive(Default)]
struct Sink {
    metrics: Vec<(String, f64)>,
    hists: Vec<(String, HistSummary)>,
}

static SINK: Mutex<Sink> = Mutex::new(Sink {
    metrics: Vec::new(),
    hists: Vec::new(),
});

// A panicking experiment thread (e.g. a harness bug caught by a test's
// `should_panic`) must not wedge the sink for the rest of the run.
fn with_sink<R>(f: impl FnOnce(&mut Sink) -> R) -> R {
    f(&mut SINK.lock().unwrap_or_else(PoisonError::into_inner))
}

/// Stable lowercase key for a rig mode, for use in metric names.
pub fn mode_key(mode: xftl_workloads::rig::Mode) -> &'static str {
    match mode {
        xftl_workloads::rig::Mode::Rbj => "rbj",
        xftl_workloads::rig::Mode::Wal => "wal",
        xftl_workloads::rig::Mode::XFtl => "xftl",
    }
}

/// Records a named scalar metric (last write wins).
pub fn metric(name: impl Into<String>, value: f64) {
    let name = name.into();
    with_sink(|s| {
        if let Some(slot) = s.metrics.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            s.metrics.push((name, value));
        }
    });
}

/// Folds a telemetry handle's non-empty per-op histograms into the sink
/// under `"<prefix>.<op_name>"` keys (last write wins per key).
pub fn hists(prefix: &str, telemetry: &Telemetry) {
    let summaries = telemetry.summaries();
    with_sink(|s| {
        for (op, summary) in summaries {
            let name = format!("{prefix}.{}", op.name());
            if let Some(slot) = s.hists.iter_mut().find(|(n, _)| *n == name) {
                slot.1 = summary;
            } else {
                s.hists.push((name, summary));
            }
        }
    });
}

/// Clears the sink (bench binaries call this before their first
/// experiment so library tests running earlier in-process can't leak in).
pub fn reset() {
    with_sink(|s| {
        s.metrics.clear();
        s.hists.clear();
    });
}

/// Moves everything recorded so far into `report`, emptying the sink.
pub fn drain_into(report: &mut BenchReport) {
    with_sink(|s| {
        for (name, v) in s.metrics.drain(..) {
            report.metric(&name, v);
        }
        report.hists.append(&mut s.hists);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use xftl_trace::{OpClass, Recorder};

    // The sink is process-global; exercise it in one test so parallel
    // test threads can't interleave resets.
    #[test]
    fn sink_records_replaces_and_drains() {
        reset();
        metric("a", 1.0);
        metric("b", 2.0);
        metric("a", 3.0); // last write wins
        let t = Telemetry::new();
        t.record(OpClass::ChipRead, 60_000);
        hists("syn.xftl", &t);
        t.record(OpClass::ChipRead, 70_000);
        hists("syn.xftl", &t); // replaces, not duplicates

        let mut r = BenchReport::new("test");
        drain_into(&mut r);
        assert_eq!(r.metrics, vec![("a".into(), 3.0), ("b".into(), 2.0)]);
        assert_eq!(r.hists.len(), 1);
        assert_eq!(r.hists[0].0, "syn.xftl.chip_read");
        assert_eq!(r.hists[0].1.count, 2);

        // Drained: a second drain yields nothing.
        let mut r2 = BenchReport::new("test2");
        drain_into(&mut r2);
        assert!(r2.metrics.is_empty() && r2.hists.is_empty());
    }
}
