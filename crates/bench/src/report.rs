//! Plain-text table rendering for experiment reports.

/// A fixed-width table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are stringified by the caller).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let w = widths.get(i).copied().unwrap_or(cell.len());
                line.push_str(&format!("{cell:>w$}"));
            }
            // An empty or short-of-width cell in the last column would
            // leave the line padded with trailing spaces, making golden-
            // text diffs whitespace-unstable; strip them.
            line.truncate(line.trim_end().len());
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats simulated nanoseconds as seconds with 2 decimals.
pub fn secs(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e9)
}

/// Formats simulated nanoseconds as milliseconds with 1 decimal.
pub fn millis(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1e6)
}

/// Formats a ratio like "3.5x".
pub fn ratio(a: u64, b: u64) -> String {
    if b == 0 {
        "-".into()
    } else {
        format!("{:.1}x", a as f64 / b as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["mode", "time"]);
        t.row(vec!["RBJ", "123.45"]);
        t.row(vec!["X-FTL", "1.2"]);
        let s = t.render();
        assert!(s.contains("mode"));
        assert!(s.contains("X-FTL"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn no_line_carries_trailing_whitespace() {
        // Empty cells in the last column used to render as a full-width
        // run of spaces at the end of the line.
        let mut t = Table::new(vec!["mode", "time", "note"]);
        t.row(vec!["RBJ", "123.45", "a long trailing note"]);
        t.row(vec!["X-FTL", "1.2", ""]);
        t.row(vec!["WAL", "9.9", " "]);
        let s = t.render();
        for line in s.lines() {
            assert_eq!(line, line.trim_end(), "trailing whitespace in {line:?}");
        }
        // Alignment is preserved where the cells are non-empty.
        assert!(s.contains("a long trailing note"));
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(1_500_000_000), "1.50");
        assert_eq!(millis(2_500_000), "2.5");
        assert_eq!(ratio(70, 20), "3.5x");
        assert_eq!(ratio(1, 0), "-");
    }
}
