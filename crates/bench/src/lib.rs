//! # xftl-bench — harnesses regenerating every table and figure
//!
//! Each experiment of the paper's evaluation (§6) has a module under
//! [`experiments`] and a binary (`cargo run --release -p xftl-bench --bin
//! fig5` etc.). The `figures` bench target (`cargo bench`) runs every
//! experiment at a reduced "quick" scale and prints the same tables.
//!
//! | paper artifact | module | binary |
//! |---|---|---|
//! | Figure 5 (a–c) | `experiments::synthetic_exp::fig5` | `fig5` |
//! | Table 1 | `experiments::synthetic_exp::table1` | `table1` |
//! | Figure 6 | `experiments::synthetic_exp::fig6` | `fig6` |
//! | Table 2 | `experiments::android_exp::table2` | `table2` |
//! | Figure 7 | `experiments::android_exp::fig7` | `fig7` |
//! | Tables 3–4 | `experiments::tpcc_exp::tables_3_4` | `tpcc` |
//! | Figure 8 | `experiments::fio_exp::fig8` | `fig8` |
//! | Figure 9 | `experiments::fio_exp::fig9` | `fig9` |
//! | Table 5 | `experiments::recovery_exp::table5` | `table5` |
//! | (ablations) | `experiments::ablation` | `ablation` |
//! | (channel scaling) | `experiments::channel_exp::channel_scaling` | `channels` |
//! | (concurrent writers) | `experiments::concurrent_exp::concurrent_scaling` | `concurrent` |
//! | (fault sweep) | `experiments::fault_exp::fault_sweep` | `faults` |
//! | (endurance to end-of-life) | `experiments::endurance_exp::endurance_sweep` | `endurance` |

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Benchmark harnesses are experiment code, not device firmware: a failed SQL
// statement or device command means the experiment itself is broken, and
// panicking with the error is the desired failure mode — the same
// rationale clippy.toml applies to tests. The simulator stack (flash,
// ftl, core, fs, db) keeps the strict wall.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod experiments;
pub mod metrics;
pub mod report;

/// The scale a bench binary runs at, parsed from its CLI flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunScale {
    /// Paper-quality scale (the default).
    Full,
    /// Reduced scale for `cargo bench` runs (`--quick`).
    Quick,
    /// Minimal scale for the CI `bench-smoke` job (`--smoke`): small
    /// enough to finish in minutes, large enough that every mode
    /// ordering the paper claims still holds.
    Smoke,
}

impl RunScale {
    /// Parses `--smoke` / `--quick` from the process arguments
    /// (`--smoke` wins if both are given).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--smoke") {
            RunScale::Smoke
        } else if args.iter().any(|a| a == "--quick") {
            RunScale::Quick
        } else {
            RunScale::Full
        }
    }

    /// The label stamped into the report's `meta.scale`.
    pub fn label(self) -> &'static str {
        match self {
            RunScale::Full => "full",
            RunScale::Quick => "quick",
            RunScale::Smoke => "smoke",
        }
    }
}

/// Drains the metric sink into a [`xftl_trace::BenchReport`] and writes
/// it as `BENCH_<name>.json` in the current directory. Every bench
/// binary calls this after printing its text tables; because the whole
/// stack runs on the simulated clock, two runs at the same scale write
/// byte-identical files.
pub fn write_report(name: &str, scale: RunScale) {
    let mut report = xftl_trace::BenchReport::new(name);
    report.meta("scale", scale.label());
    metrics::drain_into(&mut report);
    let path = format!("BENCH_{name}.json");
    std::fs::write(&path, report.to_json()).expect("write bench report");
    eprintln!(
        "wrote {path} ({} metrics, {} histograms)",
        report.metrics.len(),
        report.hists.len()
    );
}
