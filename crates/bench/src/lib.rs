//! # xftl-bench — harnesses regenerating every table and figure
//!
//! Each experiment of the paper's evaluation (§6) has a module under
//! [`experiments`] and a binary (`cargo run --release -p xftl-bench --bin
//! fig5` etc.). The `figures` bench target (`cargo bench`) runs every
//! experiment at a reduced "quick" scale and prints the same tables.
//!
//! | paper artifact | module | binary |
//! |---|---|---|
//! | Figure 5 (a–c) | `experiments::synthetic_exp::fig5` | `fig5` |
//! | Table 1 | `experiments::synthetic_exp::table1` | `table1` |
//! | Figure 6 | `experiments::synthetic_exp::fig6` | `fig6` |
//! | Table 2 | `experiments::android_exp::table2` | `table2` |
//! | Figure 7 | `experiments::android_exp::fig7` | `fig7` |
//! | Tables 3–4 | `experiments::tpcc_exp::tables_3_4` | `tpcc` |
//! | Figure 8 | `experiments::fio_exp::fig8` | `fig8` |
//! | Figure 9 | `experiments::fio_exp::fig9` | `fig9` |
//! | Table 5 | `experiments::recovery_exp::table5` | `table5` |
//! | (ablations) | `experiments::ablation` | `ablation` |
//! | (channel scaling) | `experiments::channel_exp::channel_scaling` | `channels` |
//! | (fault sweep) | `experiments::fault_exp::fault_sweep` | `faults` |

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Benchmark harnesses are experiment code, not device firmware: a failed SQL
// statement or device command means the experiment itself is broken, and
// panicking with the error is the desired failure mode — the same
// rationale clippy.toml applies to tests. The simulator stack (flash,
// ftl, core, fs, db) keeps the strict wall.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod experiments;
pub mod report;
