//! Tables 3–4: TPC-C throughput across the four transaction mixes.

use xftl_workloads::rig::{Mode, Rig, RigConfig};
use xftl_workloads::tpcc::{
    self, TpccDriver, TpccMix, TpccScale, JOIN_ONLY, READ_INTENSIVE, SELECTION_ONLY,
    WRITE_INTENSIVE,
};

use crate::metrics;
use crate::report::Table;

/// Stable lowercase key for a mix name in metric names.
fn mix_key(name: &str) -> String {
    name.to_ascii_lowercase().replace('-', "_")
}

/// The four named mixes of Table 3.
pub const MIXES: [(&str, TpccMix); 4] = [
    ("Write-intensive", WRITE_INTENSIVE),
    ("Read-intensive", READ_INTENSIVE),
    ("Selection-only", SELECTION_ONLY),
    ("Join-only", JOIN_ONLY),
];

/// TPC-C experiment scale.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct TpccExpScale {
    pub scale: TpccScale,
    pub txns_per_mix: usize,
}

impl TpccExpScale {
    /// Default benchmark scale (smaller than the paper's 10 warehouses —
    /// the mix ratios, not the warehouse count, drive the mode gap).
    pub fn full() -> Self {
        TpccExpScale {
            scale: TpccScale::default(),
            txns_per_mix: 300,
        }
    }

    /// Reduced scale for `cargo bench` smoke runs.
    pub fn quick() -> Self {
        TpccExpScale {
            scale: TpccScale {
                warehouses: 1,
                districts_per_warehouse: 4,
                customers_per_district: 10,
                items: 200,
                initial_orders: 10,
            },
            txns_per_mix: 40,
        }
    }

    /// The minimal configuration for the CI `bench-smoke` job.
    pub fn smoke() -> Self {
        TpccExpScale {
            txns_per_mix: 20,
            ..Self::quick()
        }
    }
}

fn tpcc_rig(mode: Mode, s: &TpccExpScale) -> Rig {
    // Footprint: items + stock + order lines grow with the run.
    let rows = s.scale.items * (1 + s.scale.warehouses)
        + s.scale.warehouses
            * s.scale.districts_per_warehouse
            * (s.scale.customers_per_district + s.scale.initial_orders * 12);
    let hot = (rows as u64) / 12 + 2_500;
    Rig::build(RigConfig {
        mode,
        blocks: ((hot as f64 * 2.6 / 128.0).ceil() as usize).max(64),
        logical_pages: hot * 2,
        ..RigConfig::small(mode)
    })
}

/// Runs one mode through all four mixes on one database instance.
fn run_mode(mode: Mode, s: &TpccExpScale) -> Vec<f64> {
    let rig = tpcc_rig(mode, s);
    let mut db = rig.open_db("tpcc.db");
    tpcc::load(&mut db, &s.scale, 1234);
    // One driver across all four mixes: its per-district order counters
    // must track the database state.
    let mut driver = TpccDriver::new(s.scale, 99).with_clock(rig.clock.clone());
    let mut out = Vec::new();
    for (_, mix) in MIXES.iter() {
        let r = tpcc::run_mix(&mut db, &rig.clock, &mut driver, mix, s.txns_per_mix);
        out.push(r.tpm);
    }
    out
}

/// Tables 3–4: the mix definitions and measured throughput.
pub fn tables_3_4(s: TpccExpScale) -> String {
    let mut out = String::new();
    out.push_str("=== Table 3: TPC-C transaction mixes ===\n\n");
    let mut t3 = Table::new(vec![
        "Mix",
        "Delivery",
        "OrderStatus",
        "Payment",
        "StockLevel",
        "NewOrder",
    ]);
    for (name, m) in MIXES {
        t3.row(vec![
            name.to_string(),
            format!("{}%", m.delivery),
            format!("{}%", m.order_status),
            format!("{}%", m.payment),
            format!("{}%", m.stock_level),
            format!("{}%", m.new_order),
        ]);
    }
    out.push_str(&t3.render());
    out.push_str(&format!(
        "\n=== Table 4: TPC-C throughput (txns per simulated minute; \
         {} warehouses, {} txns/mix) ===\n\n",
        s.scale.warehouses, s.txns_per_mix
    ));
    let wal = run_mode(Mode::Wal, &s);
    let x = run_mode(Mode::XFtl, &s);
    for (i, (name, _)) in MIXES.iter().enumerate() {
        metrics::metric(format!("table4.{}.wal_tpm", mix_key(name)), wal[i]);
        metrics::metric(format!("table4.{}.xftl_tpm", mix_key(name)), x[i]);
    }
    let mut t4 = Table::new(vec![
        "",
        "Write-int.",
        "Read-int.",
        "Select-only",
        "Join-only",
    ]);
    t4.row(vec![
        "WAL".to_string(),
        format!("{:.0}", wal[0]),
        format!("{:.0}", wal[1]),
        format!("{:.0}", wal[2]),
        format!("{:.0}", wal[3]),
    ]);
    t4.row(vec![
        "X-FTL".to_string(),
        format!("{:.0}", x[0]),
        format!("{:.0}", x[1]),
        format!("{:.0}", x[2]),
        format!("{:.0}", x[3]),
    ]);
    t4.row(vec![
        "X/WAL".to_string(),
        format!("{:.2}", x[0] / wal[0].max(1e-9)),
        format!("{:.2}", x[1] / wal[1].max(1e-9)),
        format!("{:.2}", x[2] / wal[2].max(1e-9)),
        format!("{:.2}", x[3] / wal[3].max(1e-9)),
    ]);
    out.push_str(&t4.render());
    out.push('\n');
    out
}

/// (WAL, X-FTL) tpm per mix, for integration tests.
pub fn throughputs(s: TpccExpScale) -> Vec<(f64, f64)> {
    let wal = run_mode(Mode::Wal, &s);
    let x = run_mode(Mode::XFtl, &s);
    wal.into_iter().zip(x).collect()
}
