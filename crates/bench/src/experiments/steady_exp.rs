//! GC steady-state soak: demand-paged mapping + cost-benefit GC at
//! 100× device scale.
//!
//! Not a paper figure — the paper's OpenSSD is 64 MB and its mapping
//! table trivially RAM-resident. This experiment is the proof obligation
//! for the demand-paged FTL: fill the device, then overwrite under a
//! Zipfian skew until garbage collection reaches steady state, with the
//! mapping cache pinned to a fraction of the translation slabs. Reported
//! per GC regime (greedy vs cost-benefit with hot/cold separation):
//!
//! * **write amplification** — FTL programs per host write, the figure of
//!   merit cost-benefit victim selection is supposed to improve;
//! * **GC copy volume** — valid pages relocated per host write;
//! * **mapping-cache hit rate** — translations served from RAM; the CI
//!   soak lane gates on this staying above 80%;
//! * **translation-page overhead** — map + GTD programs per host write,
//!   the price of keeping the mapping on flash;
//! * **throughput over time** — host writes per simulated second in
//!   fixed windows, so a regime that starts fast and collapses once GC
//!   kicks in is visible as a falling curve.
//!
//! Page payloads are single-byte fills, so the chip's fill compression
//! keeps host RAM bounded even at the 64 GB scale, and the mapping-cache
//! budget is asserted every window — the run itself is the evidence that
//! the FTL works a 100× device in a fixed RAM envelope.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xftl_flash::{FlashChip, FlashConfig, FlashConfigBuilder, SimClock};
use xftl_ftl::dev::BlockDevice;
use xftl_ftl::{FtlStats, GcPolicy, PageMappedFtl};

use crate::experiments::concurrent_exp::Zipf;
use crate::metrics;
use crate::report::Table;

/// Zipfian skew of the overwrite stream (θ = 0.9, matching the
/// concurrent experiment's contended regime).
pub const ZIPF_THETA: f64 = 0.9;

/// Default seed of the overwrite stream; override with
/// `XFTL_STEADY_SEED=<n>` to soak a different deterministic schedule.
pub const DEFAULT_SEED: u64 = 0x5354_4459; // "STDY"

/// The overwrite-stream seed: `XFTL_STEADY_SEED` or [`DEFAULT_SEED`].
pub fn steady_seed() -> u64 {
    std::env::var("XFTL_STEADY_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Scale knobs for one soak run.
#[derive(Debug, Clone, Copy)]
pub struct SteadyScale {
    /// Device geometry the run formats.
    pub config: FlashConfig,
    /// Human label for the geometry ("tiny", "100x", "64g").
    pub device: &'static str,
    /// Fraction of raw pages exported as the logical space (the rest is
    /// GC headroom).
    pub utilization: f64,
    /// Fraction of translation slabs the mapping cache may keep
    /// resident.
    pub cache_fraction: f64,
    /// Overwrite volume as a multiple of the logical space.
    pub overwrite_factor: f64,
    /// Fixed throughput-sampling windows the overwrites divide into.
    pub windows: usize,
}

impl SteadyScale {
    /// Local validation scale: a 64 GB-class drive. Feasible in bounded
    /// host RAM only because of fill compression + the paged mapping.
    pub fn full() -> Self {
        SteadyScale {
            config: FlashConfigBuilder::scale_64g().build(),
            device: "64g",
            utilization: 0.75,
            cache_fraction: 0.4,
            overwrite_factor: 1.25,
            windows: 8,
        }
    }

    /// CI soak-lane scale: 100× the paper's OpenSSD (~6.8 GB raw).
    pub fn quick() -> Self {
        SteadyScale {
            config: FlashConfigBuilder::scale_100x().build(),
            device: "100x",
            utilization: 0.75,
            cache_fraction: 0.4,
            overwrite_factor: 1.5,
            windows: 6,
        }
    }

    /// PR-CI smoke scale: the tiny test geometry scaled to 256 blocks,
    /// still demand-paging (the cache holds well under half the slabs).
    pub fn smoke() -> Self {
        SteadyScale {
            config: FlashConfig::tiny(256),
            device: "tiny",
            utilization: 0.75,
            // The tiny geometry's 64-entry slabs give Zipfian draws much
            // less per-slab locality than the real scales' 1024+, so the
            // smoke tier needs half the slabs resident to clear the CI
            // hit-rate gate with margin.
            cache_fraction: 0.5,
            overwrite_factor: 2.0,
            windows: 4,
        }
    }

    /// Logical pages the run exports.
    pub fn logical_pages(&self) -> u64 {
        let raw = self.config.geometry.total_pages() as f64;
        (raw * self.utilization) as u64
    }
}

/// One GC regime's steady-state measurements.
#[derive(Debug, Clone)]
pub struct SteadyOut {
    /// Steady-phase write amplification (all FTL programs / host writes).
    pub wa: f64,
    /// GC-relocated pages per host write.
    pub gc_copy_rate: f64,
    /// Fraction of mapping lookups served from the RAM cache.
    pub hit_rate: f64,
    /// Translation + GTD programs per host write.
    pub translation_overhead: f64,
    /// Host writes per simulated second, one entry per window.
    pub writes_per_s: Vec<f64>,
    /// Largest resident-slab count observed (must stay within budget).
    pub resident_max: usize,
    /// The enforced resident-slab budget.
    pub budget: usize,
    /// Total translation slabs of the logical space.
    pub slabs: usize,
    /// Raw steady-phase stats diff, for callers wanting more detail.
    pub stats: FtlStats,
}

/// Runs one regime to GC steady state: fill the logical space
/// sequentially, then overwrite under the Zipfian stream with the
/// mapping cache bounded, measuring only the overwrite phase.
pub fn run_regime(scale: &SteadyScale, policy: GcPolicy, hot_cold: bool) -> SteadyOut {
    let chip = FlashChip::new(scale.config, SimClock::new());
    let logical = scale.logical_pages();
    let mut dev = PageMappedFtl::format(chip, logical).expect("format steady device");
    let slabs = dev.base().map_cache().slabs();
    let budget = ((slabs as f64 * scale.cache_fraction) as usize).max(1);
    dev.base_mut().set_gc_policy(policy);
    dev.base_mut().set_hot_cold(hot_cold);
    dev.base_mut()
        .set_map_cache_budget(Some(budget))
        .expect("bound mapping cache");

    let ps = dev.page_size();
    let mut buf = vec![0u8; ps];
    // Fill phase: one sequential pass over the logical space. Payloads
    // are constant-byte pages so the chip stores them fill-compressed.
    for lpn in 0..logical {
        buf.fill((lpn % 251) as u8);
        dev.write(lpn, &buf).expect("fill write");
    }

    // Steady phase: Zipfian overwrites, measured from a stats snapshot
    // so the fill traffic doesn't dilute the steady-state numbers.
    let before = *dev.stats();
    let zipf = Zipf::new(logical, ZIPF_THETA);
    let mut rng = StdRng::seed_from_u64(steady_seed());
    let total = (logical as f64 * scale.overwrite_factor) as u64;
    let per_window = (total / scale.windows as u64).max(1);
    let clock = dev.clock();
    let mut writes_per_s = Vec::with_capacity(scale.windows);
    let mut resident_max = 0;
    let mut n = 0u64;
    for _ in 0..scale.windows {
        let t0 = clock.now();
        for _ in 0..per_window {
            let lpn = zipf.sample(&mut rng);
            buf.fill((n % 251) as u8);
            dev.write(lpn, &buf).expect("steady write");
            n += 1;
        }
        let dt_s = (clock.now() - t0) as f64 / 1e9;
        writes_per_s.push(per_window as f64 / dt_s.max(1e-9));
        resident_max = resident_max.max(dev.base().map_cache().resident());
        assert!(
            dev.base().map_cache().resident() <= budget,
            "mapping cache exceeded its budget: {} > {budget}",
            dev.base().map_cache().resident()
        );
    }
    let d = *dev.stats() - before;
    let host = d.data_writes.max(1) as f64;
    SteadyOut {
        wa: d.total_writes() as f64 / host,
        gc_copy_rate: d.gc_copies as f64 / host,
        hit_rate: d.map_cache_hit_rate().unwrap_or(1.0),
        translation_overhead: (d.map_writes + d.gtd_writes) as f64 / host,
        writes_per_s,
        resident_max,
        budget,
        slabs,
        stats: d,
    }
}

fn emit(prefix: &str, out: &SteadyOut) {
    metrics::metric(format!("{prefix}.wa"), out.wa);
    metrics::metric(format!("{prefix}.gc_copy_rate"), out.gc_copy_rate);
    metrics::metric(format!("{prefix}.map_cache_hit_rate"), out.hit_rate);
    metrics::metric(
        format!("{prefix}.translation_overhead"),
        out.translation_overhead,
    );
    metrics::metric(format!("{prefix}.cache_budget_slabs"), out.budget as f64);
    metrics::metric(
        format!("{prefix}.cache_resident_max"),
        out.resident_max as f64,
    );
    metrics::metric(
        format!("{prefix}.map_flush_batches"),
        out.stats.map_flush_batches as f64,
    );
    metrics::metric(
        format!("{prefix}.map_evictions_dirty"),
        out.stats.map_evictions_dirty as f64,
    );
    for (i, wps) in out.writes_per_s.iter().enumerate() {
        metrics::metric(format!("{prefix}.win{i}.writes_per_s"), *wps);
    }
}

/// The full soak: greedy vs cost-benefit (with hot/cold separation) on
/// the same device, budget, and overwrite stream.
pub fn steady(scale: &SteadyScale) -> String {
    let greedy = run_regime(scale, GcPolicy::Greedy, false);
    let cb = run_regime(scale, GcPolicy::CostBenefit, true);
    emit("steady.greedy", &greedy);
    emit("steady.cb", &cb);
    metrics::metric("steady.logical_pages", scale.logical_pages() as f64);
    metrics::metric("steady.slabs", greedy.slabs as f64);

    let mut out = String::new();
    out.push_str(&format!(
        "=== GC steady state: {} device, {} logical pages, cache {} of {} \
         slabs, {:.1}x Zipfian(θ={}) overwrite (seed {}) ===\n\n",
        scale.device,
        scale.logical_pages(),
        greedy.budget,
        greedy.slabs,
        scale.overwrite_factor,
        ZIPF_THETA,
        steady_seed(),
    ));
    let mut t = Table::new(vec![
        "gc policy",
        "WA",
        "gc copies/write",
        "cache hit rate",
        "map overhead",
        "first win writes/s",
        "last win writes/s",
    ]);
    for (name, r) in [("greedy", &greedy), ("cost-benefit", &cb)] {
        t.row(vec![
            name.to_string(),
            format!("{:.3}", r.wa),
            format!("{:.3}", r.gc_copy_rate),
            format!("{:.1}%", 100.0 * r.hit_rate),
            format!("{:.4}", r.translation_overhead),
            format!("{:.0}", r.writes_per_s.first().copied().unwrap_or(0.0)),
            format!("{:.0}", r.writes_per_s.last().copied().unwrap_or(0.0)),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> SteadyScale {
        SteadyScale {
            config: FlashConfig::tiny(96),
            device: "tiny",
            utilization: 0.7,
            cache_fraction: 0.4,
            overwrite_factor: 1.5,
            windows: 2,
        }
    }

    #[test]
    fn steady_run_is_budget_bounded_and_deterministic() {
        let scale = tiny_scale();
        let a = run_regime(&scale, GcPolicy::CostBenefit, true);
        let b = run_regime(&scale, GcPolicy::CostBenefit, true);
        assert!(a.resident_max <= a.budget);
        assert!(a.budget < a.slabs, "the cache must actually demand-page");
        assert_eq!(a.wa, b.wa, "same seed, same WA");
        assert_eq!(a.writes_per_s, b.writes_per_s, "same throughput curve");
        assert!(a.wa >= 1.0, "WA counts at least the host programs");
        assert!(a.hit_rate > 0.0 && a.hit_rate <= 1.0);
    }

    #[test]
    fn cost_benefit_does_not_lose_to_greedy_on_skew() {
        let scale = tiny_scale();
        let greedy = run_regime(&scale, GcPolicy::Greedy, false);
        let cb = run_regime(&scale, GcPolicy::CostBenefit, true);
        assert!(
            cb.wa <= greedy.wa * 1.02,
            "cost-benefit WA {:.3} should not regress past greedy {:.3}",
            cb.wa,
            greedy.wa
        );
        assert!(
            cb.stats.gc_cb_data_victims + cb.stats.gc_cb_map_victims > 0,
            "cost-benefit selection must actually run"
        );
    }
}
