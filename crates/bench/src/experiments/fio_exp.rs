//! Figures 8–9: the FIO-style random-write file-system benchmark.

use xftl_fs::JournalMode;
use xftl_workloads::fio::{self, FioConfig};
use xftl_workloads::rig::{Mode, Profile, Rig, RigConfig};

use crate::metrics;
use crate::report::Table;

/// FIO experiment scale.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct FioScale {
    /// File size per job (paper: 4 GB; scaled down to bound simulator
    /// memory — random-write IOPS at fixed fsync cadence is insensitive
    /// to file size once it exceeds the page cache).
    pub file_bytes: u64,
    pub duration_secs: u64,
}

impl FioScale {
    /// Default full-scale parameters.
    pub fn full() -> Self {
        FioScale {
            file_bytes: 128 * 1024 * 1024,
            duration_secs: 30,
        }
    }

    /// Reduced scale for `cargo bench` smoke runs.
    pub fn quick() -> Self {
        FioScale {
            file_bytes: 16 * 1024 * 1024,
            duration_secs: 4,
        }
    }

    /// The minimal scale for the CI `bench-smoke` job.
    pub fn smoke() -> Self {
        FioScale {
            file_bytes: 8 * 1024 * 1024,
            duration_secs: 2,
        }
    }
}

/// The FS configurations of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum FsSetup {
    XFtlOff,
    Ordered,
    Full,
}

impl FsSetup {
    /// Human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FsSetup::XFtlOff => "X-FTL (journaling off)",
            FsSetup::Ordered => "ordered journaling",
            FsSetup::Full => "full journaling",
        }
    }

    /// Stable lowercase key for metric names.
    pub fn key(self) -> &'static str {
        match self {
            FsSetup::XFtlOff => "xftl",
            FsSetup::Ordered => "ordered",
            FsSetup::Full => "full",
        }
    }
}

fn fio_rig(setup: FsSetup, profile: Profile, scale: &FioScale) -> Rig {
    let file_pages = scale.file_bytes / 8192;
    // Plenty of logical room; over-provisioning ~60 %.
    let logical = file_pages * 2 + 4_000;
    let (mode, over) = match setup {
        FsSetup::XFtlOff => (Mode::XFtl, None),
        FsSetup::Ordered => (Mode::Wal, None), // Wal rig = ordered FS
        FsSetup::Full => (Mode::Rbj, Some(JournalMode::Full)),
    };
    Rig::build(RigConfig {
        mode,
        profile,
        blocks: ((logical as f64 * 1.6 / 128.0).ceil() as usize).max(64),
        logical_pages: logical,
        fs_mode_override: over,
        ..RigConfig::small(mode)
    })
}

/// Queue depth of the pipelined X-FTL rows in Figure 9. The ext4 setups
/// have no split-phase commit, so their rows always run at depth 1.
pub const FIG9_QUEUE_DEPTH: usize = 8;

/// One measured IOPS point.
pub fn run_point(
    setup: FsSetup,
    profile: Profile,
    jobs: usize,
    writes_per_fsync: usize,
    queue_depth: usize,
    scale: &FioScale,
) -> f64 {
    let rig = fio_rig(setup, profile, scale);
    let r = fio::run(
        &rig,
        &FioConfig {
            jobs,
            file_bytes: scale.file_bytes,
            writes_per_fsync,
            duration_secs: scale.duration_secs,
            seed: 7,
            queue_depth,
        },
    );
    r.iops
}

/// Figure 8: single-thread IOPS vs. fsync interval on the OpenSSD.
pub fn fig8(scale: FioScale) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "=== Figure 8: FIO benchmark, single thread (8 KB IOPS; file {} MB, {} s) ===\n\n",
        scale.file_bytes / (1024 * 1024),
        scale.duration_secs
    ));
    let mut t = Table::new(vec!["pages/fsync", "X-FTL", "ordered", "full"]);
    for wpf in [1usize, 5, 10, 15, 20] {
        let x = run_point(FsSetup::XFtlOff, Profile::OpenSsd, 1, wpf, 1, &scale);
        let o = run_point(FsSetup::Ordered, Profile::OpenSsd, 1, wpf, 1, &scale);
        let f = run_point(FsSetup::Full, Profile::OpenSsd, 1, wpf, 1, &scale);
        metrics::metric(format!("fig8.wpf{wpf}.xftl_iops"), x);
        metrics::metric(format!("fig8.wpf{wpf}.ordered_iops"), o);
        metrics::metric(format!("fig8.wpf{wpf}.full_iops"), f);
        t.row(vec![
            wpf.to_string(),
            format!("{x:.0}"),
            format!("{o:.0}"),
            format!("{f:.0}"),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out
}

/// Figure 9: 16 concurrent jobs — the S830 in ordered/full journaling
/// against the OpenSSD running X-FTL. The S830's IOPS advantage comes
/// from its array structure (4 channels x 2 ways vs the OpenSSD's single
/// channel) plus newer NAND timings; the paper's point is that X-FTL on
/// the old board still lands between the new drive's journaling modes.
pub fn fig9(scale: FioScale) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "=== Figure 9: FIO benchmark, X-FTL vs S830 SSD (16 jobs; 8 KB IOPS; \
         X-FTL commit pipeline at queue depth {FIG9_QUEUE_DEPTH}) ===\n\n"
    ));
    let mut t = Table::new(vec![
        "pages/fsync",
        "S830 ordered",
        "OpenSSD X-FTL",
        "X-FTL qd=1",
        "S830 full",
    ]);
    for wpf in [1usize, 5, 10, 15, 20] {
        let so = run_point(FsSetup::Ordered, Profile::S830, 16, wpf, 1, &scale);
        let x = run_point(
            FsSetup::XFtlOff,
            Profile::OpenSsd,
            16,
            wpf,
            FIG9_QUEUE_DEPTH,
            &scale,
        );
        let x1 = run_point(FsSetup::XFtlOff, Profile::OpenSsd, 16, wpf, 1, &scale);
        let sf = run_point(FsSetup::Full, Profile::S830, 16, wpf, 1, &scale);
        metrics::metric(format!("fig9.wpf{wpf}.s830_ordered_iops"), so);
        metrics::metric(format!("fig9.wpf{wpf}.openssd_xftl_iops"), x);
        metrics::metric(format!("fig9.wpf{wpf}.openssd_xftl_qd1_iops"), x1);
        metrics::metric(format!("fig9.wpf{wpf}.s830_full_iops"), sf);
        t.row(vec![
            wpf.to_string(),
            format!("{so:.0}"),
            format!("{x:.0}"),
            format!("{x1:.0}"),
            format!("{sf:.0}"),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out
}
