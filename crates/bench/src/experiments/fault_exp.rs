//! Fault-rate ablation: throughput and commit latency as the NAND
//! misbehaves.
//!
//! Not a paper figure — X-FTL's evaluation ran on healthy silicon — but
//! the measurable form of the claim §5 takes for granted: transactional
//! atomicity must not come at the price of reliability plumbing. The
//! sweep installs a background [`FaultEnv`] on the chip (program status
//! failures, erase failures that permanently retire blocks, correctable
//! and uncorrectable read errors) and re-runs the synthetic partsupp
//! workload at increasing severity, comparing X-FTL against the RBJ and
//! WAL baselines. The claim under test: commit latency degrades
//! *gracefully* — bounded retries, no retry storms — even when the fault
//! environment retires more than 5 % of the physical blocks.

use xftl_workloads::rig::{FaultEnv, Mode, Rig, RigConfig, Snapshot};
use xftl_workloads::synthetic::{self, SyntheticConfig};

use crate::metrics;
use crate::report::{millis, Table};

/// Scale of the fault sweep.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct FaultScale {
    pub tuples: usize,
    pub txns: usize,
}

impl FaultScale {
    /// The report-quality configuration.
    pub fn full() -> Self {
        FaultScale {
            tuples: 20_000,
            txns: 600,
        }
    }

    /// A fast configuration for `cargo bench` smoke runs and tests.
    pub fn quick() -> Self {
        FaultScale {
            tuples: 9_000,
            txns: 250,
        }
    }

    /// The minimal configuration for the CI `bench-smoke` job.
    pub fn smoke() -> Self {
        FaultScale {
            tuples: 5_000,
            txns: 120,
        }
    }

    /// Exported logical pages: table leaves plus WAL/journal headroom.
    fn logical_pages(&self) -> u64 {
        (self.tuples as u64 / 30) + 2_200
    }

    /// Physical blocks: tight enough around the logical space that the
    /// write frontier cycles and GC (hence erase traffic, hence
    /// erase-failure exposure) reaches steady state during the run, with
    /// enough spare blocks that the extreme regime's retirements don't
    /// starve the free pool. Steady-state erase count tracks program
    /// volume, not slack, so the extra headroom doesn't reduce exposure.
    fn blocks(&self) -> usize {
        (self.logical_pages() / 128 + 18) as usize
    }
}

/// One severity step of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct Severity {
    /// Report label (the order-of-magnitude of the program-fail rate).
    pub label: &'static str,
    /// The fault environment, `None` for the healthy-silicon baseline.
    pub env: Option<FaultEnv>,
}

/// The swept severities: healthy silicon, then background rates rising
/// from 10⁻⁴ to a deliberately brutal regime whose erase-failure rate
/// retires well past 5 % of the physical blocks over a report-scale
/// run. (Retirement needs erase traffic, and erase traffic needs GC
/// churn, so the short `quick()` runs retire little — the graceful-
/// degradation test uses its own harsher environment instead.)
pub const FAULT_SWEEP: [Severity; 5] = [
    Severity {
        label: "clean",
        env: None,
    },
    Severity {
        label: "1e-4",
        env: Some(FaultEnv {
            seed: 0xFA_001,
            program_fail: 1e-4,
            erase_fail: 1e-4,
            read_flip: 1e-3,
            uncorrectable: 1e-4,
            aging: None,
        }),
    },
    Severity {
        label: "1e-3",
        env: Some(FaultEnv {
            seed: 0xFA_002,
            program_fail: 1e-3,
            erase_fail: 1e-3,
            read_flip: 1e-2,
            uncorrectable: 2e-4,
            aging: None,
        }),
    },
    Severity {
        label: "1e-2",
        env: Some(FaultEnv {
            seed: 0xFA_003,
            program_fail: 1e-2,
            erase_fail: 2e-2,
            read_flip: 5e-2,
            uncorrectable: 5e-4,
            aging: None,
        }),
    },
    Severity {
        label: "extreme",
        env: Some(FaultEnv {
            seed: 0xFA_004,
            program_fail: 1.5e-2,
            erase_fail: 6e-2,
            read_flip: 8e-2,
            uncorrectable: 1e-3,
            aging: None,
        }),
    },
];

/// One measured point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct FaultPoint {
    /// Mean commit (whole-transaction) latency, nanoseconds.
    pub commit_ns: u64,
    /// Transactions per simulated second.
    pub tps: f64,
    /// Flash operations (reads + programs) per simulated second.
    pub iops: f64,
    /// Physical blocks the rig was built with.
    pub blocks: usize,
    /// Full statistics behind the point.
    pub snap: Snapshot,
}

impl FaultPoint {
    /// Fraction of physical blocks the FTL retired during the run.
    pub fn retired_fraction(&self) -> f64 {
        self.snap.ftl.bad_block_retirements as f64 / self.blocks as f64
    }
}

/// Runs one (mode, severity) cell: build a rig over the fault
/// environment, load partsupp, run the transaction phase.
///
/// # Errors
/// A device that dies mid-run surfaces as the typed end-of-life error
/// (`DbError::ReadOnly` or a device `OutOfSpace`) instead of a panic.
pub fn run_point(
    mode: Mode,
    env: Option<FaultEnv>,
    scale: &FaultScale,
) -> xftl_db::Result<FaultPoint> {
    let blocks = scale.blocks();
    let rig = Rig::build(RigConfig {
        blocks,
        logical_pages: scale.logical_pages(),
        fault: env,
        // Small OS page cache so the read path actually reaches flash —
        // otherwise every SELECT hits DRAM and the read-fault classes
        // (bit flips, uncorrectable errors) never get exercised.
        fs_cache_pages: 64,
        ..RigConfig::small(mode)
    });
    let syn = SyntheticConfig {
        tuples: scale.tuples,
        txns: scale.txns,
        ..SyntheticConfig::default()
    };
    let mut db = rig.open_db("fault.db");
    synthetic::load_partsupply(&mut db, &syn)?;
    rig.reset_stats();
    db.reset_stats();
    let result = synthetic::run_transactions(&mut db, &rig.clock, &syn)?;
    drop(db);
    // Latency distributions under fault load; the sink keeps the last
    // (hence harshest-sweep) run per mode.
    metrics::hists(
        &format!("faults.{}", metrics::mode_key(mode)),
        &rig.telemetry(),
    );
    let snap = rig.snapshot();
    let secs = result.elapsed_ns as f64 / 1e9;
    Ok(FaultPoint {
        commit_ns: result.elapsed_ns / result.txns as u64,
        tps: result.txns as f64 / secs,
        iops: (snap.flash.reads + snap.flash.programs) as f64 / secs,
        blocks,
        snap,
    })
}

/// Runs one baseline cell, folding a mid-run device death into `None`: a
/// journaling mode whose write amplification drives enough erase traffic
/// that block retirements exhaust the free pool really is dead at that
/// severity, and the sweep reports that as a result rather than refusing
/// to print the table. Anything other than the typed end-of-life errors
/// is a genuine harness failure and still panics.
fn try_point(mode: Mode, env: Option<FaultEnv>, scale: &FaultScale) -> Option<FaultPoint> {
    use xftl_db::DbError;
    use xftl_fs::FsError;
    use xftl_ftl::DevError;
    match run_point(mode, env, scale) {
        Ok(p) => Some(p),
        Err(DbError::ReadOnly | DbError::Fs(FsError::Dev(DevError::OutOfSpace))) => None,
        Err(e) => panic!("fault sweep: {mode:?} failed for a non-endurance reason: {e}"),
    }
}

fn cell_ms(p: Option<&FaultPoint>) -> String {
    p.map_or_else(|| "dead".into(), |p| millis(p.commit_ns))
}

/// The full experiment: commit latency and throughput vs fault severity
/// for the three journaling modes, then the X-FTL fault-handling detail
/// behind each severity.
pub fn fault_sweep(scale: FaultScale) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "=== Fault sweep: synthetic partsupp ({} tuples, {} txns, 5 updates/txn) ===\n\
         (background NAND fault rates per op; commit latency in ms/txn)\n\n",
        scale.tuples, scale.txns
    ));
    let mut t = Table::new(vec![
        "faults",
        "RBJ ms",
        "WAL ms",
        "X-FTL ms",
        "X-FTL tps",
        "X-FTL IOPS",
        "retired",
    ]);
    let mut x_points: Vec<FaultPoint> = Vec::new();
    let mut any_dead = false;
    for sev in FAULT_SWEEP {
        let rbj = try_point(Mode::Rbj, sev.env, &scale);
        let wal = try_point(Mode::Wal, sev.env, &scale);
        // X-FTL must survive every severity in the sweep; an error here
        // is a genuine harness failure, not a reportable outcome.
        let x = run_point(Mode::XFtl, sev.env, &scale).expect("X-FTL died in the fault sweep");
        any_dead |= rbj.is_none() || wal.is_none();
        metrics::metric(
            format!("faults.{}.xftl_commit_ns", sev.label),
            x.commit_ns as f64,
        );
        metrics::metric(format!("faults.{}.xftl_tps", sev.label), x.tps);
        metrics::metric(
            format!("faults.{}.retired_blocks", sev.label),
            x.snap.ftl.bad_block_retirements as f64,
        );
        t.row(vec![
            sev.label.to_string(),
            cell_ms(rbj.as_ref()),
            cell_ms(wal.as_ref()),
            millis(x.commit_ns),
            format!("{:.0}", x.tps),
            format!("{:.0}", x.iops),
            format!(
                "{}/{} ({:.1}%)",
                x.snap.ftl.bad_block_retirements,
                x.blocks,
                100.0 * x.retired_fraction()
            ),
        ]);
        x_points.push(x);
    }
    out.push_str(&t.render());
    if any_dead {
        out.push_str(
            "(dead: journaling write amplification drove enough erase traffic that \
             block retirements exhausted the device's free pool)\n",
        );
    }
    out.push('\n');

    out.push_str("Fault handling inside the X-FTL runs:\n\n");
    let mut d = Table::new(vec![
        "faults",
        "pgm fails",
        "pgm retries",
        "erase fails",
        "corrected",
        "uncorrectable",
        "read retries",
        "stall ms",
    ]);
    for (sev, p) in FAULT_SWEEP.iter().zip(&x_points) {
        let f = &p.snap.flash;
        let l = &p.snap.ftl;
        d.row(vec![
            sev.label.to_string(),
            f.program_fails.to_string(),
            l.program_retries.to_string(),
            f.erase_fails.to_string(),
            f.corrected_reads.to_string(),
            f.uncorrectable_reads.to_string(),
            l.read_retries.to_string(),
            millis(f.fault_stall_ns),
        ]);
    }
    out.push_str(&d.render());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FTL_PROGRAM_RETRY_LIMIT: u64 = 8;

    /// Harsher than `FAULT_SWEEP`'s extreme: the quick scale's short
    /// transaction phase drives little GC, so forcing >= 5 % block
    /// retirement within it takes program-fail churn (each failure
    /// abandons a frontier, multiplying garbage and hence erases) on
    /// top of a high erase-failure rate. Report-scale runs reach the
    /// same retired fraction at the sweep's gentler rates.
    const TORTURE: FaultEnv = FaultEnv {
        seed: 0xFA_0FF,
        program_fail: 3e-2,
        erase_fail: 8e-2,
        read_flip: 8e-2,
        uncorrectable: 1e-3,
        aging: None,
    };

    #[test]
    fn xftl_degrades_gracefully_to_heavy_block_retirement() {
        let scale = FaultScale::quick();
        let clean = run_point(Mode::XFtl, None, &scale).expect("clean run failed");
        let extreme = run_point(Mode::XFtl, Some(TORTURE), &scale).expect("torture run failed");
        // The brutal regime must actually exercise every fault class…
        let f = &extreme.snap.flash;
        assert!(f.program_fails > 0, "program faults never fired");
        assert!(f.erase_fails > 0, "erase faults never fired");
        assert!(f.corrected_reads > 0, "correctable read faults never fired");
        // …and retire a meaningful slice of the device.
        assert!(
            extreme.retired_fraction() >= 0.05,
            "expected >= 5% of blocks retired, got {}/{}",
            extreme.snap.ftl.bad_block_retirements,
            extreme.blocks
        );
        // Graceful degradation: every failed program is re-driven within
        // the bounded retry budget (no retry storms)…
        let l = &extreme.snap.ftl;
        assert!(l.program_retries >= f.program_fails);
        assert!(l.program_retries <= f.program_fails * FTL_PROGRAM_RETRY_LIMIT);
        // …and commit latency stays the same order of magnitude as on
        // healthy silicon even with a fifth of erases failing.
        assert!(
            extreme.commit_ns < clean.commit_ns * 10,
            "commit latency exploded: {} ns vs clean {} ns",
            extreme.commit_ns,
            clean.commit_ns
        );
    }

    #[test]
    fn fault_severity_monotonically_costs_time() {
        let scale = FaultScale::quick();
        let clean = run_point(Mode::XFtl, None, &scale).expect("clean run failed");
        let heavy = run_point(Mode::XFtl, FAULT_SWEEP[3].env, &scale).expect("heavy run failed");
        // Fault handling charges real simulated time, so a heavy fault
        // regime can only slow the same workload down.
        assert!(heavy.snap.flash.fault_stall_ns > 0);
        assert!(heavy.commit_ns >= clean.commit_ns);
    }
}
