//! Endurance sweep: each journaling mode driven to device end-of-life.
//!
//! Not a paper figure — the paper's evaluation stops at healthy silicon —
//! but the robustness counterpart of its §5 durability claim: when the
//! NAND itself wears out, a transactional FTL must fail *readable*, not
//! lose acknowledged commits. The sweep installs an erase-failure-heavy
//! fault environment plus the deterministic aging curve (read disturb,
//! erase wear) on the chip, enables the background scrubber, and runs
//! update transactions until the device either survives the budget or
//! degrades to read-only mode. Each run then power-cycles the dead (or
//! surviving) stack, recovers it, and audits every row through a fresh
//! connection.
//!
//! Reported per (severity, mode): transactions committed before
//! end-of-life, the transaction at which the device entered `Degraded`,
//! the final device state, the fraction of rows still readable after
//! recovery, the fraction whose values match an acknowledged commit, and
//! the scrubber's relocation overhead. The CI gate on top demands that
//! X-FTL keeps 100 % of rows readable at every severity, that the
//! scrubber holds aging-induced uncorrectable errors at zero, and that
//! entry into `Degraded` is monotone in fault severity.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xftl_db::{DbError, Value};
use xftl_flash::{AgingModel, Nanos};
use xftl_fs::FsError;
use xftl_ftl::{DevError, DeviceState, ScrubConfig};
use xftl_workloads::rig::{FaultEnv, Mode, Rig, RigConfig};
use xftl_workloads::synthetic::{self, SyntheticConfig};

use crate::metrics;
use crate::report::Table;

/// Scale of the endurance sweep.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct EnduranceScale {
    pub tuples: usize,
    /// Transaction budget: a device that survives this many commits at a
    /// given severity is reported as a survivor.
    pub txn_cap: usize,
}

impl EnduranceScale {
    /// The report-quality configuration.
    pub fn full() -> Self {
        EnduranceScale {
            tuples: 6_000,
            txn_cap: 20_000,
        }
    }

    /// A fast configuration for `cargo bench` smoke runs and tests.
    pub fn quick() -> Self {
        EnduranceScale {
            tuples: 1_500,
            txn_cap: 4_000,
        }
    }

    /// The minimal configuration for the CI `bench-smoke` job.
    pub fn smoke() -> Self {
        EnduranceScale {
            tuples: 800,
            txn_cap: 1_500,
        }
    }

    /// Exported logical pages: table leaves plus WAL/journal headroom.
    fn logical_pages(&self) -> u64 {
        (self.tuples as u64 / 30) + 2_200
    }

    /// Physical blocks: a deliberately thin spare pool, so that erase
    /// failures can actually exhaust it within the budget. (The fault
    /// sweep sizes generously for the opposite reason — it must survive.)
    fn blocks(&self) -> usize {
        (self.logical_pages() / 128 + 10) as usize
    }
}

/// The deterministic wear-out curve every severity shares: read disturb
/// kicks in well above the scrubber's relocation threshold (so an active
/// scrubber prevents it entirely), and erase wear adds a rising error
/// floor on heavily cycled blocks. Retention is off — the simulated runs
/// are too short for calendar aging to be the interesting axis.
const ENDURANCE_AGING: AgingModel = AgingModel {
    read_disturb_threshold: 4_000,
    reads_per_flip: 400,
    retention_threshold_ns: Nanos::MAX,
    retention_ns_per_flip: Nanos::MAX,
    wear_threshold: 300,
    wear_per_step: 150,
};

/// One wear severity of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct WearSeverity {
    /// Stable metric key, `s<rank>_<name>` — the rank makes the
    /// degraded-entry monotonicity gate parseable from metric names.
    pub key: &'static str,
    /// Report label.
    pub label: &'static str,
    /// The fault environment (erase-failure dominated).
    pub env: FaultEnv,
}

/// The swept severities, mildest first. Erase failures dominate because
/// they are what actually consumes the device: each first failure
/// permanently retires a block, and end-of-life is the free pool running
/// out of them.
pub const ENDURANCE_SWEEP: [WearSeverity; 3] = [
    WearSeverity {
        key: "s0_worn",
        label: "worn",
        env: FaultEnv {
            seed: 0xEA_001,
            program_fail: 1e-3,
            erase_fail: 1e-2,
            read_flip: 1e-2,
            uncorrectable: 0.0,
            aging: Some(ENDURANCE_AGING),
        },
    },
    WearSeverity {
        key: "s1_failing",
        label: "failing",
        env: FaultEnv {
            seed: 0xEA_002,
            program_fail: 2e-3,
            erase_fail: 8e-2,
            read_flip: 2e-2,
            uncorrectable: 0.0,
            aging: Some(ENDURANCE_AGING),
        },
    },
    WearSeverity {
        key: "s2_dying",
        label: "dying",
        env: FaultEnv {
            seed: 0xEA_003,
            program_fail: 4e-3,
            erase_fail: 3e-1,
            read_flip: 4e-2,
            uncorrectable: 0.0,
            aging: Some(ENDURANCE_AGING),
        },
    },
];

/// The scrub policy every endurance rig runs: relocate a block well
/// before the aging curve's disturb threshold, chase corrected-flip
/// bursts early, and keep the wear spread bounded.
fn scrub_policy() -> ScrubConfig {
    ScrubConfig {
        read_threshold: 256,
        flip_threshold: 4,
        interval_ops: 16,
        wear_delta_cap: 16,
        ..ScrubConfig::default()
    }
}

/// One measured cell of the sweep.
#[derive(Debug, Clone)]
pub struct EndurancePoint {
    /// Transactions acknowledged before end-of-life (or the budget).
    pub txns: usize,
    /// True if the device refused service before the budget ran out.
    pub died: bool,
    /// Transaction count at which the device entered `Degraded`.
    pub degraded_at_txn: Option<usize>,
    /// Simulated time from the first transaction to `Degraded` entry.
    pub time_to_degraded_ns: Option<Nanos>,
    /// Device state after post-mortem power-cycle and recovery.
    pub final_state: DeviceState,
    /// True if the recovered volume mounted in read-only mode.
    pub mounted_read_only: bool,
    /// True if the database reopened after recovery.
    pub reopened: bool,
    /// Rows in the table.
    pub rows_total: usize,
    /// Rows readable after recovery.
    pub rows_readable: usize,
    /// Readable rows whose value matches an acknowledged commit (or the
    /// in-flight transaction the device died under).
    pub rows_intact: usize,
    /// Scrub relocations (runs) during the life of the device.
    pub scrub_runs: u64,
    /// Pages copied by scrub relocations.
    pub scrub_copies: u64,
    /// Static wear-leveling relocations.
    pub wear_level_runs: u64,
    /// Pages copied by wear leveling.
    pub wear_level_copies: u64,
    /// Host data pages programmed (the scrub-overhead denominator).
    pub data_writes: u64,
    /// Uncorrectable reads caused by the aging curve alone — what the
    /// scrubber exists to prevent.
    pub aging_uncorrectable: u64,
    /// Blocks retired by the end of the run.
    pub bad_blocks: usize,
}

impl EndurancePoint {
    /// Fraction of rows readable after recovery.
    pub fn readable_fraction(&self) -> f64 {
        self.rows_readable as f64 / self.rows_total as f64
    }

    /// Fraction of rows whose values match an acknowledged commit.
    pub fn intact_fraction(&self) -> f64 {
        self.rows_intact as f64 / self.rows_total as f64
    }

    /// Background-copy overhead: scrub + wear-level copies per host
    /// data write.
    pub fn scrub_overhead(&self) -> f64 {
        (self.scrub_copies + self.wear_level_copies) as f64 / self.data_writes.max(1) as f64
    }
}

/// True for the typed errors a device at end of life produces; anything
/// else mid-sweep is a harness failure.
fn is_end_of_life(e: &DbError) -> bool {
    matches!(
        e,
        DbError::ReadOnly
            | DbError::Fs(FsError::ReadOnly)
            | DbError::Fs(FsError::Dev(DevError::ReadOnly | DevError::OutOfSpace))
    )
}

/// Runs one (mode, severity) cell to end-of-life (or the budget), then
/// power-cycles, recovers, and audits every row.
pub fn run_point(mode: Mode, env: FaultEnv, scale: &EnduranceScale) -> EndurancePoint {
    let rig = Rig::build(RigConfig {
        blocks: scale.blocks(),
        logical_pages: scale.logical_pages(),
        fault: Some(env),
        scrub: Some(scrub_policy()),
        // Tiny OS page cache so reads reach flash and the read-disturb
        // machinery (counters, scrub scores) sees real traffic.
        fs_cache_pages: 8,
        ..RigConfig::small(mode)
    });
    let syn = SyntheticConfig {
        tuples: scale.tuples,
        txns: 0,
        ..SyntheticConfig::default()
    };

    // Life phase: update transactions until the device refuses service.
    // `committed` tracks the last acknowledged value per key; `pending`
    // the writes of the transaction in flight when the device died.
    let mut committed: HashMap<i64, f64> = HashMap::new();
    let mut pending: Vec<(i64, f64)> = Vec::new();
    let mut txns = 0usize;
    let mut died = false;
    let mut degraded_at_txn = None;
    let mut time_to_degraded_ns = None;
    {
        let mut db = rig.open_db("endure.db");
        // Shrink the pager cache (default 256 pages holds this whole
        // working set) so point queries miss all the way to flash; read
        // disturb only accumulates on pages the host actually re-reads.
        db.pager_mut().set_cache_capacity(16);
        match synthetic::load_partsupply(&mut db, &syn) {
            Ok(()) => {
                let t0 = rig.clock.now();
                let mut rng = StdRng::seed_from_u64(env.seed ^ 0xE0_D1E);
                'life: for t in 0..scale.txn_cap {
                    pending.clear();
                    let gen_val = (t + 1) as f64;
                    let r = (|| -> xftl_db::Result<()> {
                        db.execute("BEGIN")?;
                        for _ in 0..syn.updates_per_txn {
                            let key = rng.gen_range(1..=syn.tuples as i64);
                            // Read-modify-write, like the synthetic
                            // workload; the reads are what accumulates
                            // disturb on hot leaf blocks.
                            db.query_with(
                                "SELECT ps_supplycost FROM partsupp WHERE ps_id = ?",
                                &[Value::Int(key)],
                            )?;
                            db.execute_with(
                                "UPDATE partsupp SET ps_supplycost = ? WHERE ps_id = ?",
                                &[Value::Real(gen_val), Value::Int(key)],
                            )?;
                            pending.push((key, gen_val));
                        }
                        db.execute("COMMIT")?;
                        Ok(())
                    })();
                    match r {
                        Ok(()) => {
                            txns += 1;
                            for &(k, v) in &pending {
                                committed.insert(k, v);
                            }
                        }
                        // No rollback attempt: the device just refused
                        // service, and the post-mortem power cycle
                        // discards all in-RAM transaction state anyway.
                        Err(e) if is_end_of_life(&e) => {
                            died = true;
                            break 'life;
                        }
                        Err(e) => {
                            panic!("endurance: {mode:?} failed for a non-endurance reason: {e}")
                        }
                    }
                    if degraded_at_txn.is_none() && rig.device_state() >= DeviceState::Degraded {
                        degraded_at_txn = Some(txns);
                        time_to_degraded_ns = Some(rig.clock.now() - t0);
                    }
                }
            }
            Err(e) if is_end_of_life(&e) => died = true,
            Err(e) => panic!("endurance: {mode:?} load failed for a non-endurance reason: {e}"),
        }
    }

    // Capture life-phase statistics before the power cycle resets the
    // FTL's RAM counters.
    let snap = rig.snapshot();

    // Post-mortem: power-cycle, recover, remount, and audit every row
    // through a fresh connection. A dead baseline whose journal cannot
    // be replayed reports exactly what it lost.
    let (rig, _recovery_ns) = rig.crash_and_recover();
    let final_state = rig.device_state();
    let mounted_read_only = rig.fs.borrow().mounted_read_only();
    let mut reopened = false;
    let mut rows_readable = 0usize;
    let mut rows_intact = 0usize;
    if let Ok(mut db) = rig.try_open_db("endure.db") {
        reopened = true;
        for key in 1..=syn.tuples as i64 {
            let Ok(rows) = db.query_with(
                "SELECT ps_supplycost FROM partsupp WHERE ps_id = ?",
                &[Value::Int(key)],
            ) else {
                continue;
            };
            let Some(v) = rows.first().and_then(|r| r[0].as_f64()) else {
                continue;
            };
            rows_readable += 1;
            let intact = match committed.get(&key) {
                Some(&c) => v == c || (died && pending.iter().any(|&(k, p)| k == key && p == v)),
                // Never updated: whatever the load wrote is right.
                None => true,
            };
            if intact {
                rows_intact += 1;
            }
        }
    }

    EndurancePoint {
        txns,
        died,
        degraded_at_txn,
        time_to_degraded_ns,
        final_state,
        mounted_read_only,
        reopened,
        rows_total: syn.tuples,
        rows_readable,
        rows_intact,
        scrub_runs: snap.ftl.scrub_runs,
        scrub_copies: snap.ftl.scrub_copies,
        wear_level_runs: snap.ftl.wear_level_runs,
        wear_level_copies: snap.ftl.wear_level_copies,
        data_writes: snap.ftl.data_writes,
        aging_uncorrectable: snap.flash.aging_uncorrectable,
        bad_blocks: snap.ftl.bad_block_retirements as usize,
    }
}

fn state_label(s: DeviceState) -> &'static str {
    match s {
        DeviceState::Healthy => "healthy",
        DeviceState::Degraded => "degraded",
        DeviceState::ReadOnly => "read-only",
    }
}

/// The full experiment: every severity × mode cell, with the readable /
/// intact audit and the scrubber detail behind the X-FTL runs.
pub fn endurance_sweep(scale: EnduranceScale) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "=== Endurance sweep: partsupp updates to device end-of-life \
         ({} tuples, budget {} txns) ===\n\
         (erase-failure-dominated fault environments plus the deterministic \
         aging curve; scrubber on)\n\n",
        scale.tuples, scale.txn_cap
    ));
    let mut t = Table::new(vec![
        "wear",
        "mode",
        "txns",
        "degraded@",
        "state",
        "readable",
        "intact",
        "bad blks",
    ]);
    let mut x_points = Vec::new();
    for sev in ENDURANCE_SWEEP {
        for mode in [Mode::Rbj, Mode::Wal, Mode::XFtl] {
            let p = run_point(mode, sev.env, &scale);
            let mk = metrics::mode_key(mode);
            let key = |m: &str| format!("endurance.{}.{mk}.{m}", sev.key);
            metrics::metric(key("txns"), p.txns as f64);
            metrics::metric(key("died"), f64::from(p.died));
            metrics::metric(key("degraded"), f64::from(p.degraded_at_txn.is_some()));
            metrics::metric(key("reopened"), f64::from(p.reopened));
            metrics::metric(key("readable_fraction"), p.readable_fraction());
            metrics::metric(key("intact_fraction"), p.intact_fraction());
            metrics::metric(key("bad_blocks"), p.bad_blocks as f64);
            metrics::metric(key("scrub_runs"), p.scrub_runs as f64);
            metrics::metric(key("scrub_copies"), p.scrub_copies as f64);
            metrics::metric(key("wear_level_runs"), p.wear_level_runs as f64);
            metrics::metric(key("aging_uncorrectable"), p.aging_uncorrectable as f64);
            if let Some(ns) = p.time_to_degraded_ns {
                metrics::metric(key("time_to_degraded_ns"), ns as f64);
            }
            t.row(vec![
                sev.label.to_string(),
                mode.label().to_string(),
                if p.died {
                    format!("{} †", p.txns)
                } else {
                    format!("{}", p.txns)
                },
                p.degraded_at_txn
                    .map_or_else(|| "-".into(), |n| n.to_string()),
                state_label(p.final_state).to_string(),
                format!("{:.1}%", 100.0 * p.readable_fraction()),
                format!("{:.1}%", 100.0 * p.intact_fraction()),
                p.bad_blocks.to_string(),
            ]);
            if mode == Mode::XFtl {
                x_points.push((sev, p));
            }
        }
    }
    out.push_str(&t.render());
    out.push_str("(† device refused service before the budget ran out)\n\n");

    out.push_str("Background maintenance inside the X-FTL runs:\n\n");
    let mut d = Table::new(vec![
        "wear",
        "scrub runs",
        "scrub copies",
        "wear-level runs",
        "overhead",
        "aging uncorrectable",
    ]);
    for (sev, p) in &x_points {
        d.row(vec![
            sev.label.to_string(),
            p.scrub_runs.to_string(),
            p.scrub_copies.to_string(),
            p.wear_level_runs.to_string(),
            format!("{:.2}%", 100.0 * p.scrub_overhead()),
            p.aging_uncorrectable.to_string(),
        ]);
    }
    out.push_str(&d.render());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xftl_stays_fully_readable_at_end_of_life() {
        let scale = EnduranceScale::smoke();
        let sev = ENDURANCE_SWEEP[2]; // dying: must actually reach EOL
        let p = run_point(Mode::XFtl, sev.env, &scale);
        assert!(
            p.died || p.degraded_at_txn.is_some(),
            "the dying severity never stressed the device (txns {})",
            p.txns
        );
        assert!(p.reopened, "X-FTL database failed to reopen after EOL");
        assert_eq!(
            p.rows_readable,
            p.rows_total,
            "X-FTL lost readability of {} rows at end of life",
            p.rows_total - p.rows_readable
        );
        assert_eq!(
            p.rows_intact,
            p.rows_total,
            "X-FTL served {} rows with values matching no acknowledged commit",
            p.rows_total - p.rows_intact
        );
        assert_eq!(
            p.aging_uncorrectable, 0,
            "the scrubber let aging push reads past the ECC budget"
        );
    }

    #[test]
    fn degraded_entry_is_monotone_in_severity() {
        let scale = EnduranceScale::smoke();
        let degraded: Vec<bool> = ENDURANCE_SWEEP
            .iter()
            .map(|sev| {
                let p = run_point(Mode::XFtl, sev.env, &scale);
                p.degraded_at_txn.is_some()
            })
            .collect();
        // Upward-closed: once a severity degrades the device, every
        // harsher one must too.
        let first = degraded.iter().position(|&d| d);
        if let Some(i) = first {
            assert!(
                degraded[i..].iter().all(|&d| d),
                "degraded-entry not monotone: {degraded:?}"
            );
        }
        assert_eq!(
            degraded.last(),
            Some(&true),
            "the dying severity never degraded the device"
        );
    }
}
