//! Concurrent-writer scaling: N MVCC snapshot writers over one shared
//! file, committed through the split-phase pipeline.
//!
//! Not a paper figure — the paper's SQLite workloads are single-writer —
//! but the measurable form of the claim behind the `BEGIN CONCURRENT`
//! extension: X-L2P snapshot transactions let independent writers stage
//! commits that coalesce into shared group flushes, so aggregate commit
//! throughput *rises* with writer count instead of serializing on the
//! per-commit flush. Two contention regimes bound the win:
//!
//! * **disjoint** — writers own non-overlapping page ranges; every
//!   commit is admitted and the sweep isolates the coalescing win.
//! * **zipfian** — writers draw pages from one hot-skewed distribution
//!   (rank probability ∝ 1/rank^θ); first-committer-wins validation
//!   rejects the overlap losers, and the table shows the throughput the
//!   survivors still sustain plus the conflict rate paid for it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xftl_workloads::rig::{ConcurrentPlan, Mode, Profile, Rig, RigConfig};

use crate::metrics;
use crate::report::{millis, Table};

/// Writer counts swept by the experiment.
pub const WRITER_SWEEP: [usize; 3] = [1, 2, 4];

/// Zipfian skew of the contended regime (θ = 0.9, the YCSB default —
/// hot enough that overlapping write sets are routine at 4 writers).
pub const ZIPF_THETA: f64 = 0.9;

/// Seed of the page-selection stream (the sweep perturbs it per writer
/// count so regimes don't share a stream).
const PAGE_SEED: u64 = 0x4D5F_CC13;

/// Scale knobs for one run of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct ConcScale {
    /// Multi-writer rounds per regime cell.
    pub rounds: usize,
    /// Pages each writer overwrites per transaction.
    pub writes_per_tx: usize,
    /// Pages of the shared file (and span of the Zipfian draw).
    pub file_pages: u64,
}

impl ConcScale {
    /// Paper-quality scale.
    pub fn full() -> Self {
        ConcScale {
            rounds: 300,
            writes_per_tx: 8,
            file_pages: 256,
        }
    }

    /// `cargo bench` scale.
    pub fn quick() -> Self {
        ConcScale {
            rounds: 80,
            writes_per_tx: 6,
            file_pages: 128,
        }
    }

    /// CI smoke scale.
    pub fn smoke() -> Self {
        ConcScale {
            rounds: 30,
            writes_per_tx: 4,
            file_pages: 64,
        }
    }
}

/// Deterministic Zipfian sampler over `0..n`: rank `i` is drawn with
/// probability proportional to `1/(i+1)^theta` via inverse-CDF lookup,
/// so page 0 is the hottest. Determinism (fixed seed → fixed draw
/// sequence) is what the bench baseline relies on.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precomputes the CDF for `n` ranks at skew `theta`.
    pub fn new(n: u64, theta: f64) -> Zipf {
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        Zipf { cdf }
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

fn conc_rig() -> Rig {
    // 4 channels so the batched submit path has device parallelism to
    // spread group flushes over; blocks sized for the full-scale churn.
    Rig::build(RigConfig {
        mode: Mode::XFtl,
        profile: Profile::OpenSsd,
        blocks: 128,
        channels: Some(4),
        ..RigConfig::small(Mode::XFtl)
    })
}

/// Disjoint regime: writer `w` owns `file_pages / writers` consecutive
/// pages and walks them round-robin, so no two writers ever overlap and
/// every round's write set still moves across the file.
fn disjoint_plan(writers: usize, round: usize, scale: &ConcScale) -> ConcurrentPlan {
    let part = (scale.file_pages / writers as u64).max(1);
    ConcurrentPlan {
        writers: (0..writers)
            .map(|w| {
                (0..scale.writes_per_tx)
                    .map(|k| w as u64 * part + (round * scale.writes_per_tx + k) as u64 % part)
                    .collect()
            })
            .collect(),
        tag: (round % 251) as u8,
    }
}

/// Contended regime: every writer draws its pages from the shared
/// Zipfian distribution; within one transaction the draws are deduped
/// (a tx rewrites a hot page once), across writers they collide freely.
fn zipf_plan(
    rng: &mut StdRng,
    zipf: &Zipf,
    writers: usize,
    round: usize,
    scale: &ConcScale,
) -> ConcurrentPlan {
    ConcurrentPlan {
        writers: (0..writers)
            .map(|_| {
                let mut pages: Vec<u64> = Vec::with_capacity(scale.writes_per_tx);
                while pages.len() < scale.writes_per_tx {
                    let p = zipf.sample(rng);
                    if !pages.contains(&p) {
                        pages.push(p);
                    }
                }
                pages
            })
            .collect(),
        tag: (round % 251) as u8,
    }
}

/// One measured regime cell.
pub struct Point {
    /// Admitted commits per simulated second.
    pub commit_tps: f64,
    /// 99th-percentile submit-to-durable commit latency (ns).
    pub p99_commit_ns: u64,
    /// Total admitted commits.
    pub commits: u64,
    /// Total first-committer-wins rejections.
    pub conflicts: u64,
    /// Group flushes the device performed for those commits.
    pub group_flushes: u64,
}

fn p99(mut lat: Vec<u64>) -> u64 {
    if lat.is_empty() {
        return 0;
    }
    lat.sort_unstable();
    lat[(lat.len() * 99 / 100).min(lat.len() - 1)]
}

/// Runs one regime cell: `rounds` rounds of `writers` pipelined snapshot
/// writers, disjoint when `zipf` is `None`, Zipfian-contended otherwise.
pub fn run_regime(writers: usize, scale: &ConcScale, zipf: Option<f64>) -> Point {
    let rig = conc_rig();
    let ino = rig.prepare_concurrent_file("conc.dat", scale.file_pages);
    let dist = zipf.map(|theta| Zipf::new(scale.file_pages, theta));
    let mut rng = StdRng::seed_from_u64(PAGE_SEED ^ writers as u64);
    let before = rig.snapshot();
    let t0 = rig.clock.now();
    let mut commits = 0u64;
    let mut conflicts = 0u64;
    let mut latencies = Vec::new();
    for round in 0..scale.rounds {
        let plan = match &dist {
            Some(z) => zipf_plan(&mut rng, z, writers, round, scale),
            None => disjoint_plan(writers, round, scale),
        };
        let out = rig.run_concurrent_writers_pipelined(ino, &plan);
        commits += out.committed.len() as u64;
        conflicts += out.conflicted.len() as u64;
        latencies.extend(out.commit_latency_ns);
    }
    let elapsed_s = (rig.clock.now() - t0) as f64 / 1e9;
    let after = rig.snapshot();
    if writers == *WRITER_SWEEP.last().unwrap_or(&4) && zipf.is_none() {
        metrics::hists(&format!("concurrent.w{writers}"), &rig.telemetry());
    }
    Point {
        commit_tps: commits as f64 / elapsed_s.max(1e-9),
        p99_commit_ns: p99(latencies),
        commits,
        conflicts,
        group_flushes: (after.ftl - before.ftl).group_commit_flushes,
    }
}

/// The full experiment: both regimes swept over [`WRITER_SWEEP`], with
/// throughput, conflict-rate and tail-latency columns.
pub fn concurrent_scaling(scale: ConcScale) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "=== Concurrent writers: pipelined MVCC snapshot commits, \
         {} rounds x {} pages/tx over a {}-page file (4 channels) ===\n\n",
        scale.rounds, scale.writes_per_tx, scale.file_pages
    ));
    let mut t = Table::new(vec![
        "writers",
        "disjoint commit/s",
        "speedup",
        "p99 commit",
        "flushes/commit",
        "zipf commit/s",
        "zipf conflict rate",
    ]);
    let mut base_tps = None;
    for &w in &WRITER_SWEEP {
        let d = run_regime(w, &scale, None);
        let z = run_regime(w, &scale, Some(ZIPF_THETA));
        metrics::metric(format!("concurrent.w{w}.disjoint_commit_tps"), d.commit_tps);
        metrics::metric(
            format!("concurrent.w{w}.disjoint_p99_commit_ns"),
            d.p99_commit_ns as f64,
        );
        metrics::metric(
            format!("concurrent.w{w}.disjoint_group_flushes"),
            d.group_flushes as f64,
        );
        metrics::metric(
            format!("concurrent.w{w}.disjoint_commits"),
            d.commits as f64,
        );
        metrics::metric(format!("concurrent.w{w}.zipf_commit_tps"), z.commit_tps);
        metrics::metric(format!("concurrent.w{w}.zipf_commits"), z.commits as f64);
        metrics::metric(
            format!("concurrent.w{w}.zipf_conflicts"),
            z.conflicts as f64,
        );
        let base = *base_tps.get_or_insert(d.commit_tps);
        let attempts = (z.commits + z.conflicts).max(1);
        t.row(vec![
            w.to_string(),
            format!("{:.0}", d.commit_tps),
            format!("{:.2}x", d.commit_tps / base),
            millis(d.p99_commit_ns),
            format!("{:.2}", d.group_flushes as f64 / d.commits.max(1) as f64),
            format!("{:.0}", z.commit_tps),
            format!("{:.1}%", 100.0 * z.conflicts as f64 / attempts as f64),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> ConcScale {
        ConcScale {
            rounds: 8,
            writes_per_tx: 4,
            file_pages: 32,
        }
    }

    #[test]
    fn disjoint_writers_scale_past_one_by_coalescing() {
        let scale = tiny_scale();
        let w1 = run_regime(1, &scale, None);
        let w4 = run_regime(4, &scale, None);
        assert_eq!(w1.conflicts, 0, "disjoint writers must never conflict");
        assert_eq!(w4.conflicts, 0, "disjoint writers must never conflict");
        assert_eq!(w4.commits, 4 * w1.commits, "every commit admitted");
        assert!(
            w4.commit_tps > w1.commit_tps,
            "4 disjoint writers ({:.0}/s) should out-commit one ({:.0}/s)",
            w4.commit_tps,
            w1.commit_tps
        );
        // The win must come from commits sharing group flushes, not from
        // a timing accident: 4 pipelined commits per round need fewer
        // flushes than commits.
        assert!(
            w4.group_flushes < w4.commits,
            "4-writer rounds should coalesce ({} flushes for {} commits)",
            w4.group_flushes,
            w4.commits
        );
    }

    #[test]
    fn zipfian_contention_pays_conflicts_not_errors() {
        let scale = tiny_scale();
        let z = run_regime(4, &scale, Some(ZIPF_THETA));
        assert_eq!(
            z.commits + z.conflicts,
            (4 * scale.rounds) as u64,
            "every writer either commits or loses validation"
        );
        assert!(
            z.conflicts > 0,
            "theta={ZIPF_THETA} hot pages should produce overlap losers"
        );
        assert!(
            z.commits >= scale.rounds as u64,
            "first-committer-wins admits at least one writer per round \
             ({} commits over {} rounds)",
            z.commits,
            scale.rounds
        );
        assert!(z.commit_tps > 0.0);
    }

    #[test]
    fn zipf_sampler_is_skewed_and_in_range() {
        let z = Zipf::new(32, ZIPF_THETA);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 32];
        for _ in 0..4_000 {
            let p = z.sample(&mut rng);
            assert!(p < 32);
            counts[p as usize] += 1;
        }
        assert!(
            counts[0] > counts[16] && counts[0] > counts[31],
            "rank 0 should be the hottest: {counts:?}"
        );
    }
}
