//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **X-L2P capacity** (paper §5.3 sizes it at 500/1000 entries): does a
//!    bigger table help or hurt? Commit writes grow with table size.
//! 2. **X-FTL vs the per-call atomic-write FTL** (§3.3's argument): with a
//!    steal-y buffer manager each eviction becomes its own atomic group,
//!    costing one commit record per page; X-FTL pays one X-L2P write per
//!    transaction regardless.
//! 3. **WAL checkpoint interval**: the knob behind WAL's read overhead.
//! 4. **Barrier cost**: how much of a flush is the mapping-table persist.

use xftl_core::XFtl;
use xftl_flash::{FlashChip, FlashConfigBuilder, SimClock};
use xftl_ftl::{AtomicWriteFtl, BlockDevice, TxBlockDevice, TxFlashFtl};
use xftl_workloads::rig::{Mode, Rig, RigConfig};
use xftl_workloads::synthetic::{self, SyntheticConfig};

use crate::metrics::{self, mode_key};
use crate::report::{secs, Table};

/// Ablation 1: X-L2P capacity sweep on the synthetic workload.
pub fn xl2p_capacity(quick: bool) -> String {
    let syn = if quick {
        SyntheticConfig {
            tuples: 3_000,
            txns: 60,
            updates_per_txn: 5,
            ..Default::default()
        }
    } else {
        SyntheticConfig {
            tuples: 20_000,
            txns: 400,
            updates_per_txn: 5,
            ..Default::default()
        }
    };
    let mut out = String::new();
    out.push_str("=== Ablation: X-L2P table capacity ===\n\n");
    let mut t = Table::new(vec!["capacity", "time (s)", "X-L2P writes", "checkpoints"]);
    for cap in [64usize, 500, 1000, 4096] {
        let hot = (syn.tuples as u64 / 33) * 2 + 1_200;
        let logical = hot * 2;
        let rig = Rig::build(RigConfig {
            mode: Mode::XFtl,
            xl2p_capacity: cap,
            blocks: ((logical / 128 + 14) as usize).max(48),
            logical_pages: logical,
            ..RigConfig::small(Mode::XFtl)
        });
        let mut db = rig.open_db("s.db");
        synthetic::load_partsupply(&mut db, &syn).expect("partsupp load failed");
        rig.reset_stats();
        let r = synthetic::run_transactions(&mut db, &rig.clock, &syn)
            .expect("transaction phase failed");
        drop(db);
        let snap = rig.snapshot();
        metrics::metric(
            format!("ablation.xl2p.cap{cap}.elapsed_ns"),
            r.elapsed_ns as f64,
        );
        metrics::metric(
            format!("ablation.xl2p.cap{cap}.xl2p_writes"),
            snap.ftl.xl2p_writes as f64,
        );
        t.row(vec![
            cap.to_string(),
            secs(r.elapsed_ns),
            snap.ftl.xl2p_writes.to_string(),
            snap.ftl.checkpoints.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out
}

/// Ablation 2: X-FTL vs the two related-work baselines — the per-call
/// atomic-write FTL (Park et al. \[18\]) and TxFlash's Simple Cyclic Commit
/// (Prabhakaran et al. \[20\]) — on raw-device transactions of `group`
/// pages each, with and without steal.
pub fn atomic_write_baseline(quick: bool) -> String {
    let (txns, group) = if quick {
        (200usize, 5usize)
    } else {
        (2_000, 5)
    };
    let logical: u64 = 4_000;
    let blocks = 64;
    let page = vec![0xC3u8; 8192];
    let mut out = String::new();
    out.push_str("=== Ablation: X-FTL vs atomic-write FTL [18] vs TxFlash SCC [20] ===\n");
    out.push_str(&format!(
        "({txns} transactions of {group} page updates each)\n\n"
    ));
    let mut t = Table::new(vec![
        "device",
        "time (s)",
        "flash programs",
        "overhead pages",
    ]);

    // X-FTL: write_tx x group + one commit.
    {
        let clock = SimClock::new();
        let chip = FlashChip::new(
            FlashConfigBuilder::openssd().blocks(blocks).build(),
            clock.clone(),
        );
        let mut dev = XFtl::format(chip, logical).expect("format");
        let t0 = clock.now();
        for i in 0..txns as u64 {
            let tid = i + 1;
            for p in 0..group as u64 {
                dev.write_tx(tid, (i * group as u64 + p) % logical, &page)
                    .expect("write_tx");
            }
            dev.commit(tid).expect("commit");
        }
        let elapsed = clock.now() - t0;
        let s = dev.stats();
        metrics::metric("ablation.aw.xftl.elapsed_ns", elapsed as f64);
        metrics::metric(
            "ablation.aw.xftl.programs",
            dev.flash_stats().programs as f64,
        );
        t.row(vec![
            "X-FTL".to_string(),
            secs(elapsed),
            dev.flash_stats().programs.to_string(),
            (s.xl2p_writes + s.meta_writes).to_string(),
        ]);
    }

    // Atomic-write FTL, ideal case: the whole group in one call (only
    // possible when nothing is stolen early).
    {
        let clock = SimClock::new();
        let chip = FlashChip::new(
            FlashConfigBuilder::openssd().blocks(blocks).build(),
            clock.clone(),
        );
        let mut dev = AtomicWriteFtl::format(chip, logical).expect("format");
        let t0 = clock.now();
        for i in 0..txns as u64 {
            let pages: Vec<(u64, &[u8])> = (0..group as u64)
                .map(|p| ((i * group as u64 + p) % logical, page.as_slice()))
                .collect();
            dev.write_atomic(&pages).expect("write_atomic");
        }
        let elapsed = clock.now() - t0;
        let s = dev.stats();
        metrics::metric("ablation.aw.one_call.elapsed_ns", elapsed as f64);
        metrics::metric(
            "ablation.aw.one_call.programs",
            dev.flash_stats().programs as f64,
        );
        t.row(vec![
            "atomic-write (one call/txn)".to_string(),
            secs(elapsed),
            dev.flash_stats().programs.to_string(),
            (s.commit_record_writes + s.meta_writes).to_string(),
        ]);
    }

    // TxFlash SCC: the cycle-closing marker rides on the last data page —
    // zero overhead pages, but per-call atomicity only (no steal).
    {
        let clock = SimClock::new();
        let chip = FlashChip::new(
            FlashConfigBuilder::openssd().blocks(blocks).build(),
            clock.clone(),
        );
        let mut dev = TxFlashFtl::format(chip, logical).expect("format");
        let t0 = clock.now();
        for i in 0..txns as u64 {
            let tid = i + 1;
            for p in 0..group as u64 {
                dev.write_tx(tid, (i * group as u64 + p) % logical, &page)
                    .expect("write_tx");
            }
            dev.commit(tid).expect("commit");
        }
        let elapsed = clock.now() - t0;
        let s = dev.stats();
        metrics::metric("ablation.aw.txflash_scc.elapsed_ns", elapsed as f64);
        metrics::metric(
            "ablation.aw.txflash_scc.programs",
            dev.flash_stats().programs as f64,
        );
        t.row(vec![
            "TxFlash SCC (one cycle/txn)".to_string(),
            secs(elapsed),
            dev.flash_stats().programs.to_string(),
            (s.commit_record_writes + s.xl2p_writes).to_string(),
        ]);
    }

    // Atomic-write FTL under steal: every page eviction is its own call,
    // so every page pays a commit record (§3.3's incompatibility).
    {
        let clock = SimClock::new();
        let chip = FlashChip::new(
            FlashConfigBuilder::openssd().blocks(blocks).build(),
            clock.clone(),
        );
        let mut dev = AtomicWriteFtl::format(chip, logical).expect("format");
        let t0 = clock.now();
        for i in 0..txns as u64 {
            for p in 0..group as u64 {
                dev.write((i * group as u64 + p) % logical, &page)
                    .expect("write");
            }
        }
        let elapsed = clock.now() - t0;
        let s = dev.stats();
        metrics::metric("ablation.aw.steal.elapsed_ns", elapsed as f64);
        metrics::metric(
            "ablation.aw.steal.programs",
            dev.flash_stats().programs as f64,
        );
        t.row(vec![
            "atomic-write (steal: call/page)".to_string(),
            secs(elapsed),
            dev.flash_stats().programs.to_string(),
            (s.commit_record_writes + s.meta_writes).to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out
}

/// Ablation 3: WAL auto-checkpoint interval.
pub fn wal_checkpoint_interval(quick: bool) -> String {
    let syn = if quick {
        SyntheticConfig {
            tuples: 3_000,
            txns: 80,
            updates_per_txn: 5,
            ..Default::default()
        }
    } else {
        SyntheticConfig {
            tuples: 20_000,
            txns: 500,
            updates_per_txn: 5,
            ..Default::default()
        }
    };
    let mut out = String::new();
    out.push_str("=== Ablation: WAL checkpoint interval ===\n\n");
    let mut t = Table::new(vec![
        "interval (frames)",
        "time (s)",
        "checkpoints",
        "db writes",
    ]);
    for interval in [250u32, 1000, 4000] {
        // The WAL itself grows to `interval` frames before a checkpoint:
        // the volume must hold it alongside the table.
        let hot = (syn.tuples as u64 / 33) * 2 + interval as u64 + 800;
        let logical = hot * 2;
        let rig = Rig::build(RigConfig {
            mode: Mode::Wal,
            blocks: ((logical / 128 + 14) as usize).max(48),
            logical_pages: logical,
            ..RigConfig::small(Mode::Wal)
        });
        let mut db = rig.open_db("s.db");
        db.pager_mut().wal_autocheckpoint = interval;
        synthetic::load_partsupply(&mut db, &syn).expect("partsupp load failed");
        db.reset_stats();
        rig.reset_stats();
        let r = synthetic::run_transactions(&mut db, &rig.clock, &syn)
            .expect("transaction phase failed");
        let stats = *db.pager_stats();
        drop(db);
        metrics::metric(
            format!("ablation.walck.i{interval}.elapsed_ns"),
            r.elapsed_ns as f64,
        );
        metrics::metric(
            format!("ablation.walck.i{interval}.checkpoints"),
            stats.checkpoints as f64,
        );
        t.row(vec![
            interval.to_string(),
            secs(r.elapsed_ns),
            stats.checkpoints.to_string(),
            stats.db_writes.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out
}

/// Ablation 4: cost of the write barrier (mapping-table persist) on the
/// plain FTL, as a function of flush frequency.
pub fn barrier_cost(quick: bool) -> String {
    let writes: u64 = if quick { 2_000 } else { 20_000 };
    let logical: u64 = 4_000;
    let page = vec![0x11u8; 8192];
    let mut out = String::new();
    out.push_str("=== Ablation: write-barrier (mapping persist) cost ===\n\n");
    let mut t = Table::new(vec!["writes/flush", "time (s)", "map+meta pages"]);
    for k in [1u64, 5, 20, 100] {
        let clock = SimClock::new();
        let chip = FlashChip::new(
            FlashConfigBuilder::openssd().blocks(64).build(),
            clock.clone(),
        );
        let mut dev = xftl_ftl::PageMappedFtl::format(chip, logical).expect("format");
        let t0 = clock.now();
        for i in 0..writes {
            dev.write(i % logical, &page).expect("write");
            if (i + 1) % k == 0 {
                dev.flush().expect("flush");
            }
        }
        let elapsed = clock.now() - t0;
        let s = dev.stats();
        metrics::metric(format!("ablation.barrier.k{k}.elapsed_ns"), elapsed as f64);
        metrics::metric(
            format!("ablation.barrier.k{k}.map_meta_pages"),
            (s.map_writes + s.meta_writes) as f64,
        );
        t.row(vec![
            k.to_string(),
            secs(elapsed),
            (s.map_writes + s.meta_writes).to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out
}

/// Ablation 5: multi-file atomic transactions (§4.3) — the SQLite master
/// journal protocol vs X-FTL's shared transaction id.
pub fn multi_file_commit(quick: bool) -> String {
    use xftl_db::{begin_multi, commit_multi, Value};
    let txns = if quick { 50 } else { 400 };
    let files = 3usize;
    let mut out = String::new();
    out.push_str("=== Ablation: multi-file atomic commit (master journal vs X-FTL) ===\n");
    out.push_str(&format!(
        "({txns} transactions spanning {files} database files)\n\n"
    ));
    let mut t = Table::new(vec!["mode", "time (s)", "fsyncs", "extra files"]);
    for mode in [Mode::Rbj, Mode::XFtl] {
        let rig = Rig::build(RigConfig {
            mode,
            blocks: 96,
            logical_pages: 8_000,
            ..RigConfig::small(mode)
        });
        let mut dbs: Vec<_> = (0..files)
            .map(|i| rig.open_db(&format!("m{i}.db")))
            .collect();
        for db in &mut dbs {
            db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
                .expect("ddl");
            db.execute("INSERT INTO t VALUES (1, 0)").expect("seed");
        }
        rig.reset_stats();
        for db in &mut dbs {
            db.reset_stats();
        }
        let t0 = rig.clock.now();
        for i in 0..txns {
            let mut refs: Vec<&mut xftl_db::Connection<_>> = dbs.iter_mut().collect();
            begin_multi(&mut refs).expect("begin");
            for db in refs.iter_mut() {
                db.execute_with("UPDATE t SET v = ? WHERE id = 1", &[Value::Int(i as i64)])
                    .expect("update");
            }
            commit_multi(&mut refs, &format!("master-{i}")).expect("commit");
        }
        let elapsed = rig.clock.now() - t0;
        let fsyncs: u64 = dbs.iter().map(|d| d.pager_stats().fsyncs).sum();
        metrics::metric(
            format!("ablation.multifile.{}.elapsed_ns", mode_key(mode)),
            elapsed as f64,
        );
        metrics::metric(
            format!("ablation.multifile.{}.fsyncs", mode_key(mode)),
            fsyncs as f64,
        );
        let extra = match mode {
            Mode::Rbj => format!("{} masters + {} journals", txns, txns * files),
            _ => "none".to_string(),
        };
        t.row(vec![
            mode.label().to_string(),
            secs(elapsed),
            fsyncs.to_string(),
            extra,
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out
}

/// Ablation 6: rollback-journal finalization strategy (SQLite's
/// journal_mode DELETE vs TRUNCATE vs PERSIST), against X-FTL.
pub fn journal_finalization(quick: bool) -> String {
    use xftl_db::{Connection, DbJournalMode, Value};
    let txns = if quick { 60 } else { 500 };
    let mut out = String::new();
    out.push_str("=== Ablation: rollback-journal finalization (DELETE/TRUNCATE/PERSIST) ===\n");
    out.push_str(&format!("({txns} single-update transactions)\n\n"));
    let mut t = Table::new(vec!["mode", "time (s)", "fsyncs", "dirsyncs"]);
    let variants: [(&str, Option<DbJournalMode>); 4] = [
        ("DELETE", Some(DbJournalMode::Rollback)),
        ("TRUNCATE", Some(DbJournalMode::RollbackTruncate)),
        ("PERSIST", Some(DbJournalMode::RollbackPersist)),
        ("X-FTL (off)", None),
    ];
    for (label, db_mode) in variants {
        let rig_mode = if db_mode.is_some() {
            Mode::Rbj
        } else {
            Mode::XFtl
        };
        let rig = Rig::build(RigConfig {
            mode: rig_mode,
            blocks: 72,
            logical_pages: 5_000,
            ..RigConfig::small(rig_mode)
        });
        let mut db = match db_mode {
            Some(m) => Connection::open(rig.fs.clone(), "j.db", m).expect("open"),
            None => rig.open_db("j.db"),
        };
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
            .expect("ddl");
        for i in 0..50i64 {
            db.execute_with("INSERT INTO t VALUES (?, 0)", &[Value::Int(i)])
                .expect("seed");
        }
        db.reset_stats();
        let t0 = rig.clock.now();
        for i in 0..txns as i64 {
            db.execute_with(
                "UPDATE t SET v = ? WHERE id = ?",
                &[Value::Int(i), Value::Int(i % 50)],
            )
            .expect("update");
        }
        let elapsed = rig.clock.now() - t0;
        let s = db.pager_stats();
        let key = label
            .split_whitespace()
            .next()
            .unwrap_or(label)
            .to_ascii_lowercase();
        metrics::metric(format!("ablation.jfin.{key}.elapsed_ns"), elapsed as f64);
        metrics::metric(format!("ablation.jfin.{key}.fsyncs"), s.fsyncs as f64);
        t.row(vec![
            label.to_string(),
            secs(elapsed),
            s.fsyncs.to_string(),
            s.dirsyncs.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out
}

/// All ablations.
pub fn all(quick: bool) -> String {
    let mut out = String::new();
    out.push_str(&xl2p_capacity(quick));
    out.push_str(&atomic_write_baseline(quick));
    out.push_str(&wal_checkpoint_interval(quick));
    out.push_str(&barrier_cost(quick));
    out.push_str(&multi_file_commit(quick));
    out.push_str(&journal_finalization(quick));
    out
}
