//! One module per paper table/figure, plus ablations.

pub mod ablation;
pub mod android_exp;
pub mod channel_exp;
pub mod concurrent_exp;
pub mod endurance_exp;
pub mod fault_exp;
pub mod fio_exp;
pub mod recovery_exp;
pub mod steady_exp;
pub mod synthetic_exp;
pub mod tpcc_exp;
