//! Channel-scaling ablation: FIO random-write IOPS as the flash array
//! grows from one to four channels.
//!
//! Not a paper figure, but the measurable form of the claim behind
//! Figure 9: device-side parallelism shifts absolute IOPS for every
//! journaling mode while the X-FTL > ordered > full ordering is
//! preserved. The second table shows *why* the scaling happens — the
//! per-channel busy times level out as batches spread across channels,
//! and the queue-depth histogram shows how many commands the host
//! actually keeps in flight.

use xftl_flash::FlashStats;
use xftl_fs::JournalMode;
use xftl_workloads::fio::{self, FioConfig};
use xftl_workloads::rig::{Mode, Profile, Rig, RigConfig};

use crate::experiments::fio_exp::{FioScale, FsSetup};
use crate::metrics;
use crate::report::{millis, Table};

/// Channel counts swept by the experiment.
pub const CHANNEL_SWEEP: [u32; 3] = [1, 2, 4];

/// Queue depths swept by the commit-pipeline experiment (X-FTL only —
/// the journal modes have no split-phase commit to pipeline).
pub const QDEPTH_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Channel count the queue-depth sweep runs at.
const QDEPTH_CHANNELS: u32 = 4;

const JOBS: usize = 4;
const WRITES_PER_FSYNC: usize = 10;

fn channel_rig(setup: FsSetup, channels: u32, scale: &FioScale) -> Rig {
    let file_pages = scale.file_bytes / 8192;
    let logical = file_pages * 2 + 4_000;
    let (mode, over) = match setup {
        FsSetup::XFtlOff => (Mode::XFtl, None),
        FsSetup::Ordered => (Mode::Wal, None), // Wal rig = ordered FS
        FsSetup::Full => (Mode::Rbj, Some(JournalMode::Full)),
    };
    Rig::build(RigConfig {
        mode,
        profile: Profile::OpenSsd,
        blocks: ((logical as f64 * 1.6 / 128.0).ceil() as usize).max(64),
        logical_pages: logical,
        fs_mode_override: over,
        channels: Some(channels),
        ..RigConfig::small(mode)
    })
}

/// One measured point plus the flash- and FTL-level stats behind it.
struct Point {
    iops: f64,
    flash: FlashStats,
    ftl: xftl_ftl::FtlStats,
}

fn run_point(setup: FsSetup, channels: u32, queue_depth: usize, scale: &FioScale) -> Point {
    let rig = channel_rig(setup, channels, scale);
    let before = rig.snapshot();
    let r = fio::run(
        &rig,
        &FioConfig {
            jobs: JOBS,
            file_bytes: scale.file_bytes,
            writes_per_fsync: WRITES_PER_FSYNC,
            duration_secs: scale.duration_secs,
            seed: 7,
            queue_depth,
        },
    );
    let after = rig.snapshot();
    if setup == FsSetup::XFtlOff && queue_depth == 1 {
        // Queue-wait / chip-op latency distributions behind the X-FTL
        // rows of the report.
        metrics::hists(&format!("channels.ch{channels}"), &rig.telemetry());
    }
    Point {
        iops: r.iops,
        flash: after.flash - before.flash,
        ftl: after.ftl - before.ftl,
    }
}

/// The full experiment: an IOPS-vs-channels table for the three
/// journaling setups, then channel-utilisation detail for the X-FTL runs.
pub fn channel_scaling(scale: FioScale) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "=== Channel scaling: FIO {JOBS} jobs, {WRITES_PER_FSYNC} pages/fsync \
         (8 KB IOPS; OpenSSD timings, 1-4 channels) ===\n\n"
    ));
    let mut t = Table::new(vec![
        "channels",
        "X-FTL",
        "ordered",
        "full",
        "X-FTL speedup",
    ]);
    let mut x_points: Vec<Point> = Vec::new();
    for &ch in &CHANNEL_SWEEP {
        let x = run_point(FsSetup::XFtlOff, ch, 1, &scale);
        let o = run_point(FsSetup::Ordered, ch, 1, &scale);
        let f = run_point(FsSetup::Full, ch, 1, &scale);
        metrics::metric(format!("channels.ch{ch}.xftl_iops"), x.iops);
        metrics::metric(format!("channels.ch{ch}.ordered_iops"), o.iops);
        metrics::metric(format!("channels.ch{ch}.full_iops"), f.iops);
        metrics::metric(
            format!("channels.ch{ch}.queued_ops"),
            x.flash.queued_ops as f64,
        );
        metrics::metric(
            format!("channels.ch{ch}.queue_wait_ns"),
            x.flash.queue_wait_ns as f64,
        );
        let speedup = x.iops / x_points.first().map_or(x.iops, |p| p.iops);
        t.row(vec![
            ch.to_string(),
            format!("{:.0}", x.iops),
            format!("{:.0}", o.iops),
            format!("{:.0}", f.iops),
            format!("{speedup:.2}x"),
        ]);
        x_points.push(x);
    }
    out.push_str(&t.render());
    out.push('\n');

    out.push_str("Channel utilisation of the X-FTL runs:\n\n");
    let mut u = Table::new(vec![
        "channels",
        "queued ops",
        "mean qdepth",
        "queue wait ms",
        "busy/channel ms",
        "max busy ms",
    ]);
    for (&ch, p) in CHANNEL_SWEEP.iter().zip(&x_points) {
        let s = &p.flash;
        let busy: Vec<String> = s
            .busy_channel_ns
            .iter()
            .take(ch as usize)
            .map(|&b| millis(b))
            .collect();
        u.row(vec![
            ch.to_string(),
            s.queued_ops.to_string(),
            format!("{:.2}", s.mean_queue_depth()),
            millis(s.queue_wait_ns),
            busy.join(" / "),
            millis(s.max_channel_busy_ns()),
        ]);
    }
    out.push_str(&u.render());
    out.push('\n');

    // Commit-pipeline sweep: IOPS vs split-phase queue depth on the
    // X-FTL rig. Depth 1 is the classic blocking fsync; deeper queues
    // overlap tx N+1's writes with tx N's in-flight commit and let the
    // device coalesce staged commits into one group flush (fewer meta
    // programs per commit).
    out.push_str(&format!(
        "Commit pipeline: X-FTL IOPS vs queue depth ({QDEPTH_CHANNELS} channels):\n\n"
    ));
    let mut q = Table::new(vec![
        "queue depth",
        "IOPS",
        "speedup",
        "group flushes",
        "commits coalesced",
        "coalesce ratio",
    ]);
    let mut base_iops = None;
    for &qd in &QDEPTH_SWEEP {
        let p = run_point(FsSetup::XFtlOff, QDEPTH_CHANNELS, qd, &scale);
        let flushes = p.ftl.group_commit_flushes;
        let coalesced = p.ftl.commits_coalesced;
        metrics::metric(format!("channels.qd{qd}.xftl_iops"), p.iops);
        metrics::metric(
            format!("channels.qd{qd}.group_commit_flushes"),
            flushes as f64,
        );
        metrics::metric(
            format!("channels.qd{qd}.commits_coalesced"),
            coalesced as f64,
        );
        let base = *base_iops.get_or_insert(p.iops);
        q.row(vec![
            qd.to_string(),
            format!("{:.0}", p.iops),
            format!("{:.2}x", p.iops / base),
            flushes.to_string(),
            coalesced.to_string(),
            if flushes > 0 {
                format!("{:.2}", coalesced as f64 / flushes as f64)
            } else {
                "-".to_string()
            },
        ]);
    }
    out.push_str(&q.render());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> FioScale {
        FioScale {
            file_bytes: 4 * 1024 * 1024,
            duration_secs: 1,
        }
    }

    #[test]
    fn iops_scale_with_channels_and_mode_order_holds() {
        let scale = tiny_scale();
        let x1 = run_point(FsSetup::XFtlOff, 1, 1, &scale);
        let x4 = run_point(FsSetup::XFtlOff, 4, 1, &scale);
        assert!(
            x4.iops > x1.iops,
            "4 channels ({:.0}) should beat 1 ({:.0})",
            x4.iops,
            x1.iops
        );
        let o4 = run_point(FsSetup::Ordered, 4, 1, &scale);
        let f4 = run_point(FsSetup::Full, 4, 1, &scale);
        assert!(x4.iops > o4.iops, "X-FTL should beat ordered at 4 channels");
        assert!(o4.iops > f4.iops, "ordered should beat full at 4 channels");
        // The stats the report prints must actually be populated.
        assert!(x4.flash.queued_ops > 0, "batched path unused");
        assert!(
            x4.flash.busy_channel_ns.iter().filter(|&&b| b > 0).count() >= 2,
            "work should spread over multiple channels"
        );
    }

    #[test]
    fn commit_pipeline_scales_with_queue_depth() {
        let scale = tiny_scale();
        let q1 = run_point(FsSetup::XFtlOff, 4, 1, &scale);
        let q8 = run_point(FsSetup::XFtlOff, 4, 8, &scale);
        assert!(
            q8.iops > q1.iops,
            "queue depth 8 ({:.0}) should beat depth 1 ({:.0})",
            q8.iops,
            q1.iops
        );
        // The win must come from group commit actually coalescing: fewer
        // meta programs than commits.
        assert!(q8.ftl.group_commit_flushes > 0, "no group flushes recorded");
        assert!(
            q8.ftl.commits_coalesced > q8.ftl.group_commit_flushes,
            "commits ({}) should outnumber group flushes ({})",
            q8.ftl.commits_coalesced,
            q8.ftl.group_commit_flushes
        );
        // Depth 1 flushes every commit alone: one commit per group.
        assert_eq!(
            q1.ftl.commits_coalesced, q1.ftl.group_commit_flushes,
            "depth 1 should never coalesce"
        );
    }
}
