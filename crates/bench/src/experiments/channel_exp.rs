//! Channel-scaling ablation: FIO random-write IOPS as the flash array
//! grows from one to four channels.
//!
//! Not a paper figure, but the measurable form of the claim behind
//! Figure 9: device-side parallelism shifts absolute IOPS for every
//! journaling mode while the X-FTL > ordered > full ordering is
//! preserved. The second table shows *why* the scaling happens — the
//! per-channel busy times level out as batches spread across channels,
//! and the queue-depth histogram shows how many commands the host
//! actually keeps in flight.

use xftl_flash::FlashStats;
use xftl_fs::JournalMode;
use xftl_workloads::fio::{self, FioConfig};
use xftl_workloads::rig::{Mode, Profile, Rig, RigConfig};

use crate::experiments::fio_exp::{FioScale, FsSetup};
use crate::metrics;
use crate::report::{millis, Table};

/// Channel counts swept by the experiment.
pub const CHANNEL_SWEEP: [u32; 3] = [1, 2, 4];

const JOBS: usize = 4;
const WRITES_PER_FSYNC: usize = 10;

fn channel_rig(setup: FsSetup, channels: u32, scale: &FioScale) -> Rig {
    let file_pages = scale.file_bytes / 8192;
    let logical = file_pages * 2 + 4_000;
    let (mode, over) = match setup {
        FsSetup::XFtlOff => (Mode::XFtl, None),
        FsSetup::Ordered => (Mode::Wal, None), // Wal rig = ordered FS
        FsSetup::Full => (Mode::Rbj, Some(JournalMode::Full)),
    };
    Rig::build(RigConfig {
        mode,
        profile: Profile::OpenSsd,
        blocks: ((logical as f64 * 1.6 / 128.0).ceil() as usize).max(64),
        logical_pages: logical,
        fs_mode_override: over,
        channels: Some(channels),
        ..RigConfig::small(mode)
    })
}

/// One measured point plus the flash-level stats behind it.
struct Point {
    iops: f64,
    flash: FlashStats,
}

fn run_point(setup: FsSetup, channels: u32, scale: &FioScale) -> Point {
    let rig = channel_rig(setup, channels, scale);
    let before = rig.snapshot().flash;
    let r = fio::run(
        &rig,
        &FioConfig {
            jobs: JOBS,
            file_bytes: scale.file_bytes,
            writes_per_fsync: WRITES_PER_FSYNC,
            duration_secs: scale.duration_secs,
            seed: 7,
        },
    );
    let flash = rig.snapshot().flash - before;
    if setup == FsSetup::XFtlOff {
        // Queue-wait / chip-op latency distributions behind the X-FTL
        // rows of the report.
        metrics::hists(&format!("channels.ch{channels}"), &rig.telemetry());
    }
    Point {
        iops: r.iops,
        flash,
    }
}

/// The full experiment: an IOPS-vs-channels table for the three
/// journaling setups, then channel-utilisation detail for the X-FTL runs.
pub fn channel_scaling(scale: FioScale) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "=== Channel scaling: FIO {JOBS} jobs, {WRITES_PER_FSYNC} pages/fsync \
         (8 KB IOPS; OpenSSD timings, 1-4 channels) ===\n\n"
    ));
    let mut t = Table::new(vec![
        "channels",
        "X-FTL",
        "ordered",
        "full",
        "X-FTL speedup",
    ]);
    let mut x_points: Vec<Point> = Vec::new();
    for &ch in &CHANNEL_SWEEP {
        let x = run_point(FsSetup::XFtlOff, ch, &scale);
        let o = run_point(FsSetup::Ordered, ch, &scale);
        let f = run_point(FsSetup::Full, ch, &scale);
        metrics::metric(format!("channels.ch{ch}.xftl_iops"), x.iops);
        metrics::metric(format!("channels.ch{ch}.ordered_iops"), o.iops);
        metrics::metric(format!("channels.ch{ch}.full_iops"), f.iops);
        metrics::metric(
            format!("channels.ch{ch}.queued_ops"),
            x.flash.queued_ops as f64,
        );
        metrics::metric(
            format!("channels.ch{ch}.queue_wait_ns"),
            x.flash.queue_wait_ns as f64,
        );
        let speedup = x.iops / x_points.first().map_or(x.iops, |p| p.iops);
        t.row(vec![
            ch.to_string(),
            format!("{:.0}", x.iops),
            format!("{:.0}", o.iops),
            format!("{:.0}", f.iops),
            format!("{speedup:.2}x"),
        ]);
        x_points.push(x);
    }
    out.push_str(&t.render());
    out.push('\n');

    out.push_str("Channel utilisation of the X-FTL runs:\n\n");
    let mut u = Table::new(vec![
        "channels",
        "queued ops",
        "mean qdepth",
        "queue wait ms",
        "busy/channel ms",
        "max busy ms",
    ]);
    for (&ch, p) in CHANNEL_SWEEP.iter().zip(&x_points) {
        let s = &p.flash;
        let busy: Vec<String> = s
            .busy_channel_ns
            .iter()
            .take(ch as usize)
            .map(|&b| millis(b))
            .collect();
        u.row(vec![
            ch.to_string(),
            s.queued_ops.to_string(),
            format!("{:.2}", s.mean_queue_depth()),
            millis(s.queue_wait_ns),
            busy.join(" / "),
            millis(s.max_channel_busy_ns()),
        ]);
    }
    out.push_str(&u.render());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> FioScale {
        FioScale {
            file_bytes: 4 * 1024 * 1024,
            duration_secs: 1,
        }
    }

    #[test]
    fn iops_scale_with_channels_and_mode_order_holds() {
        let scale = tiny_scale();
        let x1 = run_point(FsSetup::XFtlOff, 1, &scale);
        let x4 = run_point(FsSetup::XFtlOff, 4, &scale);
        assert!(
            x4.iops > x1.iops,
            "4 channels ({:.0}) should beat 1 ({:.0})",
            x4.iops,
            x1.iops
        );
        let o4 = run_point(FsSetup::Ordered, 4, &scale);
        let f4 = run_point(FsSetup::Full, 4, &scale);
        assert!(x4.iops > o4.iops, "X-FTL should beat ordered at 4 channels");
        assert!(o4.iops > f4.iops, "ordered should beat full at 4 channels");
        // The stats the report prints must actually be populated.
        assert!(x4.flash.queued_ops > 0, "batched path unused");
        assert!(
            x4.flash.busy_channel_ns.iter().filter(|&&b| b > 0).count() >= 2,
            "work should spread over multiple channels"
        );
    }
}
