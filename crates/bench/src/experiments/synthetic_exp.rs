//! Figure 5, Table 1 and Figure 6: the synthetic partsupp workload under
//! varying transaction sizes and GC-validity regimes.

use xftl_flash::SECOND;
use xftl_ftl::GcPolicy;
use xftl_workloads::rig::{Aging, Mode, Rig, RigConfig, Snapshot};
use xftl_workloads::synthetic::{self, SyntheticConfig};

use crate::metrics::{self, mode_key};
use crate::report::{ratio, secs, Table};

/// A GC-validity regime: the paper ages the OpenSSD so victims carry
/// ~30/50/70 % valid pages. We reproduce the regimes the way the paper's
/// firmware does: FIFO victim selection plus a pre-aged drive, so victim
/// validity tracks overall utilization. The utilization for each target is
/// set by sizing physical capacity around the live data (hot working set
/// plus cold aged fill); the harness reports the *measured* mean victim
/// validity next to each target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Validity {
    V30,
    V50,
    V70,
}

impl Validity {
    /// All three regimes, in the paper's panel order.
    pub const ALL: [Validity; 3] = [Validity::V30, Validity::V50, Validity::V70];

    /// Human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Validity::V30 => "30%",
            Validity::V50 => "50%",
            Validity::V70 => "70%",
        }
    }

    /// Stable key for metric names (`v30`/`v50`/`v70`).
    pub fn key(self) -> &'static str {
        match self {
            Validity::V30 => "v30",
            Validity::V50 => "v50",
            Validity::V70 => "v70",
        }
    }

    /// Target utilization (live pages / physical data pages). Under FIFO
    /// GC the mean victim validity converges to roughly this value;
    /// calibrate with `cargo run --bin calibrate` after timing changes.
    pub fn utilization(self) -> f64 {
        match self {
            Validity::V30 => 0.30,
            Validity::V50 => 0.50,
            Validity::V70 => 0.70,
        }
    }
}

/// Physical block count so that `live_pages` occupy `utilization` of the
/// data space; never below what the exported logical space requires.
pub fn blocks_for(live_pages: u64, logical_pages: u64, utilization: f64) -> usize {
    let min_blocks = (logical_pages / 128 + 8) as usize;
    ((live_pages as f64 / utilization / 128.0).ceil() as usize + 4).max(min_blocks)
}

/// Scale of the synthetic experiments.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct SynScale {
    pub tuples: usize,
    pub txns: usize,
}

impl SynScale {
    /// The paper's configuration: 60,000 tuples, 1,000 transactions.
    pub fn full() -> Self {
        SynScale {
            tuples: 60_000,
            txns: 1_000,
        }
    }

    /// A fast configuration for `cargo bench` smoke runs.
    pub fn quick() -> Self {
        SynScale {
            tuples: 6_000,
            txns: 120,
        }
    }

    /// The minimal configuration for the CI `bench-smoke` job.
    pub fn smoke() -> Self {
        SynScale {
            tuples: 3_000,
            txns: 60,
        }
    }

    /// Rough hot working set in pages: table leaves (~33 tuples of 220 B
    /// per 8 KB page) plus WAL (up to 1000 frames), FS journal region and
    /// metadata.
    pub fn hot_pages(&self) -> u64 {
        (self.tuples as u64 / 30) + 1_600
    }

    /// Cold aged data sharing the drive with the workload (equal mass to
    /// the hot set, like the paper's pre-aged chip state).
    pub fn cold_pages(&self) -> u64 {
        self.hot_pages()
    }

    /// Total live pages (hot + cold).
    pub fn live_pages(&self) -> u64 {
        self.hot_pages() + self.cold_pages()
    }

    /// Exported logical space: hot + cold plus address headroom.
    pub fn logical_pages(&self) -> u64 {
        self.live_pages() + 800
    }
}

/// One measured cell of Figure 5.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct SynCell {
    pub mode: Mode,
    pub validity: Validity,
    pub updates_per_txn: usize,
    pub elapsed_ns: u64,
    pub measured_validity: Option<f64>,
    pub snap: Snapshot,
    /// Pager counters for the Table 1 host-side columns.
    pub db_writes: u64,
    pub journal_writes: u64,
    pub fsyncs: u64,
}

/// Runs one cell: build an aged rig, load partsupp, run the transactions.
pub fn run_cell(mode: Mode, validity: Validity, updates: usize, scale: SynScale) -> SynCell {
    let live = scale.live_pages();
    let logical = scale.logical_pages();
    let blocks = blocks_for(live, logical, validity.utilization());
    // Age the drive into GC steady state before the workload: the cold
    // fill plus enough churn that the write frontier has cycled the
    // physical space at least once.
    let cold = scale.cold_pages();
    let physical = (blocks as u64) * 128;
    let churn = ((physical as f64 * 1.3 - cold as f64) / cold as f64).max(0.5);
    let cfg = RigConfig {
        mode,
        blocks,
        logical_pages: logical,
        gc_policy: GcPolicy::Fifo,
        aging: Some(Aging {
            fill: cold as f64 / logical as f64,
            churn,
        }),
        ..RigConfig::small(mode)
    };
    let rig = Rig::build(cfg);
    let syn = SyntheticConfig {
        tuples: scale.tuples,
        updates_per_txn: updates,
        txns: scale.txns,
        ..SyntheticConfig::default()
    };
    let mut db = rig.open_db("synthetic.db");
    synthetic::load_partsupply(&mut db, &syn).expect("partsupp load failed");
    // Warm the GC into steady state before measuring, as the paper's
    // aged-drive setup does.
    let warm = SyntheticConfig {
        txns: (scale.txns / 4).max(10),
        ..syn
    };
    synthetic::run_transactions(&mut db, &rig.clock, &warm).expect("warmup failed");
    rig.reset_stats();
    rig.telemetry().reset();
    db.reset_stats();
    let result =
        synthetic::run_transactions(&mut db, &rig.clock, &syn).expect("transaction phase failed");
    let stats = *db.pager_stats();
    drop(db);
    // Per-layer latency distributions of the measured phase (the sink
    // keeps the last cell run per mode, deterministically).
    metrics::hists(&format!("syn.{}", mode_key(mode)), &rig.telemetry());
    let snap = rig.snapshot();
    SynCell {
        mode,
        validity,
        updates_per_txn: updates,
        elapsed_ns: result.elapsed_ns,
        measured_validity: snap.ftl.mean_gc_validity(),
        snap,
        db_writes: stats.db_writes,
        journal_writes: stats.journal_writes,
        fsyncs: stats.fsyncs,
    }
}

/// Figure 5: execution time vs. updated pages per transaction, one panel
/// per GC-validity regime.
pub fn fig5(scale: SynScale, updates_sweep: &[usize]) -> String {
    let mut out = String::new();
    out.push_str("=== Figure 5: SQLite performance, 1,000 synthetic transactions ===\n");
    out.push_str(&format!(
        "(tuples={}, txns={}; execution time in simulated seconds)\n\n",
        scale.tuples, scale.txns
    ));
    for validity in Validity::ALL {
        let mut t = Table::new(vec![
            "updates/txn".to_string(),
            "RBJ (s)".into(),
            "WAL (s)".into(),
            "X-FTL (s)".into(),
            "RBJ/X".into(),
            "WAL/X".into(),
            "meas.valid".into(),
        ]);
        for &u in updates_sweep {
            let rbj = run_cell(Mode::Rbj, validity, u, scale);
            let wal = run_cell(Mode::Wal, validity, u, scale);
            let x = run_cell(Mode::XFtl, validity, u, scale);
            for c in [&rbj, &wal, &x] {
                metrics::metric(
                    format!(
                        "fig5.{}.u{u}.{}.elapsed_ns",
                        validity.key(),
                        mode_key(c.mode)
                    ),
                    c.elapsed_ns as f64,
                );
            }
            let mv = [rbj, wal, x]
                .iter()
                .filter_map(|c| c.measured_validity)
                .fold((0.0, 0), |(s, n), v| (s + v, n + 1));
            t.row(vec![
                u.to_string(),
                secs(rbj.elapsed_ns),
                secs(wal.elapsed_ns),
                secs(x.elapsed_ns),
                ratio(rbj.elapsed_ns, x.elapsed_ns),
                ratio(wal.elapsed_ns, x.elapsed_ns),
                if mv.1 > 0 {
                    format!("{:.0}%", 100.0 * mv.0 / mv.1 as f64)
                } else {
                    "-".into()
                },
            ]);
        }
        out.push_str(&format!(
            "--- (GC validity target {}) ---\n",
            validity.label()
        ));
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Table 1: I/O count breakdown at 5 updated pages per transaction,
/// GC validity 50 %.
pub fn table1(scale: SynScale) -> String {
    let mut out = String::new();
    out.push_str("=== Table 1: I/O count (# updated pages/txn = 5, GC validity = 50%) ===\n\n");
    let mut t = Table::new(vec![
        "Mode",
        "DB",
        "Journal",
        "FileSys",
        "Total",
        "fsync",
        "FTL-Write",
        "FTL-Read",
        "GC",
        "Erase",
    ]);
    for mode in [Mode::Rbj, Mode::Wal, Mode::XFtl] {
        let c = run_cell(mode, Validity::V50, 5, scale);
        let fs_overhead = c.snap.fs.overhead_writes();
        let total = c.db_writes + c.journal_writes + fs_overhead;
        let m = mode_key(mode);
        metrics::metric(format!("table1.{m}.db_writes"), c.db_writes as f64);
        metrics::metric(
            format!("table1.{m}.journal_writes"),
            c.journal_writes as f64,
        );
        metrics::metric(format!("table1.{m}.fs_writes"), fs_overhead as f64);
        metrics::metric(format!("table1.{m}.fsyncs"), c.fsyncs as f64);
        metrics::metric(
            format!("table1.{m}.ftl_programs"),
            c.snap.flash.programs as f64,
        );
        metrics::metric(format!("table1.{m}.ftl_reads"), c.snap.flash.reads as f64);
        metrics::metric(format!("table1.{m}.gc_runs"), c.snap.ftl.gc_runs as f64);
        metrics::metric(format!("table1.{m}.erases"), c.snap.flash.erases as f64);
        t.row(vec![
            mode.label().to_string(),
            c.db_writes.to_string(),
            c.journal_writes.to_string(),
            fs_overhead.to_string(),
            total.to_string(),
            c.fsyncs.to_string(),
            c.snap.flash.programs.to_string(),
            c.snap.flash.reads.to_string(),
            c.snap.ftl.gc_runs.to_string(),
            c.snap.flash.erases.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out
}

/// Figure 6: FTL-side write count and GC count vs. GC-validity regime,
/// at 5 updated pages per transaction.
pub fn fig6(scale: SynScale) -> String {
    let mut out = String::new();
    out.push_str("=== Figure 6: I/O activity inside the device (updates/txn = 5) ===\n\n");
    let mut wt = Table::new(vec!["validity", "RBJ writes", "WAL writes", "X-FTL writes"]);
    let mut gt = Table::new(vec!["validity", "RBJ GCs", "WAL GCs", "X-FTL GCs"]);
    for validity in Validity::ALL {
        let rbj = run_cell(Mode::Rbj, validity, 5, scale);
        let wal = run_cell(Mode::Wal, validity, 5, scale);
        let x = run_cell(Mode::XFtl, validity, 5, scale);
        for c in [&rbj, &wal, &x] {
            let key = format!("fig6.{}.{}", validity.key(), mode_key(c.mode));
            metrics::metric(format!("{key}.programs"), c.snap.flash.programs as f64);
            metrics::metric(format!("{key}.gc_runs"), c.snap.ftl.gc_runs as f64);
        }
        wt.row(vec![
            validity.label().to_string(),
            rbj.snap.flash.programs.to_string(),
            wal.snap.flash.programs.to_string(),
            x.snap.flash.programs.to_string(),
        ]);
        gt.row(vec![
            validity.label().to_string(),
            rbj.snap.ftl.gc_runs.to_string(),
            wal.snap.ftl.gc_runs.to_string(),
            x.snap.ftl.gc_runs.to_string(),
        ]);
    }
    out.push_str("(a) page write count\n");
    out.push_str(&wt.render());
    out.push_str("\n(b) garbage collection count\n");
    out.push_str(&gt.render());
    out.push('\n');
    out
}

/// The elapsed-time of one (mode, validity) cell at 5 updates — exposed
/// for integration tests asserting the paper's ordering.
pub fn headline_ordering(scale: SynScale) -> (u64, u64, u64) {
    let rbj = run_cell(Mode::Rbj, Validity::V50, 5, scale);
    let wal = run_cell(Mode::Wal, Validity::V50, 5, scale);
    let x = run_cell(Mode::XFtl, Validity::V50, 5, scale);
    let _ = SECOND;
    (rbj.elapsed_ns, wal.elapsed_ns, x.elapsed_ns)
}
