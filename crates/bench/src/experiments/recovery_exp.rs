//! Table 5: SQLite restart time after a power failure, per journal mode.
//!
//! The paper powers the OpenSSD off mid-run and measures the time SQLite
//! takes to recover the database on first access — excluding the FTL's own
//! (common) recovery of its mapping structures. We reproduce both numbers:
//! the mode-specific restart time (hot-journal rollback for RBJ, WAL-scan
//! for WAL, X-L2P fold for X-FTL) and the excluded common scan time.

use xftl_core::XFtl;
use xftl_ftl::{PageMappedFtl, SataLink};
use xftl_workloads::rig::{link_for, AnyDev, Mode, Rig, RigConfig};
use xftl_workloads::synthetic::{self, SyntheticConfig};

use crate::metrics::{self, mode_key};
use crate::report::{millis, Table};

/// One Table 5 measurement.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryMeasurement {
    /// System configuration measured.
    pub mode: Mode,
    /// Mode-specific restart work, simulated ns (the paper's metric).
    pub restart_ns: u64,
    /// Common device recovery (checkpoint load + log scan), excluded by
    /// the paper.
    pub common_ns: u64,
}

/// Crash scale.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct RecoveryScale {
    pub tuples: usize,
    pub txns_before_crash: usize,
}

impl RecoveryScale {
    /// Default full-scale parameters.
    pub fn full() -> Self {
        RecoveryScale {
            tuples: 20_000,
            txns_before_crash: 200,
        }
    }

    /// Reduced scale for `cargo bench` smoke runs.
    pub fn quick() -> Self {
        RecoveryScale {
            tuples: 2_000,
            txns_before_crash: 40,
        }
    }

    /// The minimal scale for the CI `bench-smoke` job.
    pub fn smoke() -> Self {
        RecoveryScale {
            tuples: 1_500,
            txns_before_crash: 30,
        }
    }
}

/// Runs the crash scenario for one mode and measures restart time.
pub fn measure(mode: Mode, scale: RecoveryScale) -> RecoveryMeasurement {
    let hot = (scale.tuples as u64 / 33) * 2 + 1_500;
    let logical = hot * 2;
    let rig = Rig::build(RigConfig {
        mode,
        // Enough physical space for the full logical range plus GC slack.
        blocks: (logical / 128 + 14) as usize,
        logical_pages: logical,
        ..RigConfig::small(mode)
    });
    let syn = SyntheticConfig {
        tuples: scale.tuples,
        updates_per_txn: 5,
        txns: scale.txns_before_crash,
        ..SyntheticConfig::default()
    };
    {
        let mut db = rig.open_db("synthetic.db");
        synthetic::load_partsupply(&mut db, &syn).expect("partsupp load failed");
        synthetic::run_transactions(&mut db, &rig.clock, &syn).expect("transaction phase failed");
        // Leave an in-flight transaction with storage-resident state at
        // crash time: a small pager cache forces spills (hot journal in
        // RBJ, uncommitted frames in WAL, stolen tx pages on X-FTL).
        db.pager_mut().set_cache_capacity(4);
        db.execute("BEGIN").expect("begin");
        for i in 0..10i64 {
            db.execute_with(
                "UPDATE partsupp SET ps_supplycost = 1.0 WHERE ps_id = ?",
                &[xftl_db::Value::Int(i * 37 + 1)],
            )
            .expect("in-flight update");
        }
        // Power fails here: no COMMIT, connection dropped.
    }
    let (fs, clock, cfg) = rig.teardown();
    let dev = fs.into_device();
    // Device-level recovery, with the X-L2P portion isolated for X-FTL.
    let (dev, common_ns, device_restart_ns) = match dev {
        AnyDev::Plain(link) => {
            let chip = link.into_inner().into_chip();
            let t0 = clock.now();
            let d = PageMappedFtl::recover(chip).expect("recover");
            (
                AnyDev::Plain(SataLink::new(d, link_for(cfg.profile), clock.clone())),
                clock.now() - t0,
                0,
            )
        }
        AnyDev::X(link) => {
            let chip = link.into_inner().into_chip();
            let (d, breakdown) =
                XFtl::recover_with_breakdown(chip, cfg.xl2p_capacity).expect("recover");
            (
                AnyDev::X(SataLink::new(d, link_for(cfg.profile), clock.clone())),
                breakdown.scan_ns,
                breakdown.xl2p_ns,
            )
        }
        AnyDev::AtomicW(_) => unreachable!("rig never builds the baseline for Table 5"),
    };
    let rig = Rig::reassemble(dev, clock, cfg);
    // SQLite-level restart: the first open performs the mode's recovery
    // (hot-journal rollback / WAL index rebuild).
    let t0 = rig.clock.now();
    let db = rig.open_db("synthetic.db");
    let open_ns = rig.clock.now() - t0;
    drop(db);
    let restart_ns = match mode {
        // X-FTL's restart work happens inside the device (X-L2P fold);
        // opening the database does no recovery at all, but we include it
        // for honesty — it is near zero.
        Mode::XFtl => device_restart_ns + open_ns,
        _ => open_ns,
    };
    RecoveryMeasurement {
        mode,
        restart_ns,
        common_ns,
    }
}

/// Table 5 report.
pub fn table5(scale: RecoveryScale) -> String {
    let mut out = String::new();
    out.push_str("=== Table 5: SQLite restart time after power failure ===\n\n");
    let mut t = Table::new(vec![
        "mode",
        "restart (ms)",
        "common FTL recovery (ms, excluded)",
    ]);
    for mode in [Mode::Rbj, Mode::Wal, Mode::XFtl] {
        let m = measure(mode, scale);
        let key = mode_key(mode);
        metrics::metric(format!("table5.{key}.restart_ns"), m.restart_ns as f64);
        metrics::metric(format!("table5.{key}.common_ns"), m.common_ns as f64);
        t.row(vec![
            mode.label().to_string(),
            millis(m.restart_ns),
            millis(m.common_ns),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\n(paper, OpenSSD hardware: RBJ 20.1 ms, WAL 153.0 ms, X-FTL 3.5 ms)\n\n");
    out
}
