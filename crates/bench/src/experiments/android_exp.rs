//! Table 2 and Figure 7: the Android smartphone traces.

use xftl_workloads::android::{self, TraceSpec, ALL_TRACES};
use xftl_workloads::rig::{Mode, Rig, RigConfig};

use crate::metrics;
use crate::report::{ratio, secs, Table};

/// Stable lowercase key for a trace name in metric names.
fn trace_key(name: &str) -> String {
    name.to_ascii_lowercase()
}

/// Builds a rig sized for a trace replay (fresh drive, ample space — the
/// paper's smartphone runs are not GC-bound).
fn trace_rig(mode: Mode, spec: &TraceSpec, scale: f64) -> Rig {
    // Footprint: row and blob pages from the inserts, plus — crucially —
    // one WAL per database file, each growing to ~1000 frames before its
    // checkpoint (Facebook has 11 files, so WAL space dominates).
    let inserts = (spec.inserts as f64 * scale) as u64;
    let blob_pages = if spec.blob_bytes > 0 { inserts / 2 } else { 0 };
    let wal_pages = 1_100 * spec.db_files as u64;
    let hot = inserts / 8 + blob_pages + wal_pages + 2_000;
    let logical = hot * 2;
    Rig::build(RigConfig {
        mode,
        blocks: ((logical as f64 * 1.8 / 128.0).ceil() as usize).max(48),
        logical_pages: logical,
        ..RigConfig::small(mode)
    })
}

/// Table 2: the synthesized traces' characteristics, alongside our
/// measured updated-pages-per-transaction.
pub fn table2(scale: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "=== Table 2: Android smartphone traces (synthesized; scale {scale}) ===\n\n"
    ));
    let mut t = Table::new(vec!["", "RLBenchmark", "Gmail", "Facebook", "WebBrowser"]);
    type SpecField = fn(&TraceSpec) -> String;
    let rows: Vec<(&str, SpecField)> = vec![
        ("# database files", |s| s.db_files.to_string()),
        ("# tables", |s| s.tables.to_string()),
        ("# queries", |s| s.total_queries().to_string()),
        ("# select", |s| s.selects.to_string()),
        ("# join", |s| s.joins.to_string()),
        ("# insert", |s| s.inserts.to_string()),
        ("# update", |s| s.updates.to_string()),
        ("# delete", |s| s.deletes.to_string()),
        ("# DDL/commands", |s| s.ddl.to_string()),
        ("paper pages/txn", |s| {
            format!("{:.2}", s.paper_pages_per_txn)
        }),
    ];
    for (label, f) in rows {
        t.row(vec![
            label.to_string(),
            f(&ALL_TRACES[0]),
            f(&ALL_TRACES[1]),
            f(&ALL_TRACES[2]),
            f(&ALL_TRACES[3]),
        ]);
    }
    // Measured pages/txn from a WAL-mode replay at the given scale.
    let mut measured = vec!["measured pages/txn".to_string()];
    for spec in &ALL_TRACES {
        let rig = trace_rig(Mode::Wal, spec, scale);
        let ops = android::synthesize(spec, scale, 42);
        let r = android::replay(&rig, spec, &ops);
        metrics::metric(
            format!("table2.{}.pages_per_txn", trace_key(spec.name)),
            r.measured_pages_per_txn,
        );
        measured.push(format!("{:.2}", r.measured_pages_per_txn));
    }
    t.row(measured);
    out.push_str(&t.render());
    out.push('\n');
    out
}

/// Figure 7: elapsed time per trace, WAL vs X-FTL (the paper omits RBJ
/// here for clarity; it behaves as in the synthetic workload).
pub fn fig7(scale: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "=== Figure 7: smartphone workload performance (scale {scale}; simulated seconds) ===\n\n"
    ));
    let mut t = Table::new(vec!["trace", "WAL (s)", "X-FTL (s)", "speedup"]);
    for spec in &ALL_TRACES {
        let mut times = Vec::new();
        for mode in [Mode::Wal, Mode::XFtl] {
            let rig = trace_rig(mode, spec, scale);
            let ops = android::synthesize(spec, scale, 42);
            let r = android::replay(&rig, spec, &ops);
            metrics::metric(
                format!(
                    "fig7.{}.{}.elapsed_ns",
                    trace_key(spec.name),
                    metrics::mode_key(mode)
                ),
                r.elapsed_ns as f64,
            );
            times.push(r.elapsed_ns);
        }
        t.row(vec![
            spec.name.to_string(),
            secs(times[0]),
            secs(times[1]),
            ratio(times[0], times[1]),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out
}

/// WAL and X-FTL elapsed times per trace, for integration tests.
pub fn fig7_pairs(scale: f64) -> Vec<(&'static str, u64, u64)> {
    ALL_TRACES
        .iter()
        .map(|spec| {
            let run = |mode: Mode| {
                let rig = trace_rig(mode, spec, scale);
                let ops = android::synthesize(spec, scale, 42);
                android::replay(&rig, spec, &ops).elapsed_ns
            };
            (spec.name, run(Mode::Wal), run(Mode::XFtl))
        })
        .collect()
}
