//! Runs the ablation studies (X-L2P capacity, atomic-write baseline,
//! WAL checkpoint interval, barrier cost).
use xftl_bench::experiments::ablation;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", ablation::all(quick));
}
