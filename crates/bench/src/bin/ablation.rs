//! Runs the ablation studies (X-L2P capacity, atomic-write baseline,
//! WAL checkpoint interval, barrier cost) and writes
//! `BENCH_ablation.json`.
use xftl_bench::experiments::ablation;
use xftl_bench::{metrics, write_report, RunScale};

fn main() {
    let scale = RunScale::from_args();
    metrics::reset();
    print!("{}", ablation::all(scale != RunScale::Full));
    write_report("ablation", scale);
}
