//! Regenerates Table 5 (restart time after power failure).
use xftl_bench::experiments::recovery_exp::{table5, RecoveryScale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!(
        "{}",
        table5(if quick {
            RecoveryScale::quick()
        } else {
            RecoveryScale::full()
        })
    );
}
