//! Regenerates Table 5 (restart time after power failure) and
//! `BENCH_table5.json`.
use xftl_bench::experiments::recovery_exp::{table5, RecoveryScale};
use xftl_bench::{metrics, write_report, RunScale};

fn main() {
    let scale = RunScale::from_args();
    metrics::reset();
    print!(
        "{}",
        table5(match scale {
            RunScale::Full => RecoveryScale::full(),
            RunScale::Quick => RecoveryScale::quick(),
            RunScale::Smoke => RecoveryScale::smoke(),
        })
    );
    write_report("table5", scale);
}
