//! Drives each journaling mode to device end-of-life under an
//! erase-failure-heavy fault environment with aging enabled, writing
//! `BENCH_endurance.json` next to the text tables.
use xftl_bench::experiments::endurance_exp::{endurance_sweep, EnduranceScale};
use xftl_bench::{metrics, write_report, RunScale};

fn main() {
    let scale = RunScale::from_args();
    metrics::reset();
    let es = match scale {
        RunScale::Full => EnduranceScale::full(),
        RunScale::Quick => EnduranceScale::quick(),
        RunScale::Smoke => EnduranceScale::smoke(),
    };
    print!("{}", endurance_sweep(es));
    write_report("endurance", scale);
}
