//! Regenerates the concurrent-writer scaling sweep (MVCC snapshot
//! commit throughput and conflict rate vs writer count, disjoint and
//! Zipfian regimes), writing `BENCH_concurrent.json` next to the table.
use xftl_bench::experiments::concurrent_exp::{concurrent_scaling, ConcScale};
use xftl_bench::{metrics, write_report, RunScale};

fn main() {
    let scale = RunScale::from_args();
    metrics::reset();
    let conc = match scale {
        RunScale::Full => ConcScale::full(),
        RunScale::Quick => ConcScale::quick(),
        RunScale::Smoke => ConcScale::smoke(),
    };
    print!("{}", concurrent_scaling(conc));
    write_report("concurrent", scale);
}
