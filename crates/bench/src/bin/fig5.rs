//! Regenerates Figure 5 (synthetic workload, execution time vs
//! transaction size, three GC-validity regimes) and `BENCH_fig5.json`.
use xftl_bench::experiments::synthetic_exp::{fig5, SynScale};
use xftl_bench::{metrics, write_report, RunScale};

fn main() {
    let scale = RunScale::from_args();
    metrics::reset();
    let syn = match scale {
        RunScale::Full => SynScale::full(),
        RunScale::Quick => SynScale::quick(),
        RunScale::Smoke => SynScale::smoke(),
    };
    let sweep: Vec<usize> = match scale {
        RunScale::Full => vec![1, 5, 10, 15, 20],
        RunScale::Quick => vec![1, 5, 20],
        RunScale::Smoke => vec![1, 5],
    };
    print!("{}", fig5(syn, &sweep));
    write_report("fig5", scale);
}
