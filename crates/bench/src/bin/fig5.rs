//! Regenerates Figure 5 (synthetic workload, execution time vs
//! transaction size, three GC-validity regimes).
use xftl_bench::experiments::synthetic_exp::{fig5, SynScale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        SynScale::quick()
    } else {
        SynScale::full()
    };
    let sweep: Vec<usize> = if quick {
        vec![1, 5, 20]
    } else {
        vec![1, 5, 10, 15, 20]
    };
    print!("{}", fig5(scale, &sweep));
}
