//! Regenerates Table 1 (I/O count breakdown).
use xftl_bench::experiments::synthetic_exp::{table1, SynScale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!(
        "{}",
        table1(if quick {
            SynScale::quick()
        } else {
            SynScale::full()
        })
    );
}
