//! Regenerates Table 1 (I/O count breakdown) and `BENCH_table1.json`.
use xftl_bench::experiments::synthetic_exp::{table1, SynScale};
use xftl_bench::{metrics, write_report, RunScale};

fn main() {
    let scale = RunScale::from_args();
    metrics::reset();
    print!(
        "{}",
        table1(match scale {
            RunScale::Full => SynScale::full(),
            RunScale::Quick => SynScale::quick(),
            RunScale::Smoke => SynScale::smoke(),
        })
    );
    write_report("table1", scale);
}
