//! Regenerates every table and figure of the paper in one run.
use xftl_bench::experiments::*;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let syn = if quick {
        synthetic_exp::SynScale::quick()
    } else {
        synthetic_exp::SynScale::full()
    };
    let sweep: Vec<usize> = if quick {
        vec![1, 5, 20]
    } else {
        vec![1, 5, 10, 15, 20]
    };
    print!("{}", synthetic_exp::fig5(syn, &sweep));
    print!("{}", synthetic_exp::table1(syn));
    print!("{}", synthetic_exp::fig6(syn));
    let tr_scale = if quick { 0.05 } else { 1.0 };
    print!("{}", android_exp::table2(tr_scale));
    print!("{}", android_exp::fig7(tr_scale));
    let tp = if quick {
        tpcc_exp::TpccExpScale::quick()
    } else {
        tpcc_exp::TpccExpScale::full()
    };
    print!("{}", tpcc_exp::tables_3_4(tp));
    let fio = if quick {
        fio_exp::FioScale::quick()
    } else {
        fio_exp::FioScale::full()
    };
    print!("{}", fio_exp::fig8(fio));
    print!("{}", fio_exp::fig9(fio));
    print!("{}", channel_exp::channel_scaling(fio));
    let rec = if quick {
        recovery_exp::RecoveryScale::quick()
    } else {
        recovery_exp::RecoveryScale::full()
    };
    print!("{}", recovery_exp::table5(rec));
    let fl = if quick {
        fault_exp::FaultScale::quick()
    } else {
        fault_exp::FaultScale::full()
    };
    print!("{}", fault_exp::fault_sweep(fl));
    print!("{}", ablation::all(quick));
}
