//! Regenerates every table and figure of the paper in one run, writing
//! `BENCH_all.json` next to the text tables. `--quick` runs the reduced
//! `cargo bench` scale; `--smoke` runs the minimal CI scale that
//! `xtask bench-check` diffs against `BENCH_BASELINE.json`.
use xftl_bench::experiments::*;
use xftl_bench::{metrics, write_report, RunScale};

fn main() {
    let scale = RunScale::from_args();
    metrics::reset();
    let syn = match scale {
        RunScale::Full => synthetic_exp::SynScale::full(),
        RunScale::Quick => synthetic_exp::SynScale::quick(),
        RunScale::Smoke => synthetic_exp::SynScale::smoke(),
    };
    let sweep: Vec<usize> = match scale {
        RunScale::Full => vec![1, 5, 10, 15, 20],
        RunScale::Quick => vec![1, 5, 20],
        RunScale::Smoke => vec![1, 5],
    };
    print!("{}", synthetic_exp::fig5(syn, &sweep));
    print!("{}", synthetic_exp::table1(syn));
    print!("{}", synthetic_exp::fig6(syn));
    let tr_scale = match scale {
        RunScale::Full => 1.0,
        RunScale::Quick => 0.05,
        RunScale::Smoke => 0.02,
    };
    print!("{}", android_exp::table2(tr_scale));
    print!("{}", android_exp::fig7(tr_scale));
    let tp = match scale {
        RunScale::Full => tpcc_exp::TpccExpScale::full(),
        RunScale::Quick => tpcc_exp::TpccExpScale::quick(),
        RunScale::Smoke => tpcc_exp::TpccExpScale::smoke(),
    };
    print!("{}", tpcc_exp::tables_3_4(tp));
    let fio = match scale {
        RunScale::Full => fio_exp::FioScale::full(),
        RunScale::Quick => fio_exp::FioScale::quick(),
        RunScale::Smoke => fio_exp::FioScale::smoke(),
    };
    print!("{}", fio_exp::fig8(fio));
    print!("{}", fio_exp::fig9(fio));
    print!("{}", channel_exp::channel_scaling(fio));
    let conc = match scale {
        RunScale::Full => concurrent_exp::ConcScale::full(),
        RunScale::Quick => concurrent_exp::ConcScale::quick(),
        RunScale::Smoke => concurrent_exp::ConcScale::smoke(),
    };
    print!("{}", concurrent_exp::concurrent_scaling(conc));
    let rec = match scale {
        RunScale::Full => recovery_exp::RecoveryScale::full(),
        RunScale::Quick => recovery_exp::RecoveryScale::quick(),
        RunScale::Smoke => recovery_exp::RecoveryScale::smoke(),
    };
    print!("{}", recovery_exp::table5(rec));
    let fl = match scale {
        RunScale::Full => fault_exp::FaultScale::full(),
        RunScale::Quick => fault_exp::FaultScale::quick(),
        RunScale::Smoke => fault_exp::FaultScale::smoke(),
    };
    print!("{}", fault_exp::fault_sweep(fl));
    print!("{}", ablation::all(scale != RunScale::Full));
    write_report("all", scale);
}
