//! Regenerates the fault-rate ablation (commit latency, throughput and
//! block retirement vs background NAND fault severity), writing
//! `BENCH_faults.json` next to the text table.
use xftl_bench::experiments::fault_exp::{fault_sweep, FaultScale};
use xftl_bench::{metrics, write_report, RunScale};

fn main() {
    let scale = RunScale::from_args();
    metrics::reset();
    let fl = match scale {
        RunScale::Full => FaultScale::full(),
        RunScale::Quick => FaultScale::quick(),
        RunScale::Smoke => FaultScale::smoke(),
    };
    print!("{}", fault_sweep(fl));
    write_report("faults", scale);
}
