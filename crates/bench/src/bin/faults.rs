//! Regenerates the fault-rate ablation (commit latency, throughput and
//! block retirement vs background NAND fault severity).
use xftl_bench::experiments::fault_exp::{fault_sweep, FaultScale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!(
        "{}",
        fault_sweep(if quick {
            FaultScale::quick()
        } else {
            FaultScale::full()
        })
    );
}
