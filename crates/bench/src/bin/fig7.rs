//! Regenerates Figure 7 (smartphone workload performance) and
//! `BENCH_fig7.json`.
use xftl_bench::experiments::android_exp::fig7;
use xftl_bench::{metrics, write_report, RunScale};

fn main() {
    let scale = RunScale::from_args();
    metrics::reset();
    print!(
        "{}",
        fig7(match scale {
            RunScale::Full => 1.0,
            RunScale::Quick => 0.05,
            RunScale::Smoke => 0.02,
        })
    );
    write_report("fig7", scale);
}
