//! Regenerates Figure 7 (smartphone workload performance).
use xftl_bench::experiments::android_exp::fig7;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", fig7(if quick { 0.05 } else { 1.0 }));
}
