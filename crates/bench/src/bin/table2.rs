//! Regenerates Table 2 (Android trace characteristics) and
//! `BENCH_table2.json`.
use xftl_bench::experiments::android_exp::table2;
use xftl_bench::{metrics, write_report, RunScale};

fn main() {
    let scale = RunScale::from_args();
    metrics::reset();
    print!(
        "{}",
        table2(match scale {
            RunScale::Full => 1.0,
            RunScale::Quick => 0.05,
            RunScale::Smoke => 0.02,
        })
    );
    write_report("table2", scale);
}
