//! Regenerates Table 2 (Android trace characteristics).
use xftl_bench::experiments::android_exp::table2;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", table2(if quick { 0.05 } else { 1.0 }));
}
