//! Regenerates the channel-scaling ablation (FIO IOPS vs channel count,
//! plus per-channel busy time and queue-depth stats).
use xftl_bench::experiments::channel_exp::channel_scaling;
use xftl_bench::experiments::fio_exp::FioScale;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!(
        "{}",
        channel_scaling(if quick {
            FioScale::quick()
        } else {
            FioScale::full()
        })
    );
}
