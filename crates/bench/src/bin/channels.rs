//! Regenerates the channel-scaling ablation (FIO IOPS vs channel count,
//! plus per-channel busy time and queue-depth stats), writing
//! `BENCH_channels.json` next to the text table.
use xftl_bench::experiments::channel_exp::channel_scaling;
use xftl_bench::experiments::fio_exp::FioScale;
use xftl_bench::{metrics, write_report, RunScale};

fn main() {
    let scale = RunScale::from_args();
    metrics::reset();
    let fio = match scale {
        RunScale::Full => FioScale::full(),
        RunScale::Quick => FioScale::quick(),
        RunScale::Smoke => FioScale::smoke(),
    };
    print!("{}", channel_scaling(fio));
    write_report("channels", scale);
}
