//! GC steady-state soak for the demand-paged FTL: fill, then overwrite
//! under Zipfian skew until garbage collection stabilizes, comparing
//! greedy vs cost-benefit victim selection at a bounded mapping-cache
//! budget. Writes `BENCH_steady.json` next to the text table. The CI
//! soak lane runs `--quick` (the 100× device); `--smoke` rides the PR
//! bench-smoke job; the default scale is the 64 GB-class device.
use xftl_bench::experiments::steady_exp::{steady, SteadyScale};
use xftl_bench::{metrics, write_report, RunScale};

fn main() {
    let scale = RunScale::from_args();
    metrics::reset();
    let spec = match scale {
        RunScale::Full => SteadyScale::full(),
        RunScale::Quick => SteadyScale::quick(),
        RunScale::Smoke => SteadyScale::smoke(),
    };
    print!("{}", steady(&spec));
    write_report("steady", scale);
}
