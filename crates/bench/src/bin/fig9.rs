//! Regenerates Figure 9 (FIO 16 jobs, S830 vs OpenSSD X-FTL) and
//! `BENCH_fig9.json`.
use xftl_bench::experiments::fio_exp::{fig9, FioScale};
use xftl_bench::{metrics, write_report, RunScale};

fn main() {
    let scale = RunScale::from_args();
    metrics::reset();
    print!(
        "{}",
        fig9(match scale {
            RunScale::Full => FioScale::full(),
            RunScale::Quick => FioScale::quick(),
            RunScale::Smoke => FioScale::smoke(),
        })
    );
    write_report("fig9", scale);
}
