//! Regenerates Figure 9 (FIO 16 jobs, S830 vs OpenSSD X-FTL).
use xftl_bench::experiments::fio_exp::{fig9, FioScale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!(
        "{}",
        fig9(if quick {
            FioScale::quick()
        } else {
            FioScale::full()
        })
    );
}
