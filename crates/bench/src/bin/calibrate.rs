//! Calibration helper: measures mean GC victim validity against the
//! utilization targets behind the Figure 5 validity regimes.
use xftl_bench::experiments::synthetic_exp::{run_cell, SynScale, Validity};
use xftl_workloads::rig::Mode;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tuples: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let txns: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(300);
    let scale = SynScale { tuples, txns };
    for mode in [Mode::Rbj, Mode::Wal, Mode::XFtl] {
        for v in Validity::ALL {
            let c = run_cell(mode, v, 5, scale);
            println!(
                "{:6} target {:3}: validity {:5.1}%  gc_runs {:5}  time {:8.2}s",
                mode.label(),
                v.label(),
                c.measured_validity.map(|x| x * 100.0).unwrap_or(0.0),
                c.snap.ftl.gc_runs,
                c.elapsed_ns as f64 / 1e9,
            );
        }
    }
}
