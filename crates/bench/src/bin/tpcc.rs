//! Regenerates Tables 3-4 (TPC-C mixes and throughput) and
//! `BENCH_tpcc.json`.
use xftl_bench::experiments::tpcc_exp::{tables_3_4, TpccExpScale};
use xftl_bench::{metrics, write_report, RunScale};

fn main() {
    let scale = RunScale::from_args();
    metrics::reset();
    print!(
        "{}",
        tables_3_4(match scale {
            RunScale::Full => TpccExpScale::full(),
            RunScale::Quick => TpccExpScale::quick(),
            RunScale::Smoke => TpccExpScale::smoke(),
        })
    );
    write_report("tpcc", scale);
}
