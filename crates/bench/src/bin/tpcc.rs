//! Regenerates Tables 3-4 (TPC-C mixes and throughput).
use xftl_bench::experiments::tpcc_exp::{tables_3_4, TpccExpScale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!(
        "{}",
        tables_3_4(if quick {
            TpccExpScale::quick()
        } else {
            TpccExpScale::full()
        })
    );
}
