//! Regenerates Figure 8 (FIO single-thread IOPS) and `BENCH_fig8.json`.
use xftl_bench::experiments::fio_exp::{fig8, FioScale};
use xftl_bench::{metrics, write_report, RunScale};

fn main() {
    let scale = RunScale::from_args();
    metrics::reset();
    print!(
        "{}",
        fig8(match scale {
            RunScale::Full => FioScale::full(),
            RunScale::Quick => FioScale::quick(),
            RunScale::Smoke => FioScale::smoke(),
        })
    );
    write_report("fig8", scale);
}
