//! Regenerates Figure 8 (FIO single-thread IOPS).
use xftl_bench::experiments::fio_exp::{fig8, FioScale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!(
        "{}",
        fig8(if quick {
            FioScale::quick()
        } else {
            FioScale::full()
        })
    );
}
