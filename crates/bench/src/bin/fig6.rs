//! Regenerates Figure 6 (FTL-side write and GC counts vs validity).
use xftl_bench::experiments::synthetic_exp::{fig6, SynScale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!(
        "{}",
        fig6(if quick {
            SynScale::quick()
        } else {
            SynScale::full()
        })
    );
}
