//! Regenerates Figure 6 (FTL-side write and GC counts vs validity) and
//! `BENCH_fig6.json`.
use xftl_bench::experiments::synthetic_exp::{fig6, SynScale};
use xftl_bench::{metrics, write_report, RunScale};

fn main() {
    let scale = RunScale::from_args();
    metrics::reset();
    print!(
        "{}",
        fig6(match scale {
            RunScale::Full => SynScale::full(),
            RunScale::Quick => SynScale::quick(),
            RunScale::Smoke => SynScale::smoke(),
        })
    );
    write_report("fig6", scale);
}
