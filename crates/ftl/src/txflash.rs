//! Baseline: TxFlash's Simple Cyclic Commit (Prabhakaran, Rodeheffer,
//! Zhou — OSDI 2008; the paper's citation \[20\]).
//!
//! SCC eliminates the separate commit record: every page of a transaction
//! carries, in its out-of-band area, its position within the transaction,
//! and the *last* page carries a cycle-closing marker with the total
//! count. A transaction is committed iff its cycle is complete on flash —
//! zero extra pages per commit.
//!
//! To let the closing marker ride on a data page under our streaming
//! `write_tx` interface, the device write-behind-buffers the most recent
//! page of each transaction in controller RAM and programs it on the next
//! write (plain link) or at `commit` (closing link). Power loss drops the
//! buffer, which is exactly SCC's abort semantics: an unclosed cycle never
//! commits.
//!
//! Like the atomic-write FTL — and unlike X-FTL — TxFlash supports
//! atomicity only for the pages the host groups explicitly, and its
//! cycles must be written contiguously per transaction id; it cannot keep
//! an old committed version readable for *other* transactions while a
//! writer is in flight on the same page (the §3.3 contrast). Our
//! implementation does pin the old version until commit, as SCC's
//! versioned pages do.

use std::collections::HashMap;

use xftl_flash::{FlashChip, Oob, PageKind, Ppa, SimClock};
use xftl_trace::{OpClass, Recorder};

use crate::base::{FtlBase, GcHook, NoHook, RecoveryLog};
use crate::dev::{BlockDevice, CommitTicket, DevCounters, Lpn, Tid, TxBlockDevice};
use crate::error::{DevError, Result};
use crate::health::DeviceState;
use crate::stats::FtlStats;

/// Cycle-closing flag in the auxiliary OOB word; the low 31 bits hold the
/// page's 1-based position (or, on the closing page, the total count).
const CLOSE: u32 = 1 << 31;

/// GC hook: chases relocated in-flight transaction pages.
#[derive(Debug, Default)]
struct SccHook {
    programmed: HashMap<Tid, Vec<(Lpn, Ppa)>>,
}

impl GcHook for SccHook {
    fn relocated(&mut self, oob: &Oob, old: Ppa, new: Ppa) {
        if oob.kind != PageKind::Data || oob.tid == 0 {
            return;
        }
        if let Some(pages) = self.programmed.get_mut(&oob.tid) {
            for (lpn, ppa) in pages.iter_mut() {
                if *ppa == old && *lpn == oob.lpn {
                    *ppa = new;
                }
            }
        }
    }
}

/// The Simple-Cyclic-Commit FTL.
#[derive(Debug)]
pub struct TxFlashFtl {
    base: FtlBase,
    pending: HashMap<Tid, Option<(Lpn, Vec<u8>)>>,
    hook: SccHook,
}

impl TxFlashFtl {
    /// Formats a fresh chip to export `logical_pages`.
    pub fn format(chip: FlashChip, logical_pages: u64) -> Result<Self> {
        Ok(TxFlashFtl {
            base: FtlBase::format(chip, logical_pages)?,
            pending: HashMap::new(),
            hook: SccHook::default(),
        })
    }

    /// Rebuilds the device after a power loss: transactions whose cycle is
    /// complete (positions `1..=n` present plus a closing page of count
    /// `n`) are rolled forward; incomplete cycles vanish.
    pub fn recover(chip: FlashChip) -> Result<Self> {
        let (mut base, log) = FtlBase::recover(chip)?;
        Self::replay(&mut base, &log)?;
        // A device in end-of-life read-only mode cannot persist the
        // recovered state; the replayed mapping serves reads from RAM.
        if base.device_state() != DeviceState::ReadOnly {
            base.checkpoint(&mut NoHook)?;
        }
        Ok(TxFlashFtl {
            base,
            pending: HashMap::new(),
            hook: SccHook::default(),
        })
    }

    fn replay(base: &mut FtlBase, log: &RecoveryLog) -> Result<()> {
        // Group each tid's pages into *runs*: a run ends at a cycle-closing
        // page, so a reused transaction id yields separate runs, each
        // judged on its own. GC may duplicate positions (relocated copies
        // keep their link word), so coverage is set-based. A committed
        // run's pages become current at the instant the cycle closed —
        // exactly like X-FTL's table-write seq — so folds are merged with
        // plain roll-forward events at the *close* sequence. Runs that
        // closed before the checkpoint are already covered by the
        // checkpointed L2P and are skipped.
        type Run = Vec<(u64, crate::dev::Lpn, Ppa, u32)>; // (seq, lpn, ppa, pos)
        let mut open: HashMap<Tid, Run> = HashMap::new();
        let mut folds: Vec<(u64, crate::dev::Lpn, Ppa)> = Vec::new();
        for e in &log.events {
            match e.kind {
                PageKind::Data if e.tid == 0 && e.seq > log.ckpt_seq => {
                    folds.push((e.seq, e.lpn, e.ppa));
                }
                PageKind::Data if e.tid == 0 => {
                    // Non-transactional write already covered by the
                    // checkpointed L2P.
                }
                PageKind::Data if e.seq <= log.tx_horizon => {
                    // A dead transaction from an earlier life: its cycle
                    // can never complete (the write buffer died with it).
                }
                PageKind::Data => {
                    let run = open.entry(e.tid).or_default();
                    run.push((e.seq, e.lpn, e.ppa, e.aux & !CLOSE));
                    if e.aux & CLOSE != 0 {
                        let n = e.aux & !CLOSE;
                        let run = open.remove(&e.tid).unwrap_or_default();
                        let close_seq = e.seq;
                        let mut seen = vec![false; n as usize + 1];
                        for &(_, _, _, p) in &run {
                            if (p as usize) < seen.len() {
                                seen[p as usize] = true;
                            }
                        }
                        let complete = seen.iter().skip(1).all(|&s| s);
                        if complete && close_seq > log.ckpt_seq {
                            // Latest version per lpn within the run.
                            let mut newest: HashMap<crate::dev::Lpn, (u64, Ppa)> = HashMap::new();
                            for (seq, lpn, ppa, _) in run {
                                let slot = newest.entry(lpn).or_insert((seq, ppa));
                                if seq > slot.0 {
                                    *slot = (seq, ppa);
                                }
                            }
                            for (lpn, (_, ppa)) in newest {
                                folds.push((close_seq, lpn, ppa));
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        folds.sort_by_key(|&(seq, _, _)| seq);
        for (_, lpn, ppa) in folds {
            base.apply_event(lpn, ppa)?;
        }
        Ok(())
    }

    /// Programs the buffered page of `tid` with the given link word.
    fn flush_pending(&mut self, tid: Tid, close: bool) -> Result<()> {
        let Some(slot) = self.pending.get_mut(&tid) else {
            return Ok(());
        };
        let Some((lpn, data)) = slot.take() else {
            return Ok(());
        };
        let position = self.hook.programmed.get(&tid).map_or(0, Vec::len) as u32 + 1;
        let aux = if close { CLOSE | position } else { position };
        let ppa =
            self.base
                .program_raw_aux(PageKind::Data, lpn, tid, aux, &data, &mut self.hook)?;
        self.hook
            .programmed
            .entry(tid)
            .or_default()
            .push((lpn, ppa));
        Ok(())
    }

    /// FTL-attributed statistics.
    pub fn stats(&self) -> &FtlStats {
        self.base.stats()
    }

    /// Raw media statistics.
    pub fn flash_stats(&self) -> xftl_flash::FlashStats {
        self.base.flash_stats()
    }

    /// Shared simulated clock.
    pub fn clock(&self) -> SimClock {
        self.base.clock()
    }

    /// Powers down, keeping only the flash.
    pub fn into_chip(self) -> FlashChip {
        self.base.into_chip()
    }

    /// Direct engine access for failure injection in tests.
    pub fn base_mut(&mut self) -> &mut FtlBase {
        &mut self.base
    }

    /// Read-only engine access, for the verify oracle's audits.
    pub fn base(&self) -> &FtlBase {
        &self.base
    }
}

impl BlockDevice for TxFlashFtl {
    fn page_size(&self) -> usize {
        self.base.page_size()
    }

    fn capacity_pages(&self) -> u64 {
        self.base.capacity_pages()
    }

    fn read(&mut self, lpn: Lpn, buf: &mut [u8]) -> Result<()> {
        self.base.counters_mut().host_reads += 1;
        self.base.read_committed(lpn, buf)
    }

    fn write(&mut self, lpn: Lpn, buf: &[u8]) -> Result<()> {
        self.base.counters_mut().host_writes += 1;
        self.base.write_committed(lpn, buf, &mut self.hook)
    }

    fn trim(&mut self, lpn: Lpn) -> Result<()> {
        self.base.counters_mut().trims += 1;
        self.base.trim_lpn(lpn)
    }

    fn flush(&mut self) -> Result<()> {
        self.base.counters_mut().flushes += 1;
        self.base.drain();
        if self.base.has_dirty_mapping() {
            self.base.checkpoint(&mut self.hook)?;
        }
        Ok(())
    }

    fn counters(&self) -> DevCounters {
        *self.base.counters()
    }
}

impl TxBlockDevice for TxFlashFtl {
    fn read_tx(&mut self, tid: Tid, lpn: Lpn, buf: &mut [u8]) -> Result<()> {
        self.base.counters_mut().host_reads += 1;
        // Own writes first: the buffered page, then the newest programmed
        // version of the page, then the committed copy.
        if let Some(Some((plpn, data))) = self.pending.get(&tid) {
            if *plpn == lpn {
                buf.copy_from_slice(data);
                return Ok(());
            }
        }
        if let Some(pages) = self.hook.programmed.get(&tid) {
            if let Some((_, ppa)) = pages.iter().rev().find(|(l, _)| *l == lpn) {
                let ppa = *ppa;
                self.base.read_at(ppa, buf)?;
                return Ok(());
            }
        }
        self.base.read_committed(lpn, buf)
    }

    fn write_tx(&mut self, tid: Tid, lpn: Lpn, buf: &[u8]) -> Result<()> {
        if tid == 0 {
            return self.write(lpn, buf);
        }
        self.base.counters_mut().host_writes += 1;
        // Program the previously buffered page with a plain link, then
        // buffer this one (it may turn out to be the cycle-closing page).
        self.flush_pending(tid, false)?;
        self.pending.insert(tid, Some((lpn, buf.to_vec())));
        Ok(())
    }

    fn commit_submit(&mut self, tid: Tid) -> Result<CommitTicket> {
        // SCC's commit is inherently synchronous: durability *is* the
        // closing page's program, which this device does not queue. The
        // whole commit happens here and the ticket comes back immediate —
        // `commit_wait` has nothing left to do. (The contrast with
        // X-FTL's coalescing group flush is the point of the baseline.)
        self.base.counters_mut().commits += 1;
        let t_start = self.base.clock().now();
        self.flush_pending(tid, true)?;
        self.pending.remove(&tid);
        let folds = self.hook.programmed.remove(&tid);
        if let Some(pages) = folds {
            // The cycle is durably closed: fold the newest version of
            // every page into the committed mapping.
            for (lpn, ppa) in pages {
                self.base.fold_mapping(lpn, ppa)?;
            }
        }
        let t_end = self.base.clock().now();
        self.base
            .recorder()
            .record_span(OpClass::TxCommit, tid, 0, t_start, t_end);
        Ok(CommitTicket::immediate(tid))
    }

    fn commit_wait(&mut self, ticket: CommitTicket) -> Result<()> {
        if ticket.is_immediate() {
            Ok(())
        } else {
            // This device only ever issues immediate tickets.
            Err(DevError::NotQueued)
        }
    }

    fn abort(&mut self, tid: Tid) -> Result<()> {
        self.base.counters_mut().aborts += 1;
        let t_start = self.base.clock().now();
        self.pending.remove(&tid);
        if let Some(pages) = self.hook.programmed.remove(&tid) {
            for (_, ppa) in pages {
                self.base.invalidate(ppa);
            }
        }
        let t_end = self.base.clock().now();
        self.base
            .recorder()
            .record_span(OpClass::TxAbort, tid, 0, t_start, t_end);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xftl_flash::FlashConfig;

    fn dev() -> TxFlashFtl {
        let chip = FlashChip::new(FlashConfig::tiny(16), SimClock::new());
        TxFlashFtl::format(chip, 32).unwrap()
    }

    fn page(d: &TxFlashFtl, byte: u8) -> Vec<u8> {
        vec![byte; d.page_size()]
    }

    #[test]
    fn commit_costs_zero_extra_pages() {
        let mut d = dev();
        let a = page(&d, 1);
        for lpn in 0..5 {
            d.write_tx(7, lpn, &a).unwrap();
        }
        let before = d.flash_stats().programs;
        d.commit(7).unwrap();
        let after = d.flash_stats().programs;
        // Commit programs exactly the one buffered page — the cycle closer
        // rides on data, no commit record, no table write.
        assert_eq!(after - before, 1, "SCC's zero-overhead commit");
        assert_eq!(d.stats().data_writes, 5);
        let mut out = page(&d, 0);
        d.read(3, &mut out).unwrap();
        assert_eq!(out, a);
    }

    #[test]
    fn uncommitted_invisible_and_abort_rolls_back() {
        let mut d = dev();
        let old = page(&d, 1);
        let new = page(&d, 2);
        d.write(0, &old).unwrap();
        d.write_tx(3, 0, &new).unwrap();
        let mut out = page(&d, 0);
        d.read(0, &mut out).unwrap();
        assert_eq!(out, old);
        d.read_tx(3, 0, &mut out).unwrap();
        assert_eq!(out, new, "writer sees its own buffered page");
        d.abort(3).unwrap();
        d.read(0, &mut out).unwrap();
        assert_eq!(out, old);
    }

    #[test]
    fn crash_with_open_cycle_rolls_back() {
        let mut d = dev();
        let old = page(&d, 1);
        let new = page(&d, 2);
        d.write(0, &old).unwrap();
        d.write(1, &old).unwrap();
        d.flush().unwrap();
        d.write_tx(9, 0, &new).unwrap();
        d.write_tx(9, 1, &new).unwrap(); // first page programmed, second buffered
                                         // crash before commit
        let mut d2 = TxFlashFtl::recover(d.into_chip()).unwrap();
        let mut out = page(&d2, 0);
        d2.read(0, &mut out).unwrap();
        assert_eq!(out, old);
        d2.read(1, &mut out).unwrap();
        assert_eq!(out, old);
    }

    #[test]
    fn committed_cycle_survives_crash() {
        let mut d = dev();
        let a = page(&d, 0xA0);
        let b = page(&d, 0xB0);
        d.write_tx(5, 2, &a).unwrap();
        d.write_tx(5, 3, &b).unwrap();
        d.commit(5).unwrap();
        // No flush: the closed cycle alone is the durability evidence.
        let mut d2 = TxFlashFtl::recover(d.into_chip()).unwrap();
        let mut out = page(&d2, 0);
        d2.read(2, &mut out).unwrap();
        assert_eq!(out, a);
        d2.read(3, &mut out).unwrap();
        assert_eq!(out, b);
    }

    #[test]
    fn crash_one_op_before_close_rolls_back() {
        let mut d = dev();
        let old = page(&d, 1);
        d.write(0, &old).unwrap();
        d.flush().unwrap();
        let new = page(&d, 2);
        d.write_tx(4, 0, &new).unwrap();
        d.write_tx(4, 1, &new).unwrap();
        // The commit's closing program is torn.
        d.base_mut().chip_mut().arm_power_fuse(1);
        assert!(d.commit(4).is_err());
        let mut d2 = TxFlashFtl::recover(d.into_chip()).unwrap();
        let mut out = page(&d2, 0);
        d2.read(0, &mut out).unwrap();
        assert_eq!(out, old, "torn closing page must not commit the cycle");
    }

    #[test]
    fn rewrites_within_tx_use_latest_version() {
        let mut d = dev();
        let v1 = page(&d, 1);
        let v2 = page(&d, 2);
        d.write_tx(6, 0, &v1).unwrap();
        d.write_tx(6, 0, &v2).unwrap();
        d.commit(6).unwrap();
        let mut out = page(&d, 0);
        d.read(0, &mut out).unwrap();
        assert_eq!(out, v2);
    }

    #[test]
    fn survives_gc_churn_mid_transaction() {
        let mut d = dev();
        let keep = page(&d, 0x77);
        d.write_tx(1, 30, &keep).unwrap();
        d.write_tx(1, 31, &keep).unwrap(); // page 30 programmed, 31 buffered
        let junk = page(&d, 2);
        for i in 0..300u64 {
            d.write(i % 6, &junk).unwrap();
        }
        assert!(d.stats().gc_runs > 0);
        d.commit(1).unwrap();
        let mut out = page(&d, 0);
        d.read(30, &mut out).unwrap();
        assert_eq!(out, keep);
        d.read(31, &mut out).unwrap();
        assert_eq!(out, keep);
    }

    #[test]
    fn commit_of_unknown_tid_is_noop() {
        let mut d = dev();
        assert!(d.commit(42).is_ok());
        assert!(d.abort(42).is_ok());
    }
}
