//! FTL-level statistics.
//!
//! These are the "FTL-side" counters of the paper's Table 1 and Figure 6:
//! pages written (host data, GC copy-backs, mapping, metadata), pages read,
//! garbage-collection frequency, and erase counts. Raw media totals live in
//! [`xftl_flash::FlashStats`]; this struct attributes them to causes.

use std::ops::Sub;

/// Cause-attributed FTL operation counts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FtlStats {
    /// Host data pages programmed (plain and transactional).
    pub data_writes: u64,
    /// Pages copied by garbage collection.
    pub gc_copies: u64,
    /// Garbage-collection runs (one victim block each).
    pub gc_runs: u64,
    /// GC runs that recycled mapping-class blocks (excluded from the
    /// validity ratio).
    pub gc_map_runs: u64,
    /// Pages inspected in *data* GC victims, for the validity ratio.
    pub gc_victim_pages: u64,
    /// Valid pages found in *data* GC victims.
    pub gc_valid_pages: u64,
    /// L2P mapping slabs written by checkpoints.
    pub map_writes: u64,
    /// Meta (checkpoint-root) pages written.
    pub meta_writes: u64,
    /// Persisted X-L2P table pages written (X-FTL only).
    pub xl2p_writes: u64,
    /// Commit-record pages written (atomic-write baseline only).
    pub commit_record_writes: u64,
    /// Checkpoints taken (mapping-table persist events).
    pub checkpoints: u64,
    /// Programs re-executed on a fresh block after a program-status
    /// failure (host writes and GC copies alike).
    pub program_retries: u64,
    /// Re-issues of reads that returned an uncorrectable ECC error
    /// (transient bit-flip bursts usually decode on retry).
    pub read_retries: u64,
    /// Blocks permanently retired to the bad-block table after an erase
    /// failure.
    pub bad_block_retirements: u64,
    /// Group-commit flushes: X-L2P persist events that made one or more
    /// staged commits durable with a single meta-page program.
    pub group_commit_flushes: u64,
    /// Transactions whose commits were made durable by those flushes; the
    /// ratio to `group_commit_flushes` is the mean coalescing factor.
    pub commits_coalesced: u64,
    /// Snapshot transactions aborted at `commit_submit` because another
    /// writer committed a newer version of a page they wrote
    /// (first-committer-wins losers).
    pub conflict_aborts: u64,
    /// Superseded page versions retained in the RAM version chains for
    /// active snapshot readers instead of being invalidated at fold time.
    pub versions_retained: u64,
    /// Retained versions pruned (invalidated, handed to GC) once no
    /// active snapshot could still read them.
    pub versions_pruned: u64,
    /// Mapping-cache lookups that found the slab resident in RAM.
    pub map_cache_hits: u64,
    /// Mapping-cache lookups that missed (slab had to be made resident).
    pub map_cache_misses: u64,
    /// Cache misses that read a persisted translation page from flash
    /// (the rest install fresh never-persisted slabs).
    pub map_demand_loads: u64,
    /// Clean frames dropped by eviction (no flash write needed).
    pub map_evictions_clean: u64,
    /// Dirty frames whose eviction forced a translation-page program.
    pub map_evictions_dirty: u64,
    /// Eviction flush batches: groups of dirty translation-page programs
    /// coalesced under a single checkpoint-root write.
    pub map_flush_batches: u64,
    /// Global-translation-directory pages programmed (paged-GTD mode).
    pub gtd_writes: u64,
    /// Cost-benefit GC victims drawn from the data block class.
    pub gc_cb_data_victims: u64,
    /// Cost-benefit GC victims drawn from the mapping block class.
    pub gc_cb_map_victims: u64,
    /// Host data writes routed to the hot write frontier.
    pub hot_writes: u64,
    /// Data writes routed to the cold frontier (cold LPNs and GC copies)
    /// while hot/cold separation is enabled.
    pub cold_writes: u64,
    /// Background-scrub victims relocated (one block each) before their
    /// accumulated read-disturb / retention damage crossed the ECC budget.
    pub scrub_runs: u64,
    /// Pages copied by scrub relocations.
    pub scrub_copies: u64,
    /// Static wear-leveling relocations: cold low-wear blocks recycled so
    /// their cells rejoin the free pool.
    pub wear_level_runs: u64,
    /// Pages copied by wear-leveling relocations.
    pub wear_level_copies: u64,
    /// Transitions into the `Degraded` health state (0 or 1 per device
    /// lifetime; the state machine is forward-only).
    pub degraded_entries: u64,
    /// Transitions into the `ReadOnly` health state (0 or 1 per device
    /// lifetime).
    pub read_only_entries: u64,
}

impl FtlStats {
    /// All pages programmed by the FTL, from any cause.
    pub fn total_writes(&self) -> u64 {
        self.data_writes
            + self.gc_copies
            + self.map_writes
            + self.gtd_writes
            + self.meta_writes
            + self.xl2p_writes
            + self.commit_record_writes
    }

    /// Mean fraction of valid pages in *data* GC victim blocks, if any
    /// data-block GC ran. This is the "GC validity" knob of Figures 5/6.
    pub fn mean_gc_validity(&self) -> Option<f64> {
        if self.gc_victim_pages == 0 {
            None
        } else {
            Some(self.gc_valid_pages as f64 / self.gc_victim_pages as f64)
        }
    }

    /// Fraction of mapping lookups served from RAM, if any lookup ran.
    pub fn map_cache_hit_rate(&self) -> Option<f64> {
        let total = self.map_cache_hits + self.map_cache_misses;
        if total == 0 {
            None
        } else {
            Some(self.map_cache_hits as f64 / total as f64)
        }
    }
}

impl Sub for FtlStats {
    type Output = FtlStats;

    fn sub(self, rhs: FtlStats) -> FtlStats {
        FtlStats {
            data_writes: self.data_writes - rhs.data_writes,
            gc_copies: self.gc_copies - rhs.gc_copies,
            gc_runs: self.gc_runs - rhs.gc_runs,
            gc_map_runs: self.gc_map_runs - rhs.gc_map_runs,
            gc_victim_pages: self.gc_victim_pages - rhs.gc_victim_pages,
            gc_valid_pages: self.gc_valid_pages - rhs.gc_valid_pages,
            map_writes: self.map_writes - rhs.map_writes,
            meta_writes: self.meta_writes - rhs.meta_writes,
            xl2p_writes: self.xl2p_writes - rhs.xl2p_writes,
            commit_record_writes: self.commit_record_writes - rhs.commit_record_writes,
            checkpoints: self.checkpoints - rhs.checkpoints,
            program_retries: self.program_retries - rhs.program_retries,
            read_retries: self.read_retries - rhs.read_retries,
            bad_block_retirements: self.bad_block_retirements - rhs.bad_block_retirements,
            group_commit_flushes: self.group_commit_flushes - rhs.group_commit_flushes,
            commits_coalesced: self.commits_coalesced - rhs.commits_coalesced,
            conflict_aborts: self.conflict_aborts - rhs.conflict_aborts,
            versions_retained: self.versions_retained - rhs.versions_retained,
            versions_pruned: self.versions_pruned - rhs.versions_pruned,
            map_cache_hits: self.map_cache_hits - rhs.map_cache_hits,
            map_cache_misses: self.map_cache_misses - rhs.map_cache_misses,
            map_demand_loads: self.map_demand_loads - rhs.map_demand_loads,
            map_evictions_clean: self.map_evictions_clean - rhs.map_evictions_clean,
            map_evictions_dirty: self.map_evictions_dirty - rhs.map_evictions_dirty,
            map_flush_batches: self.map_flush_batches - rhs.map_flush_batches,
            gtd_writes: self.gtd_writes - rhs.gtd_writes,
            gc_cb_data_victims: self.gc_cb_data_victims - rhs.gc_cb_data_victims,
            gc_cb_map_victims: self.gc_cb_map_victims - rhs.gc_cb_map_victims,
            hot_writes: self.hot_writes - rhs.hot_writes,
            cold_writes: self.cold_writes - rhs.cold_writes,
            scrub_runs: self.scrub_runs - rhs.scrub_runs,
            scrub_copies: self.scrub_copies - rhs.scrub_copies,
            wear_level_runs: self.wear_level_runs - rhs.wear_level_runs,
            wear_level_copies: self.wear_level_copies - rhs.wear_level_copies,
            degraded_entries: self.degraded_entries - rhs.degraded_entries,
            read_only_entries: self.read_only_entries - rhs.read_only_entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_causes() {
        let s = FtlStats {
            data_writes: 1,
            gc_copies: 2,
            map_writes: 3,
            meta_writes: 4,
            xl2p_writes: 5,
            commit_record_writes: 6,
            ..Default::default()
        };
        assert_eq!(s.total_writes(), 21);
    }

    #[test]
    fn validity_ratio() {
        let s = FtlStats {
            gc_victim_pages: 100,
            gc_valid_pages: 37,
            ..Default::default()
        };
        assert_eq!(s.mean_gc_validity(), Some(0.37));
        assert_eq!(FtlStats::default().mean_gc_validity(), None);
    }

    #[test]
    fn diff_subtracts_fieldwise() {
        let a = FtlStats {
            data_writes: 10,
            gc_runs: 4,
            ..Default::default()
        };
        let b = FtlStats {
            data_writes: 3,
            gc_runs: 1,
            ..Default::default()
        };
        let d = a - b;
        assert_eq!(d.data_writes, 7);
        assert_eq!(d.gc_runs, 3);
    }
}
