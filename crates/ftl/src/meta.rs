//! On-flash formats for FTL metadata: the checkpoint root ("meta") page and
//! L2P mapping slabs.
//!
//! The layouts are deliberately simple fixed little-endian layouts so they
//! double as documentation of what the firmware persists:
//!
//! * **Meta page** — the checkpoint root, written to the reserved meta
//!   block (block 0). Holds the exported capacity, the checkpoint sequence
//!   number, the flash location of the persisted X-L2P table (if any), the
//!   locations of every L2P mapping slab, and the bad-block table (blocks
//!   retired after erase failures; the chip's own health marks are
//!   authoritative, the persisted list lets recovery cross-check them).
//! * **Map slab** — one page-sized slice of the L2P table:
//!   `page_size / 8` entries of 8 bytes each (`0` = unmapped, otherwise
//!   linear physical address + 1).

use xftl_flash::Ppa;

use crate::dev::Lpn;
use crate::health::DeviceState;

/// Magic number identifying a meta page ("XFTLMETA" as bytes).
pub const META_MAGIC: u64 = 0x5846_544C_4D45_5441;
/// Current on-flash format version. Version 2 added the bad-block table;
/// version 3 added the paged global translation directory (GTD) for
/// devices whose slab-pointer table no longer fits inline in the root;
/// version 4 added the persisted device-health state
/// ([`crate::DeviceState`]), so a device that went read-only stays
/// read-only across power cycles.
pub const META_VERSION: u64 = 4;

/// Fixed header size of a meta page in bytes (10 u64 fields).
const META_HEADER: usize = 80;

/// OOB `aux` tag distinguishing a GTD page from an ordinary translation
/// page (both carry `PageKind::Map`; the `lpn` field holds the GTD page
/// index resp. the slab index).
pub const GTD_AUX: u32 = 1;

/// Parsed contents of a meta (checkpoint-root) page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaPage {
    /// Number of logical pages the device exports.
    pub logical_pages: u64,
    /// Global program sequence number at checkpoint time; recovery rolls
    /// forward only pages programmed after this.
    pub ckpt_seq: u64,
    /// Sequence number of the most recent power-cycle recovery. In-flight
    /// transactional evidence (cyclic-commit links, commit records) never
    /// spans a power cycle, so pages at or before this horizon cannot
    /// belong to a live transaction.
    pub tx_horizon: u64,
    /// Locations of the persisted X-L2P table pages, in order (empty when
    /// no table is live; more than one page for large table configurations).
    pub xl2p_roots: Vec<Ppa>,
    /// Flash location of each L2P mapping slab (`None` = never persisted,
    /// meaning every entry of that slab is unmapped).
    ///
    /// In *inline* mode these pointers are stored in the root itself. In
    /// *paged* mode (`gtd_locs` non-empty) the root only stores the GTD
    /// page locations; decode then returns all-`None` placeholders of the
    /// right length and recovery fills them by reading the GTD pages.
    pub map_locs: Vec<Option<Ppa>>,
    /// Flash locations of the global-translation-directory pages, in
    /// order. Empty in inline mode. Each GTD page holds a page worth of
    /// slab pointers ([`gtd_pointers_per_page`]), giving the two-level
    /// root → GTD → translation-page structure a 64–256 GB device needs.
    pub gtd_locs: Vec<Ppa>,
    /// Blocks retired after erase failures, ascending. Recovery unions
    /// this with the chip's own health marks, so a root written before
    /// the latest retirement still recovers correctly.
    pub bad_blocks: Vec<u32>,
    /// Device-health state at the time this root was written. Recovery
    /// adopts it as a floor: health transitions are forward-only, so a
    /// stale root can under-report but the recovered device re-derives
    /// anything worse from the pool it finds.
    pub device_state: DeviceState,
}

fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

fn get_u64(buf: &[u8], off: usize) -> u64 {
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(bytes)
}

fn encode_opt_ppa(p: Option<Ppa>, pages_per_block: usize) -> u64 {
    match p {
        None => 0,
        Some(ppa) => ppa.linear(pages_per_block) + 1,
    }
}

fn decode_opt_ppa(v: u64, pages_per_block: usize) -> Option<Ppa> {
    if v == 0 {
        None
    } else {
        Some(Ppa::from_linear(v - 1, pages_per_block))
    }
}

impl MetaPage {
    /// Maximum combined number of X-L2P roots, map slabs, and bad-block
    /// entries a meta page of `page_size` can index.
    pub fn max_pointers(page_size: usize) -> usize {
        (page_size - META_HEADER) / 8
    }

    /// Serializes into a full flash page.
    ///
    /// # Panics
    /// If the pointer lists do not fit in `page_size` (the device
    /// constructor validates this).
    pub fn encode(&self, page_size: usize, pages_per_block: usize) -> Vec<u8> {
        let paged = !self.gtd_locs.is_empty();
        let map_slots = if paged { 0 } else { self.map_locs.len() };
        assert!(
            map_slots + self.gtd_locs.len() + self.xl2p_roots.len() + self.bad_blocks.len()
                <= Self::max_pointers(page_size),
            "mapping pointers overflow a single meta page"
        );
        let mut buf = vec![0u8; page_size];
        put_u64(&mut buf, 0, META_MAGIC);
        put_u64(&mut buf, 8, META_VERSION);
        put_u64(&mut buf, 16, self.logical_pages);
        put_u64(&mut buf, 24, self.ckpt_seq);
        put_u64(&mut buf, 32, self.tx_horizon);
        put_u64(&mut buf, 40, self.xl2p_roots.len() as u64);
        put_u64(&mut buf, 48, self.map_locs.len() as u64);
        put_u64(&mut buf, 56, self.bad_blocks.len() as u64);
        put_u64(&mut buf, 64, self.gtd_locs.len() as u64);
        put_u64(&mut buf, 72, self.device_state.as_u64());
        let mut off = META_HEADER;
        for root in &self.xl2p_roots {
            put_u64(&mut buf, off, encode_opt_ppa(Some(*root), pages_per_block));
            off += 8;
        }
        if paged {
            for loc in &self.gtd_locs {
                put_u64(&mut buf, off, encode_opt_ppa(Some(*loc), pages_per_block));
                off += 8;
            }
        } else {
            for loc in &self.map_locs {
                put_u64(&mut buf, off, encode_opt_ppa(*loc, pages_per_block));
                off += 8;
            }
        }
        for bad in &self.bad_blocks {
            put_u64(&mut buf, off, u64::from(*bad));
            off += 8;
        }
        buf
    }

    /// Parses a meta page; `None` if the magic/version/shape is wrong. In
    /// paged-GTD mode the returned `map_locs` are all-`None` placeholders
    /// sized from the header; the caller reads `gtd_locs` to fill them.
    pub fn decode(buf: &[u8], pages_per_block: usize) -> Option<MetaPage> {
        if buf.len() < META_HEADER || get_u64(buf, 0) != META_MAGIC {
            return None;
        }
        if get_u64(buf, 8) != META_VERSION {
            return None;
        }
        let roots = get_u64(buf, 40) as usize;
        let count = get_u64(buf, 48) as usize;
        let bad = get_u64(buf, 56) as usize;
        let gtd = get_u64(buf, 64) as usize;
        let device_state = DeviceState::from_u64(get_u64(buf, 72))?;
        let inline_map = if gtd > 0 { 0 } else { count };
        if META_HEADER + (roots + inline_map + gtd + bad) * 8 > buf.len() {
            return None;
        }
        let mut off = META_HEADER;
        let mut xl2p_roots = Vec::with_capacity(roots);
        for _ in 0..roots {
            xl2p_roots.push(decode_opt_ppa(get_u64(buf, off), pages_per_block)?);
            off += 8;
        }
        let mut gtd_locs = Vec::with_capacity(gtd);
        let mut map_locs = Vec::with_capacity(count);
        if gtd > 0 {
            for _ in 0..gtd {
                gtd_locs.push(decode_opt_ppa(get_u64(buf, off), pages_per_block)?);
                off += 8;
            }
            map_locs.resize(count, None);
        } else {
            for _ in 0..count {
                map_locs.push(decode_opt_ppa(get_u64(buf, off), pages_per_block));
                off += 8;
            }
        }
        let mut bad_blocks = Vec::with_capacity(bad);
        for _ in 0..bad {
            bad_blocks.push(u32::try_from(get_u64(buf, off)).ok()?);
            off += 8;
        }
        Some(MetaPage {
            logical_pages: get_u64(buf, 16),
            ckpt_seq: get_u64(buf, 24),
            tx_horizon: get_u64(buf, 32),
            xl2p_roots,
            map_locs,
            gtd_locs,
            bad_blocks,
            device_state,
        })
    }
}

// --- global translation directory (GTD) pages ------------------------------

/// Slab pointers per GTD page.
pub fn gtd_pointers_per_page(page_size: usize) -> usize {
    page_size / 8
}

/// Number of GTD pages needed to index `slabs` translation pages.
pub fn gtd_page_count(slabs: usize, page_size: usize) -> usize {
    slabs.div_ceil(gtd_pointers_per_page(page_size))
}

/// Serializes GTD page `gtd_idx`: the slice of slab pointers it covers.
pub fn encode_gtd_page(
    map_locs: &[Option<Ppa>],
    gtd_idx: usize,
    page_size: usize,
    pages_per_block: usize,
) -> Vec<u8> {
    let per = gtd_pointers_per_page(page_size);
    let mut buf = vec![0u8; page_size];
    let start = gtd_idx * per;
    for i in 0..per {
        let entry = map_locs.get(start + i).copied().flatten();
        put_u64(&mut buf, i * 8, encode_opt_ppa(entry, pages_per_block));
    }
    buf
}

/// Loads GTD page `gtd_idx` back into the slab-pointer table.
pub fn decode_gtd_page(
    map_locs: &mut [Option<Ppa>],
    gtd_idx: usize,
    buf: &[u8],
    pages_per_block: usize,
) {
    let per = gtd_pointers_per_page(buf.len());
    let start = gtd_idx * per;
    for i in 0..per {
        if start + i >= map_locs.len() {
            break;
        }
        map_locs[start + i] = decode_opt_ppa(get_u64(buf, i * 8), pages_per_block);
    }
}

/// Which GTD page indexes `slab`.
pub fn gtd_page_of(slab: usize, page_size: usize) -> usize {
    slab / gtd_pointers_per_page(page_size)
}

/// Entries of the L2P table stored per mapping slab page.
pub fn entries_per_slab(page_size: usize) -> usize {
    page_size / 8
}

/// Serializes one L2P slab (`slab_idx`) from the in-RAM table.
pub fn encode_slab(
    l2p: &[Option<Ppa>],
    slab_idx: usize,
    page_size: usize,
    pages_per_block: usize,
) -> Vec<u8> {
    let eps = entries_per_slab(page_size);
    let mut buf = vec![0u8; page_size];
    let start = slab_idx * eps;
    for i in 0..eps {
        let entry = l2p.get(start + i).copied().flatten();
        put_u64(&mut buf, i * 8, encode_opt_ppa(entry, pages_per_block));
    }
    buf
}

/// Loads one slab page back into the in-RAM table.
pub fn decode_slab(l2p: &mut [Option<Ppa>], slab_idx: usize, buf: &[u8], pages_per_block: usize) {
    let eps = entries_per_slab(buf.len());
    let start = slab_idx * eps;
    for i in 0..eps {
        if start + i >= l2p.len() {
            break;
        }
        l2p[start + i] = decode_opt_ppa(get_u64(buf, i * 8), pages_per_block);
    }
}

/// Serializes one cached slab frame (the demand-paged engine's unit of
/// residency) into a translation page.
pub fn encode_slab_entries(
    entries: &[Option<Ppa>],
    page_size: usize,
    pages_per_block: usize,
) -> Vec<u8> {
    let eps = entries_per_slab(page_size);
    debug_assert!(entries.len() <= eps);
    let mut buf = vec![0u8; page_size];
    for i in 0..eps {
        let entry = entries.get(i).copied().flatten();
        put_u64(&mut buf, i * 8, encode_opt_ppa(entry, pages_per_block));
    }
    buf
}

/// Parses a translation page into a freshly allocated slab frame.
pub fn decode_slab_entries(buf: &[u8], pages_per_block: usize) -> Box<[Option<Ppa>]> {
    let eps = entries_per_slab(buf.len());
    (0..eps)
        .map(|i| decode_opt_ppa(get_u64(buf, i * 8), pages_per_block))
        .collect()
}

/// Which slab an LPN's mapping entry lives in.
pub fn slab_of(lpn: Lpn, page_size: usize) -> usize {
    (lpn as usize) / entries_per_slab(page_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PPB: usize = 8;

    #[test]
    fn meta_roundtrip() {
        let m = MetaPage {
            logical_pages: 100,
            ckpt_seq: 42,
            tx_horizon: 17,
            xl2p_roots: vec![Ppa::new(3, 4), Ppa::new(5, 6)],
            map_locs: vec![None, Some(Ppa::new(1, 2)), None],
            gtd_locs: vec![],
            bad_blocks: vec![7, 11],
            device_state: DeviceState::Degraded,
        };
        let buf = m.encode(512, PPB);
        assert_eq!(MetaPage::decode(&buf, PPB), Some(m));
    }

    #[test]
    fn empty_bad_block_table_roundtrips() {
        let m = MetaPage {
            logical_pages: 8,
            ckpt_seq: 1,
            tx_horizon: 0,
            xl2p_roots: vec![],
            map_locs: vec![Some(Ppa::new(2, 0))],
            gtd_locs: vec![],
            bad_blocks: vec![],
            device_state: DeviceState::Healthy,
        };
        let buf = m.encode(512, PPB);
        assert_eq!(MetaPage::decode(&buf, PPB), Some(m));
    }

    #[test]
    fn meta_rejects_garbage() {
        assert_eq!(MetaPage::decode(&[0u8; 512], PPB), None);
        assert_eq!(MetaPage::decode(&[0xFFu8; 512], PPB), None);
    }

    #[test]
    fn meta_rejects_wrong_version() {
        let m = MetaPage {
            logical_pages: 1,
            ckpt_seq: 0,
            tx_horizon: 0,
            xl2p_roots: vec![],
            map_locs: vec![],
            gtd_locs: vec![],
            bad_blocks: vec![],
            device_state: DeviceState::Healthy,
        };
        let mut buf = m.encode(512, PPB);
        put_u64(&mut buf, 8, 99);
        assert_eq!(MetaPage::decode(&buf, PPB), None);
    }

    #[test]
    fn meta_rejects_unknown_device_state() {
        let m = MetaPage {
            logical_pages: 1,
            ckpt_seq: 0,
            tx_horizon: 0,
            xl2p_roots: vec![],
            map_locs: vec![],
            gtd_locs: vec![],
            bad_blocks: vec![],
            device_state: DeviceState::Healthy,
        };
        let mut buf = m.encode(512, PPB);
        put_u64(&mut buf, 72, 9);
        assert_eq!(MetaPage::decode(&buf, PPB), None);
    }

    #[test]
    fn read_only_state_roundtrips() {
        let m = MetaPage {
            logical_pages: 1,
            ckpt_seq: 0,
            tx_horizon: 0,
            xl2p_roots: vec![],
            map_locs: vec![],
            gtd_locs: vec![],
            bad_blocks: vec![],
            device_state: DeviceState::ReadOnly,
        };
        let buf = m.encode(512, PPB);
        assert_eq!(
            MetaPage::decode(&buf, PPB).unwrap().device_state,
            DeviceState::ReadOnly
        );
    }

    #[test]
    fn paged_meta_stores_gtd_not_map_locs() {
        // 200 slabs would overflow a 512 B root inline; paged mode stores
        // only the GTD pointers and decodes placeholder map_locs.
        let slabs = 200;
        let m = MetaPage {
            logical_pages: 64 * slabs as u64,
            ckpt_seq: 9,
            tx_horizon: 2,
            xl2p_roots: vec![Ppa::new(4, 1)],
            map_locs: (0..slabs)
                .map(|i| Some(Ppa::new(10 + i as u32, 0)))
                .collect(),
            gtd_locs: vec![
                Ppa::new(7, 0),
                Ppa::new(7, 1),
                Ppa::new(7, 2),
                Ppa::new(8, 0),
            ],
            bad_blocks: vec![3],
            device_state: DeviceState::Healthy,
        };
        let buf = m.encode(512, PPB);
        let d = MetaPage::decode(&buf, PPB).unwrap();
        assert_eq!(d.gtd_locs, m.gtd_locs);
        assert_eq!(d.map_locs.len(), slabs);
        assert!(d.map_locs.iter().all(Option::is_none), "placeholders");
        assert_eq!(d.xl2p_roots, m.xl2p_roots);
        assert_eq!(d.bad_blocks, m.bad_blocks);
        assert_eq!(d.ckpt_seq, 9);
    }

    #[test]
    fn gtd_pages_roundtrip_slab_pointers() {
        let ps = 512;
        let per = gtd_pointers_per_page(ps);
        let slabs = per + 7; // spills into a second GTD page
        assert_eq!(gtd_page_count(slabs, ps), 2);
        let mut map_locs: Vec<Option<Ppa>> = vec![None; slabs];
        map_locs[0] = Some(Ppa::new(2, 3));
        map_locs[per - 1] = Some(Ppa::new(4, 5));
        map_locs[per + 3] = Some(Ppa::new(6, 7));
        let p0 = encode_gtd_page(&map_locs, 0, ps, PPB);
        let p1 = encode_gtd_page(&map_locs, 1, ps, PPB);
        let mut out: Vec<Option<Ppa>> = vec![Some(Ppa::new(9, 9)); slabs];
        decode_gtd_page(&mut out, 0, &p0, PPB);
        decode_gtd_page(&mut out, 1, &p1, PPB);
        assert_eq!(out, map_locs);
        assert_eq!(gtd_page_of(per - 1, ps), 0);
        assert_eq!(gtd_page_of(per, ps), 1);
    }

    #[test]
    fn slab_entries_roundtrip() {
        let ps = 512;
        let eps = entries_per_slab(ps);
        let mut entries: Vec<Option<Ppa>> = vec![None; eps];
        entries[1] = Some(Ppa::new(3, 2));
        entries[eps - 1] = Some(Ppa::new(1, 0));
        let buf = encode_slab_entries(&entries, ps, PPB);
        let out = decode_slab_entries(&buf, PPB);
        assert_eq!(out.as_ref(), entries.as_slice());
    }

    #[test]
    fn slab_roundtrip() {
        let page_size = 512;
        let eps = entries_per_slab(page_size);
        let mut l2p: Vec<Option<Ppa>> = vec![None; eps * 2];
        l2p[3] = Some(Ppa::new(1, 1));
        l2p[eps] = Some(Ppa::new(2, 7));
        let slab0 = encode_slab(&l2p, 0, page_size, PPB);
        let slab1 = encode_slab(&l2p, 1, page_size, PPB);
        let mut out: Vec<Option<Ppa>> = vec![None; eps * 2];
        decode_slab(&mut out, 0, &slab0, PPB);
        decode_slab(&mut out, 1, &slab1, PPB);
        assert_eq!(out, l2p);
    }

    #[test]
    fn slab_of_partitions_lpns() {
        let ps = 512;
        let eps = entries_per_slab(ps) as u64;
        assert_eq!(slab_of(0, ps), 0);
        assert_eq!(slab_of(eps - 1, ps), 0);
        assert_eq!(slab_of(eps, ps), 1);
    }

    #[test]
    fn short_l2p_padded_with_unmapped() {
        // A slab page can cover more entries than the table holds; the
        // excess encodes as unmapped and decodes without overrunning.
        let ps = 512;
        let l2p = vec![Some(Ppa::new(0, 1)); 3];
        let slab = encode_slab(&l2p, 0, ps, PPB);
        let mut out = vec![None; 3];
        decode_slab(&mut out, 0, &slab, PPB);
        assert_eq!(out, l2p);
    }
}
