//! The storage-device abstraction and its transactional extension.
//!
//! [`BlockDevice`] is the Rust analogue of the paper's SATA command set:
//! `read`, `write`, `trim`, `flush` — what any page-mapping SSD exposes —
//! plus an NCQ-style batched submission path ([`BlockDevice::submit`] /
//! [`BlockDevice::complete_until`]) that lets hosts issue multi-page writes
//! as one queued batch the device may overlap across its flash channels.
//!
//! The transactional command set — `read_tx(tid, p)`, `write_tx(tid, p)`,
//! `commit(tid)`, `abort(tid)` — is exactly the interface §4.2 of the paper
//! adds (tid-tagged reads/writes plus commit/abort piggybacked on the trim
//! command). It lives in the separate [`TxBlockDevice`] extension trait:
//! whether a device speaks it is a compile-time property of the type, not a
//! runtime probe, so hosts that need transactions take `D: TxBlockDevice`
//! and the "command not supported" failure mode does not exist.

use std::collections::VecDeque;

use xftl_flash::Nanos;

use crate::error::Result;

/// Logical page number, the host-visible address unit (one 8 KB page).
pub type Lpn = u64;

/// Transaction identifier. Ids are allocated by the *file system* (per the
/// paper's §5.2, because SQLite is a library and cannot coordinate ids
/// across processes). `0` is reserved for non-transactional traffic.
pub type Tid = u64;

/// Reserved id meaning "not part of any transaction".
pub const NO_TID: Tid = 0;

/// One command of a batched submission (see [`BlockDevice::submit`]).
#[derive(Debug, Clone, Copy)]
pub enum IoCmd<'a> {
    /// Write `data` (one full page) to logical page `lpn`.
    Write {
        /// Destination logical page.
        lpn: Lpn,
        /// Page contents; must be exactly `page_size()` bytes.
        data: &'a [u8],
    },
    /// Declare logical page `lpn` unused.
    Trim {
        /// The page to trim.
        lpn: Lpn,
    },
}

/// Completion ticket for a queued batch.
///
/// Tickets are ordered: waiting on a ticket with [`BlockDevice::
/// complete_until`] also waits for every batch submitted before it.
/// [`CmdId::IMMEDIATE`] means the batch completed synchronously at
/// submission (the default for devices without a queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CmdId(pub u64);

impl CmdId {
    /// Ticket of a batch that completed before `submit` returned.
    pub const IMMEDIATE: CmdId = CmdId(0);
}

/// Ticket ledger for queueing devices: pairs each issued [`CmdId`] with
/// the simulated-clock instant its batch completes on the media. Devices
/// embed one and use it to implement `submit`/`complete_until`.
#[derive(Debug, Default)]
pub struct CmdQueue {
    issued: u64,
    pending: VecDeque<(u64, Nanos)>,
}

impl CmdQueue {
    /// Mints the next ticket for a batch completing at `done`.
    pub fn issue(&mut self, done: Nanos) -> CmdId {
        self.issued += 1;
        self.pending.push_back((self.issued, done));
        CmdId(self.issued)
    }

    /// Retires every ticket up to `barrier` and returns the latest
    /// completion time among them (`None` when nothing that old is still
    /// outstanding — e.g. [`CmdId::IMMEDIATE`] or a re-waited ticket).
    pub fn retire(&mut self, barrier: CmdId) -> Option<Nanos> {
        let mut latest: Option<Nanos> = None;
        while let Some(&(id, done)) = self.pending.front() {
            if id > barrier.0 {
                break;
            }
            self.pending.pop_front();
            latest = Some(latest.map_or(done, |m| m.max(done)));
        }
        latest
    }

    /// Number of tickets not yet retired.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }
}

/// Host-visible counters a device keeps; these feed the paper's Table 1.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DevCounters {
    /// Host page writes (both plain and tid-tagged).
    pub host_writes: u64,
    /// Host page reads (both plain and tid-tagged).
    pub host_reads: u64,
    /// Flush/barrier commands.
    pub flushes: u64,
    /// Commit commands.
    pub commits: u64,
    /// Abort commands.
    pub aborts: u64,
    /// Trim commands.
    pub trims: u64,
    /// Queued batches accepted via `submit`/`submit_tx`.
    pub batches: u64,
}

/// A page-addressed storage device.
///
/// All data commands move whole pages; `page_size()` tells the host how big
/// a page is. Implementations charge simulated latency for every command.
pub trait BlockDevice {
    /// Bytes per logical page.
    fn page_size(&self) -> usize;

    /// Number of logical pages the device exports.
    fn capacity_pages(&self) -> u64;

    /// Reads logical page `lpn` into `buf` (committed state).
    fn read(&mut self, lpn: Lpn, buf: &mut [u8]) -> Result<()>;

    /// Writes logical page `lpn` (non-transactional; durably replaces the
    /// previous version only after the next `flush`).
    fn write(&mut self, lpn: Lpn, buf: &[u8]) -> Result<()>;

    /// Declares logical page `lpn` unused so its flash copy may be
    /// reclaimed.
    fn trim(&mut self, lpn: Lpn) -> Result<()>;

    /// Write barrier: persists the mapping state so that everything written
    /// before the flush survives power loss. Models the barrier/FUA
    /// behaviour journaling file systems rely on (§6.3.4). Also a full
    /// queue barrier: every batch submitted earlier has completed when
    /// `flush` returns.
    fn flush(&mut self) -> Result<()>;

    /// Host-visible command counters.
    fn counters(&self) -> DevCounters;

    // --- batched submission (NCQ-style) ---

    /// Queues a batch of writes/trims. The device may reorder service
    /// across its internal channels but completes the batch atomically with
    /// respect to [`BlockDevice::complete_until`] on the returned ticket.
    /// The default implementation services the batch synchronously and
    /// returns [`CmdId::IMMEDIATE`]; queueing devices return a real ticket
    /// and only dispatch the commands, letting them overlap.
    fn submit(&mut self, cmds: &[IoCmd<'_>]) -> Result<CmdId> {
        for cmd in cmds {
            match cmd {
                IoCmd::Write { lpn, data } => self.write(*lpn, data)?,
                IoCmd::Trim { lpn } => self.trim(*lpn)?,
            }
        }
        Ok(CmdId::IMMEDIATE)
    }

    /// Waits until the batch identified by `barrier` — and every batch
    /// submitted before it — has completed on the media. Completion is a
    /// *timing* property (simulated clock); it does not imply the mapping
    /// is durable, which still takes a `flush`/`commit`.
    fn complete_until(&mut self, _barrier: CmdId) -> Result<()> {
        Ok(())
    }
}

/// The transactional command extension (X-FTL commands, §4.2).
///
/// Implemented only by devices that physically support tid-tagged
/// copy-on-write state: X-FTL itself, the TxFlash/atomic-write baselines,
/// and pass-through layers above them. Hosts that need transactions bound
/// `D: TxBlockDevice` and get the commands unconditionally.
pub trait TxBlockDevice: BlockDevice {
    /// Reads page `lpn` as seen by transaction `tid`: the transaction's own
    /// uncommitted version if it wrote one, otherwise the committed copy.
    fn read_tx(&mut self, tid: Tid, lpn: Lpn, buf: &mut [u8]) -> Result<()>;

    /// Copy-on-write page write on behalf of transaction `tid`; the old
    /// committed copy stays readable and reclaimable only after commit.
    fn write_tx(&mut self, tid: Tid, lpn: Lpn, buf: &[u8]) -> Result<()>;

    /// Atomically and durably commits every page written by `tid`.
    fn commit(&mut self, tid: Tid) -> Result<()>;

    /// Discards every page written by `tid`; the committed copies remain.
    fn abort(&mut self, tid: Tid) -> Result<()>;

    /// Queues a batch of tid-tagged copy-on-write page writes. Like
    /// [`BlockDevice::submit`] but on the transactional path: the writes
    /// stay invisible until `commit(tid)`, which is also a queue barrier.
    /// The default services the batch synchronously.
    fn submit_tx(&mut self, tid: Tid, pages: &[(Lpn, &[u8])]) -> Result<CmdId> {
        for (lpn, data) in pages {
            self.write_tx(tid, *lpn, data)?;
        }
        Ok(CmdId::IMMEDIATE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A recording device to exercise the trait's default batch paths.
    #[derive(Default)]
    struct Rec {
        writes: Vec<Lpn>,
        trims: Vec<Lpn>,
        tx_writes: Vec<(Tid, Lpn)>,
    }

    impl BlockDevice for Rec {
        fn page_size(&self) -> usize {
            512
        }
        fn capacity_pages(&self) -> u64 {
            64
        }
        fn read(&mut self, _: Lpn, _: &mut [u8]) -> Result<()> {
            Ok(())
        }
        fn write(&mut self, lpn: Lpn, _: &[u8]) -> Result<()> {
            self.writes.push(lpn);
            Ok(())
        }
        fn trim(&mut self, lpn: Lpn) -> Result<()> {
            self.trims.push(lpn);
            Ok(())
        }
        fn flush(&mut self) -> Result<()> {
            Ok(())
        }
        fn counters(&self) -> DevCounters {
            DevCounters::default()
        }
    }

    impl TxBlockDevice for Rec {
        fn read_tx(&mut self, _: Tid, _: Lpn, _: &mut [u8]) -> Result<()> {
            Ok(())
        }
        fn write_tx(&mut self, tid: Tid, lpn: Lpn, _: &[u8]) -> Result<()> {
            self.tx_writes.push((tid, lpn));
            Ok(())
        }
        fn commit(&mut self, _: Tid) -> Result<()> {
            Ok(())
        }
        fn abort(&mut self, _: Tid) -> Result<()> {
            Ok(())
        }
    }

    #[test]
    fn default_submit_services_batch_in_order() {
        let mut d = Rec::default();
        let page = [0u8; 512];
        let id = d
            .submit(&[
                IoCmd::Write {
                    lpn: 3,
                    data: &page,
                },
                IoCmd::Trim { lpn: 9 },
                IoCmd::Write {
                    lpn: 4,
                    data: &page,
                },
            ])
            .unwrap();
        assert_eq!(id, CmdId::IMMEDIATE);
        assert_eq!(d.writes, vec![3, 4]);
        assert_eq!(d.trims, vec![9]);
        d.complete_until(id).unwrap(); // no-op for a sync device
    }

    #[test]
    fn default_submit_tx_tags_every_page() {
        let mut d = Rec::default();
        let page = [0u8; 512];
        let batch: Vec<(Lpn, &[u8])> = vec![(10, &page[..]), (11, &page[..])];
        let id = d.submit_tx(7, &batch).unwrap();
        assert_eq!(id, CmdId::IMMEDIATE);
        assert_eq!(d.tx_writes, vec![(7, 10), (7, 11)]);
    }
}
