//! The storage-device abstraction and its transactional extension.
//!
//! [`BlockDevice`] is the Rust analogue of the paper's (extended) SATA
//! command set. The base commands — `read`, `write`, `trim`, `flush` — are
//! what any page-mapping SSD exposes. The transactional extension —
//! `read_tx(tid, p)`, `write_tx(tid, p)`, `commit(tid)`, `abort(tid)` — is
//! exactly the interface §4.2 of the paper adds (tid-tagged reads/writes
//! plus commit/abort piggybacked on the trim command). Devices that do not
//! implement the extension return [`DevError::Unsupported`], mirroring a
//! drive that rejects unknown commands.

use crate::error::{DevError, Result};

/// Logical page number, the host-visible address unit (one 8 KB page).
pub type Lpn = u64;

/// Transaction identifier. Ids are allocated by the *file system* (per the
/// paper's §5.2, because SQLite is a library and cannot coordinate ids
/// across processes). `0` is reserved for non-transactional traffic.
pub type Tid = u64;

/// Reserved id meaning "not part of any transaction".
pub const NO_TID: Tid = 0;

/// Host-visible counters a device keeps; these feed the paper's Table 1.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DevCounters {
    /// Host page writes (both plain and tid-tagged).
    pub host_writes: u64,
    /// Host page reads (both plain and tid-tagged).
    pub host_reads: u64,
    /// Flush/barrier commands.
    pub flushes: u64,
    /// Commit commands.
    pub commits: u64,
    /// Abort commands.
    pub aborts: u64,
    /// Trim commands.
    pub trims: u64,
}

/// A (possibly transactional) page-addressed storage device.
///
/// All data commands move whole pages; `page_size()` tells the host how big
/// a page is. Implementations charge simulated latency for every command.
pub trait BlockDevice {
    /// Bytes per logical page.
    fn page_size(&self) -> usize;

    /// Number of logical pages the device exports.
    fn capacity_pages(&self) -> u64;

    /// Reads logical page `lpn` into `buf` (committed state).
    fn read(&mut self, lpn: Lpn, buf: &mut [u8]) -> Result<()>;

    /// Writes logical page `lpn` (non-transactional; durably replaces the
    /// previous version only after the next `flush`).
    fn write(&mut self, lpn: Lpn, buf: &[u8]) -> Result<()>;

    /// Declares logical page `lpn` unused so its flash copy may be
    /// reclaimed.
    fn trim(&mut self, lpn: Lpn) -> Result<()>;

    /// Write barrier: persists the mapping state so that everything written
    /// before the flush survives power loss. Models the barrier/FUA
    /// behaviour journaling file systems rely on (§6.3.4).
    fn flush(&mut self) -> Result<()>;

    /// Host-visible command counters.
    fn counters(&self) -> DevCounters;

    // --- transactional extension (X-FTL commands, §4.2) ---

    /// True if the device implements the transactional command set.
    fn supports_tx(&self) -> bool {
        false
    }

    /// Reads page `lpn` as seen by transaction `tid`: the transaction's own
    /// uncommitted version if it wrote one, otherwise the committed copy.
    fn read_tx(&mut self, _tid: Tid, _lpn: Lpn, _buf: &mut [u8]) -> Result<()> {
        Err(DevError::Unsupported("read_tx"))
    }

    /// Copy-on-write page write on behalf of transaction `tid`; the old
    /// committed copy stays readable and reclaimable only after commit.
    fn write_tx(&mut self, _tid: Tid, _lpn: Lpn, _buf: &[u8]) -> Result<()> {
        Err(DevError::Unsupported("write_tx"))
    }

    /// Atomically and durably commits every page written by `tid`.
    fn commit(&mut self, _tid: Tid) -> Result<()> {
        Err(DevError::Unsupported("commit"))
    }

    /// Discards every page written by `tid`; the committed copies remain.
    fn abort(&mut self, _tid: Tid) -> Result<()> {
        Err(DevError::Unsupported("abort"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A do-nothing device to exercise the trait's defaults.
    struct Null;

    impl BlockDevice for Null {
        fn page_size(&self) -> usize {
            512
        }
        fn capacity_pages(&self) -> u64 {
            0
        }
        fn read(&mut self, _: Lpn, _: &mut [u8]) -> Result<()> {
            Ok(())
        }
        fn write(&mut self, _: Lpn, _: &[u8]) -> Result<()> {
            Ok(())
        }
        fn trim(&mut self, _: Lpn) -> Result<()> {
            Ok(())
        }
        fn flush(&mut self) -> Result<()> {
            Ok(())
        }
        fn counters(&self) -> DevCounters {
            DevCounters::default()
        }
    }

    #[test]
    fn tx_commands_default_to_unsupported() {
        let mut d = Null;
        assert!(!d.supports_tx());
        assert_eq!(
            d.write_tx(1, 0, &[]),
            Err(DevError::Unsupported("write_tx"))
        );
        assert_eq!(
            d.read_tx(1, 0, &mut []),
            Err(DevError::Unsupported("read_tx"))
        );
        assert_eq!(d.commit(1), Err(DevError::Unsupported("commit")));
        assert_eq!(d.abort(1), Err(DevError::Unsupported("abort")));
    }
}
