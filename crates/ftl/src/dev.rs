//! The storage-device abstraction and its transactional extension.
//!
//! [`BlockDevice`] is the Rust analogue of the paper's SATA command set:
//! `read`, `write`, `trim`, `flush` — what any page-mapping SSD exposes —
//! plus an NCQ-style batched submission path ([`BlockDevice::submit`] /
//! [`BlockDevice::complete_until`]) that lets hosts issue multi-page writes
//! as one queued batch the device may overlap across its flash channels.
//!
//! The transactional command set — `read_tx(tid, p)`, `write_tx(tid, p)`,
//! `commit(tid)`, `abort(tid)` — is exactly the interface §4.2 of the paper
//! adds (tid-tagged reads/writes plus commit/abort piggybacked on the trim
//! command). It lives in the separate [`TxBlockDevice`] extension trait:
//! whether a device speaks it is a compile-time property of the type, not a
//! runtime probe, so hosts that need transactions take `D: TxBlockDevice`
//! and the "command not supported" failure mode does not exist.
//!
//! Commit itself is split-phase, in the style of the barrier-enabled IO
//! stack: [`TxBlockDevice::commit_submit`] stages the commit and returns a
//! [`CommitTicket`] without waiting for durability, and
//! [`TxBlockDevice::commit_wait`] redeems the ticket, blocking until the
//! commit group containing the transaction is on the media. The classic
//! blocking `commit(tid)` survives as a provided wrapper (submit then
//! wait), and [`IoCmd::Barrier`] gives batched submissions an ordering
//! fence that — unlike `flush` — does not drain the queue.

use std::collections::VecDeque;

use xftl_flash::Nanos;

use crate::error::{DevError, Result};

/// Logical page number, the host-visible address unit (one 8 KB page).
pub type Lpn = u64;

/// Transaction identifier. Ids are allocated by the *file system* (per the
/// paper's §5.2, because SQLite is a library and cannot coordinate ids
/// across processes). `0` is reserved for non-transactional traffic.
pub type Tid = u64;

/// Reserved id meaning "not part of any transaction".
pub const NO_TID: Tid = 0;

/// One command of a batched submission (see [`BlockDevice::submit`]).
#[derive(Debug, Clone, Copy)]
pub enum IoCmd<'a> {
    /// Write `data` (one full page) to logical page `lpn`.
    Write {
        /// Destination logical page.
        lpn: Lpn,
        /// Page contents; must be exactly `page_size()` bytes.
        data: &'a [u8],
    },
    /// Declare logical page `lpn` unused.
    Trim {
        /// The page to trim.
        lpn: Lpn,
    },
    /// Ordering fence: commands after the barrier may not be reordered
    /// ahead of commands before it, but — unlike `flush` — the device does
    /// not drain its queue or persist anything. This is the
    /// order-preserving barrier of the barrier-enabled IO stack: ordering
    /// is decoupled from the durability wait.
    Barrier,
}

/// Completion ticket for a queued batch.
///
/// Tickets are ordered: waiting on a ticket with [`BlockDevice::
/// complete_until`] also waits for every batch submitted before it.
/// [`CmdId::IMMEDIATE`] means the batch completed synchronously at
/// submission (the default for devices without a queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CmdId(pub u64);

impl CmdId {
    /// Ticket of a batch that completed before `submit` returned.
    pub const IMMEDIATE: CmdId = CmdId(0);
}

/// Ticket ledger for queueing devices: pairs each issued [`CmdId`] with
/// the simulated-clock instant its batch completes on the media. Devices
/// embed one and use it to implement `submit`/`complete_until`, and it is
/// where [`IoCmd::Barrier`] is honored: a barrier raises an ordering
/// floor (the completion horizon of everything issued so far) without
/// draining, so later batches complete no earlier than earlier ones.
#[derive(Debug, Default)]
pub struct CmdQueue {
    issued: u64,
    pending: VecDeque<(u64, Nanos)>,
    /// Latest completion instant among all tickets ever issued.
    latest_done: Nanos,
    /// Ordering floor set by the last barrier: tickets issued after the
    /// barrier report completion no earlier than this.
    horizon: Nanos,
}

impl CmdQueue {
    /// Mints the next ticket for a batch completing at `done`. If a
    /// barrier was raised, the reported completion is floored at the
    /// barrier's horizon so the batch is ordered after everything that
    /// preceded the fence.
    pub fn issue(&mut self, done: Nanos) -> CmdId {
        let done = done.max(self.horizon);
        self.latest_done = self.latest_done.max(done);
        self.issued += 1;
        self.pending.push_back((self.issued, done));
        CmdId(self.issued)
    }

    /// Raises the ordering floor to cover every ticket issued so far —
    /// ordering without draining. Returns the ticket of the newest batch
    /// the fence covers ([`CmdId::IMMEDIATE`] when nothing was issued
    /// yet), so callers can still wait on the pre-barrier prefix.
    pub fn raise_barrier(&mut self) -> CmdId {
        self.horizon = self.latest_done;
        CmdId(self.issued)
    }

    /// The current ordering floor (0 until a barrier is raised).
    pub fn horizon(&self) -> Nanos {
        self.horizon
    }

    /// Retires every ticket up to `barrier` and returns the latest
    /// completion time among them (`None` when nothing that old is still
    /// outstanding — e.g. [`CmdId::IMMEDIATE`] or a re-waited ticket).
    pub fn retire(&mut self, barrier: CmdId) -> Option<Nanos> {
        let mut latest: Option<Nanos> = None;
        while let Some(&(id, done)) = self.pending.front() {
            if id > barrier.0 {
                break;
            }
            self.pending.pop_front();
            latest = Some(latest.map_or(done, |m| m.max(done)));
        }
        latest
    }

    /// Number of tickets not yet retired.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }
}

/// Host-visible counters a device keeps; these feed the paper's Table 1.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DevCounters {
    /// Host page writes (both plain and tid-tagged).
    pub host_writes: u64,
    /// Host page reads (both plain and tid-tagged).
    pub host_reads: u64,
    /// Flush/barrier commands.
    pub flushes: u64,
    /// Commit commands.
    pub commits: u64,
    /// Abort commands.
    pub aborts: u64,
    /// Trim commands.
    pub trims: u64,
    /// Queued batches accepted via `submit`/`submit_tx`.
    pub batches: u64,
    /// Ordering barriers dispatched via [`IoCmd::Barrier`].
    pub barriers: u64,
}

/// Receipt for a staged (submitted but not yet durable) commit.
///
/// Returned by [`TxBlockDevice::commit_submit`] and redeemed by
/// [`TxBlockDevice::commit_wait`]. It is a newtype over the commit
/// *group* ticket — not a bare [`CmdId`] — so commit receipts cannot be
/// confused with batch tickets, and it is `#[must_use]`: dropping one
/// without waiting means the transaction may silently never become
/// durable, which the compiler now flags.
#[must_use = "a submitted commit is not durable until commit_wait is called on its ticket"]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitTicket {
    tid: Tid,
    group: CmdId,
}

impl CommitTicket {
    /// Ticket for a commit staged into the group identified by `group`.
    pub fn new(tid: Tid, group: CmdId) -> Self {
        CommitTicket { tid, group }
    }

    /// Ticket for a commit that was already durable (or had nothing to
    /// persist — e.g. a read-only transaction) when `commit_submit`
    /// returned.
    pub fn immediate(tid: Tid) -> Self {
        CommitTicket {
            tid,
            group: CmdId::IMMEDIATE,
        }
    }

    /// The transaction this ticket belongs to.
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// The commit group the transaction was staged into.
    pub fn group(&self) -> CmdId {
        self.group
    }

    /// Whether the commit was already durable at submission.
    pub fn is_immediate(&self) -> bool {
        self.group == CmdId::IMMEDIATE
    }
}

/// A page-addressed storage device.
///
/// All data commands move whole pages; `page_size()` tells the host how big
/// a page is. Implementations charge simulated latency for every command.
pub trait BlockDevice {
    /// Bytes per logical page.
    fn page_size(&self) -> usize;

    /// Number of logical pages the device exports.
    fn capacity_pages(&self) -> u64;

    /// Reads logical page `lpn` into `buf` (committed state).
    fn read(&mut self, lpn: Lpn, buf: &mut [u8]) -> Result<()>;

    /// Writes logical page `lpn` (non-transactional; durably replaces the
    /// previous version only after the next `flush`).
    fn write(&mut self, lpn: Lpn, buf: &[u8]) -> Result<()>;

    /// Declares logical page `lpn` unused so its flash copy may be
    /// reclaimed.
    fn trim(&mut self, lpn: Lpn) -> Result<()>;

    /// Write barrier: persists the mapping state so that everything written
    /// before the flush survives power loss. Models the barrier/FUA
    /// behaviour journaling file systems rely on (§6.3.4). Also a full
    /// queue barrier: every batch submitted earlier has completed when
    /// `flush` returns.
    fn flush(&mut self) -> Result<()>;

    /// Host-visible command counters.
    fn counters(&self) -> DevCounters;

    // --- batched submission (NCQ-style) ---

    /// Queues a batch of writes/trims. The device may reorder service
    /// across its internal channels but completes the batch atomically with
    /// respect to [`BlockDevice::complete_until`] on the returned ticket.
    /// The default implementation services the batch synchronously and
    /// returns [`CmdId::IMMEDIATE`]; queueing devices return a real ticket
    /// and only dispatch the commands, letting them overlap.
    fn submit(&mut self, cmds: &[IoCmd<'_>]) -> Result<CmdId> {
        for cmd in cmds {
            match cmd {
                IoCmd::Write { lpn, data } => self.write(*lpn, data)?,
                IoCmd::Trim { lpn } => self.trim(*lpn)?,
                // A synchronous device services commands in order, so the
                // fence holds trivially and costs nothing.
                IoCmd::Barrier => {}
            }
        }
        Ok(CmdId::IMMEDIATE)
    }

    /// Waits until the batch identified by `barrier` — and every batch
    /// submitted before it — has completed on the media. Completion is a
    /// *timing* property (simulated clock); it does not imply the mapping
    /// is durable, which still takes a `flush`/`commit`.
    ///
    /// The default is for devices that never queue: waiting on
    /// [`CmdId::IMMEDIATE`] succeeds (the batch completed at submission),
    /// but a *real* ticket cannot have come from this device, so the wait
    /// fails with [`DevError::NotQueued`] instead of silently ignoring
    /// the barrier. Queueing devices override this.
    fn complete_until(&mut self, barrier: CmdId) -> Result<()> {
        if barrier == CmdId::IMMEDIATE {
            Ok(())
        } else {
            Err(DevError::NotQueued)
        }
    }
}

/// The transactional command extension (X-FTL commands, §4.2).
///
/// Implemented only by devices that physically support tid-tagged
/// copy-on-write state: X-FTL itself, the TxFlash/atomic-write baselines,
/// and pass-through layers above them. Hosts that need transactions bound
/// `D: TxBlockDevice` and get the commands unconditionally.
pub trait TxBlockDevice: BlockDevice {
    /// Reads page `lpn` as seen by transaction `tid`: the transaction's own
    /// uncommitted version if it wrote one, otherwise the committed copy.
    fn read_tx(&mut self, tid: Tid, lpn: Lpn, buf: &mut [u8]) -> Result<()>;

    /// Opens transaction `tid` with snapshot semantics: the device captures
    /// its commit sequence number, and every later `read_tx(tid, ..)` sees
    /// the page versions visible at that instant (plus the transaction's
    /// own writes), no matter what other writers commit in between. At
    /// `commit_submit` the device validates first-committer-wins and fails
    /// the transaction with [`DevError::Conflict`] if a newer version of
    /// any written page committed after the snapshot.
    ///
    /// The default is the snapshot-less contract every pre-MVCC device
    /// implements implicitly: `begin` is accepted and reads stay
    /// read-committed. Layering wrappers (SATA link, shadow oracle, rig
    /// personalities) must forward this explicitly — the default would
    /// silently swallow the snapshot on its way to the inner device.
    fn begin(&mut self, tid: Tid) -> Result<()> {
        let _ = tid;
        Ok(())
    }

    /// Copy-on-write page write on behalf of transaction `tid`; the old
    /// committed copy stays readable and reclaimable only after commit.
    fn write_tx(&mut self, tid: Tid, lpn: Lpn, buf: &[u8]) -> Result<()>;

    /// Split-phase commit, phase 1: atomically *stages* every page written
    /// by `tid` for commit and returns immediately with a ticket. The new
    /// versions become visible to subsequent reads at once (the commit is
    /// ordered), but durability is deferred: the device may coalesce
    /// several staged commits into one group and persist them with a
    /// single meta-page program. Power loss before the group persists
    /// loses the *whole* transaction (never part of it).
    fn commit_submit(&mut self, tid: Tid) -> Result<CommitTicket>;

    /// Split-phase commit, phase 2: blocks until the commit group named by
    /// `ticket` is durable on the media. Redeeming a ticket also makes
    /// every commit submitted before it durable (groups are ordered).
    /// Waiting twice on the same ticket is a harmless no-op.
    fn commit_wait(&mut self, ticket: CommitTicket) -> Result<()>;

    /// Atomically and durably commits every page written by `tid` —
    /// the classic blocking command, kept as a thin wrapper over the
    /// split-phase pair for hosts that do not pipeline.
    fn commit(&mut self, tid: Tid) -> Result<()> {
        let ticket = self.commit_submit(tid)?;
        self.commit_wait(ticket)
    }

    /// Discards every page written by `tid`; the committed copies remain.
    fn abort(&mut self, tid: Tid) -> Result<()>;

    /// Queues a batch of tid-tagged copy-on-write page writes. Like
    /// [`BlockDevice::submit`] but on the transactional path: the writes
    /// stay invisible until `commit(tid)`, which is also a queue barrier.
    /// The default services the batch synchronously.
    fn submit_tx(&mut self, tid: Tid, pages: &[(Lpn, &[u8])]) -> Result<CmdId> {
        for (lpn, data) in pages {
            self.write_tx(tid, *lpn, data)?;
        }
        Ok(CmdId::IMMEDIATE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A recording device to exercise the trait's default batch paths.
    #[derive(Default)]
    struct Rec {
        writes: Vec<Lpn>,
        trims: Vec<Lpn>,
        tx_writes: Vec<(Tid, Lpn)>,
        commits: Vec<Tid>,
        waits: Vec<Tid>,
    }

    impl BlockDevice for Rec {
        fn page_size(&self) -> usize {
            512
        }
        fn capacity_pages(&self) -> u64 {
            64
        }
        fn read(&mut self, _: Lpn, _: &mut [u8]) -> Result<()> {
            Ok(())
        }
        fn write(&mut self, lpn: Lpn, _: &[u8]) -> Result<()> {
            self.writes.push(lpn);
            Ok(())
        }
        fn trim(&mut self, lpn: Lpn) -> Result<()> {
            self.trims.push(lpn);
            Ok(())
        }
        fn flush(&mut self) -> Result<()> {
            Ok(())
        }
        fn counters(&self) -> DevCounters {
            DevCounters::default()
        }
    }

    impl TxBlockDevice for Rec {
        fn read_tx(&mut self, _: Tid, _: Lpn, _: &mut [u8]) -> Result<()> {
            Ok(())
        }
        fn write_tx(&mut self, tid: Tid, lpn: Lpn, _: &[u8]) -> Result<()> {
            self.tx_writes.push((tid, lpn));
            Ok(())
        }
        fn commit_submit(&mut self, tid: Tid) -> Result<CommitTicket> {
            self.commits.push(tid);
            Ok(CommitTicket::immediate(tid))
        }
        fn commit_wait(&mut self, ticket: CommitTicket) -> Result<()> {
            self.waits.push(ticket.tid());
            Ok(())
        }
        fn abort(&mut self, _: Tid) -> Result<()> {
            Ok(())
        }
    }

    #[test]
    fn default_submit_services_batch_in_order() {
        let mut d = Rec::default();
        let page = [0u8; 512];
        let id = d
            .submit(&[
                IoCmd::Write {
                    lpn: 3,
                    data: &page,
                },
                IoCmd::Trim { lpn: 9 },
                IoCmd::Write {
                    lpn: 4,
                    data: &page,
                },
            ])
            .unwrap();
        assert_eq!(id, CmdId::IMMEDIATE);
        assert_eq!(d.writes, vec![3, 4]);
        assert_eq!(d.trims, vec![9]);
        d.complete_until(id).unwrap(); // no-op for a sync device
    }

    #[test]
    fn default_submit_tx_tags_every_page() {
        let mut d = Rec::default();
        let page = [0u8; 512];
        let batch: Vec<(Lpn, &[u8])> = vec![(10, &page[..]), (11, &page[..])];
        let id = d.submit_tx(7, &batch).unwrap();
        assert_eq!(id, CmdId::IMMEDIATE);
        assert_eq!(d.tx_writes, vec![(7, 10), (7, 11)]);
    }

    #[test]
    fn default_submit_accepts_barrier_as_ordering_noop() {
        let mut d = Rec::default();
        let page = [0u8; 512];
        let id = d
            .submit(&[
                IoCmd::Write {
                    lpn: 1,
                    data: &page,
                },
                IoCmd::Barrier,
                IoCmd::Write {
                    lpn: 2,
                    data: &page,
                },
            ])
            .unwrap();
        assert_eq!(id, CmdId::IMMEDIATE);
        assert_eq!(d.writes, vec![1, 2], "fence preserves service order");
    }

    #[test]
    fn default_complete_until_rejects_foreign_tickets() {
        let mut d = Rec::default();
        d.complete_until(CmdId::IMMEDIATE).unwrap();
        assert_eq!(
            d.complete_until(CmdId(3)),
            Err(DevError::NotQueued),
            "a device that never queues cannot honor a real ticket"
        );
    }

    #[test]
    fn blocking_commit_wraps_submit_and_wait() {
        let mut d = Rec::default();
        d.commit(9).unwrap();
        assert_eq!(d.commits, vec![9]);
        assert_eq!(d.waits, vec![9], "wrapper redeems the ticket it staged");
    }

    #[test]
    fn commit_ticket_accessors_and_immediacy() {
        let t = CommitTicket::new(4, CmdId(17));
        assert_eq!(t.tid(), 4);
        assert_eq!(t.group(), CmdId(17));
        assert!(!t.is_immediate());
        let i = CommitTicket::immediate(4);
        assert!(i.is_immediate());
        assert_eq!(i.group(), CmdId::IMMEDIATE);
    }

    #[test]
    fn queue_barrier_orders_without_draining() {
        let mut q = CmdQueue::default();
        let a = q.issue(100);
        assert_eq!(q.horizon(), 0);
        let fence = q.raise_barrier();
        assert_eq!(fence, a, "fence covers the pre-barrier prefix");
        assert_eq!(q.horizon(), 100);
        assert_eq!(q.outstanding(), 1, "barrier does not drain the queue");
        // A fast post-barrier batch may not complete before the fence.
        let b = q.issue(40);
        assert_eq!(q.retire(b), Some(100), "completion floored at horizon");
    }
}
