//! The cached mapping table (CMT): RAM residency bookkeeping for a
//! demand-paged L2P.
//!
//! At paper-testbed scale the whole L2P fits in device RAM, but a 64–256 GB
//! drive's table does not: like DFTL, the engine keeps the authoritative
//! mapping in *translation pages* on flash (one per slab, `PageKind::Map`)
//! and caches a bounded set of hot slabs in RAM. This module owns only the
//! RAM side — which slabs are resident, which are dirty, who gets evicted
//! next — while [`crate::base::FtlBase`] orchestrates the flash I/O
//! (demand fetches, batched eviction flushes, checkpoint writes) so the
//! timing and crash semantics stay in one place.
//!
//! Eviction is CLOCK (second chance): a referenced bit per frame, a hand
//! sweeping slab indices. CLOCK approximates LRU without per-access list
//! surgery and, crucially here, is fully deterministic: the victim is a
//! pure function of the access history, so simulated runs stay replayable.

use xftl_flash::Ppa;

use crate::dev::Lpn;

/// One cached slab of L2P entries.
#[derive(Debug)]
struct Frame {
    /// `None` while the slab is not resident.
    entries: Option<Box<[Option<Ppa>]>>,
    /// Resident entries differ from the persisted translation page (or no
    /// translation page exists yet).
    dirty: bool,
    /// CLOCK second-chance bit.
    referenced: bool,
}

/// Residency state and eviction policy for the L2P slab cache.
///
/// With `budget == None` every slab may stay resident, which degenerates to
/// the historical fully-RAM table: behaviour (and flash traffic) is then
/// identical to the pre-demand-paging engine.
#[derive(Debug)]
pub struct MappingCache {
    frames: Vec<Frame>,
    entries_per_slab: usize,
    /// Maximum resident slabs; `None` = unbounded.
    budget: Option<usize>,
    resident: usize,
    /// CLOCK hand: next slab index the eviction sweep inspects.
    hand: usize,
}

impl MappingCache {
    /// Creates an empty cache over `slabs` slabs of `entries_per_slab`
    /// entries each.
    pub fn new(slabs: usize, entries_per_slab: usize, budget: Option<usize>) -> Self {
        MappingCache {
            frames: (0..slabs)
                .map(|_| Frame {
                    entries: None,
                    dirty: false,
                    referenced: false,
                })
                .collect(),
            entries_per_slab,
            budget: budget.map(|b| b.max(1)),
            resident: 0,
            hand: 0,
        }
    }

    /// Number of slabs the table is divided into.
    pub fn slabs(&self) -> usize {
        self.frames.len()
    }

    /// Entries per slab.
    pub fn entries_per_slab(&self) -> usize {
        self.entries_per_slab
    }

    /// Currently resident slabs.
    pub fn resident(&self) -> usize {
        self.resident
    }

    /// The residency budget (`None` = unbounded).
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// Sets the residency budget. The caller is responsible for evicting
    /// down to the new budget afterwards (eviction does flash I/O, which
    /// lives in the engine).
    pub fn set_budget(&mut self, budget: Option<usize>) {
        self.budget = budget.map(|b| b.max(1));
    }

    /// Number of evictions needed before one more slab may become resident.
    pub fn over_budget_by(&self) -> usize {
        match self.budget {
            // +1 headroom: the caller is about to install a new frame.
            Some(b) => (self.resident + 1).saturating_sub(b),
            None => 0,
        }
    }

    /// Slab index covering `lpn`.
    pub fn slab_of_lpn(&self, lpn: Lpn) -> usize {
        (lpn as usize) / self.entries_per_slab
    }

    /// True if the slab holding `lpn`'s entry is resident.
    pub fn is_resident(&self, slab: usize) -> bool {
        self.frames[slab].entries.is_some()
    }

    /// Resident lookup: the cached entry, or `None` if the slab is not
    /// resident (cache miss — distinct from a resident unmapped entry,
    /// which is `Some(None)`). Marks the frame referenced.
    pub fn get(&mut self, lpn: Lpn) -> Option<Option<Ppa>> {
        let slab = self.slab_of_lpn(lpn);
        let idx = (lpn as usize) % self.entries_per_slab;
        let frame = &mut self.frames[slab];
        let entries = frame.entries.as_ref()?;
        frame.referenced = true;
        Some(entries[idx])
    }

    /// Silent resident lookup for auditors: no referenced-bit update.
    pub fn peek(&self, lpn: Lpn) -> Option<Option<Ppa>> {
        let slab = self.slab_of_lpn(lpn);
        let idx = (lpn as usize) % self.entries_per_slab;
        Some(self.frames[slab].entries.as_ref()?[idx])
    }

    /// Updates a resident entry, marking the frame dirty and referenced.
    ///
    /// # Panics
    /// If the slab is not resident — the engine must demand-fetch first.
    pub fn set(&mut self, lpn: Lpn, value: Option<Ppa>) {
        let slab = self.slab_of_lpn(lpn);
        let idx = (lpn as usize) % self.entries_per_slab;
        let frame = &mut self.frames[slab];
        let Some(entries) = frame.entries.as_mut() else {
            unreachable!("CMT set on a non-resident slab")
        };
        entries[idx] = value;
        frame.dirty = true;
        frame.referenced = true;
    }

    /// Installs a slab's entries (from a demand fetch or a fresh format).
    ///
    /// # Panics
    /// If the slab is already resident.
    pub fn install(&mut self, slab: usize, entries: Box<[Option<Ppa>]>, dirty: bool) {
        let frame = &mut self.frames[slab];
        assert!(frame.entries.is_none(), "CMT double install of slab {slab}");
        assert_eq!(entries.len(), self.entries_per_slab);
        frame.entries = Some(entries);
        frame.dirty = dirty;
        frame.referenced = true;
        self.resident += 1;
    }

    /// Picks the next eviction victim by CLOCK sweep. Returns `None` when
    /// nothing is resident. Deterministic: the hand position and the
    /// referenced bits fully determine the choice.
    pub fn pick_victim(&mut self) -> Option<usize> {
        if self.resident == 0 {
            return None;
        }
        // At most two sweeps: the first clears referenced bits, the second
        // must find an unreferenced resident frame.
        for _ in 0..2 * self.frames.len() {
            let slab = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            let frame = &mut self.frames[slab];
            if frame.entries.is_none() {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            return Some(slab);
        }
        None
    }

    /// Drops a resident slab from the cache, returning its entries and
    /// whether they were dirty (a dirty victim must be flushed to its
    /// translation page by the caller *before* calling this, or the
    /// entries used afterwards).
    ///
    /// # Panics
    /// If the slab is not resident.
    pub fn evict(&mut self, slab: usize) -> (Box<[Option<Ppa>]>, bool) {
        let frame = &mut self.frames[slab];
        let Some(entries) = frame.entries.take() else {
            unreachable!("CMT evict of a non-resident slab")
        };
        let dirty = frame.dirty;
        frame.dirty = false;
        frame.referenced = false;
        self.resident -= 1;
        (entries, dirty)
    }

    /// Read access to a resident slab's entries (for flushing).
    pub fn entries(&self, slab: usize) -> Option<&[Option<Ppa>]> {
        self.frames[slab].entries.as_deref()
    }

    /// True if the slab is resident and dirty.
    pub fn is_dirty(&self, slab: usize) -> bool {
        self.frames[slab].dirty
    }

    /// Clears a resident slab's dirty bit (after its translation page has
    /// been programmed).
    pub fn mark_clean(&mut self, slab: usize) {
        self.frames[slab].dirty = false;
    }

    /// True if any resident slab is dirty. Non-resident slabs are clean by
    /// invariant: eviction flushes before dropping a frame.
    pub fn any_dirty(&self) -> bool {
        self.frames.iter().any(|f| f.dirty)
    }

    /// Indices of the resident dirty slabs, ascending.
    pub fn dirty_slabs(&self) -> Vec<usize> {
        self.frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.dirty)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_slab(eps: usize, ppa: Option<Ppa>) -> Box<[Option<Ppa>]> {
        vec![ppa; eps].into_boxed_slice()
    }

    #[test]
    fn miss_until_installed_then_hit() {
        let mut c = MappingCache::new(4, 8, Some(2));
        assert_eq!(c.get(9), None, "slab 1 not resident");
        c.install(1, full_slab(8, Some(Ppa::new(3, 1))), false);
        assert_eq!(c.get(9), Some(Some(Ppa::new(3, 1))));
        assert_eq!(c.get(8), Some(Some(Ppa::new(3, 1))));
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn set_requires_residency_and_dirties() {
        let mut c = MappingCache::new(2, 4, None);
        c.install(0, full_slab(4, None), false);
        assert!(!c.is_dirty(0));
        c.set(2, Some(Ppa::new(5, 0)));
        assert!(c.is_dirty(0));
        assert_eq!(c.peek(2), Some(Some(Ppa::new(5, 0))));
        assert_eq!(c.dirty_slabs(), vec![0]);
        c.mark_clean(0);
        assert!(!c.any_dirty());
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn set_on_missing_slab_panics() {
        let mut c = MappingCache::new(2, 4, None);
        c.set(0, None);
    }

    #[test]
    fn clock_gives_second_chances() {
        let mut c = MappingCache::new(3, 4, Some(2));
        c.install(0, full_slab(4, None), false);
        c.install(1, full_slab(4, None), false);
        // Both referenced (installed referenced). First sweep clears bits;
        // victim is slab 0 (hand order).
        assert_eq!(c.pick_victim(), Some(0));
        // Touch slab 0 again: it gets a second chance over slab 1.
        c.get(0);
        assert_eq!(c.pick_victim(), Some(1));
    }

    #[test]
    fn evict_returns_dirty_flag_and_frees_budget() {
        let mut c = MappingCache::new(2, 4, Some(1));
        c.install(0, full_slab(4, None), false);
        c.set(1, Some(Ppa::new(2, 2)));
        assert_eq!(c.over_budget_by(), 1, "installing one more needs a slot");
        let (entries, dirty) = c.evict(0);
        assert!(dirty);
        assert_eq!(entries[1], Some(Ppa::new(2, 2)));
        assert_eq!(c.resident(), 0);
        assert_eq!(c.get(0), None, "evicted slab misses");
    }

    #[test]
    fn unbounded_budget_never_needs_eviction() {
        let mut c = MappingCache::new(8, 4, None);
        for s in 0..8 {
            c.install(s, full_slab(4, None), false);
        }
        assert_eq!(c.over_budget_by(), 0);
        assert_eq!(c.resident(), 8);
    }

    #[test]
    fn victim_choice_is_deterministic() {
        let run = || {
            let mut c = MappingCache::new(6, 4, Some(3));
            for s in 0..3 {
                c.install(s, full_slab(4, None), false);
            }
            c.get(4); // touch slab 1 (lpn 4 = slab 1, entry 0)
            let mut victims = Vec::new();
            while let Some(v) = c.pick_victim() {
                victims.push(v);
                c.evict(v);
            }
            victims
        };
        assert_eq!(run(), run());
    }
}
