//! Baseline: the per-call atomic-write FTL (Park et al., cited as \[18\]).
//!
//! This device guarantees atomicity *per write call*: all pages passed to a
//! single [`AtomicWriteFtl::write_atomic`] land together or not at all,
//! sealed by a commit-record page programmed after the data pages. It is
//! the approach the paper contrasts X-FTL against in §3.3: because the
//! atomic unit is one call, a buffer manager that *steals* (evicts dirty
//! pages of uncommitted transactions at arbitrary times) cannot map a
//! database transaction onto it — each eviction becomes its own atomic
//! group. The ablation bench quantifies the extra commit-record writes this
//! costs relative to X-FTL's single X-L2P write per transaction.

use xftl_flash::{FlashChip, Oob, PageKind, Ppa, SimClock};

use crate::base::{FtlBase, GcHook, NoHook, RecoveryLog};
use crate::dev::{BlockDevice, DevCounters, Lpn, Tid};
use crate::error::Result;
use crate::health::DeviceState;
use crate::stats::FtlStats;

/// Magic prefix of a commit-record page ("AWRECORD").
const RECORD_MAGIC: u64 = 0x4157_5245_434F_5244;

/// GC hook that chases commit records and in-flight group pages.
#[derive(Debug, Default)]
struct RecordHook {
    /// Live (not yet checkpoint-covered) commit-record pages.
    records: Vec<Ppa>,
    /// Data pages of the group currently being written, before fold.
    pending: Vec<(Lpn, Ppa)>,
}

impl GcHook for RecordHook {
    fn relocated(&mut self, oob: &Oob, old: Ppa, new: Ppa) {
        match oob.kind {
            PageKind::Commit => {
                if let Some(slot) = self.records.iter_mut().find(|p| **p == old) {
                    *slot = new;
                }
            }
            PageKind::Data => {
                if let Some((_, p)) = self
                    .pending
                    .iter_mut()
                    .find(|(lpn, p)| *lpn == oob.lpn && *p == old)
                {
                    *p = new;
                }
            }
            _ => {}
        }
    }
}

/// The per-call atomic-write FTL.
#[derive(Debug)]
pub struct AtomicWriteFtl {
    base: FtlBase,
    hook: RecordHook,
    next_group: Tid,
}

impl AtomicWriteFtl {
    /// Formats a fresh chip to export `logical_pages`.
    pub fn format(chip: FlashChip, logical_pages: u64) -> Result<Self> {
        Ok(AtomicWriteFtl {
            base: FtlBase::format(chip, logical_pages)?,
            hook: RecordHook::default(),
            next_group: 1,
        })
    }

    /// Rebuilds the device after a power loss. Data pages of groups whose
    /// commit record made it to flash are rolled forward; groups without a
    /// record vanish — the per-call all-or-nothing guarantee.
    pub fn recover(chip: FlashChip) -> Result<Self> {
        let (mut base, log) = FtlBase::recover(chip)?;
        Self::replay(&mut base, &log)?;
        // A device in end-of-life read-only mode cannot persist the
        // recovered state; the replayed mapping serves reads from RAM.
        if base.device_state() != DeviceState::ReadOnly {
            base.checkpoint(&mut NoHook)?;
        }
        Ok(AtomicWriteFtl {
            base,
            hook: RecordHook::default(),
            next_group: 1,
        })
    }

    fn replay(base: &mut FtlBase, log: &RecoveryLog) -> Result<()> {
        // Sequence number of each group's commit record (records before
        // the checkpoint are not in the log; their groups are covered by
        // the checkpointed L2P).
        let mut record_seq: Vec<(Tid, u64)> = Vec::new();
        for e in &log.events {
            if e.kind == PageKind::Commit {
                record_seq.push((e.tid, e.seq));
            }
        }
        // A group's pages become current at the record's sequence; merge
        // with plain roll-forward events in that order.
        let mut folds: Vec<(u64, crate::dev::Lpn, xftl_flash::Ppa)> = Vec::new();
        for e in &log.events {
            if e.kind != PageKind::Data {
                continue;
            }
            if e.tid == 0 {
                if e.seq > log.ckpt_seq {
                    folds.push((e.seq, e.lpn, e.ppa));
                }
            } else if e.seq <= log.tx_horizon {
                // Orphan from an earlier life; its group id may have been
                // reused since, so it must not join a newer record.
            } else if let Some(&(_, rec)) = record_seq
                .iter()
                .filter(|&&(tid, seq)| tid == e.tid && seq > e.seq)
                .min_by_key(|&&(_, seq)| seq)
            {
                folds.push((rec, e.lpn, e.ppa));
            }
        }
        folds.sort_by_key(|&(seq, _, _)| seq);
        for (_, lpn, ppa) in folds {
            base.apply_event(lpn, ppa)?;
        }
        Ok(())
    }

    /// Writes `pages` as one atomic group: every page lands, then a commit
    /// record seals the group. Returns the group id. The data pages of the
    /// group ride the device queue, overlapping across channels; the
    /// record is chained after the last of them, then awaited — the call
    /// returns when the group is durable.
    pub fn write_atomic(&mut self, pages: &[(Lpn, &[u8])]) -> Result<Tid> {
        let group = self.next_group;
        self.next_group += 1;
        self.hook.pending.clear();
        let mut data_done = 0;
        for (lpn, data) in pages {
            match self
                .base
                .write_cow_queued(*lpn, group, data, &mut self.hook)
            {
                Ok((ppa, done)) => {
                    data_done = data_done.max(done);
                    self.hook.pending.push((*lpn, ppa));
                }
                Err(e) => {
                    // Per-call rollback: orphan the pages already written.
                    for (_, ppa) in self.hook.pending.drain(..) {
                        self.base.invalidate(ppa);
                    }
                    return Err(e);
                }
            }
        }
        let record = self.encode_record(group, pages);
        let (rec_ppa, rec_done) = self.base.program_raw_queued(
            PageKind::Commit,
            group,
            group,
            0,
            &record,
            data_done,
            &mut self.hook,
        )?;
        self.base.wait_for(rec_done);
        self.hook.records.push(rec_ppa);
        self.base.counters_mut().commits += 1;
        let pending = std::mem::take(&mut self.hook.pending);
        for (lpn, ppa) in pending {
            self.base.fold_mapping(lpn, ppa)?;
        }
        self.release_records_if_needed()?;
        Ok(group)
    }

    /// Commit-record pages stay valid (un-reclaimable) until a mapping
    /// checkpoint covers the groups they seal. Cap their number so a
    /// flush-averse host cannot fill the drive with records.
    fn release_records_if_needed(&mut self) -> Result<()> {
        let cap = self.base.pages_per_block() / 2;
        if self.hook.records.len() >= cap {
            self.base.checkpoint(&mut self.hook)?;
            for ppa in self.hook.records.drain(..) {
                self.base.invalidate(ppa);
            }
        }
        Ok(())
    }

    fn encode_record(&self, group: Tid, pages: &[(Lpn, &[u8])]) -> Vec<u8> {
        let mut buf = vec![0u8; self.base.page_size()];
        buf[0..8].copy_from_slice(&RECORD_MAGIC.to_le_bytes());
        buf[8..16].copy_from_slice(&group.to_le_bytes());
        buf[16..24].copy_from_slice(&(pages.len() as u64).to_le_bytes());
        for (i, (lpn, _)) in pages.iter().enumerate() {
            let off = 24 + i * 8;
            buf[off..off + 8].copy_from_slice(&lpn.to_le_bytes());
        }
        buf
    }

    /// FTL-attributed statistics.
    pub fn stats(&self) -> &FtlStats {
        self.base.stats()
    }

    /// Raw media statistics.
    pub fn flash_stats(&self) -> xftl_flash::FlashStats {
        self.base.flash_stats()
    }

    /// Resets statistics between experiment phases.
    pub fn reset_stats(&mut self) {
        self.base.reset_stats();
    }

    /// Shared simulated clock.
    pub fn clock(&self) -> SimClock {
        self.base.clock()
    }

    /// Powers down, keeping only the flash.
    pub fn into_chip(self) -> FlashChip {
        self.base.into_chip()
    }

    /// Direct engine access for failure injection in tests.
    pub fn base_mut(&mut self) -> &mut FtlBase {
        &mut self.base
    }

    /// Read-only engine access (statistics, telemetry).
    pub fn base(&self) -> &FtlBase {
        &self.base
    }
}

impl BlockDevice for AtomicWriteFtl {
    fn page_size(&self) -> usize {
        self.base.page_size()
    }

    fn capacity_pages(&self) -> u64 {
        self.base.capacity_pages()
    }

    fn read(&mut self, lpn: Lpn, buf: &mut [u8]) -> Result<()> {
        self.base.counters_mut().host_reads += 1;
        self.base.read_committed(lpn, buf)
    }

    /// A plain write is a single-page atomic group — this is exactly the
    /// per-call overhead §3.3 criticizes.
    fn write(&mut self, lpn: Lpn, buf: &[u8]) -> Result<()> {
        self.base.counters_mut().host_writes += 1;
        self.write_atomic(&[(lpn, buf)])?;
        Ok(())
    }

    fn trim(&mut self, lpn: Lpn) -> Result<()> {
        self.base.counters_mut().trims += 1;
        self.base.trim_lpn(lpn)
    }

    fn flush(&mut self) -> Result<()> {
        self.base.counters_mut().flushes += 1;
        self.base.drain();
        if self.base.has_dirty_mapping() {
            self.base.checkpoint(&mut self.hook)?;
            // Checkpointed L2P now covers every sealed group; records can go.
            for ppa in self.hook.records.drain(..) {
                self.base.invalidate(ppa);
            }
        }
        Ok(())
    }

    fn counters(&self) -> DevCounters {
        *self.base.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xftl_flash::FlashConfig;

    fn dev() -> AtomicWriteFtl {
        let chip = FlashChip::new(FlashConfig::tiny(16), SimClock::new());
        AtomicWriteFtl::format(chip, 32).unwrap()
    }

    fn page(d: &AtomicWriteFtl, byte: u8) -> Vec<u8> {
        vec![byte; d.page_size()]
    }

    #[test]
    fn atomic_group_lands_together() {
        let mut d = dev();
        let a = page(&d, 1);
        let b = page(&d, 2);
        d.write_atomic(&[(0, &a), (1, &b)]).unwrap();
        let mut out = page(&d, 0);
        d.read(0, &mut out).unwrap();
        assert_eq!(out, a);
        d.read(1, &mut out).unwrap();
        assert_eq!(out, b);
        assert_eq!(d.stats().commit_record_writes, 1);
    }

    #[test]
    fn group_without_record_rolls_back_on_crash() {
        let mut d = dev();
        let a = page(&d, 1);
        let b = page(&d, 2);
        d.write_atomic(&[(0, &a), (1, &b)]).unwrap();
        d.flush().unwrap();
        // Tear the power during the second group: fuse allows the first
        // data page, kills the second, so no commit record is written.
        let c = page(&d, 7);
        let e = page(&d, 8);
        d.base_mut().chip_mut().arm_power_fuse(2);
        assert!(d.write_atomic(&[(0, &c), (1, &e)]).is_err());
        let mut d2 = AtomicWriteFtl::recover(d.into_chip()).unwrap();
        let mut out = page(&d2, 0);
        d2.read(0, &mut out).unwrap();
        assert_eq!(out, a, "unsealed group must not surface");
        d2.read(1, &mut out).unwrap();
        assert_eq!(out, b);
    }

    #[test]
    fn sealed_group_survives_crash_without_flush() {
        let mut d = dev();
        let a = page(&d, 3);
        let b = page(&d, 4);
        d.write_atomic(&[(2, &a), (3, &b)]).unwrap();
        // No flush: the commit record alone must make the group durable.
        let mut d2 = AtomicWriteFtl::recover(d.into_chip()).unwrap();
        let mut out = page(&d2, 0);
        d2.read(2, &mut out).unwrap();
        assert_eq!(out, a);
        d2.read(3, &mut out).unwrap();
        assert_eq!(out, b);
    }

    #[test]
    fn every_plain_write_pays_a_record() {
        let mut d = dev();
        let a = page(&d, 1);
        for lpn in 0..5 {
            d.write(lpn, &a).unwrap();
        }
        // 5 data pages + 5 commit records: the per-call overhead X-FTL avoids.
        assert_eq!(d.stats().data_writes, 5);
        assert_eq!(d.stats().commit_record_writes, 5);
    }

    #[test]
    fn survives_gc_churn() {
        let mut d = dev();
        for i in 0..400u64 {
            let data = vec![(i % 250) as u8; d.page_size()];
            d.write_atomic(&[(i % 6, &data), ((i + 1) % 6, &data)])
                .unwrap();
        }
        assert!(d.stats().gc_runs > 0);
        let mut out = vec![0u8; d.page_size()];
        d.read(5, &mut out).unwrap(); // must not error
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut d = dev();
        let a = page(&d, 9);
        d.write_atomic(&[(0, &a)]).unwrap();
        let d2 = AtomicWriteFtl::recover(d.into_chip()).unwrap();
        let mut d3 = AtomicWriteFtl::recover(d2.into_chip()).unwrap();
        let mut out = page(&d3, 0);
        d3.read(0, &mut out).unwrap();
        assert_eq!(out, a);
    }
}
