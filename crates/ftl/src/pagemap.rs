//! The OpenSSD's original FTL: plain page mapping with greedy GC.
//!
//! This is the baseline device the paper runs SQLite's rollback-journal and
//! WAL modes against. It speaks only the standard command set — it does not
//! implement [`crate::dev::TxBlockDevice`], so hosts needing transactions
//! cannot be instantiated over it at compile time. Batched submissions ride
//! the chip's channel queue: writes in one batch stripe across channels and
//! overlap, which is where the multi-channel S830 numbers come from.

use xftl_flash::{FlashChip, PageKind, SimClock};

use crate::base::{FtlBase, NoHook};
use crate::dev::{BlockDevice, CmdId, CmdQueue, DevCounters, IoCmd, Lpn};
use crate::error::Result;
use crate::health::DeviceState;
use crate::stats::FtlStats;

/// A plain page-mapping FTL device.
#[derive(Debug)]
pub struct PageMappedFtl {
    base: FtlBase,
    queue: CmdQueue,
}

impl PageMappedFtl {
    /// Formats a fresh chip to export `logical_pages`.
    pub fn format(chip: FlashChip, logical_pages: u64) -> Result<Self> {
        Ok(PageMappedFtl {
            base: FtlBase::format(chip, logical_pages)?,
            queue: CmdQueue::default(),
        })
    }

    /// Rebuilds the device from flash after a power loss, replaying
    /// post-checkpoint writes, then persists the recovered state. A
    /// device that reached end-of-life read-only mode skips the persist
    /// step: the replayed mapping stays in RAM (re-recovery replays the
    /// same log), and reads keep working.
    pub fn recover(chip: FlashChip) -> Result<Self> {
        let (mut base, log) = FtlBase::recover(chip)?;
        for e in &log.events {
            if e.kind == PageKind::Data && e.tid == 0 {
                base.apply_event(e.lpn, e.ppa)?;
            }
        }
        if base.device_state() != DeviceState::ReadOnly {
            base.checkpoint(&mut NoHook)?;
        }
        Ok(PageMappedFtl {
            base,
            queue: CmdQueue::default(),
        })
    }

    /// FTL-attributed statistics (Table 1 / Figure 6 counters).
    pub fn stats(&self) -> &FtlStats {
        self.base.stats()
    }

    /// Raw media statistics.
    pub fn flash_stats(&self) -> xftl_flash::FlashStats {
        self.base.flash_stats()
    }

    /// Resets statistics between experiment phases.
    pub fn reset_stats(&mut self) {
        self.base.reset_stats();
    }

    /// Shared simulated clock.
    pub fn clock(&self) -> SimClock {
        self.base.clock()
    }

    /// Powers the device down, keeping only the flash medium.
    pub fn into_chip(self) -> FlashChip {
        self.base.into_chip()
    }

    /// Direct access to the engine, for tests and failure injection.
    pub fn base_mut(&mut self) -> &mut FtlBase {
        &mut self.base
    }

    /// Read-only engine access, for the verify oracle's audits.
    pub fn base(&self) -> &FtlBase {
        &self.base
    }
}

impl BlockDevice for PageMappedFtl {
    fn page_size(&self) -> usize {
        self.base.page_size()
    }

    fn capacity_pages(&self) -> u64 {
        self.base.capacity_pages()
    }

    fn read(&mut self, lpn: Lpn, buf: &mut [u8]) -> Result<()> {
        self.base.counters_mut().host_reads += 1;
        self.base.read_committed(lpn, buf)
    }

    fn write(&mut self, lpn: Lpn, buf: &[u8]) -> Result<()> {
        self.base.counters_mut().host_writes += 1;
        self.base.write_committed(lpn, buf, &mut NoHook)
    }

    fn trim(&mut self, lpn: Lpn) -> Result<()> {
        self.base.counters_mut().trims += 1;
        self.base.trim_lpn(lpn)
    }

    fn flush(&mut self) -> Result<()> {
        self.base.counters_mut().flushes += 1;
        // A flush is also a full queue barrier.
        self.base.drain();
        self.queue.retire(CmdId(u64::MAX));
        // A write barrier on the OpenSSD persists the mapping table
        // (§6.3.4); skip the writes when nothing changed.
        if self.base.has_dirty_mapping() {
            self.base.checkpoint(&mut NoHook)?;
        }
        Ok(())
    }

    fn counters(&self) -> DevCounters {
        *self.base.counters()
    }

    fn submit(&mut self, cmds: &[IoCmd<'_>]) -> Result<CmdId> {
        self.base.counters_mut().batches += 1;
        let mut done = 0;
        for cmd in cmds {
            match cmd {
                IoCmd::Write { lpn, data } => {
                    self.base.counters_mut().host_writes += 1;
                    done = done.max(self.base.write_committed_queued(*lpn, data, &mut NoHook)?);
                }
                IoCmd::Trim { lpn } => {
                    self.base.counters_mut().trims += 1;
                    self.base.trim_lpn(*lpn)?;
                }
                IoCmd::Barrier => {
                    // Ordering without draining: later commands complete
                    // no earlier than everything already issued.
                    self.base.counters_mut().barriers += 1;
                    self.queue.raise_barrier();
                    done = done.max(self.queue.horizon());
                }
            }
        }
        Ok(self.queue.issue(done))
    }

    fn complete_until(&mut self, barrier: CmdId) -> Result<()> {
        if let Some(done) = self.queue.retire(barrier) {
            self.base.wait_for(done);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xftl_flash::{FlashConfig, FlashConfigBuilder};

    fn dev() -> PageMappedFtl {
        let chip = FlashChip::new(FlashConfig::tiny(16), SimClock::new());
        PageMappedFtl::format(chip, 32).unwrap()
    }

    #[test]
    fn implements_standard_commands() {
        let mut d = dev();
        let data = vec![9u8; d.page_size()];
        d.write(1, &data).unwrap();
        let mut out = vec![0u8; d.page_size()];
        d.read(1, &mut out).unwrap();
        assert_eq!(out, data);
        d.flush().unwrap();
        d.trim(1).unwrap();
        let c = d.counters();
        assert_eq!(
            (c.host_writes, c.host_reads, c.flushes, c.trims),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn batched_writes_overlap_across_channels() {
        let cfg = FlashConfigBuilder::tiny().channels(2).build();
        let chip = FlashChip::new(cfg, SimClock::new());
        let mut d = PageMappedFtl::format(chip, 32).unwrap();
        let clock = d.clock();
        let data = vec![7u8; d.page_size()];
        let t0 = clock.now();
        d.write(0, &data).unwrap();
        d.write(1, &data).unwrap();
        let serial = clock.now() - t0;
        let t1 = clock.now();
        let id = d
            .submit(&[
                IoCmd::Write {
                    lpn: 2,
                    data: &data,
                },
                IoCmd::Write {
                    lpn: 3,
                    data: &data,
                },
            ])
            .unwrap();
        assert_ne!(id, CmdId::IMMEDIATE);
        d.complete_until(id).unwrap();
        let batched = clock.now() - t1;
        assert!(
            batched < serial,
            "two queued writes ({batched} ns) must beat two sync writes ({serial} ns)"
        );
        let mut out = vec![0u8; d.page_size()];
        d.read(2, &mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(d.counters().batches, 1);
    }

    #[test]
    fn batched_trim_and_write_mix_services_both() {
        let mut d = dev();
        let data = vec![9u8; d.page_size()];
        d.write(5, &data).unwrap();
        let id = d
            .submit(&[
                IoCmd::Trim { lpn: 5 },
                IoCmd::Write {
                    lpn: 6,
                    data: &data,
                },
            ])
            .unwrap();
        d.complete_until(id).unwrap();
        let mut out = vec![1u8; d.page_size()];
        d.read(5, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0), "trimmed page reads zeros");
        d.read(6, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn flush_then_crash_preserves_data() {
        let mut d = dev();
        let data = vec![3u8; d.page_size()];
        d.write(2, &data).unwrap();
        d.flush().unwrap();
        let mut d2 = PageMappedFtl::recover(d.into_chip()).unwrap();
        let mut out = vec![0u8; d2.page_size()];
        d2.read(2, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn unflushed_writes_also_recovered_by_roll_forward() {
        // The medium has no volatile data cache, so even unflushed writes
        // are on flash; roll-forward finds them.
        let mut d = dev();
        let data = vec![4u8; d.page_size()];
        d.write(2, &data).unwrap();
        let mut d2 = PageMappedFtl::recover(d.into_chip()).unwrap();
        let mut out = vec![0u8; d2.page_size()];
        d2.read(2, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn flush_with_clean_mapping_writes_nothing() {
        let mut d = dev();
        let data = vec![5u8; d.page_size()];
        d.write(0, &data).unwrap();
        d.flush().unwrap();
        let before = d.flash_stats().programs;
        d.flush().unwrap();
        assert_eq!(d.flash_stats().programs, before);
    }
}

#[cfg(test)]
mod wear_tests {
    use super::*;
    use xftl_flash::FlashConfig;

    #[test]
    fn wear_summary_tracks_erases() {
        let chip = FlashChip::new(FlashConfig::tiny(16), SimClock::new());
        let mut d = PageMappedFtl::format(chip, 32).unwrap();
        let data = vec![1u8; d.page_size()];
        let w0 = d.base_mut().wear();
        for i in 0..500u64 {
            crate::dev::BlockDevice::write(&mut d, i % 8, &data).unwrap();
        }
        let w1 = d.base_mut().wear();
        assert!(w1.total > w0.total, "churn must erase blocks");
        assert!(w1.max >= w1.min);
        assert!(w1.mean() > 0.0);
    }
}
