//! Host interface (SATA link) latency model.
//!
//! The paper's OpenSSD talks SATA 2.0 (3 Gb/s); the S830 comparison drive
//! talks SATA 3.0. Every command crosses the link, paying a fixed protocol
//! overhead plus a per-byte transfer cost for data commands. [`SataLink`]
//! wraps any [`BlockDevice`] and charges these costs to the shared clock,
//! so host-side layers see realistic end-to-end latencies. Batched
//! submissions pay one command overhead for the whole batch (NCQ command
//! coalescing), and when the wrapped device speaks the transactional
//! extension the link forwards it transparently.

use xftl_flash::{Nanos, SimClock};

use crate::dev::{BlockDevice, CmdId, CommitTicket, DevCounters, IoCmd, Lpn, Tid, TxBlockDevice};
use crate::error::Result;

/// Link speed and protocol overhead parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// Per-command protocol/dispatch overhead (FIS exchange, host driver).
    pub cmd_ns: Nanos,
    /// Transfer cost per byte of payload.
    pub ns_per_byte: Nanos,
}

impl LinkConfig {
    /// SATA 2.0, ~300 MB/s: the OpenSSD's interface.
    pub const SATA2: LinkConfig = LinkConfig {
        cmd_ns: 20_000,
        ns_per_byte: 3,
    };

    /// SATA 3.0, ~600 MB/s: the S830's interface.
    pub const SATA3: LinkConfig = LinkConfig {
        cmd_ns: 10_000,
        ns_per_byte: 2,
    };
}

/// A [`BlockDevice`] seen across a SATA link.
#[derive(Debug)]
pub struct SataLink<D: BlockDevice> {
    inner: D,
    config: LinkConfig,
    clock: SimClock,
}

impl<D: BlockDevice> SataLink<D> {
    /// Wraps `inner`, charging link costs to `clock`.
    pub fn new(inner: D, config: LinkConfig, clock: SimClock) -> Self {
        SataLink {
            inner,
            config,
            clock,
        }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Mutable access to the wrapped device.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// Unwraps the link.
    pub fn into_inner(self) -> D {
        self.inner
    }

    fn charge(&self, payload: usize) {
        self.clock
            .advance(self.config.cmd_ns + payload as u64 * self.config.ns_per_byte);
    }
}

impl<D: BlockDevice> BlockDevice for SataLink<D> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn capacity_pages(&self) -> u64 {
        self.inner.capacity_pages()
    }

    fn read(&mut self, lpn: Lpn, buf: &mut [u8]) -> Result<()> {
        self.charge(buf.len());
        self.inner.read(lpn, buf)
    }

    fn write(&mut self, lpn: Lpn, buf: &[u8]) -> Result<()> {
        self.charge(buf.len());
        self.inner.write(lpn, buf)
    }

    fn trim(&mut self, lpn: Lpn) -> Result<()> {
        self.charge(0);
        self.inner.trim(lpn)
    }

    fn flush(&mut self) -> Result<()> {
        self.charge(0);
        self.inner.flush()
    }

    fn counters(&self) -> DevCounters {
        self.inner.counters()
    }

    fn submit(&mut self, cmds: &[IoCmd<'_>]) -> Result<CmdId> {
        // NCQ coalesces the FIS exchange: one command overhead for the
        // whole batch, plus the wire time of every payload.
        let payload: usize = cmds
            .iter()
            .map(|c| match c {
                IoCmd::Write { data, .. } => data.len(),
                IoCmd::Trim { .. } | IoCmd::Barrier => 0,
            })
            .sum();
        self.charge(payload);
        self.inner.submit(cmds)
    }

    fn complete_until(&mut self, barrier: CmdId) -> Result<()> {
        self.charge(0);
        self.inner.complete_until(barrier)
    }
}

impl<D: TxBlockDevice> TxBlockDevice for SataLink<D> {
    fn begin(&mut self, tid: Tid) -> Result<()> {
        self.charge(0);
        self.inner.begin(tid)
    }

    fn read_tx(&mut self, tid: Tid, lpn: Lpn, buf: &mut [u8]) -> Result<()> {
        self.charge(buf.len());
        self.inner.read_tx(tid, lpn, buf)
    }

    fn write_tx(&mut self, tid: Tid, lpn: Lpn, buf: &[u8]) -> Result<()> {
        self.charge(buf.len());
        self.inner.write_tx(tid, lpn, buf)
    }

    fn commit_submit(&mut self, tid: Tid) -> Result<CommitTicket> {
        // commit/abort ride on the trim command (§5.2): payload-free.
        self.charge(0);
        self.inner.commit_submit(tid)
    }

    fn commit_wait(&mut self, ticket: CommitTicket) -> Result<()> {
        self.charge(0);
        self.inner.commit_wait(ticket)
    }

    fn commit(&mut self, tid: Tid) -> Result<()> {
        // Blocking commit is ONE link command, not two: forward the
        // wrapped device's own submit+wait rather than paying the wire
        // twice through the default wrapper.
        self.charge(0);
        self.inner.commit(tid)
    }

    fn abort(&mut self, tid: Tid) -> Result<()> {
        self.charge(0);
        self.inner.abort(tid)
    }

    fn submit_tx(&mut self, tid: Tid, pages: &[(Lpn, &[u8])]) -> Result<CmdId> {
        let payload: usize = pages.iter().map(|(_, data)| data.len()).sum();
        self.charge(payload);
        self.inner.submit_tx(tid, pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagemap::PageMappedFtl;
    use xftl_flash::{FlashChip, FlashConfig};

    fn linked() -> (SataLink<PageMappedFtl>, SimClock) {
        let clock = SimClock::new();
        let chip = FlashChip::new(FlashConfig::tiny(16), clock.clone());
        let dev = PageMappedFtl::format(chip, 32).unwrap();
        (SataLink::new(dev, LinkConfig::SATA2, clock.clone()), clock)
    }

    #[test]
    fn link_charges_transfer_time() {
        let (mut link, clock) = linked();
        let page = link.page_size();
        let data = vec![1u8; page];
        let t0 = clock.now();
        link.write(0, &data).unwrap();
        let write_cost = clock.now() - t0;
        // Link cost alone would be cmd + page*3ns; total must exceed it.
        assert!(write_cost > LinkConfig::SATA2.cmd_ns + page as u64 * 3);
    }

    #[test]
    fn link_is_transparent_for_data() {
        let (mut link, _) = linked();
        let data = vec![0x42u8; link.page_size()];
        link.write(3, &data).unwrap();
        let mut out = vec![0u8; link.page_size()];
        link.read(3, &mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(link.counters().host_writes, 1);
    }

    #[test]
    fn batch_submission_pays_one_command_overhead() {
        let (mut link, clock) = linked();
        let page = link.page_size();
        let data = vec![4u8; page];
        let id = link
            .submit(&[
                IoCmd::Write {
                    lpn: 0,
                    data: &data,
                },
                IoCmd::Write {
                    lpn: 1,
                    data: &data,
                },
            ])
            .unwrap();
        let t0 = clock.now();
        link.complete_until(id).unwrap();
        // Wire time for both payloads was charged at submit; the
        // completion poll costs one payload-free command.
        assert!(clock.now() - t0 >= LinkConfig::SATA2.cmd_ns);
        let mut out = vec![0u8; page];
        link.read(1, &mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(link.counters().batches, 1);
    }

    #[test]
    fn sata3_is_faster_than_sata2() {
        let clock2 = SimClock::new();
        let chip2 = FlashChip::new(FlashConfig::tiny(16), clock2.clone());
        let mut l2 = SataLink::new(
            PageMappedFtl::format(chip2, 32).unwrap(),
            LinkConfig::SATA2,
            clock2.clone(),
        );
        let clock3 = SimClock::new();
        let chip3 = FlashChip::new(FlashConfig::tiny(16), clock3.clone());
        let mut l3 = SataLink::new(
            PageMappedFtl::format(chip3, 32).unwrap(),
            LinkConfig::SATA3,
            clock3.clone(),
        );
        let data = vec![1u8; l2.page_size()];
        let a = clock2.now();
        l2.write(0, &data).unwrap();
        let cost2 = clock2.now() - a;
        let b = clock3.now();
        l3.write(0, &data).unwrap();
        let cost3 = clock3.now() - b;
        assert!(cost3 < cost2);
    }
}

#[cfg(test)]
mod tx_link_tests {
    use super::*;
    use xftl_flash::{FlashChip, FlashConfig};

    #[test]
    fn link_forwards_transactional_commands_with_costs() {
        use crate::txflash::TxFlashFtl;
        let clock = SimClock::new();
        let chip = FlashChip::new(FlashConfig::tiny(16), clock.clone());
        let dev = TxFlashFtl::format(chip, 32).unwrap();
        let mut link = SataLink::new(dev, LinkConfig::SATA2, clock.clone());
        let page = vec![5u8; link.page_size()];
        let t0 = clock.now();
        link.write_tx(3, 0, &page).unwrap();
        let tx_write_cost = clock.now() - t0;
        assert!(tx_write_cost >= LinkConfig::SATA2.cmd_ns + page.len() as u64 * 3);
        let t1 = clock.now();
        link.commit(3).unwrap();
        assert!(
            clock.now() - t1 >= LinkConfig::SATA2.cmd_ns,
            "commit pays link cost"
        );
        let mut out = vec![0u8; link.page_size()];
        link.read(0, &mut out).unwrap();
        assert_eq!(out, page);
        link.abort(9).unwrap(); // unknown tid forwards cleanly
    }
}
