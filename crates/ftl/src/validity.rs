//! Per-block page-validity tracking.
//!
//! The FTL keeps, in device RAM, one bit per physical page ("does any
//! mapping table still reference this page?") plus a per-block count of
//! valid pages. Greedy garbage collection picks the block with the fewest
//! valid pages; the paper's key GC rule — *a page is invalid only when it
//! is referenced by neither the L2P nor the X-L2P table* (§5.3) — is
//! enforced by the callers that flip these bits.

use xftl_flash::Ppa;

/// Validity bitmap and per-block valid-page counts.
#[derive(Debug, Clone)]
pub struct ValidityMap {
    pages_per_block: usize,
    bits: Vec<u64>,
    counts: Vec<u32>,
}

impl ValidityMap {
    /// Creates an all-invalid map for `blocks` blocks of `pages_per_block`
    /// pages.
    pub fn new(blocks: usize, pages_per_block: usize) -> Self {
        let total = blocks * pages_per_block;
        ValidityMap {
            pages_per_block,
            bits: vec![0; total.div_ceil(64)],
            counts: vec![0; blocks],
        }
    }

    fn index(&self, ppa: Ppa) -> (usize, u64) {
        let linear = ppa.linear(self.pages_per_block) as usize;
        (linear / 64, 1u64 << (linear % 64))
    }

    /// True if `ppa` is currently referenced by some mapping table.
    pub fn is_valid(&self, ppa: Ppa) -> bool {
        let (w, m) = self.index(ppa);
        self.bits[w] & m != 0
    }

    /// Marks `ppa` valid. Idempotent.
    pub fn mark_valid(&mut self, ppa: Ppa) {
        let (w, m) = self.index(ppa);
        if self.bits[w] & m == 0 {
            self.bits[w] |= m;
            self.counts[ppa.block as usize] += 1;
        }
    }

    /// Marks `ppa` invalid. Idempotent.
    pub fn mark_invalid(&mut self, ppa: Ppa) {
        let (w, m) = self.index(ppa);
        if self.bits[w] & m != 0 {
            self.bits[w] &= !m;
            self.counts[ppa.block as usize] -= 1;
        }
    }

    /// Number of valid pages in `block`.
    pub fn valid_in_block(&self, block: u32) -> u32 {
        self.counts[block as usize]
    }

    /// Total valid pages on the device.
    pub fn total_valid(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }

    /// Clears every bit (used when recovery rebuilds state from flash).
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.counts.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_query() {
        let mut v = ValidityMap::new(4, 8);
        let p = Ppa::new(2, 3);
        assert!(!v.is_valid(p));
        v.mark_valid(p);
        assert!(v.is_valid(p));
        assert_eq!(v.valid_in_block(2), 1);
        v.mark_invalid(p);
        assert!(!v.is_valid(p));
        assert_eq!(v.valid_in_block(2), 0);
    }

    #[test]
    fn idempotent_marks() {
        let mut v = ValidityMap::new(2, 8);
        let p = Ppa::new(1, 0);
        v.mark_valid(p);
        v.mark_valid(p);
        assert_eq!(v.valid_in_block(1), 1);
        v.mark_invalid(p);
        v.mark_invalid(p);
        assert_eq!(v.valid_in_block(1), 0);
    }

    #[test]
    fn counts_are_per_block() {
        let mut v = ValidityMap::new(3, 8);
        v.mark_valid(Ppa::new(0, 0));
        v.mark_valid(Ppa::new(0, 1));
        v.mark_valid(Ppa::new(2, 7));
        assert_eq!(v.valid_in_block(0), 2);
        assert_eq!(v.valid_in_block(1), 0);
        assert_eq!(v.valid_in_block(2), 1);
        assert_eq!(v.total_valid(), 3);
    }

    #[test]
    fn clear_resets_everything() {
        let mut v = ValidityMap::new(2, 8);
        v.mark_valid(Ppa::new(0, 0));
        v.mark_valid(Ppa::new(1, 5));
        v.clear();
        assert_eq!(v.total_valid(), 0);
        assert!(!v.is_valid(Ppa::new(0, 0)));
    }
}
