//! Device-health machinery: the degraded-state machine the FTL walks as
//! the media wears out, and the policy knobs of the background scrubber.
//!
//! A flash device at end of life does not stop working all at once. Blocks
//! retire one by one as their erases fail, spare capacity shrinks, and at
//! some point the FTL can no longer open a fresh write frontier — but
//! every page already written is still readable. Real devices expose this
//! as a *read-only* mode (SMART "available spare below threshold"); a
//! panic, which is what this stack did before, is the one behaviour no
//! firmware ships. [`DeviceState`] models that lifecycle; the scrubber
//! configured by [`ScrubConfig`] pushes the uncorrectable-read horizon out
//! by relocating at-risk blocks before their accumulated read-disturb and
//! retention damage crosses the ECC budget.

use xftl_flash::Nanos;

/// Health lifecycle of the device. Transitions are strictly forward
/// (`Healthy → Degraded → ReadOnly`) and idempotent: the state is
/// persisted in the checkpoint root (meta format v4), so a power cycle —
/// or several — recovers the same or a further state, never an earlier
/// one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum DeviceState {
    /// Full service: spare blocks comfortably exceed what the write
    /// frontiers and GC need.
    #[default]
    Healthy,
    /// Writes still succeed but the spare pool has thinned to the point
    /// where one more retirement wave could exhaust it. Hosts should
    /// drain and replace the device.
    Degraded,
    /// The spare pool can no longer sustain the write path. All dirtying
    /// operations fail with [`crate::DevError::ReadOnly`]; reads and
    /// crash recovery keep working.
    ReadOnly,
}

impl DeviceState {
    /// On-flash encoding (meta v4 header field).
    pub fn as_u64(self) -> u64 {
        match self {
            DeviceState::Healthy => 0,
            DeviceState::Degraded => 1,
            DeviceState::ReadOnly => 2,
        }
    }

    /// Inverse of [`DeviceState::as_u64`]; `None` for unknown encodings
    /// (a corrupt root must not decode to an arbitrary health state).
    pub fn from_u64(v: u64) -> Option<DeviceState> {
        match v {
            0 => Some(DeviceState::Healthy),
            1 => Some(DeviceState::Degraded),
            2 => Some(DeviceState::ReadOnly),
            _ => None,
        }
    }
}

/// Why the scrubber relocated a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScrubReason {
    /// The block's read count since its last erase crossed the disturb
    /// threshold.
    ReadDisturb,
    /// The block's oldest data aged past the retention threshold.
    Retention,
    /// ECC corrected enough bits in the block to signal imminent failure.
    EccFeedback,
    /// Static wear leveling: the block held cold data on a low-wear block
    /// while the free pool wore out.
    WearLevel,
}

/// Background-scrub and wear-leveling policy.
///
/// The scrubber piggybacks on the GC tick: every [`interval_ops`]
/// host-visible writes it scans the closed blocks, scores each by how
/// close it is to the thresholds below, and relocates at most one block
/// per tick through the GC copy machinery (bounded added latency, charged
/// to the simulated clock). Thresholds should sit well under the
/// [`xftl_flash::AgingModel`] curve's uncorrectable point — scrubbing is
/// only useful while the data still decodes.
///
/// [`interval_ops`]: ScrubConfig::interval_ops
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubConfig {
    /// Relocate a block once its per-erase read count reaches this.
    pub read_threshold: u64,
    /// Relocate a block once ECC has corrected this many bits in it.
    pub flip_threshold: u64,
    /// Relocate a block once its oldest data is this old.
    pub age_threshold_ns: Nanos,
    /// Host writes between scrub scans (1 = scan on every write).
    pub interval_ops: u64,
    /// Static wear-leveling trigger: when the erase-count spread between
    /// the most-worn pool block and the coldest closed block exceeds this,
    /// the coldest block is relocated so its low-wear cells rejoin the
    /// free pool.
    pub wear_delta_cap: u64,
}

impl Default for ScrubConfig {
    fn default() -> Self {
        ScrubConfig {
            read_threshold: 1 << 12,
            flip_threshold: 16,
            age_threshold_ns: Nanos::MAX,
            interval_ops: 64,
            wear_delta_cap: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_state_encoding_roundtrips() {
        for s in [
            DeviceState::Healthy,
            DeviceState::Degraded,
            DeviceState::ReadOnly,
        ] {
            assert_eq!(DeviceState::from_u64(s.as_u64()), Some(s));
        }
        assert_eq!(DeviceState::from_u64(3), None);
        assert_eq!(DeviceState::from_u64(u64::MAX), None);
    }

    #[test]
    fn device_state_orders_by_severity() {
        assert!(DeviceState::Healthy < DeviceState::Degraded);
        assert!(DeviceState::Degraded < DeviceState::ReadOnly);
    }
}
