//! Error type for device-level (FTL) operations.

use std::fmt;

use xftl_flash::FlashError;

use crate::dev::{Lpn, Tid};

/// Errors surfaced by a simulated storage device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DevError {
    /// Underlying flash medium error (including simulated power loss).
    Flash(FlashError),
    /// Logical page number beyond the exported capacity.
    BadLpn(Lpn),
    /// The device ran out of free blocks even after garbage collection;
    /// the drive is over-filled for its over-provisioning.
    OutOfSpace,
    /// A commit/abort named a transaction with no entries in the X-L2P
    /// table. Committing an empty (read-only) transaction is *not* an
    /// error; this fires only for ids the device has never seen.
    UnknownTid(Tid),
    /// The X-L2P table is full of entries belonging to still-active
    /// transactions; the host must commit or abort something first.
    /// (The paper sizes the table at 500–1000 entries and argues a few
    /// tens suffice for SQLite's concurrency level.)
    XL2pFull,
    /// The flash contains no valid format/checkpoint metadata to recover
    /// from.
    NotFormatted,
    /// A completion wait named a real (queued) ticket on a device that
    /// never queues: the default `complete_until` cannot honor a barrier
    /// it has no ledger for, so instead of silently ignoring it the wait
    /// fails loudly. Waiting on [`crate::CmdId::IMMEDIATE`] is always fine.
    NotQueued,
    /// First-committer-wins validation failed at `commit_submit`: another
    /// transaction committed a newer version of a page this snapshot
    /// transaction wrote. The device has already aborted the loser
    /// (discarded its versions, released its write intents); the host
    /// just retries the whole transaction on a fresh snapshot.
    Conflict,
    /// The device has degraded to read-only mode: retirements and wear
    /// have shrunk the spare pool below what the write path needs, so
    /// all dirtying operations are refused. Reads, snapshot queries, and
    /// crash recovery keep working, and the state survives power cycles
    /// (persisted in the checkpoint root).
    ReadOnly,
}

impl fmt::Display for DevError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DevError::Flash(e) => write!(f, "flash error: {e}"),
            DevError::BadLpn(lpn) => write!(f, "logical page {lpn} beyond exported capacity"),
            DevError::OutOfSpace => write!(f, "no reclaimable space left on device"),
            DevError::UnknownTid(tid) => write!(f, "unknown transaction id {tid}"),
            DevError::XL2pFull => write!(f, "X-L2P table full of active transactions"),
            DevError::NotFormatted => write!(f, "no valid device format metadata found"),
            DevError::NotQueued => {
                write!(f, "completion wait on a ticket this device never queued")
            }
            DevError::Conflict => {
                write!(
                    f,
                    "snapshot transaction lost first-committer-wins validation"
                )
            }
            DevError::ReadOnly => {
                write!(f, "device is in read-only mode (end-of-life degradation)")
            }
        }
    }
}

impl std::error::Error for DevError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DevError::Flash(e) => Some(e),
            DevError::BadLpn(_)
            | DevError::OutOfSpace
            | DevError::UnknownTid(_)
            | DevError::XL2pFull
            | DevError::NotFormatted
            | DevError::NotQueued
            | DevError::Conflict
            | DevError::ReadOnly => None,
        }
    }
}

impl From<FlashError> for DevError {
    fn from(e: FlashError) -> Self {
        DevError::Flash(e)
    }
}

/// Result alias for device operations.
pub type Result<T> = std::result::Result<T, DevError>;
