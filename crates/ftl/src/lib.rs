//! # xftl-ftl — device abstraction and flash translation layers
//!
//! This crate provides everything between the raw NAND (`xftl-flash`) and
//! the transactional X-FTL (`xftl-core`):
//!
//! * [`dev::BlockDevice`] — the standard storage command set plus the
//!   NCQ-style batched submission path (`submit`/`complete_until`), and
//!   [`dev::TxBlockDevice`] — the paper's transactional SATA extension
//!   (`read_tx`/`write_tx`/`commit`/`abort`) as a compile-time capability.
//! * [`sata::SataLink`] — host-interface latency model (SATA 2/3).
//! * [`base::FtlBase`] — the shared FTL engine: log-structured allocation,
//!   a demand-paged L2P (bounded mapping cache over flash-resident
//!   translation pages, with a two-level GTD once the directory outgrows
//!   one meta page), greedy / FIFO / cost-benefit garbage collection with
//!   optional hot/cold write-frontier separation, checkpoint-root meta
//!   ring, and crash-recovery scanning.
//! * [`pagemap::PageMappedFtl`] — the OpenSSD's original FTL (the paper's
//!   baseline device for SQLite's RBJ and WAL modes).
//! * [`atomicwrite::AtomicWriteFtl`] — the per-call atomic-write FTL of
//!   Park et al., the related-work baseline of §3.3.
//! * [`txflash::TxFlashFtl`] — TxFlash's Simple Cyclic Commit (Prabhakaran
//!   et al.), the second related-work baseline.
//!
//! ```
//! use xftl_flash::{FlashChip, FlashConfig, SimClock};
//! use xftl_ftl::dev::BlockDevice;
//! use xftl_ftl::pagemap::PageMappedFtl;
//!
//! let clock = SimClock::new();
//! let chip = FlashChip::new(FlashConfig::tiny(16), clock.clone());
//! let mut dev = PageMappedFtl::format(chip, 32).unwrap();
//! let page = vec![7u8; dev.page_size()];
//! dev.write(0, &page).unwrap();
//! dev.flush().unwrap();
//! // Power loss: only the flash medium survives.
//! let mut dev = PageMappedFtl::recover(dev.into_chip()).unwrap();
//! let mut out = vec![0u8; dev.page_size()];
//! dev.read(0, &mut out).unwrap();
//! assert_eq!(out, page);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod atomicwrite;
pub mod base;
pub mod cmt;
pub mod dev;
pub mod error;
pub mod health;
pub mod meta;
pub mod pagemap;
pub mod sata;
pub mod stats;
pub mod txflash;
pub mod validity;

pub use atomicwrite::AtomicWriteFtl;
pub use base::{FtlBase, GcHook, GcPolicy, NoHook, RecoveryLog, ScanEvent, WearSummary};
pub use cmt::MappingCache;
pub use dev::{
    BlockDevice, CmdId, CmdQueue, CommitTicket, DevCounters, IoCmd, Lpn, Tid, TxBlockDevice, NO_TID,
};
pub use error::{DevError, Result};
pub use health::{DeviceState, ScrubConfig, ScrubReason};
pub use pagemap::PageMappedFtl;
pub use sata::{LinkConfig, SataLink};
pub use stats::FtlStats;
pub use txflash::TxFlashFtl;
pub use validity::ValidityMap;
