//! Shared FTL machinery: block allocation, the demand-paged L2P mapping
//! cache, garbage collection (greedy, FIFO, or cost-benefit), hot/cold
//! write-frontier separation, checkpointing, and the crash-recovery scan.
//!
//! Both device personalities in this reproduction are thin assemblies of
//! this engine:
//!
//! * [`crate::pagemap::PageMappedFtl`] — the OpenSSD's original FTL: plain
//!   page mapping with copy-on-write updates and greedy GC.
//! * `xftl_core::XFtl` — the paper's contribution: the same engine plus the
//!   transactional X-L2P table, commit/abort commands and GC pinning.
//!
//! The engine exposes copy-on-write primitives (`write_cow`) that do *not*
//! touch the L2P table, alongside committed-state operations
//! (`write_committed`), so a wrapper can implement either semantics.
//!
//! ## Persistence model
//!
//! Block 0 is a reserved *meta ring*: checkpoint-root pages are appended to
//! it and the newest valid one wins at recovery (the paper assumes the
//! meta-block pointer update is atomic; appending versioned root pages is
//! the standard way firmware realizes that assumption). A checkpoint writes
//! every dirty L2P slab into the normal log frontier (kind = `Map`) and
//! then a fresh meta page. Crash recovery loads the newest checkpoint and
//! rolls the L2P forward by replaying data pages whose OOB sequence number
//! exceeds the checkpoint's, in sequence order — transactional pages
//! (OOB `tid != 0`) are *not* replayed here; the X-FTL layer resolves them
//! through the persisted X-L2P table.
//!
//! ## Demand-paged mapping
//!
//! The L2P table itself is no longer pinned in RAM. It is split into
//! page-sized *slabs*; the authoritative copy of each slab is its
//! translation page on flash (`PageKind::Map`, OOB `lpn` = slab index),
//! and a [`MappingCache`] keeps a bounded set of hot slabs resident with
//! CLOCK eviction. A lookup that misses demand-fetches the slab (a charged
//! flash read — translation traffic is a first-class cost, exactly the
//! DFTL trade); evicting a dirty slab batches up to
//! [`MAP_FLUSH_BATCH`] dirty frames into translation-page programs under
//! a *single* checkpoint-root write. That root reuses the old `ckpt_seq`:
//! replaying post-checkpoint events over newer slab content is idempotent
//! (folds are last-writer-wins in sequence order), so an eviction flush
//! needs no full checkpoint to be crash-safe.
//!
//! Small devices keep every slab pointer inline in the root page; once
//! the pointer table outgrows it, the root switches to a paged *global
//! translation directory* (GTD): root → GTD pages (`PageKind::Map` with
//! OOB `aux` = [`meta::GTD_AUX`], `lpn` = GTD page index) → translation
//! pages. Formats choose the mode from geometry alone, so recovery can
//! recompute it without trusting flash contents.

use std::collections::VecDeque;

use xftl_flash::{FlashChip, FlashError, Nanos, Oob, PageKind, PageProbe, Ppa, SimClock};
use xftl_trace::{HeatSketch, OpClass, Recorder, Telemetry};

use crate::cmt::MappingCache;
use crate::dev::{DevCounters, Lpn, Tid};
use crate::error::{DevError, Result};
use crate::health::{DeviceState, ScrubConfig, ScrubReason};
use crate::meta::{self, MetaPage};
use crate::stats::FtlStats;
use crate::validity::ValidityMap;

/// Reserved block indices for the meta (checkpoint-root) ring. Two blocks
/// alternate so there is always one valid root on flash: when the current
/// block fills up, the *other* block is erased and written — never the one
/// holding the latest root. (This realizes the paper's assumption that
/// the meta-block pointer update is atomic.)
const META_BLOCKS: [u32; 2] = [0, 1];
/// First block available for data/mapping allocation.
const FIRST_POOL_BLOCK: u32 = 2;

/// GC starts when the free-block pool drops below the low-water mark.
/// This floor is the single-channel value; multi-channel devices raise
/// it (see [`FtlBase::gc_low_water`]) because one GC pass can open a
/// cold write frontier on every channel straight out of the pool.
const GC_LOW_WATER: usize = 3;

/// Minimum spare physical blocks the constructor insists on beyond the
/// exported capacity (frontier + GC headroom + mapping churn).
const MIN_SPARE_BLOCKS: usize = 4;

/// Bounded re-execution attempts for a program that reported status
/// failure. Each retry abandons the failing frontier and lands on a
/// different block, so hitting the limit means either an absurd injected
/// fault rate or an exhausted free pool — never a loop on one bad block.
const PROGRAM_RETRY_LIMIT: usize = 8;

/// Bounded re-issues of a read that failed ECC before the error is
/// surfaced to the caller. Background bit-flip bursts are transient, so a
/// re-read usually decodes; a persistently dead page still fails after
/// the retries.
const READ_RETRY_LIMIT: usize = 4;

/// Maximum dirty mapping slabs coalesced into one eviction flush. Each
/// flush pays one checkpoint-root program regardless of how many
/// translation pages ride along, so batching amortizes the root cost;
/// the bound keeps a single host write's worst-case latency predictable.
pub const MAP_FLUSH_BATCH: usize = 8;

/// Write-heat counter slots for hot/cold separation (a one-row sketch;
/// see [`xftl_trace::HeatSketch`]). Fixed, so RAM stays bounded at any
/// device scale.
const HEAT_SLOTS: usize = 1 << 16;

/// Writes between heat-counter halvings.
const HEAT_HALF_LIFE: u64 = 1 << 17;

/// Heat estimate at or above which a data LPN writes to the hot frontier.
const HOT_THRESHOLD: u8 = 2;

/// Reads `ppa` with bounded re-issue on uncorrectable ECC errors,
/// returning the final result and the number of retries consumed. Free
/// function so the recovery path (no `FtlBase` yet) can share it.
fn read_with_retries(
    chip: &mut FlashChip,
    ppa: Ppa,
    buf: &mut [u8],
) -> (xftl_flash::Result<Oob>, u64) {
    let mut r = chip.read(ppa, buf);
    let mut retries = 0u64;
    while (retries as usize) < READ_RETRY_LIMIT && matches!(r, Err(FlashError::Uncorrectable(_))) {
        retries += 1;
        r = chip.read(ppa, buf);
    }
    (r, retries)
}

/// Garbage-collection victim-selection policy.
///
/// * `Greedy` picks the block with the fewest valid pages — the modern
///   default, which compacts cold data into dense blocks and then ignores
///   it.
/// * `Fifo` cycles through data blocks in allocation order, like the
///   simple firmware of the OpenSSD era. Under FIFO, cold (aged) data is
///   re-copied every cycle, so the mean victim validity tracks the
///   drive's overall utilization — this is exactly the "controlled aging"
///   knob of the paper's §6.3.1 (GC validity 30/50/70 %).
/// * `CostBenefit` scores every candidate `(1 − u) / (1 + u) × age`
///   (u = valid fraction, age = programs since the block last took a
///   write) and collects the best scorer — the classic cleaning policy of
///   Kawaguchi et al., which beats greedy under skewed workloads because
///   it will eventually pick an old, half-valid cold block over a young,
///   slightly-emptier hot block that is about to self-invalidate anyway.
///   Data and mapping blocks are scored as separate victim classes, so
///   translation-page churn cannot starve data cleaning (or vice versa).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)] // the policies are described above
pub enum GcPolicy {
    #[default]
    Greedy,
    Fifo,
    CostBenefit,
}

/// Why a block is being collected (relocate-and-erase): normal space
/// reclamation, a scrub of at-risk data, or static wear leveling. Decides
/// which stats and trace class the copies charge to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CollectKind {
    Gc,
    Scrub,
    WearLevel,
}

/// Reserved transaction id stamped on GC copies of snapshot-retained
/// pre-images (valid tid-0 data pages the L2P no longer points at).
/// Snapshots die with device RAM, so these copies are garbage after any
/// power loss — the stamp keeps the recovery roll-forward from mistaking
/// a freshly relocated *old* version (whose program sequence is newer
/// than the overwrite's) for committed state. No host transaction may
/// use this id.
pub const RETAINED_COPY_TID: Tid = Tid::MAX;

/// Callback invoked when garbage collection moves a live page, so mapping
/// state outside the engine (the X-L2P table, atomic-write commit records)
/// can chase the page to its new address.
pub trait GcHook {
    /// `oob` is the page's metadata as originally written; the page now
    /// lives at `new` instead of `old`.
    fn relocated(&mut self, oob: &Oob, old: Ppa, new: Ppa);
}

/// Hook for devices with no mapping state outside the L2P table.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHook;

impl GcHook for NoHook {
    fn relocated(&mut self, _oob: &Oob, _old: Ppa, _new: Ppa) {}
}

/// One page programmed after the last checkpoint, discovered by the
/// recovery scan. Data events with `tid == 0` are replayed directly;
/// `tid != 0` events are resolved by the transactional layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanEvent {
    /// Global program sequence number (defines replay order).
    pub seq: u64,
    /// Logical page (or table-specific tag).
    pub lpn: Lpn,
    /// Transaction id recorded in the OOB.
    pub tid: Tid,
    /// Where the page sits on flash.
    pub ppa: Ppa,
    /// Role of the page.
    pub kind: PageKind,
    /// Auxiliary OOB word as written.
    pub aux: u32,
}

/// Lifetime erase-count distribution across the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WearSummary {
    /// Fewest erases of any block.
    pub min: u64,
    /// Most erases of any block.
    pub max: u64,
    /// Total erases across the array.
    pub total: u64,
    /// Number of blocks.
    pub blocks: u32,
}

impl WearSummary {
    /// Mean erases per block.
    pub fn mean(&self) -> f64 {
        self.total as f64 / self.blocks.max(1) as f64
    }
}

/// Everything recovery learned beyond the checkpoint itself.
#[derive(Debug, Clone)]
pub struct RecoveryLog {
    /// Post-checkpoint pages in ascending sequence order.
    pub events: Vec<ScanEvent>,
    /// Concatenated contents of the persisted X-L2P table pages, if the
    /// checkpoint pointed at any: `(newest_program_seq, raw_bytes)`.
    pub xl2p: Option<(u64, Vec<u8>)>,
    /// Sequence number the loaded checkpoint covers; only X-L2P tables
    /// written after it carry unfolded commits.
    pub ckpt_seq: u64,
    /// The *previous* boot's transaction horizon: transactional pages at
    /// or before it belong to dead transactions of earlier lives (unless
    /// already folded via the checkpoint).
    pub tx_horizon: u64,
}

/// The shared FTL engine. See the module docs for the division of labour
/// between this type and the device personalities wrapping it.
#[derive(Debug)]
pub struct FtlBase {
    chip: FlashChip,
    logical_pages: u64,
    /// Residency and dirtiness of the demand-paged L2P (the CMT). The
    /// authoritative mapping lives in translation pages on flash.
    cmt: MappingCache,
    /// Flash home of each persisted L2P slab (the GTD contents).
    map_locs: Vec<Option<Ppa>>,
    /// Paged-GTD mode: flash home of each GTD page (`None` until first
    /// written) and which GTD pages have stale persisted copies. Both
    /// empty in inline mode.
    gtd_locs: Vec<Option<Ppa>>,
    gtd_dirty: Vec<bool>,
    /// True when the slab-pointer table outgrows the root page and rides
    /// in GTD pages instead. Decided by geometry at format/recover.
    gtd_paged: bool,
    /// Locations of the persisted X-L2P table pages (owned by the X-FTL
    /// layer; stored here because they ride in the meta page and are
    /// GC-relocatable).
    xl2p_roots: Vec<Ppa>,
    valid: ValidityMap,
    /// Class of each block: 0 = free/unknown, 1 = data, 2 = mapping.
    block_class: Vec<u8>,
    /// Victim-selection policy.
    gc_policy: GcPolicy,
    /// Sequence number of the most recent program into each block
    /// (cost-benefit "age" reference; 0 = never programmed this boot).
    block_last_seq: Vec<u64>,
    /// Data blocks in allocation order (FIFO victim cursor).
    alloc_order: VecDeque<u32>,
    /// Open write blocks for host data pages, one per flash channel, so
    /// consecutive page allocations stripe across channels and queued
    /// programs can overlap (the write-interleaving real multi-channel
    /// firmware does).
    frontiers_data: Vec<Option<u32>>,
    /// Round-robin cursor over `frontiers_data`.
    data_cursor: usize,
    /// Cold-data frontiers (GC copies and low-heat LPNs), one per
    /// channel, used only when hot/cold separation is enabled.
    frontiers_cold: Vec<Option<u32>>,
    /// Round-robin cursor over `frontiers_cold`.
    cold_cursor: usize,
    /// Hot/cold separation switch (off by default: the paper's figures
    /// run a single frontier per channel).
    hot_cold: bool,
    /// Per-LPN recent write frequency, feeding hot/cold placement.
    heat: HeatSketch,
    /// Open write block for mapping-class pages (L2P slabs, X-L2P tables,
    /// commit records). Real FTLs — the OpenSSD included — segregate map
    /// blocks from data blocks; mixing them would let short-lived mapping
    /// pages pollute the data blocks' GC validity.
    frontier_map: Option<u32>,
    free_blocks: VecDeque<u32>,
    in_free: Vec<bool>,
    /// The bad-block table: blocks permanently retired after an erase
    /// failure. Never allocated from, never GC victims, persisted in the
    /// meta page and unioned with the chip's health marks at recovery.
    bad_blocks: Vec<bool>,
    /// Meta block currently being appended to (index into META_BLOCKS).
    meta_cur: usize,
    /// Sequence number covered by the last full checkpoint.
    ckpt_seq: u64,
    /// Sequence of the most recent power-cycle recovery (see
    /// [`crate::meta::MetaPage::tx_horizon`]).
    tx_horizon: u64,
    stats: FtlStats,
    counters: DevCounters,
    scratch: Vec<u8>,
    /// Guards against re-entering GC from a checkpoint issued inside GC.
    in_gc: bool,
    /// Background-scrub / wear-leveling policy (`None` = disabled, the
    /// historical behaviour).
    scrub: Option<ScrubConfig>,
    /// Host writes since the last scrub scan (compared against
    /// [`ScrubConfig::interval_ops`]).
    scrub_tick: u64,
    /// Most recent scrub relocation, for tests and the experiment rig.
    last_scrub: Option<(u32, ScrubReason)>,
    /// Device-health lifecycle state. Forward-only; persisted in the
    /// checkpoint root (meta v4) so it survives power cycles.
    device_state: DeviceState,
}

impl FtlBase {
    /// Formats a fresh chip to export `logical_pages` pages.
    ///
    /// # Panics
    /// If the geometry cannot hold `logical_pages` plus mapping/GC headroom
    /// (a configuration error, not a runtime condition).
    pub fn format(mut chip: FlashChip, logical_pages: u64) -> Result<FtlBase> {
        let geo = chip.config().geometry;
        let slabs = (logical_pages as usize).div_ceil(meta::entries_per_slab(geo.page_size));
        // Reserve pointer slots for up to 8 X-L2P table pages. When the
        // slab pointers themselves no longer fit inline, the root switches
        // to paged-GTD mode and only the (much smaller) GTD pointer table
        // must fit.
        let gtd_paged = slabs + 8 > MetaPage::max_pointers(geo.page_size);
        let gtd_pages = if gtd_paged {
            meta::gtd_page_count(slabs, geo.page_size)
        } else {
            0
        };
        assert!(
            if gtd_paged { gtd_pages } else { slabs } + 8 <= MetaPage::max_pointers(geo.page_size),
            "mapping directory needs {gtd_pages}/{slabs} pointers; one meta page indexes at \
             most {}",
            MetaPage::max_pointers(geo.page_size)
        );
        let data_blocks = geo.blocks.saturating_sub(META_BLOCKS.len());
        let needed_blocks = (logical_pages as usize + slabs + gtd_pages)
            .div_ceil(geo.pages_per_block)
            + MIN_SPARE_BLOCKS;
        assert!(
            data_blocks >= needed_blocks,
            "geometry too small: {data_blocks} data blocks < {needed_blocks} required \
             for {logical_pages} logical pages"
        );
        // A formatted chip starts erased except for the initial meta page.
        for mb in META_BLOCKS {
            if chip.write_point(mb) != Some(0) {
                chip.erase(mb)?;
            }
        }
        // Re-formatting a worn chip: blocks it already retired stay out of
        // the pool (factory bad-block marks, in real-firmware terms).
        let mut bad_blocks = vec![false; geo.blocks];
        for b in chip.retired_blocks() {
            bad_blocks[b as usize] = true;
        }
        // A fresh format leaves every slab resident: no translation pages
        // exist yet, and every frame is the all-unmapped slab (clean —
        // eviction without a persisted copy just drops it, and a demand
        // fetch with no `map_locs` entry reinstalls the same all-`None`
        // frame). Budgeted residency starts when the wrapper calls
        // [`FtlBase::set_map_cache_budget`].
        let eps = meta::entries_per_slab(geo.page_size);
        let mut cmt = MappingCache::new(slabs, eps, None);
        for slab in 0..slabs {
            cmt.install(slab, vec![None; eps].into_boxed_slice(), false);
        }
        let mut base = FtlBase {
            logical_pages,
            cmt,
            map_locs: vec![None; slabs],
            gtd_locs: vec![None; gtd_pages],
            gtd_dirty: vec![true; gtd_pages],
            gtd_paged,
            xl2p_roots: Vec::new(),
            valid: ValidityMap::new(geo.blocks, geo.pages_per_block),
            block_class: vec![0; geo.blocks],
            gc_policy: GcPolicy::Greedy,
            block_last_seq: vec![0; geo.blocks],
            alloc_order: VecDeque::new(),
            frontiers_data: vec![None; geo.channels.max(1) as usize],
            data_cursor: 0,
            frontiers_cold: vec![None; geo.channels.max(1) as usize],
            cold_cursor: 0,
            hot_cold: false,
            heat: HeatSketch::new(HEAT_SLOTS, HEAT_HALF_LIFE),
            frontier_map: None,
            free_blocks: (FIRST_POOL_BLOCK..geo.blocks as u32)
                .filter(|&b| !bad_blocks[b as usize])
                .collect(),
            in_free: {
                let mut v = vec![true; geo.blocks];
                for mb in META_BLOCKS {
                    v[mb as usize] = false;
                }
                for (b, bad) in bad_blocks.iter().enumerate() {
                    if *bad {
                        v[b] = false;
                    }
                }
                v
            },
            bad_blocks,
            meta_cur: 0,
            ckpt_seq: 0,
            tx_horizon: 0,
            stats: FtlStats::default(),
            counters: DevCounters::default(),
            scratch: vec![0u8; geo.page_size],
            in_gc: false,
            scrub: None,
            scrub_tick: 0,
            last_scrub: None,
            device_state: DeviceState::Healthy,
            chip,
        };
        base.write_meta()?;
        base.ckpt_seq = base.chip.next_seq() - 1;
        Ok(base)
    }

    // --- accessors -------------------------------------------------------

    /// Bytes per page.
    pub fn page_size(&self) -> usize {
        self.chip.config().geometry.page_size
    }

    /// Pages per erase block.
    pub fn pages_per_block(&self) -> usize {
        self.chip.config().geometry.pages_per_block
    }

    /// Exported logical capacity in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.logical_pages
    }

    /// Shared simulated clock.
    pub fn clock(&self) -> SimClock {
        self.chip.clock().clone()
    }

    /// FTL-attributed operation statistics.
    pub fn stats(&self) -> &FtlStats {
        &self.stats
    }

    /// Mutable statistics access for the wrapping device (e.g. the X-FTL
    /// group-commit accounting, which the engine itself cannot observe).
    pub fn stats_mut(&mut self) -> &mut FtlStats {
        &mut self.stats
    }

    /// Host-visible command counters (maintained by the wrapping device).
    pub fn counters(&self) -> &DevCounters {
        &self.counters
    }

    /// Mutable access to the host-visible counters for the wrapping device.
    pub fn counters_mut(&mut self) -> &mut DevCounters {
        &mut self.counters
    }

    /// Raw media statistics from the chip.
    pub fn flash_stats(&self) -> xftl_flash::FlashStats {
        *self.chip.stats()
    }

    /// Per-block wear summary (lifetime erase counts). The paper argues
    /// X-FTL "doubles the life span" by halving writes; this exposes the
    /// erase distribution behind that claim.
    pub fn wear(&self) -> WearSummary {
        let blocks = self.chip.config().geometry.blocks as u32;
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut total = 0u64;
        for b in 0..blocks {
            let e = self.chip.erase_count(b);
            min = min.min(e);
            max = max.max(e);
            total += e;
        }
        WearSummary {
            min,
            max,
            total,
            blocks,
        }
    }

    /// Resets FTL and chip statistics (the clock is unaffected).
    pub fn reset_stats(&mut self) {
        self.stats = FtlStats::default();
        self.counters = DevCounters::default();
        self.chip.reset_stats();
    }

    /// Read-only chip access, for the verify oracle's physics audits.
    pub fn chip(&self) -> &FlashChip {
        &self.chip
    }

    /// The telemetry handle installed on the underlying chip (disabled
    /// unless one was set before format/recover).
    pub fn recorder(&self) -> &Telemetry {
        self.chip.recorder()
    }

    /// Direct chip access, for failure injection in tests and benches.
    pub fn chip_mut(&mut self) -> &mut FlashChip {
        &mut self.chip
    }

    /// Consumes the device, returning the flash medium — the only thing
    /// that survives a power loss. Recover with [`FtlBase::recover`].
    pub fn into_chip(self) -> FlashChip {
        self.chip
    }

    /// Current committed mapping of `lpn`. Demand-fetches the covering
    /// slab if it is not resident (a charged flash read, possibly with an
    /// eviction flush first) — translation traffic is a first-class cost.
    pub fn l2p_get(&mut self, lpn: Lpn) -> Result<Option<Ppa>> {
        let slab = self.cmt.slab_of_lpn(lpn);
        self.ensure_resident(slab)?;
        Ok(self.cmt.get(lpn).unwrap_or(None))
    }

    /// Side-effect-free mapping lookup for auditors and oracles: resident
    /// slabs answer from RAM (no referenced-bit update); non-resident
    /// slabs are answered by decoding the persisted translation page via
    /// the chip's silent read — no clock, stats, or fault-plan activity.
    pub fn l2p_peek(&self, lpn: Lpn) -> Option<Ppa> {
        if lpn >= self.logical_pages {
            return None;
        }
        if let Some(entry) = self.cmt.peek(lpn) {
            return entry;
        }
        let slab = self.cmt.slab_of_lpn(lpn);
        let loc = self.map_locs.get(slab).copied().flatten()?;
        let mut buf = vec![0u8; self.page_size()];
        self.chip.read_silent(loc, &mut buf)?;
        let entries = meta::decode_slab_entries(&buf, self.pages_per_block());
        entries
            .get((lpn as usize) % self.cmt.entries_per_slab())
            .copied()
            .flatten()
    }

    /// The mapping cache's residency bookkeeping (budget, hit counters
    /// live in [`FtlStats`]).
    pub fn map_cache(&self) -> &MappingCache {
        &self.cmt
    }

    /// Bounds the mapping cache to `budget` resident slabs (`None` =
    /// unbounded), evicting down immediately. Dirty victims are flushed
    /// to translation pages first, so this is safe at any point.
    pub fn set_map_cache_budget(&mut self, budget: Option<usize>) -> Result<()> {
        self.cmt.set_budget(budget);
        while let Some(b) = self.cmt.budget() {
            if self.cmt.resident() <= b {
                break;
            }
            if !self.evict_one()? {
                break;
            }
        }
        Ok(())
    }

    /// Number of free (fully erased, pooled) blocks.
    pub fn free_block_count(&self) -> usize {
        self.free_blocks.len()
            + self.frontiers_data.iter().filter(|f| f.is_some()).count()
            + self.frontiers_cold.iter().filter(|f| f.is_some()).count()
            + usize::from(self.frontier_map.is_some())
    }

    /// True if any L2P slab has un-persisted changes. Non-resident slabs
    /// are clean by invariant (eviction flushes before dropping).
    pub fn has_dirty_mapping(&self) -> bool {
        self.cmt.any_dirty()
    }

    /// Locations of the persisted X-L2P table pages recorded in the meta
    /// page (empty when no table is live).
    pub fn xl2p_roots(&self) -> &[Ppa] {
        &self.xl2p_roots
    }

    /// Number of blocks in the bad-block table.
    pub fn bad_block_count(&self) -> usize {
        self.bad_blocks.iter().filter(|b| **b).count()
    }

    /// True if `block` has been retired to the bad-block table.
    pub fn is_bad_block(&self, block: u32) -> bool {
        self.bad_blocks
            .get(block as usize)
            .copied()
            .unwrap_or(false)
    }

    /// True if `block` sits in an allocation path (free pool or an open
    /// write frontier) — the auditor uses this to prove retired blocks
    /// can never be handed out again.
    pub fn is_allocatable(&self, block: u32) -> bool {
        self.in_free.get(block as usize).copied().unwrap_or(false)
            || self.frontiers_data.contains(&Some(block))
            || self.frontiers_cold.contains(&Some(block))
            || self.frontier_map == Some(block)
    }

    /// Retired blocks in ascending order.
    pub fn bad_block_list(&self) -> Vec<u32> {
        self.bad_blocks
            .iter()
            .enumerate()
            .filter(|(_, bad)| **bad)
            .map(|(b, _)| b as u32)
            .collect()
    }

    /// First block past the meta ring: the start of the data/map pool.
    /// Auditors use this to scope wear checks to pool blocks (the meta
    /// ring cycles on every root write and wears on its own schedule).
    pub fn first_pool_block(&self) -> u32 {
        FIRST_POOL_BLOCK
    }

    /// Current device-health state (see [`DeviceState`]).
    pub fn device_state(&self) -> DeviceState {
        self.device_state
    }

    /// Enables (`Some`) or disables (`None`) the background scrubber and
    /// static wear leveling. Takes effect on the next GC tick.
    pub fn set_scrub_config(&mut self, cfg: Option<ScrubConfig>) {
        self.scrub = cfg;
        self.scrub_tick = 0;
    }

    /// The active scrub policy, if any.
    pub fn scrub_config(&self) -> Option<ScrubConfig> {
        self.scrub
    }

    /// Most recent scrub relocation `(block, reason)`, if any ran.
    pub fn last_scrub(&self) -> Option<(u32, ScrubReason)> {
        self.last_scrub
    }

    /// Pool blocks the device needs to keep its write path alive: enough
    /// to hold every logical page, the translation pages, and the spare
    /// headroom the constructor insisted on. This is the format-time
    /// sizing check re-evaluated against the current bad-block table.
    fn required_pool_blocks(&self) -> usize {
        let geo = self.chip.config().geometry;
        (self.logical_pages as usize + self.map_locs.len() + self.gtd_locs.len())
            .div_ceil(geo.pages_per_block)
            + MIN_SPARE_BLOCKS
    }

    /// Pool blocks still usable: everything outside the meta ring and the
    /// bad-block table.
    fn usable_pool_blocks(&self) -> usize {
        let geo = self.chip.config().geometry;
        geo.blocks
            .saturating_sub(META_BLOCKS.len())
            .saturating_sub(self.bad_block_count())
    }

    /// Fails dirtying operations once the device has degraded to
    /// read-only. Reads, meta/state persistence, and recovery bypass this
    /// on purpose.
    fn check_writable(&self) -> Result<()> {
        if self.device_state == DeviceState::ReadOnly {
            Err(DevError::ReadOnly)
        } else {
            Ok(())
        }
    }

    /// Walks the health state machine forward (never backward) to `new`,
    /// counting the entry and persisting the transition so it survives
    /// power cycles. Persistence is best-effort: on a device dying hard
    /// enough that even the root cannot be written, the RAM state still
    /// gates writes and recovery re-derives degradation from the pool it
    /// finds.
    fn enter_state(&mut self, new: DeviceState) {
        if new <= self.device_state {
            return;
        }
        let t = self.chip.clock().now();
        self.device_state = new;
        match new {
            DeviceState::Healthy => {}
            DeviceState::Degraded => self.stats.degraded_entries += 1,
            DeviceState::ReadOnly => self.stats.read_only_entries += 1,
        }
        self.chip
            .recorder()
            .record_span(OpClass::DegradedEntry, 0, new.as_u64(), t, t);
        let _ = self.write_meta(); // xftl-analyze: allow(error-discard): best-effort persistence — on a device too far gone to write its root, the RAM state still gates writes and recovery re-derives degradation from the pool census
    }

    /// Classifies a pool-exhaustion failure: on a device that has lost
    /// blocks to retirement this is end-of-life degradation (the device
    /// goes read-only, permanently); on a healthy device it is the host
    /// over-filling its over-provisioning (a transient, logical error).
    fn space_error(&mut self) -> DevError {
        if self.bad_block_count() > 0 {
            self.enter_state(DeviceState::ReadOnly);
            DevError::ReadOnly
        } else {
            DevError::OutOfSpace
        }
    }

    /// Records an erase failure: the block leaves every allocation path
    /// for good. Its live pages (if any) were copied out by the caller,
    /// so retirement costs capacity, never data. Once retirements eat
    /// into the spare headroom the format-time sizing guaranteed, the
    /// device enters the `Degraded` state.
    fn retire_block(&mut self, block: u32) {
        if !self.bad_blocks[block as usize] {
            self.bad_blocks[block as usize] = true;
            self.stats.bad_block_retirements += 1;
        }
        self.in_free[block as usize] = false;
        self.block_class[block as usize] = 0;
        if self.usable_pool_blocks() < self.required_pool_blocks() {
            self.enter_state(DeviceState::Degraded);
        }
    }

    /// Removes `block` from the open write frontiers after a program
    /// failure: the re-executed write must land on a fresh block. The
    /// abandoned block keeps its valid pages until GC reclaims it (a
    /// clean erase rehabilitates a suspect block for reuse).
    fn abandon_frontier(&mut self, block: u32) {
        for f in self
            .frontiers_data
            .iter_mut()
            .chain(&mut self.frontiers_cold)
        {
            if *f == Some(block) {
                *f = None;
            }
        }
        if self.frontier_map == Some(block) {
            self.frontier_map = None;
        }
    }

    /// Synchronous read with bounded ECC-failure retries, counted in
    /// [`FtlStats::read_retries`].
    fn read_retry(&mut self, ppa: Ppa, buf: &mut [u8]) -> Result<Oob> {
        let (r, retries) = read_with_retries(&mut self.chip, ppa, buf);
        self.stats.read_retries += retries;
        Ok(r?)
    }

    fn check_lpn(&self, lpn: Lpn) -> Result<()> {
        if lpn < self.logical_pages {
            Ok(())
        } else {
            Err(DevError::BadLpn(lpn))
        }
    }

    // --- allocation and GC -----------------------------------------------

    /// Next free slot in the appropriate log frontier, opening a new
    /// block as needed. Mapping-class pages (`Map`, `XL2p`, `Commit`) use
    /// their own frontier so they never share blocks with host data. Data
    /// pages rotate over one frontier per channel, so back-to-back page
    /// allocations land on different channels and queued programs overlap.
    fn alloc_slot(&mut self, kind: PageKind) -> Result<Ppa> {
        self.alloc_slot_class(kind, false)
    }

    /// [`FtlBase::alloc_slot`] with an explicit temperature: `cold` data
    /// pages (GC copies, low-heat LPNs) fill their own per-channel
    /// frontiers so hot churn and cold residue age in different blocks.
    /// Only meaningful for `PageKind::Data`.
    fn alloc_slot_class(&mut self, kind: PageKind, cold: bool) -> Result<Ppa> {
        let map_class = matches!(kind, PageKind::Map | PageKind::XL2p | PageKind::Commit);
        if map_class {
            loop {
                if let Some(b) = self.frontier_map {
                    if let Some(wp) = self.chip.write_point(b) {
                        return Ok(Ppa::new(b, wp));
                    }
                    self.frontier_map = None;
                }
                match self.pop_free_min_wear() {
                    Some(b) => {
                        self.in_free[b as usize] = false;
                        self.block_class[b as usize] = 2;
                        self.frontier_map = Some(b);
                    }
                    None => return Err(DevError::OutOfSpace),
                }
            }
        }
        let channels = self.frontiers_data.len();
        for i in 0..channels {
            let cursor = if cold {
                self.cold_cursor
            } else {
                self.data_cursor
            };
            let ch = (cursor + i) % channels;
            let open = if cold {
                self.frontiers_cold[ch]
            } else {
                self.frontiers_data[ch]
            };
            if let Some(b) = open {
                if let Some(wp) = self.chip.write_point(b) {
                    self.advance_cursor(cold, ch, channels);
                    return Ok(Ppa::new(b, wp));
                }
                if cold {
                    self.frontiers_cold[ch] = None;
                } else {
                    self.frontiers_data[ch] = None;
                }
            }
            if let Some(b) = self.pop_free_for_channel(ch) {
                self.in_free[b as usize] = false;
                self.block_class[b as usize] = 1;
                self.alloc_order.push_back(b);
                if cold {
                    self.frontiers_cold[ch] = Some(b);
                } else {
                    self.frontiers_data[ch] = Some(b);
                }
                self.advance_cursor(cold, ch, channels);
                return Ok(Ppa::new(b, 0));
            }
        }
        Err(DevError::OutOfSpace)
    }

    fn advance_cursor(&mut self, cold: bool, ch: usize, channels: usize) {
        if cold {
            self.cold_cursor = (ch + 1) % channels;
        } else {
            self.data_cursor = (ch + 1) % channels;
        }
    }

    /// Position of the least-worn free block satisfying `keep`, ties
    /// broken by queue position (which on a fresh chip makes wear-aware
    /// allocation identical to the historical FIFO order).
    fn min_wear_pos(&self, keep: impl Fn(u32) -> bool) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for (pos, &b) in self.free_blocks.iter().enumerate() {
            if !keep(b) {
                continue;
            }
            let e = self.chip.erase_count(b);
            if best.is_none_or(|(be, _)| e < be) {
                best = Some((e, pos));
            }
        }
        best.map(|(_, pos)| pos)
    }

    /// Pops the least-worn free block (wear-aware frontier allocation:
    /// fresh frontiers open on the coldest spare cells, spreading erase
    /// load across the array).
    fn pop_free_min_wear(&mut self) -> Option<u32> {
        let pos = self.min_wear_pos(|_| true)?;
        self.free_blocks.remove(pos)
    }

    /// Pops the least-worn free block that physically lives on channel
    /// `ch`, falling back to the least-worn block on any channel: a
    /// frontier fed from the wrong channel still beats an idle one (the
    /// stripe self-heals as blocks recycle).
    fn pop_free_for_channel(&mut self, ch: usize) -> Option<u32> {
        let geo = self.chip.config().geometry;
        if let Some(pos) = self.min_wear_pos(|b| geo.channel_of(b) == ch) {
            return self.free_blocks.remove(pos);
        }
        self.pop_free_min_wear()
    }

    /// The geometry-scaled GC trigger: single-channel devices keep the
    /// legacy floor, multi-channel devices hold two blocks of headroom
    /// per channel so a GC pass that opens cold frontiers on every
    /// channel cannot drain the pool mid-collection.
    fn gc_low_water(&self) -> usize {
        GC_LOW_WATER.max(2 * self.frontiers_data.len())
    }

    /// Runs garbage collection until the free pool is back above the low
    ///-water mark. Wrappers call this before host writes. The background
    /// scrubber and static wear leveling piggyback on this tick: every
    /// [`ScrubConfig::interval_ops`] calls (and only with pool headroom
    /// to spare) they each relocate at most one at-risk block.
    pub fn maybe_gc(&mut self, hook: &mut dyn GcHook) -> Result<()> {
        if self.in_gc {
            return Ok(()); // a checkpoint inside GC must not re-enter
        }
        while self.free_blocks.len() < self.gc_low_water() {
            self.in_gc = true;
            let r = self.gc_once(hook);
            self.in_gc = false;
            match r {
                Err(DevError::OutOfSpace) => return Err(self.space_error()),
                other => other?,
            }
        }
        // GC's demand fetches bypass budget enforcement (see
        // `ensure_resident`); trim the overshoot now that the pool is
        // back above the water mark.
        for _ in 0..self.cmt.over_budget_by() {
            if !self.evict_one()? {
                break;
            }
        }
        if let Some(cfg) = self.scrub {
            self.scrub_tick += 1;
            if self.scrub_tick >= cfg.interval_ops.max(1)
                && self.free_blocks.len() >= self.gc_low_water()
            {
                self.scrub_tick = 0;
                match self
                    .scrub_once(cfg, hook)
                    .and_then(|()| self.wear_level_once(cfg, hook))
                {
                    Err(DevError::OutOfSpace) => return Err(self.space_error()),
                    other => other?,
                }
            }
        }
        Ok(())
    }

    /// Scores every closed block against the scrub thresholds and
    /// relocates the riskiest one whose score crosses the trigger.
    /// Deterministic integer math: each component contributes
    /// `value * 1000 / threshold`, and a combined score ≥ 1000 — any one
    /// threshold reached, or several near misses compounding — fires.
    /// The reported reason is the dominant component.
    fn scrub_once(&mut self, cfg: ScrubConfig, hook: &mut dyn GcHook) -> Result<()> {
        let geo = self.chip.config().geometry;
        let now = self.chip.clock().now();
        let mut best: Option<(u64, u32, ScrubReason)> = None;
        for b in FIRST_POOL_BLOCK..geo.blocks as u32 {
            if !self.is_victim_candidate(b) {
                continue;
            }
            let s_read = self.chip.block_read_count(b) * 1000 / cfg.read_threshold.max(1);
            let s_flip = self.chip.block_corrected_flips(b) * 1000 / cfg.flip_threshold.max(1);
            let s_age = if cfg.age_threshold_ns == Nanos::MAX {
                0
            } else {
                let age = self
                    .chip
                    .block_first_program_at(b)
                    .map_or(0, |t| now.saturating_sub(t));
                age * 1000 / cfg.age_threshold_ns.max(1)
            };
            let score = s_read.saturating_add(s_flip).saturating_add(s_age);
            if score < 1000 {
                continue;
            }
            let reason = if s_flip >= s_read && s_flip >= s_age {
                ScrubReason::EccFeedback
            } else if s_read >= s_age {
                ScrubReason::ReadDisturb
            } else {
                ScrubReason::Retention
            };
            if best.is_none_or(|(s, _, _)| score > s) {
                best = Some((score, b, reason));
            }
        }
        let Some((_, victim, reason)) = best else {
            return Ok(());
        };
        self.in_gc = true;
        let r = self.collect_block(victim, CollectKind::Scrub, hook);
        self.in_gc = false;
        r?;
        self.last_scrub = Some((victim, reason));
        Ok(())
    }

    /// Static wear leveling: when the erase-count spread between the
    /// most-worn block and the coldest closed block exceeds the cap, the
    /// cold block is relocated so its low-wear cells rejoin the free pool
    /// (instead of sitting pinned under data that never changes while the
    /// rest of the array wears out).
    fn wear_level_once(&mut self, cfg: ScrubConfig, hook: &mut dyn GcHook) -> Result<()> {
        let geo = self.chip.config().geometry;
        let mut max_wear = 0u64;
        for b in FIRST_POOL_BLOCK..geo.blocks as u32 {
            if !self.bad_blocks[b as usize] {
                max_wear = max_wear.max(self.chip.erase_count(b));
            }
        }
        let mut coldest: Option<(u64, u32)> = None;
        for b in FIRST_POOL_BLOCK..geo.blocks as u32 {
            if !self.is_victim_candidate(b) {
                continue;
            }
            let e = self.chip.erase_count(b);
            if coldest.is_none_or(|(ce, _)| e < ce) {
                coldest = Some((e, b));
            }
        }
        let Some((cold_wear, victim)) = coldest else {
            return Ok(());
        };
        if max_wear.saturating_sub(cold_wear) <= cfg.wear_delta_cap {
            return Ok(());
        }
        self.in_gc = true;
        let r = self.collect_block(victim, CollectKind::WearLevel, hook);
        self.in_gc = false;
        r
    }

    /// Sets the GC victim-selection policy (the experiment rig uses FIFO
    /// to reproduce the paper's aged-drive regimes; the steady-state
    /// bench compares greedy against cost-benefit).
    pub fn set_gc_policy(&mut self, policy: GcPolicy) {
        self.gc_policy = policy;
    }

    /// The active GC victim-selection policy.
    pub fn gc_policy(&self) -> GcPolicy {
        self.gc_policy
    }

    /// Enables or disables hot/cold write-frontier separation. When on,
    /// host data writes of low-heat LPNs and all GC data copies go to
    /// per-channel cold frontiers instead of the (hot) data frontiers.
    pub fn set_hot_cold(&mut self, enabled: bool) {
        self.hot_cold = enabled;
    }

    fn is_victim_candidate(&self, b: u32) -> bool {
        !(b < FIRST_POOL_BLOCK
            || self.in_free[b as usize]
            || self.frontiers_data.contains(&Some(b))
            || self.frontiers_cold.contains(&Some(b))
            || Some(b) == self.frontier_map
            || self.chip.write_point(b) == Some(0))
    }

    /// Records a successful program into `block` for the cost-benefit age
    /// reference (the chip's global sequence counter doubles as a clock).
    fn note_block_program(&mut self, block: u32) {
        self.block_last_seq[block as usize] = self.chip.next_seq().saturating_sub(1);
    }

    /// Greedy fallback: fewest valid pages among closed, non-free,
    /// non-meta blocks.
    fn pick_victim_greedy(&self) -> Option<u32> {
        let geo = self.chip.config().geometry;
        let mut best: Option<(u32, u32)> = None;
        for b in FIRST_POOL_BLOCK..geo.blocks as u32 {
            if !self.is_victim_candidate(b) {
                continue;
            }
            let count = self.valid.valid_in_block(b);
            if best.is_none_or(|(_, c)| count < c) {
                best = Some((b, count));
            }
        }
        // A fully valid victim cannot gain space; give up rather than churn.
        match best {
            Some((b, c)) if (c as usize) < geo.pages_per_block => Some(b),
            _ => None,
        }
    }

    /// Cost-benefit selection: maximize `(1 − u) / (1 + u) × age`. The
    /// benefit term is the reclaimable space over the copy cost (Kawaguchi
    /// et al.); the age term (programs since the block last took a write)
    /// lets old, moderately-valid cold blocks eventually beat young nearly
    /// -empty hot blocks whose garbage is still accumulating. Data and
    /// mapping blocks compete as separate classes — the best scorer of
    /// each is computed and the global winner collected — so the stats can
    /// attribute victims per class and neither class starves the other.
    fn pick_victim_cost_benefit(&self) -> Option<u32> {
        let geo = self.chip.config().geometry;
        let now = self.chip.next_seq();
        let ppb = geo.pages_per_block as f64;
        let mut best: [Option<(f64, u32)>; 2] = [None, None];
        for b in FIRST_POOL_BLOCK..geo.blocks as u32 {
            if !self.is_victim_candidate(b) {
                continue;
            }
            let valid = self.valid.valid_in_block(b);
            if valid as usize >= geo.pages_per_block {
                continue; // nothing reclaimable
            }
            let u = valid as f64 / ppb;
            let age = now.saturating_sub(self.block_last_seq[b as usize]) as f64;
            // All inputs are small exact integers, so the f64 score is a
            // deterministic function of device state; ties break on the
            // lower block index because `>` keeps the first maximum.
            let score = (1.0 - u) / (1.0 + u) * age;
            let class = usize::from(self.block_class[b as usize] == 2);
            if best[class].is_none_or(|(s, _)| score > s) {
                best[class] = Some((score, b));
            }
        }
        match (best[0], best[1]) {
            (Some((sd, bd)), Some((sm, bm))) => Some(if sm > sd { bm } else { bd }),
            (Some((_, b)), None) | (None, Some((_, b))) => Some(b),
            (None, None) => None,
        }
    }

    fn pick_victim(&mut self) -> Option<u32> {
        if self.gc_policy == GcPolicy::CostBenefit {
            // Urgent-GC fallback: with the free pool nearly drained, the
            // age-weighted score must not pick a high-valid old block —
            // copying most of a block while nearly out of space is how a
            // device deadlocks. Greedy's min-valid victim maximizes the
            // immediate net gain; cost-benefit resumes once headroom is
            // back.
            if self.free_blocks.len() <= self.frontiers_data.len() {
                return self.pick_victim_greedy();
            }
            return self.pick_victim_cost_benefit();
        }
        if self.gc_policy == GcPolicy::Fifo {
            let ppb = self.chip.config().geometry.pages_per_block as u32;
            // Oldest closed data block that yields at least one page.
            for _ in 0..self.alloc_order.len() {
                let Some(b) = self.alloc_order.pop_front() else {
                    break;
                };
                if !self.is_victim_candidate(b) || self.block_class[b as usize] != 1 {
                    // Stale entry (erased/reused) or currently open: drop
                    // it; it re-enters the queue when reallocated.
                    if self.frontiers_data.contains(&Some(b)) {
                        self.alloc_order.push_back(b);
                    }
                    continue;
                }
                if self.valid.valid_in_block(b) * 10 >= ppb * 9 {
                    // (Nearly) fully valid: collecting it would copy ~a
                    // whole block to reclaim a page or two. Recycle to the
                    // back and try the next — even simple firmware bounds
                    // its write amplification this way.
                    self.alloc_order.push_back(b);
                    continue;
                }
                return Some(b);
            }
        }
        self.pick_victim_greedy()
    }

    /// Picks a GC victim and collects it.
    fn gc_once(&mut self, hook: &mut dyn GcHook) -> Result<()> {
        let victim = self.pick_victim().ok_or(DevError::OutOfSpace)?;
        self.collect_block(victim, CollectKind::Gc, hook)
    }

    /// Relocates every live page of `victim` to the frontier, fixes every
    /// table that pointed at them, and erases the block. Shared by GC,
    /// the background scrubber (whose erase also resets the block's
    /// read-disturb and retention damage), and static wear leveling;
    /// `why` attributes the copies to the right stats and trace class.
    fn collect_block(
        &mut self,
        victim: u32,
        why: CollectKind,
        hook: &mut dyn GcHook,
    ) -> Result<()> {
        let geo = self.chip.config().geometry;
        let copy_class = match why {
            CollectKind::Gc => OpClass::GcCopy,
            CollectKind::Scrub => OpClass::ScrubCopy,
            CollectKind::WearLevel => OpClass::WearLevelCopy,
        };
        let mut meta_stale = false;
        // Set when a *committed* page that carries transactional cycle
        // metadata (TxFlash's aux link) is re-stamped: the remaining cycle
        // members lose their recovery evidence, so the L2P fold must be
        // persisted before the victim is erased.
        let mut need_ckpt = false;
        let mut copied = 0u64;
        for page in 0..geo.pages_per_block as u32 {
            let old = Ppa::new(victim, page);
            if !self.valid.is_valid(old) {
                continue;
            }
            let t_copy = self.chip.clock().now();
            let mut buf = std::mem::take(&mut self.scratch);
            // Copy-backs ride the device queue: the read and the program
            // of one page are chained (`not_before`), but copies of
            // different pages overlap when source and destination sit on
            // different channels, so GC steals less host time. ECC
            // failures on the source get bounded re-reads; the scratch
            // buffer must be restored on every error path.
            let (oob, read_done) = {
                let mut r = self.chip.read_queued(old, &mut buf, 0);
                let mut tries = 0;
                while tries < READ_RETRY_LIMIT && matches!(r, Err(FlashError::Uncorrectable(_))) {
                    tries += 1;
                    self.stats.read_retries += 1;
                    r = self.chip.read_queued(old, &mut buf, 0);
                }
                match r {
                    Ok(v) => v,
                    Err(e) => {
                        self.scratch = buf;
                        return Err(e.into());
                    }
                }
            };
            // The committed-mapping test below may demand-fetch the
            // covering slab (a charged translation read — part of GC's
            // true cost in a demand-paged FTL).
            let mapped_here = if oob.kind == PageKind::Data {
                match self.l2p_get(oob.lpn) {
                    Ok(entry) => entry == Some(old),
                    Err(e) => {
                        self.scratch = buf;
                        return Err(e);
                    }
                }
            } else {
                false
            };
            // GC data copies are cold by definition — they survived a
            // whole block's lifetime without being overwritten.
            let cold_copy = self.hot_cold && oob.kind == PageKind::Data;
            let mut dst = match self.alloc_slot_class(oob.kind, cold_copy) {
                Ok(d) => d,
                Err(e) => {
                    self.scratch = buf;
                    return Err(e);
                }
            };
            // A GC copy of the *committed* version of a data page is
            // re-stamped tid = 0 so the recovery roll-forward treats it as
            // committed state even if its writer's X-L2P entry is long gone.
            let mut new_oob = oob;
            if oob.kind == PageKind::Data {
                if mapped_here {
                    if oob.tid != 0 && oob.aux != 0 {
                        need_ckpt = true;
                    }
                    new_oob.tid = 0;
                    new_oob.aux = 0;
                } else if oob.tid == 0 {
                    // A valid tid-0 page the L2P does not point at is a
                    // snapshot-retained pre-image. Its copy gets a fresh
                    // (newer) program sequence, so left stamped tid 0 the
                    // recovery roll-forward would resurrect the superseded
                    // version over the page's current state. Mark it as a
                    // retained copy, which recovery never folds.
                    new_oob.tid = RETAINED_COPY_TID;
                }
            }
            // Copy programs get the same bounded re-execution as host
            // writes: a failed copy-back must not lose the live page.
            let mut attempts = 0;
            let prog_done = loop {
                match self.chip.program_queued(dst, &buf, new_oob, read_done) {
                    Ok((_, done)) => break done,
                    Err(FlashError::ProgramFailed(_)) if attempts < PROGRAM_RETRY_LIMIT => {
                        attempts += 1;
                        self.stats.program_retries += 1;
                        self.abandon_frontier(dst.block);
                        dst = match self.alloc_slot_class(oob.kind, cold_copy) {
                            Ok(d) => d,
                            Err(e) => {
                                self.scratch = buf;
                                return Err(e);
                            }
                        };
                    }
                    Err(e) => {
                        self.scratch = buf;
                        return Err(e.into());
                    }
                }
            };
            self.scratch = buf;
            self.note_block_program(dst.block);
            if cold_copy {
                self.stats.cold_writes += 1;
            }
            self.chip
                .recorder()
                .record_span(copy_class, 0, oob.lpn, t_copy, prog_done);
            match why {
                CollectKind::Gc => self.stats.gc_copies += 1,
                CollectKind::Scrub => self.stats.scrub_copies += 1,
                CollectKind::WearLevel => self.stats.wear_level_copies += 1,
            }
            copied += 1;
            self.valid.mark_invalid(old);
            self.valid.mark_valid(dst);
            match oob.kind {
                PageKind::Data => {
                    if mapped_here {
                        // The slab is resident (the test above fetched
                        // it) — update the cached entry in place.
                        let slab = self.cmt.slab_of_lpn(oob.lpn);
                        self.ensure_resident(slab)?;
                        self.cmt.set(oob.lpn, Some(dst));
                    }
                }
                PageKind::Map if oob.aux == meta::GTD_AUX => {
                    // A relocated GTD page: the root lists these directly.
                    let idx = oob.lpn as usize;
                    if self.gtd_locs.get(idx).copied().flatten() == Some(old) {
                        self.gtd_locs[idx] = Some(dst);
                        meta_stale = true;
                    }
                }
                PageKind::Map => {
                    let idx = oob.lpn as usize;
                    if self.map_locs.get(idx).copied().flatten() == Some(old) {
                        self.map_locs[idx] = Some(dst);
                        self.mark_gtd_dirty(idx);
                        meta_stale = true;
                    }
                }
                PageKind::XL2p => {
                    if let Some(slot) = self.xl2p_roots.iter_mut().find(|p| **p == old) {
                        *slot = dst;
                        meta_stale = true;
                    }
                }
                PageKind::Commit => {}
                PageKind::Meta => unreachable!("meta blocks are never GC victims"),
            }
            hook.relocated(&oob, old, dst);
        }
        if need_ckpt {
            // Persist the folded mapping before the originals vanish: a
            // crash after the erase must not depend on the (now broken)
            // cycle for recovery.
            self.checkpoint_internal(hook)?;
            meta_stale = false; // checkpoint wrote a fresh meta root
        }
        // The erase is queued too; the chip's per-unit busy tracking
        // already orders it after the in-flight reads from this block.
        match self.chip.erase_queued(victim, 0) {
            Ok(_) => {
                self.free_blocks.push_back(victim);
                self.in_free[victim as usize] = true;
            }
            Err(FlashError::EraseFailed(_)) => {
                // Every live page was already copied out above, so losing
                // the block costs capacity, not data. Retire it; the
                // refreshed meta root below persists the table.
                self.retire_block(victim);
                meta_stale = true;
            }
            Err(e) => return Err(e.into()),
        }
        match why {
            CollectKind::Gc => {
                self.stats.gc_runs += 1;
                // The validity ratio (the paper's aging knob) concerns
                // *data* blocks; recycling nearly-dead mapping blocks is
                // bookkept apart.
                if self.block_class[victim as usize] == 1 {
                    self.stats.gc_victim_pages += geo.pages_per_block as u64;
                    self.stats.gc_valid_pages += copied;
                    if self.gc_policy == GcPolicy::CostBenefit {
                        self.stats.gc_cb_data_victims += 1;
                    }
                } else {
                    self.stats.gc_map_runs += 1;
                    if self.gc_policy == GcPolicy::CostBenefit {
                        self.stats.gc_cb_map_victims += 1;
                    }
                }
            }
            CollectKind::Scrub => self.stats.scrub_runs += 1,
            CollectKind::WearLevel => self.stats.wear_level_runs += 1,
        }
        self.block_class[victim as usize] = 0;
        if meta_stale {
            // The checkpoint root must chase relocated map/X-L2P pages
            // immediately, or a crash would leave it pointing into an
            // erased block.
            self.write_meta()?;
        }
        Ok(())
    }

    // --- page I/O ---------------------------------------------------------

    /// Reads the committed version of `lpn`. Unmapped pages read as zeros
    /// (the device never returns stale neighbours' data).
    pub fn read_committed(&mut self, lpn: Lpn, buf: &mut [u8]) -> Result<()> {
        self.check_lpn(lpn)?;
        let t_start = self.chip.clock().now();
        match self.l2p_get(lpn)? {
            Some(ppa) => {
                self.read_retry(ppa, buf)?;
            }
            None => {
                let overhead = self.chip.config().timings.cmd_overhead_ns / 4;
                self.chip.clock().advance(overhead);
                buf.fill(0);
            }
        }
        let t_end = self.chip.clock().now();
        self.chip
            .recorder()
            .record_span(OpClass::FtlHostRead, 0, lpn, t_start, t_end);
        Ok(())
    }

    /// Reads a page at a known physical address (e.g. an X-L2P version),
    /// with bounded ECC-failure retries.
    pub fn read_at(&mut self, ppa: Ppa, buf: &mut [u8]) -> Result<Oob> {
        self.read_retry(ppa, buf)
    }

    /// Programs a page of any kind into the log frontier and marks it
    /// valid. Does not touch the L2P table — callers decide the mapping
    /// semantics. Runs GC first if space is low.
    pub fn program_raw(
        &mut self,
        kind: PageKind,
        lpn: Lpn,
        tid: Tid,
        buf: &[u8],
        hook: &mut dyn GcHook,
    ) -> Result<Ppa> {
        self.program_raw_aux(kind, lpn, tid, 0, buf, hook)
    }

    /// [`FtlBase::program_raw`] with an explicit auxiliary OOB word (used
    /// by the TxFlash baseline's cyclic-commit links).
    pub fn program_raw_aux(
        &mut self,
        kind: PageKind,
        lpn: Lpn,
        tid: Tid,
        aux: u32,
        buf: &[u8],
        hook: &mut dyn GcHook,
    ) -> Result<Ppa> {
        self.check_writable()?;
        self.maybe_gc(hook)?;
        let cold = self.classify_write(kind, lpn);
        let mut attempts = 0;
        loop {
            let dst = match self.alloc_slot_class(kind, cold) {
                Ok(d) => d,
                Err(DevError::OutOfSpace) => return Err(self.space_error()),
                Err(e) => return Err(e),
            };
            let oob = Oob {
                lpn,
                seq: 0,
                tid,
                kind,
                aux,
            };
            match self.chip.program(dst, buf, oob) {
                Ok(_) => {
                    self.valid.mark_valid(dst);
                    self.note_program(kind);
                    self.note_block_program(dst.block);
                    return Ok(dst);
                }
                Err(FlashError::ProgramFailed(_)) if attempts < PROGRAM_RETRY_LIMIT => {
                    // Re-execute on a fresh block; the torn page was never
                    // marked valid and GC reclaims it with the block.
                    attempts += 1;
                    self.stats.program_retries += 1;
                    self.abandon_frontier(dst.block);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Hot/cold placement decision for one host data write: records the
    /// write in the heat sketch and routes low-heat LPNs cold. Non-data
    /// kinds and disabled separation always go hot (the default frontier).
    fn classify_write(&mut self, kind: PageKind, lpn: Lpn) -> bool {
        if !self.hot_cold || kind != PageKind::Data {
            return false;
        }
        self.heat.touch(lpn);
        let hot = self.heat.is_hot(lpn, HOT_THRESHOLD);
        if hot {
            self.stats.hot_writes += 1;
        } else {
            self.stats.cold_writes += 1;
        }
        !hot
    }

    /// Queued variant of [`FtlBase::program_raw_aux`]: dispatches the
    /// program into the device queue and returns the destination plus its
    /// media completion time without blocking the clock, so callers can
    /// overlap a batch of pages across channels. `not_before` chains the
    /// program after a data dependency (e.g. the read that produced `buf`).
    #[allow(clippy::too_many_arguments)] // mirrors `program_raw_aux` plus the queue knobs
    pub fn program_raw_queued(
        &mut self,
        kind: PageKind,
        lpn: Lpn,
        tid: Tid,
        aux: u32,
        buf: &[u8],
        not_before: Nanos,
        hook: &mut dyn GcHook,
    ) -> Result<(Ppa, Nanos)> {
        self.check_writable()?;
        self.maybe_gc(hook)?;
        let cold = self.classify_write(kind, lpn);
        let mut attempts = 0;
        loop {
            let dst = match self.alloc_slot_class(kind, cold) {
                Ok(d) => d,
                Err(DevError::OutOfSpace) => return Err(self.space_error()),
                Err(e) => return Err(e),
            };
            let oob = Oob {
                lpn,
                seq: 0,
                tid,
                kind,
                aux,
            };
            match self.chip.program_queued(dst, buf, oob, not_before) {
                Ok((_, done)) => {
                    self.valid.mark_valid(dst);
                    self.note_program(kind);
                    self.note_block_program(dst.block);
                    return Ok((dst, done));
                }
                Err(FlashError::ProgramFailed(_)) if attempts < PROGRAM_RETRY_LIMIT => {
                    attempts += 1;
                    self.stats.program_retries += 1;
                    self.abandon_frontier(dst.block);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn note_program(&mut self, kind: PageKind) {
        match kind {
            PageKind::Data => self.stats.data_writes += 1,
            PageKind::Map => self.stats.map_writes += 1,
            PageKind::XL2p => self.stats.xl2p_writes += 1,
            PageKind::Commit => self.stats.commit_record_writes += 1,
            PageKind::Meta => unreachable!("meta pages go through write_meta"),
        }
    }

    /// Copy-on-write data write that leaves the committed mapping intact
    /// (the X-FTL `write(tid, p)` path).
    pub fn write_cow(
        &mut self,
        lpn: Lpn,
        tid: Tid,
        buf: &[u8],
        hook: &mut dyn GcHook,
    ) -> Result<Ppa> {
        self.check_lpn(lpn)?;
        let t_start = self.chip.clock().now();
        let dst = self.program_raw(PageKind::Data, lpn, tid, buf, hook)?;
        let t_end = self.chip.clock().now();
        self.chip
            .recorder()
            .record_span(OpClass::FtlHostWrite, tid, lpn, t_start, t_end);
        Ok(dst)
    }

    /// Queued copy-on-write data write (the device's batched `write_tx`
    /// path): returns the new location and its completion time.
    pub fn write_cow_queued(
        &mut self,
        lpn: Lpn,
        tid: Tid,
        buf: &[u8],
        hook: &mut dyn GcHook,
    ) -> Result<(Ppa, Nanos)> {
        self.check_lpn(lpn)?;
        let t_start = self.chip.clock().now();
        let (dst, done) = self.program_raw_queued(PageKind::Data, lpn, tid, 0, buf, 0, hook)?;
        self.chip
            .recorder()
            .record_span(OpClass::FtlHostWrite, tid, lpn, t_start, done);
        Ok((dst, done))
    }

    /// Ordinary page write: copy-on-write plus immediate L2P update,
    /// invalidating the previous version (the plain-FTL path).
    pub fn write_committed(&mut self, lpn: Lpn, buf: &[u8], hook: &mut dyn GcHook) -> Result<()> {
        let dst = self.write_cow(lpn, 0, buf, hook)?;
        self.fold_mapping(lpn, dst)
    }

    /// Queued committed write (the device's batched `write` path): the
    /// mapping updates immediately, the media time is returned for the
    /// caller's completion bookkeeping.
    pub fn write_committed_queued(
        &mut self,
        lpn: Lpn,
        buf: &[u8],
        hook: &mut dyn GcHook,
    ) -> Result<Nanos> {
        let (dst, done) = self.write_cow_queued(lpn, 0, buf, hook)?;
        self.fold_mapping(lpn, dst)?;
        Ok(done)
    }

    /// Full queue barrier: advances the clock past every queued flash
    /// operation and returns the instant the array went idle.
    pub fn drain(&mut self) -> Nanos {
        self.chip.drain()
    }

    /// Partial queue barrier: advances the clock to `completion` (a time
    /// returned by one of the `_queued` methods).
    pub fn wait_for(&mut self, completion: Nanos) {
        self.chip.wait_for(completion);
    }

    /// Points the committed mapping of `lpn` at `ppa`, invalidating the
    /// previous version. Used by plain writes and by X-FTL commit folds.
    /// Fallible: the covering slab may need a demand fetch (and an
    /// eviction flush) first.
    pub fn fold_mapping(&mut self, lpn: Lpn, ppa: Ppa) -> Result<()> {
        let slab = self.cmt.slab_of_lpn(lpn);
        self.ensure_resident(slab)?;
        let old = self.cmt.get(lpn).unwrap_or(None);
        if old == Some(ppa) {
            return Ok(());
        }
        if let Some(old) = old {
            self.valid.mark_invalid(old);
        }
        self.cmt.set(lpn, Some(ppa));
        self.valid.mark_valid(ppa);
        Ok(())
    }

    /// Marks a physical page dead (superseded or aborted version).
    pub fn invalidate(&mut self, ppa: Ppa) {
        self.valid.mark_invalid(ppa);
    }

    /// Points the committed mapping of `lpn` at `ppa` but keeps the
    /// displaced version *valid* and returns it: the caller retains it in
    /// a version chain for active snapshot readers and invalidates it
    /// later via [`FtlBase::invalidate`] once no snapshot can reach it.
    /// Recovery rebuilds validity from L2P membership, so retained
    /// versions that die in a power loss become garbage automatically.
    pub fn fold_mapping_retain(&mut self, lpn: Lpn, ppa: Ppa) -> Result<Option<Ppa>> {
        let slab = self.cmt.slab_of_lpn(lpn);
        self.ensure_resident(slab)?;
        let old = self.cmt.get(lpn).unwrap_or(None);
        if old == Some(ppa) {
            return Ok(None);
        }
        self.cmt.set(lpn, Some(ppa));
        self.valid.mark_valid(ppa);
        Ok(old)
    }

    /// Drops the committed mapping of `lpn` and reclaims its flash copy.
    pub fn trim_lpn(&mut self, lpn: Lpn) -> Result<()> {
        self.check_lpn(lpn)?;
        let slab = self.cmt.slab_of_lpn(lpn);
        self.ensure_resident(slab)?;
        if let Some(old) = self.cmt.get(lpn).unwrap_or(None) {
            self.valid.mark_invalid(old);
            self.cmt.set(lpn, None);
        }
        Ok(())
    }

    /// Drops the committed mapping of `lpn` but keeps the displaced copy
    /// valid and returns it — the snapshot-era counterpart of
    /// [`FtlBase::trim_lpn`], for callers retaining the pre-image in a
    /// version chain.
    pub fn trim_lpn_retain(&mut self, lpn: Lpn) -> Result<Option<Ppa>> {
        self.check_lpn(lpn)?;
        let slab = self.cmt.slab_of_lpn(lpn);
        self.ensure_resident(slab)?;
        let old = self.cmt.get(lpn).unwrap_or(None);
        if old.is_some() {
            self.cmt.set(lpn, None);
        }
        Ok(old)
    }

    // --- demand-paged mapping engine ---------------------------------------

    /// Marks the GTD page covering `slab` stale (no-op in inline mode).
    fn mark_gtd_dirty(&mut self, slab: usize) {
        if self.gtd_paged {
            let g = meta::gtd_page_of(slab, self.page_size());
            if let Some(d) = self.gtd_dirty.get_mut(g) {
                *d = true;
            }
        }
    }

    /// Makes `slab` resident: counts the hit or miss, evicts down to the
    /// budget (leaving room for the incoming frame), then installs the
    /// slab — decoded from its translation page if one was ever written,
    /// an all-unmapped frame otherwise.
    fn ensure_resident(&mut self, slab: usize) -> Result<()> {
        if self.cmt.is_resident(slab) {
            self.stats.map_cache_hits += 1;
            return Ok(());
        }
        self.stats.map_cache_misses += 1;
        // While GC runs, demand fetches may overshoot the budget: a dirty
        // eviction programs translation pages, and spending free blocks on
        // those inside the critical low-pool section can out-consume what
        // the victim reclaims. `maybe_gc` evicts back down afterwards,
        // once the pool is replenished.
        if !self.in_gc {
            for _ in 0..self.cmt.over_budget_by() {
                if !self.evict_one()? {
                    break;
                }
            }
        }
        let geo = self.chip.config().geometry;
        match self.map_locs.get(slab).copied().flatten() {
            Some(loc) => {
                let mut buf = vec![0u8; geo.page_size];
                self.read_retry(loc, &mut buf)?;
                let entries = meta::decode_slab_entries(&buf, geo.pages_per_block);
                self.cmt.install(slab, entries, false);
                self.stats.map_demand_loads += 1;
            }
            None => {
                let eps = self.cmt.entries_per_slab();
                self.cmt
                    .install(slab, vec![None; eps].into_boxed_slice(), false);
            }
        }
        Ok(())
    }

    /// Evicts one CLOCK victim. A dirty victim first triggers a batched
    /// flush (which also cleans other dirty slabs riding along), so the
    /// dropped frame never holds the only copy of a mapping. Returns
    /// `false` when nothing is resident.
    fn evict_one(&mut self) -> Result<bool> {
        let Some(victim) = self.cmt.pick_victim() else {
            return Ok(false);
        };
        let was_dirty = self.cmt.is_dirty(victim);
        if was_dirty {
            self.flush_dirty_batch(victim)?;
            self.stats.map_evictions_dirty += 1;
        } else {
            self.stats.map_evictions_clean += 1;
        }
        let (_, dirty) = self.cmt.evict(victim);
        debug_assert!(!dirty, "evicted slab {victim} still dirty after flush");
        Ok(true)
    }

    /// Writes `victim` plus up to [`MAP_FLUSH_BATCH`] − 1 more dirty
    /// resident slabs to fresh translation pages, then persists the
    /// refreshed directory with a *single* checkpoint-root program. The
    /// root deliberately keeps the current `ckpt_seq`: replaying
    /// post-checkpoint events over newer slab content is idempotent
    /// (folds are last-writer-wins in sequence order), so an eviction
    /// flush is crash-safe without a full checkpoint. The translation
    /// programs bypass GC (they may run *inside* GC); the bounded batch
    /// keeps pool consumption per host write small and the next host
    /// write's `maybe_gc` restores the low-water mark.
    fn flush_dirty_batch(&mut self, victim: usize) -> Result<()> {
        let mut batch = vec![victim];
        for slab in self.cmt.dirty_slabs() {
            if batch.len() >= MAP_FLUSH_BATCH {
                break;
            }
            if slab != victim {
                batch.push(slab);
            }
        }
        let geo = self.chip.config().geometry;
        for slab in batch {
            let buf = match self.cmt.entries(slab) {
                Some(entries) => {
                    meta::encode_slab_entries(entries, geo.page_size, geo.pages_per_block)
                }
                None => continue,
            };
            let dst = self.program_map_page_nogc(slab as u64, 0, &buf)?;
            self.stats.map_writes += 1;
            if let Some(old) = self.map_locs[slab].replace(dst) {
                self.valid.mark_invalid(old);
            }
            self.mark_gtd_dirty(slab);
            self.cmt.mark_clean(slab);
        }
        self.stats.map_flush_batches += 1;
        self.write_meta()
    }

    /// Programs one `Map`-class page into the mapping frontier WITHOUT
    /// running GC first — the eviction-flush and GTD write path, which
    /// must work from inside GC itself. Queued; `write_meta`'s drain is
    /// the durability barrier.
    fn program_map_page_nogc(&mut self, lpn: Lpn, aux: u32, buf: &[u8]) -> Result<Ppa> {
        let mut attempts = 0;
        loop {
            let dst = self.alloc_slot(PageKind::Map)?;
            let oob = Oob {
                lpn,
                seq: 0,
                tid: 0,
                kind: PageKind::Map,
                aux,
            };
            match self.chip.program_queued(dst, buf, oob, 0) {
                Ok(_) => {
                    self.valid.mark_valid(dst);
                    self.note_block_program(dst.block);
                    return Ok(dst);
                }
                Err(FlashError::ProgramFailed(_)) if attempts < PROGRAM_RETRY_LIMIT => {
                    attempts += 1;
                    self.stats.program_retries += 1;
                    self.abandon_frontier(dst.block);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    // --- persistence -------------------------------------------------------

    /// Appends a fresh checkpoint-root page to the meta ring. In paged
    /// mode, stale GTD pages are re-programmed first (root → GTD →
    /// translation pages must all be consistent on flash).
    fn write_meta(&mut self) -> Result<()> {
        // Durability barrier: the root must not land before the pages it
        // points at have finished on their channels.
        self.chip.drain();
        let geo = self.chip.config().geometry;
        if self.gtd_paged {
            for g in 0..self.gtd_dirty.len() {
                if !self.gtd_dirty[g] && self.gtd_locs[g].is_some() {
                    continue;
                }
                let buf =
                    meta::encode_gtd_page(&self.map_locs, g, geo.page_size, geo.pages_per_block);
                let dst = self.program_map_page_nogc(g as u64, meta::GTD_AUX, &buf)?;
                self.stats.gtd_writes += 1;
                if let Some(old) = self.gtd_locs[g].replace(dst) {
                    self.valid.mark_invalid(old);
                }
                self.gtd_dirty[g] = false;
            }
            // Second barrier: the GTD pages themselves must land before
            // the root that points at them.
            self.chip.drain();
        }
        let gtd_roots: Vec<Ppa> = self.gtd_locs.iter().copied().flatten().collect();
        debug_assert_eq!(gtd_roots.len(), self.gtd_locs.len());
        // The bad-block list shares the meta page's pointer area with the
        // slab/GTD and X-L2P pointers. The chip's own health marks are
        // authoritative (recovery unions both), so if a dying drive ever
        // accumulates more retirements than fit, truncating the persisted
        // list is safe — unlike panicking in `MetaPage::encode`.
        let inline_ptrs = if self.gtd_paged {
            gtd_roots.len()
        } else {
            self.map_locs.len()
        };
        let bad_cap = MetaPage::max_pointers(geo.page_size)
            .saturating_sub(inline_ptrs + self.xl2p_roots.len());
        let page = MetaPage {
            logical_pages: self.logical_pages,
            ckpt_seq: self.ckpt_seq,
            tx_horizon: self.tx_horizon,
            xl2p_roots: self.xl2p_roots.clone(),
            map_locs: self.map_locs.clone(),
            gtd_locs: gtd_roots,
            bad_blocks: self.bad_block_list().into_iter().take(bad_cap).collect(),
            device_state: self.device_state,
        };
        let buf = page.encode(geo.page_size, geo.pages_per_block);
        let (block, wp) = match self.chip.write_point(META_BLOCKS[self.meta_cur]) {
            Some(wp) => (META_BLOCKS[self.meta_cur], wp),
            None => {
                // Current ring full: switch to the sibling block. The
                // latest valid root stays readable in the full block until
                // the new one is programmed, so a crash at any instant
                // leaves a recoverable root.
                self.meta_cur = 1 - self.meta_cur;
                let other = META_BLOCKS[self.meta_cur];
                self.chip.erase(other)?;
                (other, 0)
            }
        };
        self.chip.program(
            Ppa::new(block, wp),
            &buf,
            Oob {
                lpn: 0,
                seq: 0,
                tid: 0,
                kind: PageKind::Meta,
                aux: 0,
            },
        )?;
        self.stats.meta_writes += 1;
        Ok(())
    }

    /// Persists every dirty L2P slab and a new checkpoint root. After this
    /// returns, the committed mapping survives power loss without replay.
    pub fn checkpoint(&mut self, hook: &mut dyn GcHook) -> Result<()> {
        self.checkpoint_internal(hook)
    }

    fn checkpoint_internal(&mut self, hook: &mut dyn GcHook) -> Result<()> {
        // Only resident slabs can be dirty (eviction flushes first), so a
        // checkpoint never has to fault anything in.
        for slab in self.cmt.dirty_slabs() {
            // GC triggered by an earlier iteration's program can evict and
            // flush slabs from this list; re-check before writing.
            if !self.cmt.is_dirty(slab) {
                continue;
            }
            let geo = self.chip.config().geometry;
            let buf = match self.cmt.entries(slab) {
                Some(entries) => {
                    meta::encode_slab_entries(entries, geo.page_size, geo.pages_per_block)
                }
                None => continue,
            };
            // Slab writes are queued rather than awaited one by one;
            // write_meta below is the barrier.
            let (dst, _) =
                self.program_raw_queued(PageKind::Map, slab as u64, 0, 0, &buf, 0, hook)?;
            // Re-read the old location *after* the program: the GC it may
            // have run can itself relocate the previous translation page.
            if let Some(old) = self.map_locs[slab].replace(dst) {
                self.valid.mark_invalid(old);
            }
            self.mark_gtd_dirty(slab);
            self.cmt.mark_clean(slab);
        }
        // The new root covers everything programmed so far.
        self.ckpt_seq = self.chip.next_seq() - 1;
        self.write_meta()?;
        self.stats.checkpoints += 1;
        Ok(())
    }

    /// Persists the X-L2P table (the X-FTL commit path, Figure 4): the
    /// table pages are written copy-on-write to fresh locations and the
    /// checkpoint root is updated to point at them. The L2P slabs are *not*
    /// rewritten — recovery re-folds committed entries from the persisted
    /// table.
    pub fn persist_xl2p(&mut self, table_pages: &[Vec<u8>], hook: &mut dyn GcHook) -> Result<()> {
        let mut new_roots = Vec::with_capacity(table_pages.len());
        for (i, page) in table_pages.iter().enumerate() {
            let (dst, _) =
                self.program_raw_queued(PageKind::XL2p, i as u64, 0, 0, page, 0, hook)?;
            new_roots.push(dst);
        }
        for old in std::mem::replace(&mut self.xl2p_roots, new_roots) {
            self.valid.mark_invalid(old);
        }
        self.write_meta()
    }

    /// Drops the persisted X-L2P table references (after their entries have
    /// been folded and checkpointed).
    pub fn clear_xl2p_roots(&mut self) {
        for old in std::mem::take(&mut self.xl2p_roots) {
            self.valid.mark_invalid(old);
        }
    }

    // --- recovery -----------------------------------------------------------

    /// Rebuilds device state from the flash contents after a power loss.
    ///
    /// Loads the newest checkpoint, replays nothing yet: the returned
    /// [`RecoveryLog`] carries every post-checkpoint page in sequence
    /// order plus the persisted X-L2P table bytes. The wrapping device
    /// personality decides which events to apply (plain FTL: `tid == 0`
    /// data pages via [`FtlBase::apply_event`]; X-FTL: those merged with
    /// the committed X-L2P entries).
    pub fn recover(mut chip: FlashChip) -> Result<(FtlBase, RecoveryLog)> {
        chip.power_cycle();
        let t_recover = chip.clock().now();
        let geo = chip.config().geometry;

        // 1. Newest valid checkpoint root across both meta blocks.
        let mut newest: Option<(u64, usize, MetaPage)> = None;
        let mut buf = vec![0u8; geo.page_size];
        for (idx, mb) in META_BLOCKS.iter().enumerate() {
            for page in 0..geo.pages_per_block as u32 {
                let ppa = Ppa::new(*mb, page);
                match chip.probe(ppa)? {
                    PageProbe::Erased => break,
                    PageProbe::Torn => {}
                    PageProbe::Programmed(oob) => {
                        if oob.kind != PageKind::Meta {
                            continue;
                        }
                        if read_with_retries(&mut chip, ppa, &mut buf).0.is_err() {
                            continue;
                        }
                        if let Some(m) = MetaPage::decode(&buf, geo.pages_per_block) {
                            if newest.as_ref().is_none_or(|(s, _, _)| oob.seq > *s) {
                                newest = Some((oob.seq, idx, m));
                            }
                        }
                    }
                }
            }
        }
        let (_, meta_cur, meta_page) = newest.ok_or(DevError::NotFormatted)?;
        let logical_pages = meta_page.logical_pages;

        // Bad-block table: the union of what the last persisted root knew
        // and what the chip's own health marks report (a block retired
        // after the last meta write is only in the latter).
        let mut bad_blocks = vec![false; geo.blocks];
        for b in chip.retired_blocks() {
            bad_blocks[b as usize] = true;
        }
        for b in &meta_page.bad_blocks {
            if (*b as usize) < geo.blocks {
                bad_blocks[*b as usize] = true;
            }
        }

        // 2. Load the checkpointed mapping directory. Paged-GTD mode
        //    (recomputed from geometry, exactly as format decides it)
        //    first reads the GTD pages to fill the slab-pointer
        //    placeholders the root decoded.
        let slab_count = meta_page.map_locs.len();
        let eps = meta::entries_per_slab(geo.page_size);
        let gtd_paged = slab_count + 8 > MetaPage::max_pointers(geo.page_size);
        let gtd_pages = if gtd_paged {
            meta::gtd_page_count(slab_count, geo.page_size)
        } else {
            0
        };
        let mut map_locs = meta_page.map_locs.clone();
        let mut valid = ValidityMap::new(geo.blocks, geo.pages_per_block);
        let mut gtd_locs: Vec<Option<Ppa>> = vec![None; gtd_pages];
        for (g, loc) in meta_page.gtd_locs.iter().enumerate().take(gtd_pages) {
            read_with_retries(&mut chip, *loc, &mut buf).0?;
            meta::decode_gtd_page(&mut map_locs, g, &buf, geo.pages_per_block);
            valid.mark_valid(*loc);
            gtd_locs[g] = Some(*loc);
        }
        // A GTD page the root failed to list (should be impossible) is
        // re-created at the next meta write.
        let gtd_dirty: Vec<bool> = gtd_locs.iter().map(Option::is_none).collect();

        //    Stream every persisted translation page once (with ECC
        //    retries; these pages are the mapping's only persisted copy)
        //    into an unbounded cache — the wrapper re-applies its RAM
        //    budget after recovery via `set_map_cache_budget`.
        let mut cmt = MappingCache::new(slab_count, eps, None);
        for (slab, loc) in map_locs.iter().enumerate() {
            match loc {
                Some(ppa) => {
                    read_with_retries(&mut chip, *ppa, &mut buf).0?;
                    let entries = meta::decode_slab_entries(&buf, geo.pages_per_block);
                    for e in entries.iter().flatten() {
                        valid.mark_valid(*e);
                    }
                    cmt.install(slab, entries, false);
                    valid.mark_valid(*ppa);
                }
                None => cmt.install(slab, vec![None; eps].into_boxed_slice(), false),
            }
        }

        // 3. Scan the log for post-checkpoint pages and rebuild occupancy.
        for root in &meta_page.xl2p_roots {
            valid.mark_valid(*root);
        }
        let mut events = Vec::new();
        let mut free_blocks = VecDeque::new();
        let mut in_free = vec![false; geo.blocks];
        let mut block_class = vec![0u8; geo.blocks];
        for b in FIRST_POOL_BLOCK..geo.blocks as u32 {
            let mut programmed_any = false;
            for page in 0..geo.pages_per_block as u32 {
                let ppa = Ppa::new(b, page);
                match chip.probe(ppa)? {
                    PageProbe::Erased => break,
                    PageProbe::Torn => {
                        programmed_any = true;
                    }
                    PageProbe::Programmed(oob) => {
                        programmed_any = true;
                        if block_class[b as usize] == 0 {
                            block_class[b as usize] =
                                if oob.kind == PageKind::Data { 1 } else { 2 };
                        }
                        // Post-checkpoint pages are roll-forward events.
                        // Transaction-tagged data pages are kept at ANY
                        // sequence: a transaction may straddle a checkpoint
                        // (pages before it, commit evidence after it), and
                        // only the wrapping personality can tell.
                        let relevant = match oob.kind {
                            PageKind::Data => oob.seq > meta_page.ckpt_seq || oob.tid != 0,
                            PageKind::Commit => oob.seq > meta_page.ckpt_seq,
                            _ => false,
                        };
                        if relevant {
                            events.push(ScanEvent {
                                seq: oob.seq,
                                lpn: oob.lpn,
                                tid: oob.tid,
                                ppa,
                                kind: oob.kind,
                                aux: oob.aux,
                            });
                        }
                    }
                }
            }
            if !programmed_any && !bad_blocks[b as usize] {
                free_blocks.push_back(b);
                in_free[b as usize] = true;
            }
        }
        events.sort_by_key(|e| e.seq);

        // 4. Pull the persisted X-L2P table pages, if any.
        let xl2p = if meta_page.xl2p_roots.is_empty() {
            None
        } else {
            let mut bytes = Vec::with_capacity(meta_page.xl2p_roots.len() * geo.page_size);
            let mut seq = 0;
            for root in &meta_page.xl2p_roots {
                let oob = read_with_retries(&mut chip, *root, &mut buf).0?;
                seq = seq.max(oob.seq);
                bytes.extend_from_slice(&buf);
            }
            Some((seq, bytes))
        };

        let ckpt_seq = meta_page.ckpt_seq;
        let prev_horizon = meta_page.tx_horizon;
        let persisted_state = meta_page.device_state;
        let chip_next_seq = chip.next_seq();
        let mut base = FtlBase {
            logical_pages,
            cmt,
            map_locs,
            gtd_locs,
            gtd_dirty,
            gtd_paged,
            xl2p_roots: meta_page.xl2p_roots,
            valid,
            block_class: block_class.clone(),
            gc_policy: GcPolicy::Greedy,
            // Block ages reset at recovery: the OOB scan could rebuild
            // them, but a uniform age only softens cost-benefit scoring
            // for the first post-boot GC cycle.
            block_last_seq: vec![0; geo.blocks],
            // Recovered data blocks re-enter the FIFO queue in index order
            // (allocation age is unknown after a crash).
            alloc_order: (FIRST_POOL_BLOCK..geo.blocks as u32)
                .filter(|&b| block_class[b as usize] == 1)
                .collect(),
            frontiers_data: vec![None; geo.channels.max(1) as usize],
            data_cursor: 0,
            frontiers_cold: vec![None; geo.channels.max(1) as usize],
            cold_cursor: 0,
            hot_cold: false,
            heat: HeatSketch::new(HEAT_SLOTS, HEAT_HALF_LIFE),
            frontier_map: None,
            free_blocks,
            in_free,
            bad_blocks,
            meta_cur,
            ckpt_seq: meta_page.ckpt_seq,
            // This boot's recovery establishes a new horizon: no live
            // transaction's evidence predates the scan we just did. The
            // personality's post-recovery checkpoint persists it.
            tx_horizon: chip_next_seq,
            stats: FtlStats::default(),
            counters: DevCounters::default(),
            scratch: vec![0u8; geo.page_size],
            in_gc: false,
            scrub: None,
            scrub_tick: 0,
            last_scrub: None,
            // The persisted state is a floor: transitions are forward-only
            // across any number of power cycles.
            device_state: persisted_state,
            chip,
        };
        // A root written before the last retirement wave can under-report
        // the device's health; re-derive degradation from the pool the
        // scan actually found.
        if base.usable_pool_blocks() < base.required_pool_blocks() {
            base.device_state = base.device_state.max(DeviceState::Degraded);
        }
        let t_end = base.chip.clock().now();
        base.chip
            .recorder()
            .record_span(OpClass::RecoveryReplay, 0, 0, t_recover, t_end);
        Ok((
            base,
            RecoveryLog {
                events,
                xl2p,
                ckpt_seq,
                tx_horizon: prev_horizon,
            },
        ))
    }

    /// Replays one recovered data event: re-points the mapping of `lpn` at
    /// `ppa`. Events must be applied in ascending sequence order; replays
    /// are idempotent (last writer wins), which is what makes eviction
    /// flushes crash-safe without refreshing `ckpt_seq`.
    pub fn apply_event(&mut self, lpn: Lpn, ppa: Ppa) -> Result<()> {
        if lpn < self.logical_pages {
            self.fold_mapping(lpn, ppa)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xftl_flash::FlashConfig;

    fn base(blocks: usize, logical: u64) -> FtlBase {
        let chip = FlashChip::new(FlashConfig::tiny(blocks), SimClock::new());
        FtlBase::format(chip, logical).unwrap()
    }

    fn page(b: &FtlBase, byte: u8) -> Vec<u8> {
        vec![byte; b.page_size()]
    }

    #[test]
    fn write_read_roundtrip() {
        let mut f = base(16, 32);
        let data = page(&f, 0x5A);
        f.write_committed(7, &data, &mut NoHook).unwrap();
        let mut out = page(&f, 0);
        f.read_committed(7, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn unmapped_reads_zeros() {
        let mut f = base(16, 32);
        let mut out = page(&f, 0xFF);
        f.read_committed(3, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn bad_lpn_rejected() {
        let mut f = base(16, 32);
        let data = page(&f, 1);
        assert_eq!(
            f.write_committed(32, &data, &mut NoHook),
            Err(DevError::BadLpn(32))
        );
        let mut out = page(&f, 0);
        assert_eq!(f.read_committed(99, &mut out), Err(DevError::BadLpn(99)));
    }

    #[test]
    fn overwrite_invalidates_old_version() {
        let mut f = base(16, 32);
        let a = page(&f, 1);
        let b = page(&f, 2);
        f.write_committed(0, &a, &mut NoHook).unwrap();
        let old = f.l2p_get(0).unwrap().unwrap();
        f.write_committed(0, &b, &mut NoHook).unwrap();
        let new = f.l2p_get(0).unwrap().unwrap();
        assert_ne!(old, new);
        assert!(!f.valid.is_valid(old));
        assert!(f.valid.is_valid(new));
        let mut out = page(&f, 0);
        f.read_committed(0, &mut out).unwrap();
        assert_eq!(out, b);
    }

    #[test]
    fn trim_unmaps() {
        let mut f = base(16, 32);
        let a = page(&f, 1);
        f.write_committed(5, &a, &mut NoHook).unwrap();
        f.trim_lpn(5).unwrap();
        assert_eq!(f.l2p_get(5).unwrap(), None);
        let mut out = page(&f, 9);
        f.read_committed(5, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn gc_reclaims_overwritten_space() {
        // 16 tiny blocks of 8 pages; 32 logical pages. Overwrite a small
        // working set far beyond physical capacity: GC must keep up.
        let mut f = base(16, 32);
        for i in 0..600u64 {
            let data = vec![(i % 251) as u8; f.page_size()];
            f.write_committed(i % 8, &data, &mut NoHook).unwrap();
        }
        assert!(f.stats().gc_runs > 0, "GC should have run");
        // All 8 live pages still readable with their last content.
        for lpn in 0..8u64 {
            let mut out = vec![0u8; f.page_size()];
            f.read_committed(lpn, &mut out).unwrap();
            let last_i = (592 + lpn) % 251; // last write of this lpn was i = 592+lpn
            assert_eq!(out[0] as u64, last_i);
        }
    }

    #[test]
    fn gc_copies_only_valid_pages() {
        let mut f = base(16, 32);
        for i in 0..600u64 {
            let data = vec![i as u8; f.page_size()];
            f.write_committed(i % 4, &data, &mut NoHook).unwrap();
        }
        let s = f.stats();
        // With only 4 live pages, victims are mostly garbage.
        let validity = s.mean_gc_validity().unwrap();
        assert!(
            validity < 0.5,
            "victim validity {validity} unexpectedly high"
        );
    }

    #[test]
    fn checkpoint_clears_dirty_flags() {
        let mut f = base(16, 32);
        let a = page(&f, 1);
        f.write_committed(0, &a, &mut NoHook).unwrap();
        assert!(f.has_dirty_mapping());
        f.checkpoint(&mut NoHook).unwrap();
        assert!(!f.has_dirty_mapping());
        assert_eq!(f.stats().checkpoints, 1);
        assert!(f.stats().map_writes >= 1);
    }

    #[test]
    fn recover_after_clean_checkpoint() {
        let mut f = base(16, 32);
        let a = page(&f, 7);
        f.write_committed(3, &a, &mut NoHook).unwrap();
        f.checkpoint(&mut NoHook).unwrap();
        let chip = f.into_chip();
        let (mut g, log) = FtlBase::recover(chip).unwrap();
        assert!(log.events.is_empty(), "no post-checkpoint events expected");
        let mut out = page(&g, 0);
        g.read_committed(3, &mut out).unwrap();
        assert_eq!(out, a);
    }

    #[test]
    fn recover_rolls_forward_unsynced_writes() {
        let mut f = base(16, 32);
        let a = page(&f, 1);
        let b = page(&f, 2);
        f.write_committed(3, &a, &mut NoHook).unwrap();
        f.checkpoint(&mut NoHook).unwrap();
        f.write_committed(3, &b, &mut NoHook).unwrap(); // not checkpointed
        let chip = f.into_chip();
        let (mut g, log) = FtlBase::recover(chip).unwrap();
        assert_eq!(log.events.len(), 1);
        for e in &log.events {
            if e.kind == PageKind::Data && e.tid == 0 {
                g.apply_event(e.lpn, e.ppa).unwrap();
            }
        }
        let mut out = page(&g, 0);
        g.read_committed(3, &mut out).unwrap();
        assert_eq!(out, b);
    }

    #[test]
    fn recover_ignores_transactional_pages() {
        let mut f = base(16, 32);
        let a = page(&f, 1);
        let t = page(&f, 9);
        f.write_committed(3, &a, &mut NoHook).unwrap();
        f.checkpoint(&mut NoHook).unwrap();
        // A tid-tagged CoW write (as X-FTL would issue) must not clobber
        // the committed state during plain roll-forward.
        f.write_cow(3, 42, &t, &mut NoHook).unwrap();
        let chip = f.into_chip();
        let (mut g, log) = FtlBase::recover(chip).unwrap();
        for e in &log.events {
            if e.kind == PageKind::Data && e.tid == 0 {
                g.apply_event(e.lpn, e.ppa).unwrap();
            }
        }
        let mut out = page(&g, 0);
        g.read_committed(3, &mut out).unwrap();
        assert_eq!(out, a);
    }

    #[test]
    fn recover_survives_torn_meta_write() {
        let mut f = base(16, 32);
        let a = page(&f, 1);
        f.write_committed(3, &a, &mut NoHook).unwrap();
        f.checkpoint(&mut NoHook).unwrap();
        // Tear the next meta write mid-program.
        f.chip_mut().arm_power_fuse(1);
        let r = f.checkpoint(&mut NoHook);
        assert!(r.is_err());
        let chip = f.into_chip();
        let (mut g, _) = FtlBase::recover(chip).unwrap();
        let mut out = page(&g, 0);
        g.read_committed(3, &mut out).unwrap();
        assert_eq!(out, a);
    }

    #[test]
    fn meta_ring_wraps_when_full() {
        let mut f = base(16, 32);
        // Tiny geometry: 8 pages in the meta ring. Checkpoint often enough
        // to wrap it several times.
        let a = page(&f, 1);
        for i in 0..40u64 {
            f.write_committed(i % 4, &a, &mut NoHook).unwrap();
            f.checkpoint(&mut NoHook).unwrap();
        }
        let chip = f.into_chip();
        let (mut g, _) = FtlBase::recover(chip).unwrap();
        let mut out = page(&g, 0);
        g.read_committed(0, &mut out).unwrap();
        assert_eq!(out, a);
    }

    #[test]
    fn recovery_preserves_data_across_gc_churn() {
        let mut f = base(16, 32);
        // Fill all 32 logical pages with known content.
        for lpn in 0..32u64 {
            let data = vec![lpn as u8 + 1; f.page_size()];
            f.write_committed(lpn, &data, &mut NoHook).unwrap();
        }
        f.checkpoint(&mut NoHook).unwrap();
        // Churn a few pages to force GC relocations of checkpointed pages.
        for i in 0..300u64 {
            let data = vec![0xEE; f.page_size()];
            f.write_committed(i % 4, &data, &mut NoHook).unwrap();
        }
        assert!(f.stats().gc_runs > 0);
        let chip = f.into_chip();
        let (mut g, log) = FtlBase::recover(chip).unwrap();
        for e in &log.events {
            if e.kind == PageKind::Data && e.tid == 0 {
                g.apply_event(e.lpn, e.ppa).unwrap();
            }
        }
        // Untouched pages must still hold their checkpointed content even
        // though GC may have physically moved them.
        for lpn in 4..32u64 {
            let mut out = vec![0u8; g.page_size()];
            g.read_committed(lpn, &mut out).unwrap();
            assert_eq!(out[0] as u64, lpn + 1, "lpn {lpn} corrupted");
        }
        for lpn in 0..4u64 {
            let mut out = vec![0u8; g.page_size()];
            g.read_committed(lpn, &mut out).unwrap();
            assert_eq!(out[0], 0xEE);
        }
    }

    #[test]
    fn out_of_space_when_overfilled() {
        // Fill the whole exported capacity, then keep overwriting: the
        // spare blocks must absorb the churn without OutOfSpace.
        let chip = FlashChip::new(FlashConfig::tiny(12), SimClock::new());
        let mut f = FtlBase::format(chip, 24).unwrap();
        let data = vec![1u8; f.page_size()];
        for lpn in 0..24u64 {
            f.write_committed(lpn, &data, &mut NoHook).unwrap();
        }
        // Keep overwriting; the drive has spare for this, it must not fail.
        for i in 0..200u64 {
            f.write_committed(i % 24, &data, &mut NoHook).unwrap();
        }
        assert!(f.free_block_count() >= 1);
    }

    #[test]
    fn data_writes_stripe_across_channels() {
        let cfg = xftl_flash::FlashConfigBuilder::tiny().channels(2).build();
        let chip = FlashChip::new(cfg, SimClock::new());
        let mut f = FtlBase::format(chip, 32).unwrap();
        let data = vec![1u8; f.page_size()];
        let geo = f.chip.config().geometry;
        let mut chans = Vec::new();
        for lpn in 0..4u64 {
            f.write_committed(lpn, &data, &mut NoHook).unwrap();
            chans.push(geo.channel_of(f.l2p_get(lpn).unwrap().unwrap().block));
        }
        assert_eq!(
            chans,
            vec![0, 1, 0, 1],
            "consecutive writes alternate channels"
        );
    }

    #[test]
    fn persist_xl2p_updates_roots_and_meta() {
        let mut f = base(16, 32);
        let table = vec![vec![0xABu8; f.page_size()], vec![0xCDu8; f.page_size()]];
        f.persist_xl2p(&table, &mut NoHook).unwrap();
        let roots = f.xl2p_roots().to_vec();
        assert_eq!(roots.len(), 2);
        let chip = f.into_chip();
        let (mut g, log) = FtlBase::recover(chip).unwrap();
        assert_eq!(g.xl2p_roots(), roots.as_slice());
        let (_, bytes) = log.xl2p.unwrap();
        assert_eq!(&bytes[..g.page_size()], table[0].as_slice());
        assert_eq!(&bytes[g.page_size()..], table[1].as_slice());
        g.clear_xl2p_roots();
        assert!(g.xl2p_roots().is_empty());
    }

    // --- fault handling ---------------------------------------------------

    use xftl_flash::{FaultKind, FaultPlan, FaultTrigger};

    #[test]
    fn program_failure_retries_on_fresh_slot() {
        let mut f = base(16, 32);
        // Fail the next program attempt, wherever it lands (one-shot).
        f.chip_mut()
            .set_fault_plan(FaultPlan::new(1).trigger(FaultTrigger::new(FaultKind::ProgramFail)));
        let data = page(&f, 0x42);
        f.write_committed(0, &data, &mut NoHook).unwrap();
        assert_eq!(f.stats().program_retries, 1);
        assert_eq!(f.chip.stats().program_fails, 1);
        let mut out = page(&f, 0);
        f.read_committed(0, &mut out).unwrap();
        assert_eq!(out, data, "retried write must expose the intended data");
    }

    #[test]
    fn uncorrectable_read_is_retried() {
        let mut f = base(16, 32);
        let data = page(&f, 0x7C);
        f.write_committed(5, &data, &mut NoHook).unwrap();
        // One bit-flip burst beyond ECC strength; the re-read decodes.
        f.chip_mut()
            .set_fault_plan(FaultPlan::new(3).trigger(FaultTrigger::new(FaultKind::ReadFlips(64))));
        let mut out = page(&f, 0);
        f.read_committed(5, &mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(f.stats().read_retries, 1);
        assert_eq!(f.chip.stats().uncorrectable_reads, 1);
    }

    #[test]
    fn erase_failure_retires_block_and_survives_recovery() {
        let mut f = base(16, 32);
        // Fail the first erase the FTL issues (a GC victim; the meta ring
        // blocks are fault-exempt by default).
        f.chip_mut()
            .set_fault_plan(FaultPlan::new(2).trigger(FaultTrigger::new(FaultKind::EraseFail)));
        for i in 0..600u64 {
            let data = vec![(i % 251) as u8; f.page_size()];
            f.write_committed(i % 8, &data, &mut NoHook).unwrap();
        }
        assert_eq!(f.stats().bad_block_retirements, 1);
        assert_eq!(f.bad_block_count(), 1);
        let bad = f.bad_block_list()[0];
        assert!(!f.in_free[bad as usize], "retired block back in free pool");
        f.checkpoint(&mut NoHook).unwrap();
        let chip = f.into_chip();
        let (mut g, log) = FtlBase::recover(chip).unwrap();
        for e in &log.events {
            if e.kind == PageKind::Data && e.tid == 0 {
                g.apply_event(e.lpn, e.ppa).unwrap();
            }
        }
        assert!(g.is_bad_block(bad), "retirement lost across recovery");
        assert!(!g.in_free[bad as usize]);
        assert!(!g.free_blocks.contains(&bad));
        for lpn in 0..8u64 {
            let mut out = vec![0u8; g.page_size()];
            g.read_committed(lpn, &mut out).unwrap();
            assert_eq!(out[0] as u64, (592 + lpn) % 251, "lpn {lpn} corrupted");
        }
    }

    #[test]
    fn format_excludes_preretired_blocks() {
        // "Factory" bad block: retire block 5 before handing the chip to
        // the FTL; format must keep it out of the pool.
        let mut chip = FlashChip::new(FlashConfig::tiny(16), SimClock::new());
        chip.set_fault_plan(
            FaultPlan::new(4).trigger(FaultTrigger::new(FaultKind::EraseFail).on_block(5)),
        );
        assert!(chip.erase(5).is_err());
        let mut f = FtlBase::format(chip, 32).unwrap();
        assert!(f.is_bad_block(5));
        assert!(!f.in_free[5]);
        let data = vec![1u8; f.page_size()];
        for i in 0..400u64 {
            f.write_committed(i % 8, &data, &mut NoHook).unwrap();
            if let Some(ppa) = f.l2p_get(i % 8).unwrap() {
                assert_ne!(ppa.block, 5, "write landed on a retired block");
            }
        }
    }

    #[test]
    fn background_faults_do_not_lose_committed_data() {
        // Steady background fault rates well above the acceptance floor:
        // every committed write must stay readable through retries, GC
        // relocations, retirements, and a recovery pass.
        let mut f = base(24, 32);
        f.chip_mut().set_fault_plan(FaultPlan::background(
            0xFA11, 5e-3, // program fails
            5e-3, // erase fails
            2e-2, // correctable flips
            2e-3, // uncorrectable bursts
        ));
        for i in 0..1_000u64 {
            let data = vec![(i % 251) as u8; f.page_size()];
            f.write_committed(i % 8, &data, &mut NoHook).unwrap();
        }
        let s = *f.stats();
        assert!(s.program_retries > 0, "no program fault ever fired");
        f.checkpoint(&mut NoHook).unwrap();
        let chip = f.into_chip();
        let (mut g, log) = FtlBase::recover(chip).unwrap();
        for e in &log.events {
            if e.kind == PageKind::Data && e.tid == 0 {
                g.apply_event(e.lpn, e.ppa).unwrap();
            }
        }
        for lpn in 0..8u64 {
            let mut out = vec![0u8; g.page_size()];
            g.read_committed(lpn, &mut out).unwrap();
            assert_eq!(out[0] as u64, (992 + lpn) % 251, "lpn {lpn} corrupted");
        }
    }

    // --- end-of-life: aging, scrub, wear leveling, read-only ---------------

    use xftl_flash::AgingModel;

    #[test]
    fn end_of_life_degrades_to_read_only_instead_of_panicking() {
        let mut f = base(16, 32);
        // Every pool-block erase fails: blocks retire one by one until the
        // spare pool is gone (the meta ring is fault-exempt by default).
        f.chip_mut().set_fault_plan(
            FaultPlan::new(7).trigger(FaultTrigger::new(FaultKind::EraseFail).sticky()),
        );
        let mut acked = [None::<u8>; 8];
        let mut err = None;
        for i in 0..100_000u64 {
            let byte = (i % 251) as u8;
            let data = vec![byte; f.page_size()];
            match f.write_committed(i % 8, &data, &mut NoHook) {
                Ok(()) => acked[(i % 8) as usize] = Some(byte),
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert_eq!(err, Some(DevError::ReadOnly), "exhaustion must be typed");
        assert_eq!(f.device_state(), DeviceState::ReadOnly);
        assert_eq!(f.stats().degraded_entries, 1, "must pass through Degraded");
        assert_eq!(f.stats().read_only_entries, 1);
        // Every acknowledged write stays readable after the transition.
        for (lpn, byte) in acked.iter().enumerate() {
            let mut out = vec![0u8; f.page_size()];
            f.read_committed(lpn as u64, &mut out).unwrap();
            assert_eq!(Some(out[0]), *byte, "lpn {lpn} lost at end of life");
        }
        // Dirtying operations keep failing, deterministically.
        let data = vec![9u8; f.page_size()];
        assert_eq!(
            f.write_committed(0, &data, &mut NoHook),
            Err(DevError::ReadOnly)
        );

        // The state survives a power cycle (persisted in the root), and
        // recovery + reads still work on the read-only device.
        let chip = f.into_chip();
        let (mut g, log) = FtlBase::recover(chip).unwrap();
        assert_eq!(g.device_state(), DeviceState::ReadOnly);
        for e in &log.events {
            if e.kind == PageKind::Data && e.tid == 0 {
                g.apply_event(e.lpn, e.ppa).unwrap();
            }
        }
        for (lpn, byte) in acked.iter().enumerate() {
            let mut out = vec![0u8; g.page_size()];
            g.read_committed(lpn as u64, &mut out).unwrap();
            assert_eq!(Some(out[0]), *byte, "lpn {lpn} lost across power cycle");
        }
        assert_eq!(
            g.write_committed(0, &data, &mut NoHook),
            Err(DevError::ReadOnly),
            "read-only mode must survive recovery"
        );
        // A second recovery is idempotent.
        let (h, _) = FtlBase::recover(g.into_chip()).unwrap();
        assert_eq!(h.device_state(), DeviceState::ReadOnly);
    }

    #[test]
    fn overfill_without_retirements_stays_out_of_space() {
        // `space_error` only escalates to ReadOnly when retirements prove
        // the pool shrank; a healthy device reports plain OutOfSpace.
        let mut f = base(16, 32);
        assert_eq!(f.space_error(), DevError::OutOfSpace);
        assert_eq!(f.device_state(), DeviceState::Healthy);
        f.retire_block(9);
        assert_eq!(f.space_error(), DevError::ReadOnly);
        assert_eq!(f.device_state(), DeviceState::ReadOnly);
    }

    #[test]
    fn scrubber_relocates_read_disturbed_blocks_before_data_loss() {
        let mut f = base(16, 32);
        // Uncorrectable at 300 + 9 × 30 = 570 reads of one block; the
        // scrubber triggers at 150.
        f.chip_mut()
            .set_fault_plan(FaultPlan::new(9).aging(AgingModel {
                read_disturb_threshold: 300,
                reads_per_flip: 30,
                ..AgingModel::inert()
            }));
        f.set_scrub_config(Some(ScrubConfig {
            read_threshold: 150,
            interval_ops: 4,
            ..ScrubConfig::default()
        }));
        let data = page(&f, 0x3C);
        // Fill the first data block so the hammered page sits in a closed
        // block (open frontiers are not scrub candidates).
        for lpn in 0..8u64 {
            f.write_committed(lpn, &data, &mut NoHook).unwrap();
        }
        let mut out = page(&f, 0);
        for i in 0..4000u64 {
            f.read_committed(0, &mut out).unwrap();
            assert_eq!(out[0], 0x3C);
            if i % 4 == 0 {
                // Host writes elsewhere drive the scrub tick.
                f.write_committed(8 + i % 8, &data, &mut NoHook).unwrap();
            }
        }
        assert!(f.stats().scrub_runs > 0, "scrubber never fired");
        assert!(matches!(
            f.last_scrub(),
            Some((_, ScrubReason::ReadDisturb))
        ));
        let fs = f.flash_stats();
        assert_eq!(
            fs.aging_uncorrectable, 0,
            "scrubber failed to stay ahead of read disturb"
        );
        assert_eq!(fs.uncorrectable_reads, 0);
    }

    #[test]
    fn read_disturb_without_scrubber_loses_the_page() {
        // Ablation of the test above: identical aging, no scrubber.
        let mut f = base(16, 32);
        f.chip_mut()
            .set_fault_plan(FaultPlan::new(9).aging(AgingModel {
                read_disturb_threshold: 300,
                reads_per_flip: 30,
                ..AgingModel::inert()
            }));
        let data = page(&f, 0x3C);
        for lpn in 0..8u64 {
            f.write_committed(lpn, &data, &mut NoHook).unwrap();
        }
        let mut out = page(&f, 0);
        let mut failed = false;
        for _ in 0..4000u64 {
            if f.read_committed(0, &mut out).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "unscrubbed read disturb must go uncorrectable");
        assert!(f.flash_stats().aging_uncorrectable > 0);
    }

    #[test]
    fn wear_leveling_recycles_pinned_cold_blocks() {
        let mut f = base(16, 32);
        f.set_scrub_config(Some(ScrubConfig {
            wear_delta_cap: 4,
            interval_ops: 8,
            ..ScrubConfig::default()
        }));
        // A fully valid cold block: greedy GC never picks it, so without
        // wear leveling its low-wear cells would be pinned forever.
        let cold = page(&f, 0xC0);
        for lpn in 0..8u64 {
            f.write_committed(lpn, &cold, &mut NoHook).unwrap();
        }
        let hot = page(&f, 0x07);
        for i in 0..3000u64 {
            f.write_committed(8 + i % 4, &hot, &mut NoHook).unwrap();
        }
        assert!(
            f.stats().wear_level_runs > 0,
            "wear leveling never relocated the cold block"
        );
        assert!(f.stats().wear_level_copies >= 8);
        let mut out = page(&f, 0);
        for lpn in 0..8u64 {
            f.read_committed(lpn, &mut out).unwrap();
            assert_eq!(out, cold, "cold data corrupted by wear leveling");
        }
    }

    #[test]
    fn allocation_prefers_least_worn_free_blocks() {
        let mut f = base(16, 32);
        // Pre-wear one pooled block; the first frontier must open on a
        // colder one.
        for _ in 0..10 {
            f.chip_mut().erase(4).unwrap();
        }
        let data = page(&f, 1);
        f.write_committed(0, &data, &mut NoHook).unwrap();
        let ppa = f.l2p_get(0).unwrap().unwrap();
        assert_ne!(ppa.block, 4, "frontier opened on the most-worn block");
    }

    #[test]
    fn mapping_cache_budget_bounds_residency_and_flushes_dirty_victims() {
        // 4 slabs (64 entries each at the tiny page size), budget 1: every
        // cross-slab access evicts, and dirty victims program translation
        // pages.
        let mut f = base(64, 256);
        f.set_map_cache_budget(Some(1)).unwrap();
        let data = page(&f, 0x7C);
        for round in 0..3u64 {
            for slab in 0..4u64 {
                f.write_committed(slab * 64 + round, &data, &mut NoHook)
                    .unwrap();
                assert!(f.map_cache().resident() <= 1, "budget exceeded");
            }
        }
        let s = *f.stats();
        assert!(s.map_cache_misses >= 11, "round-robin must thrash");
        assert!(s.map_evictions_dirty > 0, "dirty victims must flush");
        assert!(s.map_writes > 0, "translation pages must be programmed");
        assert!(
            s.map_flush_batches > 0,
            "eviction flushes batch under one root"
        );
        // Every mapping answers correctly through demand fetches.
        let mut out = page(&f, 0);
        for slab in 0..4u64 {
            for round in 0..3u64 {
                f.read_committed(slab * 64 + round, &mut out).unwrap();
                assert_eq!(out[0], 0x7C);
            }
        }
        assert!(f.stats().map_demand_loads > 0, "no slab was ever re-read");
    }

    #[test]
    fn paged_gtd_engages_and_survives_recovery() {
        // 3_100 logical pages = 49 slabs at the tiny page size; 49 + 8
        // exceeds one meta page's pointer capacity, so the directory goes
        // to paged-GTD mode (the 64 GB-class presets land here too).
        let mut f = base(520, 3_100);
        let data = page(&f, 0x3D);
        // Dirty a spread of slabs, then checkpoint: paged mode must
        // program GTD pages (inline mode never touches that counter).
        for lpn in (0..3_100u64).step_by(50) {
            f.write_committed(lpn, &data, &mut NoHook).unwrap();
        }
        f.checkpoint(&mut NoHook).unwrap();
        assert!(f.stats().gtd_writes > 0, "directory did not page out");
        let expected: Vec<_> = (0..3_100u64).step_by(50).map(|l| f.l2p_peek(l)).collect();
        let (g, _log) = FtlBase::recover(f.into_chip()).unwrap();
        let recovered: Vec<_> = (0..3_100u64).step_by(50).map(|l| g.l2p_peek(l)).collect();
        assert_eq!(expected, recovered, "paged GTD lost mappings");
        assert!(recovered.iter().all(Option::is_some));
    }

    #[test]
    fn cost_benefit_gc_classifies_victims_and_keeps_data() {
        let mut f = base(24, 64);
        f.set_gc_policy(GcPolicy::CostBenefit);
        assert_eq!(f.gc_policy(), GcPolicy::CostBenefit);
        f.set_map_cache_budget(Some(1)).unwrap();
        // Skewed churn: a few pages rewritten constantly alongside cache
        // thrash, so GC reclaims both data and mapping blocks.
        let data = page(&f, 0x44);
        for i in 0..2_000u64 {
            f.write_committed(i % 48, &data, &mut NoHook).unwrap();
        }
        let s = *f.stats();
        assert!(s.gc_runs > 0, "churn must trigger GC");
        assert!(s.gc_cb_data_victims > 0, "no data-class victim scored");
        assert!(
            s.gc_cb_data_victims + s.gc_cb_map_victims <= s.gc_runs,
            "victim classes overcounted"
        );
        let mut out = page(&f, 0);
        for lpn in 0..48u64 {
            f.read_committed(lpn, &mut out).unwrap();
            assert_eq!(out[0], 0x44, "lpn {lpn} lost under cost-benefit GC");
        }
    }

    #[test]
    fn hot_cold_separation_routes_frontiers_by_heat() {
        let mut f = base(24, 64);
        f.set_hot_cold(true);
        let data = page(&f, 0x55);
        // Pages 0..4 are rewritten constantly (hot); 8..40 are written
        // once (cold). The heat sketch must split the write frontiers.
        for lpn in 8..40u64 {
            f.write_committed(lpn, &data, &mut NoHook).unwrap();
        }
        for i in 0..600u64 {
            f.write_committed(i % 4, &data, &mut NoHook).unwrap();
        }
        let s = *f.stats();
        assert!(s.hot_writes > 0, "rewrite-heavy pages never ran hot");
        assert!(s.cold_writes > 0, "single-touch pages never ran cold");
        let mut out = page(&f, 0);
        for lpn in (0..4u64).chain(8..40) {
            f.read_committed(lpn, &mut out).unwrap();
            assert_eq!(out[0], 0x55, "lpn {lpn} lost under hot/cold routing");
        }
    }
}
