//! Per-LPN write-heat estimation for hot/cold data separation.
//!
//! A full per-page counter array would cost 8 bytes per logical page —
//! unacceptable at 64–256 GB simulated capacity, where the whole point of
//! demand-paged mapping is bounding RAM. [`HeatSketch`] instead keeps a
//! fixed budget of saturating 8-bit counters indexed by a hash of the LPN
//! (a one-row count-min sketch). Collisions only ever *overestimate* heat,
//! which for hot/cold separation is the safe direction: a cold page
//! misclassified as hot costs one suboptimal placement, while the reverse
//! would mix hot traffic into cold blocks and undo the separation.
//!
//! Counters decay by periodic halving (every `half_life` observations),
//! so the sketch tracks *recent* write frequency rather than lifetime
//! totals — the classic exponential-decay trick from cache literature.
//! Everything is deterministic: the hash is a fixed multiplicative mix
//! and the decay schedule depends only on the observation count, so
//! replaying a workload reproduces the same classifications bit for bit.

/// Fixed-point multiplicative hash constant (Fibonacci hashing; the same
/// mix `simrand` uses for stream splitting).
const HASH_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

/// One-row count-min sketch of per-LPN write frequency with periodic
/// counter halving.
#[derive(Debug, Clone)]
pub struct HeatSketch {
    counters: Vec<u8>,
    /// Observations between decay sweeps.
    half_life: u64,
    /// Observations since the last decay sweep.
    since_decay: u64,
}

impl HeatSketch {
    /// Creates a sketch with `slots` counters (rounded up to a power of
    /// two, minimum 64) that halves every counter after `half_life`
    /// recorded writes.
    pub fn new(slots: usize, half_life: u64) -> Self {
        let slots = slots.max(64).next_power_of_two();
        HeatSketch {
            counters: vec![0; slots],
            half_life: half_life.max(1),
            since_decay: 0,
        }
    }

    fn slot(&self, lpn: u64) -> usize {
        let h = lpn.wrapping_mul(HASH_MULT);
        // Power-of-two table: take the top bits, which the multiply mixes
        // hardest.
        (h >> (64 - self.counters.len().trailing_zeros())) as usize
    }

    /// Records one write of `lpn` (saturating) and runs the decay sweep
    /// when due.
    pub fn touch(&mut self, lpn: u64) {
        let slot = self.slot(lpn);
        self.counters[slot] = self.counters[slot].saturating_add(1);
        self.since_decay += 1;
        if self.since_decay >= self.half_life {
            self.since_decay = 0;
            for c in &mut self.counters {
                *c >>= 1;
            }
        }
    }

    /// Estimated recent write count of `lpn` (an overestimate under
    /// collisions, never an underestimate within one decay period).
    pub fn estimate(&self, lpn: u64) -> u8 {
        self.counters[self.slot(lpn)]
    }

    /// True if `lpn`'s recent write count reaches `threshold`.
    pub fn is_hot(&self, lpn: u64, threshold: u8) -> bool {
        self.estimate(lpn) >= threshold
    }

    /// Number of counter slots (RAM budget diagnostics).
    pub fn slots(&self) -> usize {
        self.counters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_writes_become_hot() {
        let mut h = HeatSketch::new(256, 1_000_000);
        for _ in 0..5 {
            h.touch(42);
        }
        assert!(h.is_hot(42, 2));
        assert_eq!(h.estimate(42), 5);
    }

    #[test]
    fn untouched_lpns_read_cold_modulo_collisions() {
        let mut h = HeatSketch::new(1024, 1_000_000);
        h.touch(7);
        // A different LPN mapping to a different slot stays cold.
        let other = (0..2048u64)
            .find(|&l| {
                l != 7 && {
                    let probe = HeatSketch::new(1024, 1);
                    probe.slot(l) != probe.slot(7)
                }
            })
            .unwrap();
        assert_eq!(h.estimate(other), 0);
    }

    #[test]
    fn decay_halves_counters() {
        let mut h = HeatSketch::new(64, 8);
        for _ in 0..7 {
            h.touch(5);
        }
        assert_eq!(h.estimate(5), 7);
        h.touch(5); // 8th observation triggers the sweep: (7+1)/2
        assert_eq!(h.estimate(5), 4);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut h = HeatSketch::new(64, u64::MAX);
        for _ in 0..300 {
            h.touch(1);
        }
        assert_eq!(h.estimate(1), u8::MAX);
    }

    #[test]
    fn determinism_across_instances() {
        let run = || {
            let mut h = HeatSketch::new(128, 16);
            for i in 0..200u64 {
                h.touch(i % 13);
            }
            (0..13u64).map(|l| h.estimate(l)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
