//! The serialized bench-report schema (`BENCH_<name>.json`).
//!
//! Every bench binary writes one [`BenchReport`] next to its text
//! tables. Because the whole stack runs on a simulated clock, two runs
//! of the same binary at the same scale serialize to byte-identical
//! JSON — which is what lets `xtask bench-check` diff a fresh run
//! against the committed `BENCH_BASELINE.json` with tight tolerances.

use crate::hist::HistSummary;
use crate::json::{parse, JsonError, JsonValue};
use crate::op::OpClass;
use crate::recorder::Telemetry;

/// Schema version stamped into every report; bump on breaking change.
pub const SCHEMA_VERSION: u64 = 1;

/// A machine-readable benchmark report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchReport {
    /// Report name (the bench binary, e.g. `"all"`).
    pub name: String,
    /// Free-form metadata as ordered key/value pairs (scale, seed, ...).
    pub meta: Vec<(String, String)>,
    /// Named scalar metrics, in emission order.
    pub metrics: Vec<(String, f64)>,
    /// Latency histogram summaries, keyed by op-class name.
    pub hists: Vec<(String, HistSummary)>,
}

impl BenchReport {
    /// An empty report with the given name.
    pub fn new(name: &str) -> Self {
        BenchReport {
            name: name.to_owned(),
            ..Self::default()
        }
    }

    /// Appends a metadata pair.
    pub fn meta(&mut self, key: &str, value: &str) {
        self.meta.push((key.to_owned(), value.to_owned()));
    }

    /// Appends a named scalar metric.
    pub fn metric(&mut self, name: &str, value: f64) {
        self.metrics.push((name.to_owned(), value));
    }

    /// Looks up a metric by name (first match).
    pub fn get_metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Folds a telemetry handle's non-empty histograms into the report.
    pub fn attach_telemetry(&mut self, t: &Telemetry) {
        for (op, summary) in t.summaries() {
            self.hists.push((op.name().to_owned(), summary));
        }
    }

    /// Serializes to deterministic pretty JSON (trailing newline).
    pub fn to_json(&self) -> String {
        let meta = self
            .meta
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::Str(v.clone())))
            .collect();
        let metrics = self
            .metrics
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::Num(*v)))
            .collect();
        let hists = self
            .hists
            .iter()
            .map(|(k, s)| (k.clone(), summary_to_json(s)))
            .collect();
        JsonValue::Obj(vec![
            ("schema".into(), JsonValue::Num(SCHEMA_VERSION as f64)),
            ("name".into(), JsonValue::Str(self.name.clone())),
            ("meta".into(), JsonValue::Obj(meta)),
            ("metrics".into(), JsonValue::Obj(metrics)),
            ("hists".into(), JsonValue::Obj(hists)),
        ])
        .to_pretty()
    }

    /// Parses a report previously produced by [`BenchReport::to_json`].
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let root = parse(text)?;
        let bad = |msg: &str| JsonError {
            msg: msg.to_owned(),
            at: 0,
        };
        let schema = root
            .get("schema")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| bad("missing schema"))?;
        if schema as u64 != SCHEMA_VERSION {
            return Err(bad(&format!("unsupported schema version {schema}")));
        }
        let name = root
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| bad("missing name"))?
            .to_owned();
        let mut report = BenchReport::new(&name);
        for (k, v) in root
            .get("meta")
            .and_then(JsonValue::members)
            .ok_or_else(|| bad("missing meta"))?
        {
            let v = v.as_str().ok_or_else(|| bad("meta value not a string"))?;
            report.meta(k, v);
        }
        for (k, v) in root
            .get("metrics")
            .and_then(JsonValue::members)
            .ok_or_else(|| bad("missing metrics"))?
        {
            let v = v.as_f64().ok_or_else(|| bad("metric not a number"))?;
            report.metric(k, v);
        }
        for (k, v) in root
            .get("hists")
            .and_then(JsonValue::members)
            .ok_or_else(|| bad("missing hists"))?
        {
            report.hists.push((k.clone(), summary_from_json(v)?));
        }
        Ok(report)
    }
}

const SUMMARY_FIELDS: [&str; 7] = [
    "count", "sum_ns", "min_ns", "p50_ns", "p95_ns", "p99_ns", "max_ns",
];

fn summary_to_json(s: &HistSummary) -> JsonValue {
    let vals = [
        s.count, s.sum_ns, s.min_ns, s.p50_ns, s.p95_ns, s.p99_ns, s.max_ns,
    ];
    JsonValue::Obj(
        SUMMARY_FIELDS
            .iter()
            .zip(vals)
            .map(|(&k, v)| (k.to_owned(), JsonValue::Num(v as f64)))
            .collect(),
    )
}

fn summary_from_json(v: &JsonValue) -> Result<HistSummary, JsonError> {
    let field = |name: &str| {
        v.get(name)
            .and_then(JsonValue::as_f64)
            .map(|f| f as u64)
            .ok_or_else(|| JsonError {
                msg: format!("hist summary missing {name}"),
                at: 0,
            })
    };
    Ok(HistSummary {
        count: field("count")?,
        sum_ns: field("sum_ns")?,
        min_ns: field("min_ns")?,
        p50_ns: field("p50_ns")?,
        p95_ns: field("p95_ns")?,
        p99_ns: field("p99_ns")?,
        max_ns: field("max_ns")?,
    })
}

/// Sanity check used by report consumers: op-class histogram keys in a
/// parsed report must be known class names (typo guard for baselines).
pub fn is_known_op_name(name: &str) -> bool {
    OpClass::ALL.iter().any(|op| op.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpClass;
    use crate::recorder::Recorder;

    fn sample_report() -> BenchReport {
        let t = Telemetry::new();
        t.record(OpClass::ChipRead, 60_000);
        t.record(OpClass::ChipRead, 61_000);
        t.record(OpClass::TxCommit, 2_500_000);
        let mut r = BenchReport::new("all");
        r.meta("scale", "smoke");
        r.meta("seed", "42");
        r.metric("syn_update_tps", 1234.5);
        r.metric("tpcc_commits", 9000.0);
        r.attach_telemetry(&t);
        r
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let r = sample_report();
        let text = r.to_json();
        let back = BenchReport::from_json(&text).unwrap();
        assert_eq!(back, r);
        // Serialization is stable.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn metric_lookup() {
        let r = sample_report();
        assert_eq!(r.get_metric("syn_update_tps"), Some(1234.5));
        assert_eq!(r.get_metric("absent"), None);
    }

    #[test]
    fn hist_keys_are_known_op_names() {
        let r = sample_report();
        assert_eq!(r.hists.len(), 2);
        for (name, _) in &r.hists {
            assert!(is_known_op_name(name), "{name}");
        }
        assert!(!is_known_op_name("made_up_op"));
    }

    #[test]
    fn schema_version_is_enforced() {
        let text = sample_report()
            .to_json()
            .replace(&format!("\"schema\": {SCHEMA_VERSION}"), "\"schema\": 999");
        assert!(BenchReport::from_json(&text).is_err());
    }

    #[test]
    fn missing_sections_are_rejected() {
        assert!(BenchReport::from_json("{}").is_err());
        assert!(BenchReport::from_json("not json").is_err());
    }
}
