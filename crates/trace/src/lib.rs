//! # xftl-trace — deterministic observability for the X-FTL stack
//!
//! Every layer of the reproduction (flash chip, FTL, file system,
//! database) charges its latencies to one shared simulated clock, which
//! makes *measurement* a pure function of the workload: the same run
//! produces the same latencies, bit for bit. This crate turns that
//! property into an observability layer:
//!
//! * [`Hist`] — fixed-bucket log-linear latency histograms with exact
//!   deterministic quantiles (p50/p95/p99/max), one per [`OpClass`];
//! * [`Telemetry`] — a cheaply cloneable [`Recorder`] handle threaded
//!   through the stack; all clones feed the same histogram set;
//! * a bounded structured-event ring (behind the `trace` cargo feature)
//!   emitting typed spans `{layer, op, tid, lpn, t_start, t_end}`,
//!   dumpable as JSONL for post-hoc analysis of a failing test or bench;
//! * [`BenchReport`] — a JSON report schema every bench binary writes
//!   next to its text tables, diffable exactly in CI because the
//!   simulated clock makes the numbers reproducible.
//!
//! The crate has **no dependencies** and **never reads a clock of its
//! own**: timestamps enter exclusively as simulated nanoseconds produced
//! by `SimClock` above. `xtask lint-sim` enforces this with a special
//! no-waiver rule for this crate.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod heat;
pub mod hist;
pub mod json;
pub mod op;
pub mod recorder;
pub mod report;

pub use event::{Event, Layer, RING_CAPACITY};
pub use heat::HeatSketch;
pub use hist::{Hist, HistSummary};
pub use json::{parse as parse_json, JsonError, JsonValue};
pub use op::OpClass;
pub use recorder::{Recorder, Telemetry};
pub use report::{is_known_op_name, BenchReport, SCHEMA_VERSION};

/// Simulated nanoseconds — the same unit as `xftl_flash::Nanos`, redefined
/// here so the telemetry layer can sit *below* the flash crate.
pub type Nanos = u64;
