//! Fixed-bucket log-linear latency histograms.
//!
//! Buckets are laid out HDR-style: values below 2^[`SUB_BITS`] land in
//! exact unit buckets; above that, each power-of-two octave is split into
//! 2^[`SUB_BITS`] linear sub-buckets. With `SUB_BITS = 4` the relative
//! quantization error is bounded by 1/16 (6.25 %) at any magnitude, and
//! the whole `u64` range fits in a fixed array — no allocation, no
//! rebucketing, and (crucially for CI golden-diffing) no dependence on
//! insertion order: two runs that record the same multiset of latencies
//! produce byte-identical histograms.

use crate::Nanos;

/// log2 of the linear sub-buckets per octave.
pub const SUB_BITS: u32 = 4;
/// Linear sub-buckets per octave.
pub const SUB: usize = 1 << SUB_BITS;
/// Total bucket count: one linear run of `2*SUB` exact-ish buckets plus
/// `(64 - SUB_BITS - 1)` octaves of `SUB` sub-buckets each, covering all
/// of `u64`.
pub const BUCKETS: usize = (2 * SUB) + (64 - SUB_BITS as usize - 1) * SUB;

/// Bucket index for a value. Total order preserving: `a <= b` implies
/// `index(a) <= index(b)`.
fn index(v: u64) -> usize {
    if v < (2 * SUB) as u64 {
        return v as usize;
    }
    // v >= 2*SUB, so bit length >= SUB_BITS + 2.
    let bits = 64 - v.leading_zeros(); // position of the leading one, 1-based
    let octave = bits - SUB_BITS - 1; // >= 1
    let sub = (v >> (bits - SUB_BITS - 1)) as usize & (SUB - 1);
    SUB + octave as usize * SUB + sub
}

/// Inclusive upper bound of bucket `i` — the histogram's reported value
/// for every sample that landed there (so quantiles never under-report).
fn upper_bound(i: usize) -> u64 {
    if i < 2 * SUB {
        return i as u64;
    }
    let rel = i - SUB;
    let octave = (rel / SUB) as u32; // >= 1
    let sub = (rel % SUB) as u64;
    let base = 1u64 << (octave + SUB_BITS);
    let width = 1u64 << octave; // base / SUB
    base + (sub + 1) * width - 1
}

/// A latency histogram over simulated nanoseconds.
#[derive(Clone)]
pub struct Hist {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: Nanos,
    max: Nanos,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: Nanos::MAX,
            max: 0,
        }
    }
}

impl std::fmt::Debug for Hist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hist")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, v: Nanos) {
        self.counts[index(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if no sample was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact largest recorded sample (0 when empty).
    pub fn max(&self) -> Nanos {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact smallest recorded sample (0 when empty).
    pub fn min(&self) -> Nanos {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean latency in nanoseconds (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// holding the sample at rank `ceil(q * count)`; the exact maximum is
    /// returned for the top rank so `quantile(1.0) == max()`. 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> Nanos {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report beyond the true extremes.
                return upper_bound(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Shorthand for the median.
    pub fn p50(&self) -> Nanos {
        self.quantile(0.50)
    }

    /// Shorthand for the 95th percentile.
    pub fn p95(&self) -> Nanos {
        self.quantile(0.95)
    }

    /// Shorthand for the 99th percentile.
    pub fn p99(&self) -> Nanos {
        self.quantile(0.99)
    }

    /// A compact fixed summary for reports.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            sum_ns: self.sum.min(u128::from(u64::MAX)) as u64,
            min_ns: self.min(),
            p50_ns: self.p50(),
            p95_ns: self.p95(),
            p99_ns: self.p99(),
            max_ns: self.max(),
        }
    }
}

/// The percentile summary of one [`Hist`], as embedded in bench reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)]
pub struct HistSummary {
    pub count: u64,
    pub sum_ns: u64,
    pub min_ns: Nanos,
    pub p50_ns: Nanos,
    pub p95_ns: Nanos,
    pub p99_ns: Nanos,
    pub max_ns: Nanos,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_monotone_and_in_range() {
        // Probe around every power of two, sort by value, and require the
        // bucket index to be non-decreasing.
        let mut samples: Vec<u64> = vec![0, u64::MAX];
        for shift in 0..64u32 {
            let p = 1u64 << shift;
            for delta in [0u64, 1, 2, 3] {
                samples.push(p.saturating_add(delta));
                samples.push(p.saturating_sub(delta));
            }
        }
        samples.sort_unstable();
        let mut last = 0usize;
        for v in samples {
            let i = index(v);
            assert!(i < BUCKETS, "v={v} i={i}");
            assert!(i >= last, "monotonicity broken at v={v}: {i} < {last}");
            last = i;
        }
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..(2 * SUB as u64) {
            assert_eq!(index(v), v as usize);
            assert_eq!(upper_bound(index(v)), v);
        }
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        // Every value's bucket upper bound is >= the value and within
        // 1/SUB relative error.
        for &v in &[37u64, 100, 1_000, 65_537, 1_000_000, 123_456_789_123] {
            let ub = upper_bound(index(v));
            assert!(ub >= v, "v={v} ub={ub}");
            assert!(
                (ub - v) as f64 <= v as f64 / SUB as f64 + 1.0,
                "v={v} ub={ub}"
            );
        }
    }

    #[test]
    fn boundary_values_change_bucket() {
        // The first value of each octave starts a new bucket run.
        assert_eq!(index(31), 31);
        assert_eq!(index(32), 32);
        assert!(index(63) < index(64));
        assert!(index(1023) < index(1024));
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = Hist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        let p50 = h.p50();
        assert!((470..=540).contains(&p50), "p50={p50}");
        let p99 = h.p99();
        assert!((980..=1000).contains(&p99), "p99={p99}");
        assert_eq!(h.quantile(1.0), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn quantile_never_exceeds_true_extremes() {
        let mut h = Hist::new();
        h.record(1_000_003);
        assert_eq!(h.p50(), 1_000_003);
        assert_eq!(h.p99(), 1_000_003);
        assert_eq!(h.max(), 1_000_003);
        assert_eq!(h.min(), 1_000_003);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        let mut c = Hist::new();
        for v in [5u64, 900, 17, 123_456, 3] {
            a.record(v);
            c.record(v);
        }
        for v in [7u64, 7, 88_000_000] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
        assert_eq!(a.summary(), c.summary());
    }

    #[test]
    fn identical_runs_are_deterministic() {
        let run = || {
            let mut h = Hist::new();
            for i in 0..10_000u64 {
                h.record(i.wrapping_mul(2_654_435_761) % 5_000_000);
            }
            h.summary()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn insertion_order_is_irrelevant() {
        let vals = [9u64, 1, 77_777, 4096, 4096, 12];
        let mut fwd = Hist::new();
        let mut rev = Hist::new();
        for &v in &vals {
            fwd.record(v);
        }
        for &v in vals.iter().rev() {
            rev.record(v);
        }
        assert_eq!(fwd.summary(), rev.summary());
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Hist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
    }
}
