//! The [`Recorder`] trait and the shared [`Telemetry`] handle.
//!
//! One `Telemetry` is created per rig/bench run and cloned into every
//! layer; all clones feed the same histogram set (and, with the `trace`
//! feature, the same event ring). A disabled handle records nothing and
//! costs one branch per call, so production paths can call it
//! unconditionally.

use std::sync::{Arc, Mutex, PoisonError};

use crate::event::Event;
#[cfg(feature = "trace")]
use crate::event::EventRing;
use crate::hist::{Hist, HistSummary};
use crate::op::{OpClass, N_OPS};
use crate::Nanos;

/// Sink for latency samples and (optionally) structured event spans.
pub trait Recorder {
    /// Records a latency sample of `dur` simulated nanoseconds for `op`.
    fn record(&self, op: OpClass, dur: Nanos);

    /// Records a full span: feeds the histogram with `t_end - t_start`
    /// and, when event tracing is compiled in and this recorder stores
    /// events, appends a typed event.
    fn record_span(&self, op: OpClass, tid: u64, lpn: u64, t_start: Nanos, t_end: Nanos);
}

struct Inner {
    hists: [Hist; N_OPS],
    #[cfg(feature = "trace")]
    ring: EventRing,
}

impl Inner {
    fn new() -> Self {
        Inner {
            hists: std::array::from_fn(|_| Hist::new()),
            #[cfg(feature = "trace")]
            ring: EventRing::default(),
        }
    }
}

/// Cheaply cloneable telemetry handle; all clones share one sink.
///
/// `Telemetry::disabled()` (also the `Default`) is a no-op handle, so
/// every layer can hold one unconditionally and the hot path pays a
/// single `Option` check when telemetry is off.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Telemetry(disabled)"),
            Some(inner) => {
                let inner = inner.lock().unwrap_or_else(PoisonError::into_inner);
                let total: u64 = inner.hists.iter().map(Hist::count).sum();
                write!(f, "Telemetry(samples: {total})")
            }
        }
    }
}

impl Telemetry {
    /// An active handle with empty histograms.
    pub fn new() -> Self {
        Telemetry {
            inner: Some(Arc::new(Mutex::new(Inner::new()))),
        }
    }

    /// A no-op handle; every record call is a cheap branch.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// True when this handle actually records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// True when two handles share the same sink.
    pub fn same_sink(&self, other: &Telemetry) -> bool {
        match (&self.inner, &other.inner) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }

    fn with_inner<R>(&self, f: impl FnOnce(&mut Inner) -> R) -> Option<R> {
        self.inner.as_ref().map(|inner| {
            let mut guard = inner.lock().unwrap_or_else(PoisonError::into_inner);
            f(&mut guard)
        })
    }

    /// A snapshot of one class's histogram.
    pub fn hist(&self, op: OpClass) -> Hist {
        self.with_inner(|i| i.hists[op.idx()].clone())
            .unwrap_or_default()
    }

    /// Summaries of every non-empty class, in [`OpClass::ALL`] order.
    pub fn summaries(&self) -> Vec<(OpClass, HistSummary)> {
        self.with_inner(|i| {
            OpClass::ALL
                .iter()
                .filter(|op| !i.hists[op.idx()].is_empty())
                .map(|&op| (op, i.hists[op.idx()].summary()))
                .collect()
        })
        .unwrap_or_default()
    }

    /// Total samples across all classes.
    pub fn total_samples(&self) -> u64 {
        self.with_inner(|i| i.hists.iter().map(Hist::count).sum())
            .unwrap_or(0)
    }

    /// Resets all histograms (and the event ring) to empty.
    pub fn reset(&self) {
        self.with_inner(|i| {
            *i = Inner::new();
        });
    }

    /// The current event ring as JSONL, oldest span first.
    ///
    /// Always empty unless the crate is built with the `trace` feature
    /// (events are not stored otherwise) and the handle is enabled.
    pub fn events_jsonl(&self) -> String {
        #[cfg(feature = "trace")]
        {
            self.with_inner(|i| i.ring.to_jsonl()).unwrap_or_default()
        }
        #[cfg(not(feature = "trace"))]
        {
            String::new()
        }
    }

    /// Number of events currently held (0 without the `trace` feature).
    pub fn event_count(&self) -> usize {
        #[cfg(feature = "trace")]
        {
            self.with_inner(|i| i.ring.len()).unwrap_or(0)
        }
        #[cfg(not(feature = "trace"))]
        {
            0
        }
    }

    /// Discards stored events without touching the histograms.
    pub fn clear_events(&self) {
        #[cfg(feature = "trace")]
        self.with_inner(|i| i.ring.clear());
    }
}

impl Recorder for Telemetry {
    fn record(&self, op: OpClass, dur: Nanos) {
        self.with_inner(|i| i.hists[op.idx()].record(dur));
    }

    fn record_span(&self, op: OpClass, tid: u64, lpn: u64, t_start: Nanos, t_end: Nanos) {
        self.with_inner(|i| {
            i.hists[op.idx()].record(t_end.saturating_sub(t_start));
            #[cfg(feature = "trace")]
            i.ring.push(Event {
                layer: op.layer(),
                op,
                tid,
                lpn,
                t_start,
                t_end,
            });
            #[cfg(not(feature = "trace"))]
            {
                // Spans still feed the histograms; only storage is gated.
                let _ = (tid, lpn);
                let _ = Event {
                    layer: op.layer(),
                    op,
                    tid,
                    lpn,
                    t_start,
                    t_end,
                };
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_sink() {
        let t = Telemetry::new();
        let u = t.clone();
        assert!(t.same_sink(&u));
        t.record(OpClass::ChipRead, 50_000);
        u.record(OpClass::ChipRead, 70_000);
        assert_eq!(t.hist(OpClass::ChipRead).count(), 2);
        assert_eq!(t.total_samples(), 2);
    }

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.record(OpClass::TxCommit, 1);
        t.record_span(OpClass::TxCommit, 1, 2, 0, 10);
        assert_eq!(t.total_samples(), 0);
        assert_eq!(t.events_jsonl(), "");
        assert!(t.summaries().is_empty());
    }

    #[test]
    fn spans_feed_histograms() {
        let t = Telemetry::new();
        t.record_span(OpClass::TxCommit, 7, 42, 1_000, 4_000);
        let h = t.hist(OpClass::TxCommit);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 3_000);
        let sums = t.summaries();
        assert_eq!(sums.len(), 1);
        assert_eq!(sums[0].0, OpClass::TxCommit);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn spans_are_stored_as_events_with_trace_feature() {
        let t = Telemetry::new();
        t.record_span(OpClass::TxCommit, 7, 42, 1_000, 4_000);
        assert_eq!(t.event_count(), 1);
        let jsonl = t.events_jsonl();
        assert_eq!(
            jsonl,
            "{\"layer\":\"ftl\",\"op\":\"tx_commit\",\"tid\":7,\"lpn\":42,\
             \"t_start\":1000,\"t_end\":4000}\n"
        );
        t.clear_events();
        assert_eq!(t.event_count(), 0);
        // Histograms survive an event clear.
        assert_eq!(t.hist(OpClass::TxCommit).count(), 1);
    }

    #[test]
    fn reset_clears_everything() {
        let t = Telemetry::new();
        t.record(OpClass::FsFsync, 9);
        t.reset();
        assert_eq!(t.total_samples(), 0);
    }
}
