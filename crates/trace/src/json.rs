//! A minimal, dependency-free JSON value, writer and parser.
//!
//! The workspace builds hermetically (no crates.io), so bench reports
//! are serialized by hand. The writer is deterministic: objects keep
//! insertion order, integers print as integers, and floats use Rust's
//! shortest round-trip formatting — so the same report serializes to the
//! same bytes on every run, which is what lets CI diff reports exactly.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (held as f64; bench metrics fit comfortably).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion-ordered (serialization is order-preserving).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as str, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object's members, if an object.
    pub fn members(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_num(out, *n),
            JsonValue::Str(s) => write_str(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; clamp to null rather than emit garbage.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure: message plus byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a JSON document.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.into(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.bytes[self.pos..self.pos + 4];
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates unsupported (reports never emit them).
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b => {
                    // Re-borrow the full UTF-8 char starting at b.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(b);
                        let end = start + width;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated utf-8"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("bad utf-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("bad number"))
    }
}

fn utf8_width(lead: u8) -> usize {
    match lead {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = JsonValue::Obj(vec![
            ("name".into(), JsonValue::Str("bench \"all\"".into())),
            ("n".into(), JsonValue::Num(42.0)),
            ("ratio".into(), JsonValue::Num(1.5)),
            ("ok".into(), JsonValue::Bool(true)),
            ("none".into(), JsonValue::Null),
            (
                "items".into(),
                JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::Num(2.0)]),
            ),
            ("empty".into(), JsonValue::Obj(vec![])),
        ]);
        let text = v.to_pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn serialization_is_deterministic_and_order_preserving() {
        let v = JsonValue::Obj(vec![
            ("z".into(), JsonValue::Num(1.0)),
            ("a".into(), JsonValue::Num(2.0)),
        ]);
        let a = v.to_pretty();
        let b = v.to_pretty();
        assert_eq!(a, b);
        assert!(a.find("\"z\"").unwrap() < a.find("\"a\"").unwrap());
    }

    #[test]
    fn integers_print_without_decimal_point() {
        let mut s = String::new();
        write_num(&mut s, 1_234_567.0);
        assert_eq!(s, "1234567");
        s.clear();
        write_num(&mut s, 0.125);
        assert_eq!(s, "0.125");
    }

    #[test]
    fn parses_numbers_strings_escapes() {
        let v = parse(r#"{"a": -1.5e3, "b": "x\nyA", "c": [true, false, null]}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\nyA"));
        assert_eq!(
            v.get("c").unwrap(),
            &JsonValue::Arr(vec![
                JsonValue::Bool(true),
                JsonValue::Bool(false),
                JsonValue::Null
            ])
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn non_finite_floats_degrade_to_null() {
        let v = JsonValue::Num(f64::NAN);
        assert_eq!(v.to_pretty(), "null\n");
    }

    #[test]
    fn unicode_passthrough() {
        let v = JsonValue::Str("héllo — ∞".into());
        assert_eq!(parse(&v.to_pretty()).unwrap(), v);
    }
}
