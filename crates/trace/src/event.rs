//! Structured event spans and the bounded ring that stores them.
//!
//! Events are only *stored* when the `trace` cargo feature is enabled —
//! the types always exist so call sites need no `cfg`. The ring is
//! bounded ([`RING_CAPACITY`] by default): once full, the oldest events
//! are overwritten, so a trace of an arbitrarily long run costs constant
//! memory and always holds the most recent window — the part that
//! explains a failure.

use crate::op::OpClass;
use crate::Nanos;

/// The stack layer an event originated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// Raw NAND array.
    Flash,
    /// Flash translation layer (any personality) and device transactions.
    Ftl,
    /// File system.
    Fs,
    /// Database (pager + SQL).
    Db,
}

impl Layer {
    /// Stable lowercase name for event streams.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Flash => "flash",
            Layer::Ftl => "ftl",
            Layer::Fs => "fs",
            Layer::Db => "db",
        }
    }
}

/// One timed span on the simulated clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Originating layer (derived from `op`).
    pub layer: Layer,
    /// Operation class.
    pub op: OpClass,
    /// Transaction id (0 = non-transactional).
    pub tid: u64,
    /// Logical page number, or 0 where not meaningful.
    pub lpn: u64,
    /// Span start, simulated nanoseconds.
    pub t_start: Nanos,
    /// Span end, simulated nanoseconds.
    pub t_end: Nanos,
}

impl Event {
    /// One JSONL line (no trailing newline). Field order is fixed so the
    /// stream is byte-stable across runs.
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"layer\":\"{}\",\"op\":\"{}\",\"tid\":{},\"lpn\":{},\"t_start\":{},\"t_end\":{}}}",
            self.layer.name(),
            self.op.name(),
            self.tid,
            self.lpn,
            self.t_start,
            self.t_end
        )
    }
}

/// Default capacity of the event ring.
pub const RING_CAPACITY: usize = 1 << 16;

/// Bounded ring of [`Event`]s; overwrites the oldest when full.
#[derive(Debug)]
pub struct EventRing {
    buf: Vec<Event>,
    capacity: usize,
    /// Index of the logically first (oldest) event once wrapped.
    head: usize,
    /// Total events ever pushed (including overwritten ones).
    pushed: u64,
}

impl Default for EventRing {
    fn default() -> Self {
        Self::with_capacity(RING_CAPACITY)
    }
}

impl EventRing {
    /// A ring holding at most `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        EventRing {
            buf: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            pushed: 0,
        }
    }

    /// Appends an event, overwriting the oldest if full.
    pub fn push(&mut self, ev: Event) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
        self.pushed += 1;
    }

    /// Events currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever pushed, including overwritten ones.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Discards all held events (the total-pushed counter keeps running).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }

    /// The whole ring as JSONL, one event per line, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.iter() {
            out.push_str(&ev.to_jsonl());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: Nanos) -> Event {
        Event {
            layer: Layer::Flash,
            op: OpClass::ChipRead,
            tid: 0,
            lpn: t,
            t_start: t,
            t_end: t + 1,
        }
    }

    #[test]
    fn ring_keeps_most_recent_window() {
        let mut r = EventRing::with_capacity(3);
        for t in 0..5 {
            r.push(ev(t));
        }
        let kept: Vec<Nanos> = r.iter().map(|e| e.t_start).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(r.total_pushed(), 5);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn jsonl_is_one_line_per_event() {
        let mut r = EventRing::with_capacity(8);
        r.push(ev(10));
        r.push(ev(20));
        let s = r.to_jsonl();
        assert_eq!(s.lines().count(), 2);
        assert!(s.starts_with("{\"layer\":\"flash\",\"op\":\"chip_read\""));
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.to_jsonl(), "");
    }
}
