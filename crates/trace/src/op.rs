//! Operation classes: the fixed vocabulary of latency attribution.
//!
//! One histogram per class gives the per-layer breakdown the paper's
//! argument needs — *where* in the stack time is paid: raw chip ops,
//! channel queueing, FTL work, device transactions, file-system
//! synchronization, or the database above it all.

use crate::event::Layer;

/// The operation classes the stack records latencies for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum OpClass {
    /// Full-page NAND read (command overhead + cell + bus).
    ChipRead,
    /// NAND page program.
    ChipProgram,
    /// NAND block erase.
    ChipErase,
    /// OOB-only probe (recovery scans, GC validity checks).
    ChipOobRead,
    /// In-line ECC correction stall on a read.
    EccCorrect,
    /// Time a chip command waited for its channel/way to free up.
    ChanQueueWait,
    /// FTL host-attributed logical page read.
    FtlHostRead,
    /// FTL host-attributed logical page write (plain or copy-on-write).
    FtlHostWrite,
    /// One page relocated by garbage collection.
    GcCopy,
    /// Device-level transaction commit (X-FTL commit protocol).
    TxCommit,
    /// Device-level transaction abort.
    TxAbort,
    /// Crash-recovery replay (checkpoint load + log scan + fold).
    RecoveryReplay,
    /// File-system fsync (journal commit and/or device flush).
    FsFsync,
    /// Pager page fetch (cache miss service).
    PagerFetch,
    /// Pager commit flush (force-write of a transaction's dirty pages).
    PagerFlush,
    /// One SQL statement, parse to completion.
    SqlStatement,
    /// Dispatch of an `IoCmd::Barrier` ordering fence (no drain).
    BarrierDispatch,
    /// One group-commit flush; the span's `bytes` field carries the
    /// number of staged commits the flush coalesced into one meta write.
    GroupCommitCoalesce,
    /// Commit-pipeline depth sample at `commit_submit` time; the span's
    /// `bytes` field carries the staged-commit count after submission.
    CommitPipelineDepth,
    /// Snapshot-visible read: a `read_tx` served from the version visible
    /// at the transaction's begin snapshot rather than the newest copy.
    SnapshotRead,
    /// First-committer-wins loser: `commit_submit` detected a newer
    /// committed version of a written page and aborted the transaction.
    ConflictAbort,
    /// Version-chain walk depth sample on a snapshot read; the span's
    /// `bytes` field carries the retained-chain length for the page.
    VersionChainLen,
    /// One page relocated by the background scrubber (at-risk block
    /// rewritten before its aging damage crossed the ECC budget).
    ScrubCopy,
    /// One page relocated by static wear leveling (cold data moved off a
    /// low-wear block so its cells rejoin the free pool).
    WearLevelCopy,
    /// Entry into a worse device-health state (`Degraded` or `ReadOnly`);
    /// the span's `lpn` field carries the new state's encoding.
    DegradedEntry,
}

/// Number of operation classes.
pub const N_OPS: usize = 25;

impl OpClass {
    /// All classes, in declaration (= report) order.
    pub const ALL: [OpClass; N_OPS] = [
        OpClass::ChipRead,
        OpClass::ChipProgram,
        OpClass::ChipErase,
        OpClass::ChipOobRead,
        OpClass::EccCorrect,
        OpClass::ChanQueueWait,
        OpClass::FtlHostRead,
        OpClass::FtlHostWrite,
        OpClass::GcCopy,
        OpClass::TxCommit,
        OpClass::TxAbort,
        OpClass::RecoveryReplay,
        OpClass::FsFsync,
        OpClass::PagerFetch,
        OpClass::PagerFlush,
        OpClass::SqlStatement,
        OpClass::BarrierDispatch,
        OpClass::GroupCommitCoalesce,
        OpClass::CommitPipelineDepth,
        OpClass::SnapshotRead,
        OpClass::ConflictAbort,
        OpClass::VersionChainLen,
        OpClass::ScrubCopy,
        OpClass::WearLevelCopy,
        OpClass::DegradedEntry,
    ];

    /// Stable snake_case name used in reports and event streams.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::ChipRead => "chip_read",
            OpClass::ChipProgram => "chip_program",
            OpClass::ChipErase => "chip_erase",
            OpClass::ChipOobRead => "chip_oob_read",
            OpClass::EccCorrect => "ecc_correct",
            OpClass::ChanQueueWait => "chan_queue_wait",
            OpClass::FtlHostRead => "ftl_host_read",
            OpClass::FtlHostWrite => "ftl_host_write",
            OpClass::GcCopy => "gc_copy",
            OpClass::TxCommit => "tx_commit",
            OpClass::TxAbort => "tx_abort",
            OpClass::RecoveryReplay => "recovery_replay",
            OpClass::FsFsync => "fs_fsync",
            OpClass::PagerFetch => "pager_fetch",
            OpClass::PagerFlush => "pager_flush",
            OpClass::SqlStatement => "sql_statement",
            OpClass::BarrierDispatch => "barrier_dispatch",
            OpClass::GroupCommitCoalesce => "group_commit_coalesce",
            OpClass::CommitPipelineDepth => "commit_pipeline_depth",
            OpClass::SnapshotRead => "snapshot_read",
            OpClass::ConflictAbort => "conflict_abort",
            OpClass::VersionChainLen => "version_chain_len",
            OpClass::ScrubCopy => "scrub_copy",
            OpClass::WearLevelCopy => "wear_level_copy",
            OpClass::DegradedEntry => "degraded_entry",
        }
    }

    /// The stack layer that records this class.
    pub fn layer(self) -> Layer {
        match self {
            OpClass::ChipRead
            | OpClass::ChipProgram
            | OpClass::ChipErase
            | OpClass::ChipOobRead
            | OpClass::EccCorrect
            | OpClass::ChanQueueWait => Layer::Flash,
            OpClass::FtlHostRead
            | OpClass::FtlHostWrite
            | OpClass::GcCopy
            | OpClass::TxCommit
            | OpClass::TxAbort
            | OpClass::RecoveryReplay
            | OpClass::BarrierDispatch
            | OpClass::GroupCommitCoalesce
            | OpClass::CommitPipelineDepth
            | OpClass::SnapshotRead
            | OpClass::ConflictAbort
            | OpClass::VersionChainLen
            | OpClass::ScrubCopy
            | OpClass::WearLevelCopy
            | OpClass::DegradedEntry => Layer::Ftl,
            OpClass::FsFsync => Layer::Fs,
            OpClass::PagerFetch | OpClass::PagerFlush | OpClass::SqlStatement => Layer::Db,
        }
    }

    /// Index into per-class arrays (declaration order).
    pub fn idx(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_complete_and_index_stable() {
        assert_eq!(OpClass::ALL.len(), N_OPS);
        for (i, op) in OpClass::ALL.iter().enumerate() {
            assert_eq!(op.idx(), i, "{op:?}");
        }
    }

    #[test]
    fn names_are_unique() {
        for a in OpClass::ALL {
            for b in OpClass::ALL {
                if a != b {
                    assert_ne!(a.name(), b.name());
                }
            }
        }
    }

    #[test]
    fn every_layer_is_covered() {
        for layer in [Layer::Flash, Layer::Ftl, Layer::Fs, Layer::Db] {
            assert!(
                OpClass::ALL.iter().any(|o| o.layer() == layer),
                "{layer:?} has no op class"
            );
        }
    }
}
