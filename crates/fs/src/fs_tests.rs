//! File-system behaviour tests, including crash-consistency checks for
//! every journal mode.

use xftl_core::XFtl;
use xftl_flash::{FlashChip, FlashConfig, SimClock};
use xftl_ftl::{BlockDevice, PageMappedFtl};

use crate::error::FsError;
use crate::fs::{FileSystem, FsConfig, JournalMode};

const LOGICAL: u64 = 700;
const BLOCKS: usize = 110;

fn plain_dev() -> PageMappedFtl {
    let chip = FlashChip::new(FlashConfig::tiny(BLOCKS), SimClock::new());
    PageMappedFtl::format(chip, LOGICAL).unwrap()
}

fn tx_dev() -> XFtl {
    let chip = FlashChip::new(FlashConfig::tiny(BLOCKS), SimClock::new());
    XFtl::format(chip, LOGICAL).unwrap()
}

fn cfg() -> FsConfig {
    FsConfig {
        inode_count: 32,
        journal_pages: 32,
        cache_pages: 64,
    }
}

fn fs_ordered() -> FileSystem<PageMappedFtl> {
    FileSystem::mkfs(plain_dev(), JournalMode::Ordered, cfg()).unwrap()
}

fn fs_off() -> FileSystem<XFtl> {
    FileSystem::mkfs_tx(tx_dev(), JournalMode::Off, cfg()).unwrap()
}

#[test]
fn create_write_read_roundtrip() {
    let mut fs = fs_ordered();
    let f = fs.create("a.txt").unwrap();
    fs.write(f, 0, b"hello world", None).unwrap();
    let mut buf = [0u8; 11];
    assert_eq!(fs.read(f, 0, &mut buf, None).unwrap(), 11);
    assert_eq!(&buf, b"hello world");
    assert_eq!(fs.size(f).unwrap(), 11);
}

#[test]
fn write_spanning_pages() {
    let mut fs = fs_ordered();
    let ps = fs.page_size();
    let f = fs.create("big").unwrap();
    let data: Vec<u8> = (0..(3 * ps + 100)).map(|i| (i % 251) as u8).collect();
    fs.write(f, 0, &data, None).unwrap();
    let mut out = vec![0u8; data.len()];
    assert_eq!(fs.read(f, 0, &mut out, None).unwrap(), data.len());
    assert_eq!(out, data);
}

#[test]
fn write_at_offset_preserves_neighbours() {
    let mut fs = fs_ordered();
    let f = fs.create("x").unwrap();
    fs.write(f, 0, &[1u8; 100], None).unwrap();
    fs.write(f, 50, &[2u8; 10], None).unwrap();
    let mut out = [0u8; 100];
    fs.read(f, 0, &mut out, None).unwrap();
    assert_eq!(out[49], 1);
    assert_eq!(out[50], 2);
    assert_eq!(out[59], 2);
    assert_eq!(out[60], 1);
}

#[test]
fn sparse_holes_read_as_zeros() {
    let mut fs = fs_ordered();
    let ps = fs.page_size() as u64;
    let f = fs.create("sparse").unwrap();
    fs.write(f, 5 * ps, b"tail", None).unwrap();
    let mut out = [9u8; 8];
    fs.read(f, 0, &mut out, None).unwrap();
    assert_eq!(out, [0u8; 8]);
    let mut tail = [0u8; 4];
    fs.read(f, 5 * ps, &mut tail, None).unwrap();
    assert_eq!(&tail, b"tail");
}

#[test]
fn read_past_eof_is_short() {
    let mut fs = fs_ordered();
    let f = fs.create("short").unwrap();
    fs.write(f, 0, b"abc", None).unwrap();
    let mut buf = [0u8; 10];
    assert_eq!(fs.read(f, 0, &mut buf, None).unwrap(), 3);
    assert_eq!(fs.read(f, 3, &mut buf, None).unwrap(), 0);
}

#[test]
fn namespace_operations() {
    let mut fs = fs_ordered();
    fs.create("one").unwrap();
    fs.create("two").unwrap();
    assert_eq!(fs.create("one"), Err(FsError::Exists));
    assert!(fs.exists("one"));
    assert_eq!(fs.open("nope"), Err(FsError::NotFound));
    let mut names = fs.list();
    names.sort();
    assert_eq!(names, vec!["one".to_string(), "two".to_string()]);
    fs.unlink("one").unwrap();
    assert!(!fs.exists("one"));
    assert_eq!(fs.unlink("one"), Err(FsError::NotFound));
}

#[test]
fn unlink_frees_space_for_reuse() {
    let mut fs = fs_ordered();
    let ps = fs.page_size();
    // Create and delete files repeatedly; the volume must not fill up.
    for round in 0..30 {
        let name = format!("журнал-{round}"); // unicode names are fine
        let f = fs.create(&name).unwrap();
        fs.write(f, 0, &vec![round as u8; ps * 20], None).unwrap();
        fs.fsync(f, None).unwrap();
        fs.unlink(&name).unwrap();
    }
}

#[test]
fn large_file_uses_block_map_chain() {
    let mut fs = fs_ordered();
    let ps = fs.page_size() as u64;
    let f = fs.create("chained").unwrap();
    // Far beyond the 8 direct pointers.
    let n_pages = 200u64;
    for i in 0..n_pages {
        fs.write(f, i * ps, &[i as u8; 16], None).unwrap();
    }
    fs.fsync(f, None).unwrap();
    for i in (0..n_pages).step_by(17) {
        let mut out = [0u8; 16];
        fs.read(f, i * ps, &mut out, None).unwrap();
        assert_eq!(out, [i as u8; 16], "page {i}");
    }
}

#[test]
fn truncate_to_zero_frees_blocks() {
    let mut fs = fs_ordered();
    let ps = fs.page_size();
    let f = fs.create("t").unwrap();
    fs.write(f, 0, &vec![7u8; ps * 40], None).unwrap();
    fs.fsync(f, None).unwrap();
    fs.truncate(f, 0).unwrap();
    assert_eq!(fs.size(f).unwrap(), 0);
    let mut buf = [0u8; 4];
    assert_eq!(fs.read(f, 0, &mut buf, None).unwrap(), 0);
    // Space must be reusable.
    let g = fs.create("t2").unwrap();
    fs.write(g, 0, &vec![8u8; ps * 40], None).unwrap();
    fs.fsync(g, None).unwrap();
}

#[test]
fn remount_preserves_files() {
    let mut fs = fs_ordered();
    let f = fs.create("persist").unwrap();
    fs.write(f, 0, b"durable bytes", None).unwrap();
    fs.fsync(f, None).unwrap();
    let dev = fs.unmount().unwrap();
    let mut fs2 = FileSystem::mount(dev, JournalMode::Ordered, 64).unwrap();
    let f2 = fs2.open("persist").unwrap();
    let mut buf = [0u8; 13];
    fs2.read(f2, 0, &mut buf, None).unwrap();
    assert_eq!(&buf, b"durable bytes");
}

#[test]
fn crash_after_fsync_preserves_data_ordered() {
    crash_after_fsync(JournalMode::Ordered);
}

#[test]
fn crash_after_fsync_preserves_data_full() {
    crash_after_fsync(JournalMode::Full);
}

fn crash_after_fsync(mode: JournalMode) {
    let mut fs = FileSystem::mkfs(plain_dev(), mode, cfg()).unwrap();
    let f = fs.create("crashme").unwrap();
    fs.write(f, 0, b"must survive", None).unwrap();
    fs.fsync(f, None).unwrap();
    // Power loss: no unmount.
    let dev = fs.into_device();
    let dev = PageMappedFtl::recover(dev.into_chip()).unwrap();
    let mut fs2 = FileSystem::mount(dev, mode, 64).unwrap();
    let f2 = fs2.open("crashme").unwrap();
    let mut buf = [0u8; 12];
    fs2.read(f2, 0, &mut buf, None).unwrap();
    assert_eq!(&buf, b"must survive");
}

#[test]
fn crash_after_fsync_preserves_data_off() {
    let mut fs = fs_off();
    let f = fs.create("crashme").unwrap();
    let tid = fs.begin_tx();
    fs.write(f, 0, b"must survive", Some(tid)).unwrap();
    fs.fsync(f, Some(tid)).unwrap();
    let dev = fs.into_device();
    let dev = XFtl::recover(dev.into_chip()).unwrap();
    let mut fs2 = FileSystem::mount_tx(dev, JournalMode::Off, 64).unwrap();
    let f2 = fs2.open("crashme").unwrap();
    let mut buf = [0u8; 12];
    fs2.read(f2, 0, &mut buf, None).unwrap();
    assert_eq!(&buf, b"must survive");
}

#[test]
fn crash_mid_transaction_rolls_back_off_mode() {
    let mut fs = fs_off();
    let f = fs.create("db").unwrap();
    let tid0 = fs.begin_tx();
    fs.write(f, 0, b"v1-committed", Some(tid0)).unwrap();
    fs.fsync(f, Some(tid0)).unwrap();
    // Second transaction writes and is even stolen to the device, but
    // never commits.
    let tid = fs.begin_tx();
    fs.write(f, 0, b"v2-UNCOMMITT", Some(tid)).unwrap();
    // Force the page to the device via write_tx without commit.
    for &lpn in &fs.device().counters().host_writes.to_le_bytes() {
        let _ = lpn; // no-op; keep the write purely in cache for this test
    }
    let dev = fs.into_device();
    let dev = XFtl::recover(dev.into_chip()).unwrap();
    let mut fs2 = FileSystem::mount_tx(dev, JournalMode::Off, 64).unwrap();
    let f2 = fs2.open("db").unwrap();
    let mut buf = [0u8; 12];
    fs2.read(f2, 0, &mut buf, None).unwrap();
    assert_eq!(&buf, b"v1-committed");
}

#[test]
fn abort_tx_restores_committed_state() {
    let mut fs = fs_off();
    let f = fs.create("db").unwrap();
    let t1 = fs.begin_tx();
    fs.write(f, 0, b"committed!", Some(t1)).unwrap();
    fs.fsync(f, Some(t1)).unwrap();
    let t2 = fs.begin_tx();
    fs.write(f, 0, b"scribbled.", Some(t2)).unwrap();
    // Make the steal path run for real: sync the dirty page to the device
    // under t2 *without* committing, via a direct device write_tx.
    fs.abort_tx(t2).unwrap();
    let mut buf = [0u8; 10];
    fs.read(f, 0, &mut buf, None).unwrap();
    assert_eq!(&buf, b"committed!");
}

#[test]
fn abort_after_steal_rolls_back_device_writes() {
    // A tiny cache forces dirty transactional pages to be stolen
    // (write_tx'd to the device) before commit; abort must undo them.
    let mut fs = FileSystem::mkfs_tx(
        tx_dev(),
        JournalMode::Off,
        FsConfig {
            inode_count: 32,
            journal_pages: 32,
            cache_pages: 4,
        },
    )
    .unwrap();
    let ps = fs.page_size();
    let f = fs.create("db").unwrap();
    let t1 = fs.begin_tx();
    let committed: Vec<u8> = vec![0xC0; ps * 8];
    fs.write(f, 0, &committed, Some(t1)).unwrap();
    fs.fsync(f, Some(t1)).unwrap();
    let t2 = fs.begin_tx();
    fs.write(f, 0, &vec![0xDD; ps * 8], Some(t2)).unwrap(); // exceeds cache: steals
    assert!(fs.stats().evictions > 0, "steal path must have run");
    fs.abort_tx(t2).unwrap();
    let mut out = vec![0u8; ps * 8];
    fs.read(f, 0, &mut out, None).unwrap();
    assert_eq!(out, committed);
}

#[test]
fn off_mode_requires_tx_constructor() {
    // The plain constructors cannot wire the transactional command set,
    // even when the device would support it.
    let r = FileSystem::mkfs(plain_dev(), JournalMode::Off, cfg());
    assert!(matches!(r, Err(FsError::NeedsTxDevice)));
    let r = FileSystem::mkfs(tx_dev(), JournalMode::Off, cfg());
    assert!(matches!(r, Err(FsError::NeedsTxDevice)));
    let r = FileSystem::mount(tx_dev(), JournalMode::Off, 64);
    assert!(matches!(r, Err(FsError::NeedsTxDevice)));
}

#[test]
fn off_fsync_submits_one_batch() {
    let mut fs = fs_off();
    let ps = fs.page_size();
    let f = fs.create("b").unwrap();
    let tid = fs.begin_tx();
    fs.write(f, 0, &vec![3u8; ps * 4], Some(tid)).unwrap();
    let before = fs.device().counters().batches;
    fs.fsync(f, Some(tid)).unwrap();
    assert_eq!(
        fs.device().counters().batches - before,
        1,
        "every page of the fsync rides one queued batch"
    );
}

#[test]
fn ordered_fsync_issues_two_barriers() {
    let mut fs = fs_ordered();
    let f = fs.create("b").unwrap();
    fs.write(f, 0, b"x", None).unwrap();
    let before = fs.stats().barriers;
    fs.fsync(f, None).unwrap();
    assert_eq!(fs.stats().barriers - before, 2);
}

#[test]
fn off_fsync_issues_single_commit() {
    let mut fs = fs_off();
    let f = fs.create("b").unwrap();
    let tid = fs.begin_tx();
    fs.write(f, 0, b"x", Some(tid)).unwrap();
    let commits_before = fs.device().counters().commits;
    let flushes_before = fs.device().counters().flushes;
    fs.fsync(f, Some(tid)).unwrap();
    assert_eq!(fs.device().counters().commits - commits_before, 1);
    assert_eq!(
        fs.device().counters().flushes,
        flushes_before,
        "no barrier commands during the fsync"
    );
}

#[test]
fn full_mode_writes_data_twice() {
    let mut fs = FileSystem::mkfs(plain_dev(), JournalMode::Full, cfg()).unwrap();
    let ps = fs.page_size();
    let f = fs.create("dj").unwrap();
    for i in 0..4u64 {
        fs.write(f, i * ps as u64, &vec![i as u8; ps], None)
            .unwrap();
        fs.fsync(f, None).unwrap();
    }
    let dev = fs.unmount().unwrap(); // checkpoint forces home writes
    let _ = dev;
}

#[test]
fn full_journal_beats_torn_state() {
    // Tear the power mid-journal-commit in full mode: the file must show
    // either the old or the new content of BOTH pages, never a mix.
    let mut fs = FileSystem::mkfs(plain_dev(), JournalMode::Full, cfg()).unwrap();
    let ps = fs.page_size();
    let f = fs.create("atomic").unwrap();
    fs.write(f, 0, &vec![1u8; ps * 2], None).unwrap();
    fs.fsync(f, None).unwrap();
    fs.write(f, 0, &vec![2u8; ps * 2], None).unwrap();
    // Fuse somewhere inside the next fsync's journal writes.
    fs.device_mut().base_mut().chip_mut().arm_power_fuse(2);
    let _ = fs.fsync(f, None);
    let dev = fs.into_device();
    let dev = PageMappedFtl::recover(dev.into_chip()).unwrap();
    let mut fs2 = FileSystem::mount(dev, JournalMode::Full, 64).unwrap();
    let f2 = fs2.open("atomic").unwrap();
    let mut out = vec![0u8; ps * 2];
    fs2.read(f2, 0, &mut out, None).unwrap();
    let first = out[0];
    assert!(first == 1 || first == 2);
    assert!(
        out.iter().all(|&b| b == first),
        "torn multi-page fsync in full mode"
    );
}

#[test]
fn stats_track_causes() {
    let mut fs = fs_ordered();
    let f = fs.create("s").unwrap();
    fs.write(f, 0, b"abc", None).unwrap();
    fs.fsync(f, None).unwrap();
    let s = fs.stats();
    assert_eq!(s.fsyncs, 1);
    assert!(s.data_writes >= 1);
    assert!(s.journal_writes >= 2, "descriptor + commit at minimum");
}

#[test]
fn many_files_round_trip_after_remount() {
    let mut fs = fs_ordered();
    for i in 0..10 {
        let f = fs.create(&format!("file-{i}")).unwrap();
        fs.write(f, 0, format!("content-{i}").as_bytes(), None)
            .unwrap();
    }
    let dev = fs.unmount().unwrap();
    let mut fs2 = FileSystem::mount(dev, JournalMode::Ordered, 64).unwrap();
    for i in 0..10 {
        let f = fs2.open(&format!("file-{i}")).unwrap();
        let expect = format!("content-{i}");
        let mut buf = vec![0u8; expect.len()];
        fs2.read(f, 0, &mut buf, None).unwrap();
        assert_eq!(buf, expect.as_bytes());
    }
}

#[test]
fn cache_pressure_steals_and_still_reads_back() {
    let mut fs = FileSystem::mkfs_tx(
        tx_dev(),
        JournalMode::Off,
        FsConfig {
            inode_count: 32,
            journal_pages: 32,
            cache_pages: 8,
        },
    )
    .unwrap();
    let ps = fs.page_size();
    let f = fs.create("steal").unwrap();
    let tid = fs.begin_tx();
    let data: Vec<u8> = (0..ps * 30).map(|i| (i % 241) as u8).collect();
    fs.write(f, 0, &data, Some(tid)).unwrap();
    assert!(fs.stats().evictions > 0);
    // The transaction still sees its own stolen pages.
    let mut out = vec![0u8; data.len()];
    fs.read(f, 0, &mut out, Some(tid)).unwrap();
    assert_eq!(out, data);
    fs.fsync(f, Some(tid)).unwrap();
    let mut out2 = vec![0u8; data.len()];
    fs.read(f, 0, &mut out2, None).unwrap();
    assert_eq!(out2, data);
}

#[test]
fn consistency_clean_after_churn() {
    let mut fs = fs_ordered();
    let ps = fs.page_size();
    for round in 0..6 {
        let name = format!("churn-{round}");
        let f = fs.create(&name).unwrap();
        fs.write(f, 0, &vec![round as u8; ps * 25], None).unwrap();
        fs.fsync(f, None).unwrap();
        if round % 2 == 0 {
            fs.truncate(f, (ps * 3) as u64).unwrap();
        }
        if round >= 3 {
            fs.unlink(&format!("churn-{}", round - 3)).unwrap();
        }
    }
    let report = fs.check_consistency().unwrap();
    assert!(report.is_clean(), "{report:?}");
    assert!(report.live_inodes >= 4);
}

#[test]
fn consistency_clean_after_crash_and_remount() {
    let mut fs = fs_ordered();
    let ps = fs.page_size();
    let f = fs.create("a").unwrap();
    fs.write(f, 0, &vec![1u8; ps * 30], None).unwrap();
    fs.fsync(f, None).unwrap();
    let g = fs.create("b").unwrap();
    fs.write(g, 0, &vec![2u8; ps * 10], None).unwrap();
    // crash without syncing "b"
    let dev = fs.into_device();
    let dev = PageMappedFtl::recover(dev.into_chip()).unwrap();
    let mut fs2 = FileSystem::mount(dev, JournalMode::Ordered, 64).unwrap();
    let report = fs2.check_consistency().unwrap();
    assert!(report.is_clean(), "{report:?}");
}
