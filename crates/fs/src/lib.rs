//! # xftl-fs — an ext4-like journaling file system over simulated flash
//!
//! The file system sits between the database and the device, exactly as in
//! the paper's stack (Figure 2): it owns transaction ids, translates
//! `fsync`/`ioctl` into the extended device commands, and — in its
//! journaling modes — reproduces ext4's ordered and full (data) journaling
//! with JBD2-style descriptor/commit blocks and write barriers.
//!
//! | mode      | data pages        | metadata        | barriers per fsync |
//! |-----------|-------------------|-----------------|--------------------|
//! | `Ordered` | written in place  | journaled       | 2                  |
//! | `Full`    | journaled (x2)    | journaled       | 2                  |
//! | `Off`     | `write_tx(tid,p)` | `write_tx` too  | 1 `commit(tid)`    |
//!
//! ```
//! use xftl_core::XFtl;
//! use xftl_flash::{FlashChip, FlashConfig, SimClock};
//! use xftl_fs::{FileSystem, FsConfig, JournalMode};
//!
//! let clock = SimClock::new();
//! let chip = FlashChip::new(FlashConfig::tiny(64), clock.clone());
//! let dev = XFtl::format(chip, 400).unwrap();
//! // `Off` mode needs the transactional command set, so it is only
//! // reachable through the `*_tx` constructors (`D: TxBlockDevice`).
//! let mut fs = FileSystem::mkfs_tx(dev, JournalMode::Off, FsConfig::default()).unwrap();
//!
//! let f = fs.create("hello.db").unwrap();
//! let tid = fs.begin_tx();
//! fs.write(f, 0, b"hello, transactional world", Some(tid)).unwrap();
//! fs.fsync(f, Some(tid)).unwrap(); // one commit, no journal
//! let mut buf = [0u8; 26];
//! fs.read(f, 0, &mut buf, None).unwrap();
//! assert_eq!(&buf, b"hello, transactional world");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alloc;
pub mod cache;
pub mod error;
pub mod fs;
pub mod journal;
pub mod layout;
pub mod stats;

pub use error::{FsError, Result};
pub use fs::{FileSystem, FsConfig, FsckReport, JournalMode};
pub use layout::{Ino, Inode, InodeKind, Superblock};
pub use stats::FsStats;

#[cfg(test)]
mod fs_tests;
