//! JBD2-like physical journal.
//!
//! A fixed circular region of the volume holds a header page followed by a
//! log of transactions. Each transaction is a *descriptor* page (listing
//! the home LPNs of the pages that follow), the journaled page images, and
//! a *commit* page. The file system places write barriers around the
//! commit page exactly as ext4 does — this is where the ordered/full
//! journaling costs of §6.3.4 come from.
//!
//! Recovery replays, in order, every transaction whose commit page made it
//! to the device; a missing or mismatched commit page ends the replay —
//! the classic all-or-nothing redo log.

use xftl_ftl::{BlockDevice, DevError, IoCmd, Lpn};

use crate::error::{FsError, Result};
use crate::layout::Superblock;

/// Magic of the journal header page ("XFTLJHDR").
const HDR_MAGIC: u64 = 0x5846_544C_4A48_4452;
/// Magic of a descriptor page ("XFTLJDSC").
const DESC_MAGIC: u64 = 0x5846_544C_4A44_5343;
/// Magic of a commit page ("XFTLJCMT").
const CMT_MAGIC: u64 = 0x5846_544C_4A43_4D54;

/// Journal state (in RAM; the header page persists the replay origin).
#[derive(Debug)]
pub struct Journal {
    /// First page of the journal region (the header page).
    region_start: Lpn,
    /// Pages in the region, including the header.
    region_pages: u64,
    /// Next log slot, as an offset in `[1, region_pages)`.
    head_off: u64,
    /// Sequence number of the next transaction to append.
    next_seq: u64,
    /// Offset/sequence the persisted header says replay starts from.
    tail_off: u64,
    tail_seq: u64,
    /// Pages appended since the last checkpoint (space accounting).
    live_pages: u64,
    /// Home writes owed by checkpoint: `(home_lpn, page_image)`.
    pending: Vec<(Lpn, Vec<u8>)>,
}

fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

fn get_u64(buf: &[u8], off: usize) -> u64 {
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(bytes)
}

impl Journal {
    /// Creates a fresh journal and writes its header page.
    pub fn mkfs<D: BlockDevice>(dev: &mut D, sb: &Superblock) -> Result<Journal> {
        let mut j = Journal {
            region_start: sb.jr_start,
            region_pages: sb.jr_pages,
            head_off: 1,
            next_seq: 1,
            tail_off: 1,
            tail_seq: 1,
            live_pages: 0,
            pending: Vec::new(),
        };
        j.write_header(dev)?;
        Ok(j)
    }

    /// Loads the journal at mount time and replays every complete
    /// transaction. Returns the journal, the number of transactions
    /// replayed, and whether the device refused replay writes because it
    /// reached end-of-life read-only mode.
    ///
    /// On a read-only device, replay stops at the first refused write
    /// and the header is left untouched: home pages keep their last
    /// checkpointed images — a consistent (if stale) state — and the
    /// volume still mounts so committed data stays readable.
    pub fn mount<D: BlockDevice>(dev: &mut D, sb: &Superblock) -> Result<(Journal, u64, bool)> {
        let ps = dev.page_size();
        let mut buf = vec![0u8; ps];
        dev.read(sb.jr_start, &mut buf)?;
        if get_u64(&buf, 0) != HDR_MAGIC {
            return Err(FsError::BadSuperblock);
        }
        let tail_off = get_u64(&buf, 8);
        let tail_seq = get_u64(&buf, 16);
        let mut j = Journal {
            region_start: sb.jr_start,
            region_pages: sb.jr_pages,
            head_off: tail_off,
            next_seq: tail_seq,
            tail_off,
            tail_seq,
            live_pages: 0,
            pending: Vec::new(),
        };
        let mut replayed = 0;
        let mut read_only = false;
        let mut off = tail_off;
        let mut seq = tail_seq;
        let capacity = j.region_pages - 1;
        'replay: loop {
            // Descriptor?
            dev.read(j.abs(off), &mut buf)?;
            if get_u64(&buf, 0) != DESC_MAGIC || get_u64(&buf, 8) != seq {
                break;
            }
            let count = get_u64(&buf, 16);
            if count + 2 > capacity {
                break; // corrupt
            }
            let homes: Vec<Lpn> = (0..count as usize)
                .map(|i| get_u64(&buf, 24 + i * 8))
                .collect();
            // Commit page present and matching?
            let commit_off = j.wrap(off + 1 + count);
            let mut cbuf = vec![0u8; ps];
            dev.read(j.abs(commit_off), &mut cbuf)?;
            if get_u64(&cbuf, 0) != CMT_MAGIC || get_u64(&cbuf, 8) != seq {
                break; // incomplete transaction: stop, discarding it
            }
            // Redo: copy journaled images home.
            let mut pbuf = vec![0u8; ps];
            for (i, home) in homes.iter().enumerate() {
                let slot = j.wrap(off + 1 + i as u64);
                dev.read(j.abs(slot), &mut pbuf)?;
                match dev.write(*home, &pbuf) {
                    Ok(()) => {}
                    Err(DevError::ReadOnly) => {
                        read_only = true;
                        break 'replay;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            replayed += 1;
            off = j.wrap(commit_off + 1);
            seq += 1;
        }
        if replayed > 0 && !read_only {
            match dev.flush() {
                Ok(()) | Err(DevError::ReadOnly) => {}
                Err(e) => return Err(e.into()),
            }
        }
        // Reset: everything replayed is home; restart the log empty. A
        // read-only device keeps its persisted header (it cannot be
        // rewritten, and no new transactions will ever append).
        j.head_off = off;
        j.next_seq = seq;
        j.tail_off = off;
        j.tail_seq = seq;
        if !read_only {
            match j.write_header(dev) {
                Ok(()) | Err(FsError::ReadOnly) => {}
                Err(e) => return Err(e),
            }
        }
        Ok((j, replayed, read_only))
    }

    fn abs(&self, off: u64) -> Lpn {
        self.region_start + off
    }

    fn wrap(&self, off: u64) -> u64 {
        let cap = self.region_pages - 1;
        (off - 1) % cap + 1
    }

    fn write_header<D: BlockDevice>(&mut self, dev: &mut D) -> Result<()> {
        let mut buf = vec![0u8; dev.page_size()];
        put_u64(&mut buf, 0, HDR_MAGIC);
        put_u64(&mut buf, 8, self.tail_off);
        put_u64(&mut buf, 16, self.tail_seq);
        dev.write(self.region_start, &buf)?;
        Ok(())
    }

    /// Pages a transaction of `n` journaled pages consumes (desc + commit).
    pub fn txn_pages(n: u64) -> u64 {
        n + 2
    }

    /// True if appending `n` journaled pages requires a checkpoint first.
    pub fn needs_checkpoint(&self, n: u64) -> bool {
        self.live_pages + Self::txn_pages(n) > self.region_pages - 1
    }

    /// Appends one transaction (descriptor + page images + commit page).
    ///
    /// The caller is responsible for barrier placement: ext4 flushes before
    /// and after the commit page, so this method takes a callback-free
    /// two-phase shape — `append_body` then `append_commit`.
    pub fn append_body<D: BlockDevice>(
        &mut self,
        dev: &mut D,
        entries: &[(Lpn, Vec<u8>)],
    ) -> Result<u64> {
        assert!(
            !self.needs_checkpoint(entries.len() as u64),
            "caller must checkpoint before appending (needs_checkpoint)"
        );
        let ps = dev.page_size();
        let mut desc = vec![0u8; ps];
        put_u64(&mut desc, 0, DESC_MAGIC);
        put_u64(&mut desc, 8, self.next_seq);
        put_u64(&mut desc, 16, entries.len() as u64);
        for (i, (home, _)) in entries.iter().enumerate() {
            put_u64(&mut desc, 24 + i * 8, *home);
        }
        // Descriptor plus page images leave as one queued batch; the
        // caller's barrier (flush before the commit page) completes it.
        let mut slots = Vec::with_capacity(entries.len() + 1);
        slots.push(self.abs(self.head_off));
        self.head_off = self.wrap(self.head_off + 1);
        for (home, image) in entries {
            slots.push(self.abs(self.head_off));
            self.head_off = self.wrap(self.head_off + 1);
            self.pending.push((*home, image.clone()));
        }
        let mut cmds = Vec::with_capacity(slots.len());
        cmds.push(IoCmd::Write {
            lpn: slots[0],
            data: &desc,
        });
        for (i, (_, image)) in entries.iter().enumerate() {
            cmds.push(IoCmd::Write {
                lpn: slots[i + 1],
                data: image,
            });
        }
        dev.submit(&cmds)?;
        self.live_pages += entries.len() as u64 + 2;
        Ok(entries.len() as u64 + 1)
    }

    /// Writes the commit page sealing the transaction opened by
    /// [`Journal::append_body`].
    pub fn append_commit<D: BlockDevice>(&mut self, dev: &mut D) -> Result<()> {
        let ps = dev.page_size();
        let mut cmt = vec![0u8; ps];
        put_u64(&mut cmt, 0, CMT_MAGIC);
        put_u64(&mut cmt, 8, self.next_seq);
        dev.write(self.abs(self.head_off), &cmt)?;
        self.head_off = self.wrap(self.head_off + 1);
        self.next_seq += 1;
        Ok(())
    }

    /// Checkpoints the journal: writes every pending page image home,
    /// flushes, and advances the persisted tail so the space is reusable.
    /// Returns the number of home pages written.
    pub fn checkpoint<D: BlockDevice>(&mut self, dev: &mut D) -> Result<u64> {
        if self.pending.is_empty() && self.tail_off == self.head_off {
            return Ok(0);
        }
        let pending = std::mem::take(&mut self.pending);
        if !pending.is_empty() {
            // Home writes in one queued batch; the flush below is the
            // barrier that completes it.
            let cmds: Vec<IoCmd<'_>> = pending
                .iter()
                .map(|(home, image)| IoCmd::Write {
                    lpn: *home,
                    data: image,
                })
                .collect();
            dev.submit(&cmds)?;
        }
        let written = pending.len() as u64;
        dev.flush()?;
        self.tail_off = self.head_off;
        self.tail_seq = self.next_seq;
        self.live_pages = 0;
        self.write_header(dev)?;
        Ok(written)
    }

    /// Pending home writes owed by the next checkpoint.
    pub fn pending_pages(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xftl_flash::{FlashChip, FlashConfig, SimClock};
    use xftl_ftl::PageMappedFtl;

    fn setup() -> (PageMappedFtl, Superblock) {
        let chip = FlashChip::new(FlashConfig::tiny(64), SimClock::new());
        let dev = PageMappedFtl::format(chip, 300).unwrap();
        let sb = Superblock::layout(300, dev.page_size(), 16, 16).unwrap();
        (dev, sb)
    }

    fn page(dev: &PageMappedFtl, byte: u8) -> Vec<u8> {
        vec![byte; dev.page_size()]
    }

    #[test]
    fn committed_txn_replays_home() {
        let (mut dev, sb) = setup();
        let mut j = Journal::mkfs(&mut dev, &sb).unwrap();
        let home = sb.data_start + 3;
        let image = page(&dev, 0xAA);
        j.append_body(&mut dev, &[(home, image.clone())]).unwrap();
        dev.flush().unwrap();
        j.append_commit(&mut dev).unwrap();
        dev.flush().unwrap();
        // Crash before checkpoint: the home page was never written.
        let mut dev = PageMappedFtl::recover(dev.into_chip()).unwrap();
        let (_, replayed, _) = Journal::mount(&mut dev, &sb).unwrap();
        assert_eq!(replayed, 1);
        let mut out = page(&dev, 0);
        dev.read(home, &mut out).unwrap();
        assert_eq!(out, image);
    }

    #[test]
    fn uncommitted_txn_is_discarded() {
        let (mut dev, sb) = setup();
        let mut j = Journal::mkfs(&mut dev, &sb).unwrap();
        let home = sb.data_start + 3;
        let image = page(&dev, 0xBB);
        j.append_body(&mut dev, &[(home, image)]).unwrap();
        dev.flush().unwrap();
        // No commit page: crash.
        let mut dev = PageMappedFtl::recover(dev.into_chip()).unwrap();
        let (_, replayed, _) = Journal::mount(&mut dev, &sb).unwrap();
        assert_eq!(replayed, 0);
        let mut out = page(&dev, 1);
        dev.read(home, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0), "home page must stay untouched");
    }

    #[test]
    fn multiple_txns_replay_in_order() {
        let (mut dev, sb) = setup();
        let mut j = Journal::mkfs(&mut dev, &sb).unwrap();
        let home = sb.data_start + 5;
        for v in [1u8, 2, 3] {
            let image = page(&dev, v);
            j.append_body(&mut dev, &[(home, image)]).unwrap();
            dev.flush().unwrap();
            j.append_commit(&mut dev).unwrap();
            dev.flush().unwrap();
        }
        let mut dev = PageMappedFtl::recover(dev.into_chip()).unwrap();
        let (_, replayed, _) = Journal::mount(&mut dev, &sb).unwrap();
        assert_eq!(replayed, 3);
        let mut out = page(&dev, 0);
        dev.read(home, &mut out).unwrap();
        assert_eq!(out[0], 3, "last committed image wins");
    }

    #[test]
    fn checkpoint_writes_home_and_frees_space() {
        let (mut dev, sb) = setup();
        let mut j = Journal::mkfs(&mut dev, &sb).unwrap();
        let home = sb.data_start + 2;
        let image = page(&dev, 0x33);
        j.append_body(&mut dev, &[(home, image.clone())]).unwrap();
        j.append_commit(&mut dev).unwrap();
        assert_eq!(j.pending_pages(), 1);
        let n = j.checkpoint(&mut dev).unwrap();
        assert_eq!(n, 1);
        assert_eq!(j.pending_pages(), 0);
        let mut out = page(&dev, 0);
        dev.read(home, &mut out).unwrap();
        assert_eq!(out, image);
        // After checkpoint, a crash must not replay the old transaction.
        let mut dev = PageMappedFtl::recover(dev.into_chip()).unwrap();
        let (_, replayed, _) = Journal::mount(&mut dev, &sb).unwrap();
        assert_eq!(replayed, 0);
    }

    #[test]
    fn wraps_around_the_region() {
        let (mut dev, sb) = setup();
        let mut j = Journal::mkfs(&mut dev, &sb).unwrap();
        let home = sb.data_start + 2;
        // Region is 16 pages -> capacity 15. Each txn = 3 pages. Run many
        // txns with checkpoints when needed.
        for v in 0..20u8 {
            if j.needs_checkpoint(1) {
                j.checkpoint(&mut dev).unwrap();
            }
            let image = page(&dev, v);
            j.append_body(&mut dev, &[(home, image)]).unwrap();
            dev.flush().unwrap();
            j.append_commit(&mut dev).unwrap();
            dev.flush().unwrap();
        }
        let mut dev = PageMappedFtl::recover(dev.into_chip()).unwrap();
        let (_, _, _) = Journal::mount(&mut dev, &sb).unwrap();
        let mut out = page(&dev, 0);
        dev.read(home, &mut out).unwrap();
        assert_eq!(out[0], 19, "latest image must win across wrap");
    }

    #[test]
    fn needs_checkpoint_accounting() {
        let (mut dev, sb) = setup();
        let mut j = Journal::mkfs(&mut dev, &sb).unwrap();
        assert!(!j.needs_checkpoint(1));
        // Capacity 15; txn of 13 journaled pages = 15 total: exactly fits.
        assert!(!j.needs_checkpoint(13));
        assert!(j.needs_checkpoint(14));
        let image = page(&dev, 1);
        j.append_body(&mut dev, &[(sb.data_start, image)]).unwrap();
        j.append_commit(&mut dev).unwrap();
        assert!(j.needs_checkpoint(11), "3 pages consumed");
        assert!(!j.needs_checkpoint(10));
    }
}
