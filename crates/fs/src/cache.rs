//! Write-back page cache with LRU eviction.
//!
//! Models the OS page cache the paper's host stack runs through. Pages are
//! keyed by absolute device LPN and tagged with the owning inode and, in
//! X-FTL (`Off`) mode, the transaction that dirtied them — eviction of such
//! a page becomes a `write_tx`, which is precisely the *steal* behaviour
//! (§5.2) that per-call atomic-write FTLs cannot support and X-FTL can.

use std::collections::HashMap;

use xftl_ftl::{Lpn, Tid};

use crate::layout::Ino;

/// One cached page.
#[derive(Debug, Clone)]
pub struct CachedPage {
    /// Page contents.
    pub data: Vec<u8>,
    /// True if the page differs from its on-device copy.
    pub dirty: bool,
    /// Inode the page belongs to (for per-file flush and drop).
    pub ino: Ino,
    /// Transaction that dirtied the page, if any.
    pub tid: Option<Tid>,
    /// LRU recency stamp.
    tick: u64,
}

/// LRU page cache keyed by device LPN.
#[derive(Debug)]
pub struct PageCache {
    pages: HashMap<Lpn, CachedPage>,
    capacity: usize,
    clock: u64,
}

impl PageCache {
    /// Cache holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        PageCache {
            pages: HashMap::new(),
            capacity: capacity.max(1),
            clock: 0,
        }
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Looks a page up, refreshing its recency.
    pub fn get(&mut self, lpn: Lpn) -> Option<&CachedPage> {
        let t = self.tick();
        let p = self.pages.get_mut(&lpn)?;
        p.tick = t;
        Some(&*p)
    }

    /// Mutable lookup, refreshing recency.
    pub fn get_mut(&mut self, lpn: Lpn) -> Option<&mut CachedPage> {
        let t = self.tick();
        let p = self.pages.get_mut(&lpn)?;
        p.tick = t;
        Some(p)
    }

    /// Inserts or replaces a page.
    pub fn insert(&mut self, lpn: Lpn, ino: Ino, data: Vec<u8>, dirty: bool, tid: Option<Tid>) {
        let tick = self.tick();
        self.pages.insert(
            lpn,
            CachedPage {
                data,
                dirty,
                ino,
                tid,
                tick,
            },
        );
    }

    /// Removes and returns a page.
    pub fn remove(&mut self, lpn: Lpn) -> Option<CachedPage> {
        self.pages.remove(&lpn)
    }

    /// True if the cache is over capacity and must evict.
    pub fn needs_evict(&self) -> bool {
        self.pages.len() > self.capacity
    }

    /// Pops the least-recently-used page (clean pages preferred, so dirty
    /// write-backs happen only under real pressure).
    pub fn pop_lru(&mut self) -> Option<(Lpn, CachedPage)> {
        let clean_lru = self
            .pages
            .iter()
            .filter(|(_, p)| !p.dirty)
            .min_by_key(|(_, p)| p.tick)
            .map(|(l, _)| *l);
        let victim = clean_lru.or_else(|| {
            self.pages
                .iter()
                .min_by_key(|(_, p)| p.tick)
                .map(|(l, _)| *l)
        })?;
        self.pages.remove(&victim).map(|p| (victim, p))
    }

    /// LPNs of dirty pages belonging to `ino`, in LPN order.
    pub fn dirty_of(&self, ino: Ino) -> Vec<Lpn> {
        let mut v: Vec<Lpn> = self
            .pages
            .iter()
            .filter(|(_, p)| p.dirty && p.ino == ino)
            .map(|(l, _)| *l)
            .collect();
        v.sort_unstable();
        v
    }

    /// LPNs of every dirty page, in LPN order.
    pub fn dirty_all(&self) -> Vec<Lpn> {
        let mut v: Vec<Lpn> = self
            .pages
            .iter()
            .filter(|(_, p)| p.dirty)
            .map(|(l, _)| *l)
            .collect();
        v.sort_unstable();
        v
    }

    /// Drops every page dirtied by `tid` without writing it back (the
    /// abort path: "undoing the cached changes is done simply by dropping
    /// them from the file system buffer", §5.2).
    pub fn drop_tid(&mut self, tid: Tid) -> usize {
        let before = self.pages.len();
        self.pages.retain(|_, p| p.tid != Some(tid));
        before - self.pages.len()
    }

    /// Drops every page of `ino` (unlink path).
    pub fn drop_ino(&mut self, ino: Ino) {
        self.pages.retain(|_, p| p.ino != ino);
    }

    /// Drops everything (unmount after sync).
    pub fn clear(&mut self) {
        self.pages.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut c = PageCache::new(4);
        c.insert(10, 1, vec![1, 2, 3], true, Some(7));
        let p = c.get(10).unwrap();
        assert_eq!(p.data, vec![1, 2, 3]);
        assert!(p.dirty);
        assert_eq!(p.tid, Some(7));
        assert!(c.get(11).is_none());
    }

    #[test]
    fn lru_prefers_clean_victims() {
        let mut c = PageCache::new(2);
        c.insert(1, 0, vec![1], true, None); // dirty, oldest
        c.insert(2, 0, vec![2], false, None); // clean
        c.insert(3, 0, vec![3], true, None);
        assert!(c.needs_evict());
        let (lpn, p) = c.pop_lru().unwrap();
        assert_eq!(lpn, 2, "clean page evicted before older dirty one");
        assert!(!p.dirty);
    }

    #[test]
    fn lru_falls_back_to_dirty() {
        let mut c = PageCache::new(1);
        c.insert(1, 0, vec![1], true, None);
        c.insert(2, 0, vec![2], true, None);
        let (lpn, _) = c.pop_lru().unwrap();
        assert_eq!(lpn, 1, "oldest dirty page evicted");
    }

    #[test]
    fn recency_updates_on_get() {
        let mut c = PageCache::new(2);
        c.insert(1, 0, vec![1], false, None);
        c.insert(2, 0, vec![2], false, None);
        c.get(1);
        c.insert(3, 0, vec![3], false, None);
        let (lpn, _) = c.pop_lru().unwrap();
        assert_eq!(lpn, 2, "page 1 was touched more recently than 2");
    }

    #[test]
    fn dirty_filters() {
        let mut c = PageCache::new(8);
        c.insert(1, 5, vec![1], true, None);
        c.insert(2, 5, vec![2], false, None);
        c.insert(3, 6, vec![3], true, None);
        assert_eq!(c.dirty_of(5), vec![1]);
        assert_eq!(c.dirty_all(), vec![1, 3]);
    }

    #[test]
    fn drop_tid_discards_only_that_transaction() {
        let mut c = PageCache::new(8);
        c.insert(1, 5, vec![1], true, Some(7));
        c.insert(2, 5, vec![2], true, Some(8));
        c.insert(3, 5, vec![3], false, None);
        assert_eq!(c.drop_tid(7), 1);
        assert!(c.get(1).is_none());
        assert!(c.get(2).is_some());
        assert!(c.get(3).is_some());
    }

    #[test]
    fn drop_ino_discards_files_pages() {
        let mut c = PageCache::new(8);
        c.insert(1, 5, vec![1], true, None);
        c.insert(2, 6, vec![2], true, None);
        c.drop_ino(5);
        assert!(c.get(1).is_none());
        assert!(c.get(2).is_some());
    }
}
