//! Block bitmap allocator.
//!
//! One bit per device page, covering the whole volume; the metadata
//! regions are pre-marked used at mkfs. The allocator remembers which
//! bitmap *pages* changed so the file system can journal exactly those.

use crate::error::{FsError, Result};

/// In-RAM copy of the block bitmap with dirty-page tracking.
#[derive(Debug, Clone)]
pub struct BlockBitmap {
    bits: Vec<u64>,
    total: u64,
    /// Rotating search cursor (next-fit).
    cursor: u64,
    /// Bits per bitmap page, for dirty tracking.
    bits_per_page: u64,
    dirty_pages: Vec<bool>,
    free_count: u64,
}

impl BlockBitmap {
    /// All-free bitmap for `total` pages, stored across pages of
    /// `page_size` bytes.
    pub fn new(total: u64, page_size: usize) -> Self {
        let bits_per_page = (page_size * 8) as u64;
        let pages = total.div_ceil(bits_per_page) as usize;
        BlockBitmap {
            bits: vec![0; (total as usize).div_ceil(64)],
            total,
            cursor: 0,
            bits_per_page,
            dirty_pages: vec![false; pages],
            free_count: total,
        }
    }

    /// Loads a bitmap from its on-device pages (concatenated).
    pub fn from_bytes(bytes: &[u8], total: u64, page_size: usize) -> Self {
        let mut bm = BlockBitmap::new(total, page_size);
        for (i, chunk) in bytes.chunks(8).enumerate() {
            if i >= bm.bits.len() {
                break;
            }
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            bm.bits[i] = u64::from_le_bytes(w);
        }
        bm.free_count = total - bm.bits.iter().map(|w| w.count_ones() as u64).sum::<u64>();
        bm.dirty_pages.fill(false);
        bm
    }

    /// Serializes one bitmap page (`page_idx`) for journaling/writing.
    pub fn encode_page(&self, page_idx: usize, page_size: usize) -> Vec<u8> {
        let mut buf = vec![0u8; page_size];
        let words_per_page = page_size / 8;
        let start = page_idx * words_per_page;
        for i in 0..words_per_page {
            if start + i >= self.bits.len() {
                break;
            }
            buf[i * 8..i * 8 + 8].copy_from_slice(&self.bits[start + i].to_le_bytes());
        }
        buf
    }

    /// True if page `lpn` is allocated.
    pub fn is_set(&self, lpn: u64) -> bool {
        self.bits[(lpn / 64) as usize] & (1 << (lpn % 64)) != 0
    }

    /// Marks `lpn` allocated (mkfs pre-marking and replay).
    pub fn set(&mut self, lpn: u64) {
        if !self.is_set(lpn) {
            self.bits[(lpn / 64) as usize] |= 1 << (lpn % 64);
            self.free_count -= 1;
            self.mark_dirty(lpn);
        }
    }

    /// Frees `lpn`.
    pub fn clear(&mut self, lpn: u64) {
        if self.is_set(lpn) {
            self.bits[(lpn / 64) as usize] &= !(1 << (lpn % 64));
            self.free_count += 1;
            self.mark_dirty(lpn);
        }
    }

    fn mark_dirty(&mut self, lpn: u64) {
        self.dirty_pages[(lpn / self.bits_per_page) as usize] = true;
    }

    /// Allocates one page at or after `min_lpn`, next-fit from the cursor.
    pub fn alloc(&mut self, min_lpn: u64) -> Result<u64> {
        if self.free_count == 0 {
            return Err(FsError::NoSpace);
        }
        let start = self.cursor.max(min_lpn);
        // Two passes: [start, total) then [min_lpn, start).
        for lpn in (start..self.total).chain(min_lpn..start) {
            if !self.is_set(lpn) {
                self.set(lpn);
                self.cursor = lpn + 1;
                if self.cursor >= self.total {
                    self.cursor = min_lpn;
                }
                return Ok(lpn);
            }
        }
        Err(FsError::NoSpace)
    }

    /// Number of free pages.
    pub fn free(&self) -> u64 {
        self.free_count
    }

    /// Indices of dirty bitmap pages, clearing the flags.
    pub fn take_dirty_pages(&mut self) -> Vec<usize> {
        let mut out = Vec::new();
        for (i, d) in self.dirty_pages.iter_mut().enumerate() {
            if *d {
                out.push(i);
                *d = false;
            }
        }
        out
    }

    /// Indices of dirty bitmap pages without clearing.
    pub fn dirty_pages(&self) -> Vec<usize> {
        self.dirty_pages
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| d.then_some(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free() {
        let mut bm = BlockBitmap::new(128, 512);
        let a = bm.alloc(10).unwrap();
        assert!(a >= 10);
        assert!(bm.is_set(a));
        assert_eq!(bm.free(), 127);
        bm.clear(a);
        assert!(!bm.is_set(a));
        assert_eq!(bm.free(), 128);
    }

    #[test]
    fn alloc_respects_min() {
        let mut bm = BlockBitmap::new(128, 512);
        for _ in 0..20 {
            assert!(bm.alloc(64).unwrap() >= 64);
        }
    }

    #[test]
    fn alloc_wraps_around() {
        let mut bm = BlockBitmap::new(16, 512);
        let mut got = Vec::new();
        for _ in 0..12 {
            got.push(bm.alloc(4).unwrap());
        }
        // Free an early one; the allocator must find it again.
        bm.clear(got[0]);
        assert_eq!(bm.alloc(4).unwrap(), got[0]);
    }

    #[test]
    fn exhaustion_errors() {
        let mut bm = BlockBitmap::new(8, 512);
        for _ in 0..8 {
            bm.alloc(0).unwrap();
        }
        assert_eq!(bm.alloc(0), Err(FsError::NoSpace));
    }

    #[test]
    fn roundtrip_via_pages() {
        let mut bm = BlockBitmap::new(128, 64); // 512 bits/page -> 1 page
        bm.set(0);
        bm.set(64);
        bm.set(127);
        let page = bm.encode_page(0, 64);
        let bm2 = BlockBitmap::from_bytes(&page, 128, 64);
        assert!(bm2.is_set(0) && bm2.is_set(64) && bm2.is_set(127));
        assert!(!bm2.is_set(1));
        assert_eq!(bm2.free(), 125);
    }

    #[test]
    fn dirty_page_tracking() {
        let mut bm = BlockBitmap::new(2048, 64); // 512 bits per page -> 4 pages
        bm.set(0);
        bm.set(513);
        let dirty = bm.take_dirty_pages();
        assert_eq!(dirty, vec![0, 1]);
        assert!(bm.take_dirty_pages().is_empty());
    }
}
