//! The ext4-like file system.
//!
//! [`FileSystem`] runs over any [`BlockDevice`] and plays exactly the
//! messenger role §5.2 assigns it: in `Ordered`/`Full` journal modes it is
//! a conventional journaling file system; in `Off` mode (over X-FTL) it
//! turns its journal off, tags every device write with the transaction id
//! it learned through `fsync(ino, tid)`/`ioctl(abort, tid)`, and lets the
//! device guarantee atomicity.
//!
//! Whether the device speaks the transactional command set is a
//! compile-time property: `Off` mode is only reachable through the
//! [`FileSystem::mkfs_tx`]/[`FileSystem::mount_tx`] constructors, which
//! require `D: TxBlockDevice` and capture the extended commands in a
//! dispatch table ([`TxOps`]). The plain constructors reject `Off`
//! up front — there is no runtime capability probe to fail later.
//!
//! Multi-page flushes ride the queued submission path
//! ([`BlockDevice::submit`] / [`TxBlockDevice::submit_tx`]): an fsync
//! hands the device the whole page set as one batch, which a
//! channel-parallel FTL overlaps across its flash channels.
//!
//! The volume has a single root directory (the workloads of the paper keep
//! SQLite databases, journals and WAL files side by side in one
//! directory), byte-granular file I/O through a write-back page cache with
//! LRU *steal* eviction, and per-file `fsync`.
//!
//! ## Abort (ioctl) path
//!
//! [`FileSystem::abort_tx`] implements §5.2's rollback: dirty pages tagged
//! with the transaction are dropped from the cache, an `abort(tid)`
//! command rolls back the stolen (already-written) pages inside the
//! device, and the in-RAM metadata is re-read from the committed state.
//! As in SQLite (which holds a database-level write lock), the aborting
//! transaction is assumed to be the volume's only in-flight mutator.

use std::collections::{HashMap, HashSet};
use std::fmt;

use xftl_flash::{Nanos, SimClock};
use xftl_ftl::{BlockDevice, CmdId, CommitTicket, IoCmd, Lpn, Tid, TxBlockDevice};
use xftl_trace::{OpClass, Recorder, Telemetry};

use crate::alloc::BlockBitmap;
use crate::cache::PageCache;
use crate::error::{FsError, Result};
use crate::journal::Journal;
use crate::layout::{Ino, Inode, InodeKind, Superblock, NDIRECT};
use crate::stats::FsStats;

/// Little-endian u64 at `off` (callers guarantee the bounds).
fn get_u64(buf: &[u8], off: usize) -> u64 {
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(bytes)
}

/// Little-endian u32 at `off` (callers guarantee the bounds).
fn get_u32(buf: &[u8], off: usize) -> u32 {
    let mut bytes = [0u8; 4];
    bytes.copy_from_slice(&buf[off..off + 4]);
    u32::from_le_bytes(bytes)
}

/// Little-endian u16 at `off` (callers guarantee the bounds).
fn get_u16(buf: &[u8], off: usize) -> u16 {
    let mut bytes = [0u8; 2];
    bytes.copy_from_slice(&buf[off..off + 2]);
    u16::from_le_bytes(bytes)
}

/// Journal mode of the volume (ext4's `data=ordered`, `data=journal`, and
/// the paper's journaling-off-over-X-FTL configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalMode {
    /// Metadata journaled; data written in place before the journal commit.
    Ordered,
    /// Data and metadata journaled (each data page written twice).
    Full,
    /// No journal; transactional atomicity provided by the device (X-FTL).
    Off,
}

/// mkfs-time parameters.
#[derive(Debug, Clone, Copy)]
pub struct FsConfig {
    /// Number of inodes (files) the volume supports.
    pub inode_count: u32,
    /// Pages reserved for the journal region (header + log).
    pub journal_pages: u64,
    /// Page-cache capacity in pages.
    pub cache_pages: usize,
}

impl Default for FsConfig {
    fn default() -> Self {
        FsConfig {
            inode_count: 256,
            journal_pages: 256,
            cache_pages: 512,
        }
    }
}

/// Dispatch table for the transactional device commands.
///
/// `FileSystem<D>` stays generic over plain [`BlockDevice`]s, but `Off`
/// mode needs the [`TxBlockDevice`] command set. The `*_tx` constructors
/// capture the extension's methods as function pointers here, so the
/// capability is fixed at compile time (the constructor simply does not
/// exist for a non-transactional `D`) while every other code path stays
/// monomorphic over `D: BlockDevice`.
struct TxOps<D> {
    begin: fn(&mut D, Tid) -> xftl_ftl::Result<()>,
    read_tx: fn(&mut D, Tid, Lpn, &mut [u8]) -> xftl_ftl::Result<()>,
    write_tx: fn(&mut D, Tid, Lpn, &[u8]) -> xftl_ftl::Result<()>,
    commit: fn(&mut D, Tid) -> xftl_ftl::Result<()>,
    commit_submit: fn(&mut D, Tid) -> xftl_ftl::Result<CommitTicket>,
    commit_wait: fn(&mut D, CommitTicket) -> xftl_ftl::Result<()>,
    abort: fn(&mut D, Tid) -> xftl_ftl::Result<()>,
    submit_tx: SubmitTxFn<D>,
}

/// Signature of [`TxBlockDevice::submit_tx`] as a plain function pointer.
type SubmitTxFn<D> = fn(&mut D, Tid, &[(Lpn, &[u8])]) -> xftl_ftl::Result<CmdId>;

impl<D: TxBlockDevice> TxOps<D> {
    fn new() -> Self {
        TxOps {
            begin: D::begin,
            read_tx: D::read_tx,
            write_tx: D::write_tx,
            commit: D::commit,
            commit_submit: D::commit_submit,
            commit_wait: D::commit_wait,
            abort: D::abort,
            submit_tx: D::submit_tx,
        }
    }
}

impl<D> Clone for TxOps<D> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<D> Copy for TxOps<D> {}

impl<D> fmt::Debug for TxOps<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TxOps")
    }
}

/// Block map for file blocks beyond the inode's direct pointers, chained
/// across map pages on the device.
#[derive(Debug, Default)]
struct BlockMap {
    /// Block address of file block `NDIRECT + i` (0 = hole).
    entries: Vec<u64>,
    /// Device pages holding the chain, in order.
    pages: Vec<Lpn>,
    /// Per-chain-page dirty flags (aligned with `pages`).
    dirty: Vec<bool>,
}

/// Entries per block-map page: one `next` pointer + one count, then u64s.
fn map_entries_per_page(page_size: usize) -> usize {
    (page_size - 16) / 8
}

/// The simulated file system.
#[derive(Debug)]
pub struct FileSystem<D: BlockDevice> {
    dev: D,
    sb: Superblock,
    mode: JournalMode,
    inodes: Vec<Inode>,
    /// Per inode-table page dirty flags.
    inode_dirty: Vec<bool>,
    bitmap: BlockBitmap,
    /// Root directory: (name, inode).
    dir: Vec<(String, Ino)>,
    dir_dirty: bool,
    maps: HashMap<Ino, BlockMap>,
    cache: PageCache,
    journal: Journal,
    /// Blocks freed since the last metadata commit; their `trim` commands
    /// are issued only after the commit that makes the freeing durable
    /// (ext4's `discard` ordering). Empty in `Off` mode, where trims could
    /// not be rolled back by a device-level abort.
    pending_trims: Vec<Lpn>,
    next_tid: Tid,
    /// Monotone counter standing in for mtime.
    op_counter: u64,
    stats: FsStats,
    /// Telemetry sink plus the clock that timestamps its spans; both
    /// absent until [`FileSystem::set_recorder`] installs them (the
    /// device is generic, so the shared clock must be handed in).
    recorder: Telemetry,
    clock: Option<SimClock>,
    /// Transactional command table; `Some` iff mounted via a `*_tx`
    /// constructor. `Off` mode guarantees it is present.
    tx: Option<TxOps<D>>,
    /// Transactions opened with [`FileSystem::begin_tx_concurrent`]: they
    /// hold a device snapshot, so their reads and writes bypass the
    /// shared page cache (which always reflects newest state) and talk
    /// to the device directly under their tid.
    snapshot_tids: HashSet<Tid>,
    /// True when mount found the device in end-of-life read-only mode
    /// and skipped journal replay / header rewrite: the volume serves
    /// the last checkpointed state, reads only.
    mounted_read_only: bool,
}

impl<D: BlockDevice> FileSystem<D> {
    /// Formats `dev` and mounts the fresh volume in a journaling mode.
    ///
    /// `Off` mode is rejected with [`FsError::NeedsTxDevice`]: it needs
    /// the transactional command set, which only the [`FileSystem::
    /// mkfs_tx`] constructor (for `D: TxBlockDevice`) can wire up.
    pub fn mkfs(dev: D, mode: JournalMode, cfg: FsConfig) -> Result<Self> {
        if mode == JournalMode::Off {
            return Err(FsError::NeedsTxDevice);
        }
        Self::mkfs_with(dev, mode, cfg, None)
    }

    /// Formats a transactional device and mounts the fresh volume. Any
    /// journal mode works — including `Off`, where the device (X-FTL)
    /// provides atomicity instead of a journal.
    pub fn mkfs_tx(dev: D, mode: JournalMode, cfg: FsConfig) -> Result<Self>
    where
        D: TxBlockDevice,
    {
        Self::mkfs_with(dev, mode, cfg, Some(TxOps::new()))
    }

    fn mkfs_with(
        mut dev: D,
        mode: JournalMode,
        cfg: FsConfig,
        tx: Option<TxOps<D>>,
    ) -> Result<Self> {
        let ps = dev.page_size();
        let sb = Superblock::layout(dev.capacity_pages(), ps, cfg.inode_count, cfg.journal_pages)?;
        dev.write(0, &sb.encode())?;
        // Inode table: inode 0 is the root directory, the rest free.
        let mut inodes = vec![Inode::free(); cfg.inode_count as usize];
        inodes[0].kind = InodeKind::Dir;
        for p in 0..sb.it_pages {
            let img = encode_inode_page(&sb, &inodes, p as usize, ps);
            dev.write(sb.it_start + p, &img)?;
        }
        // Bitmap: metadata region pre-marked used.
        let mut bitmap = BlockBitmap::new(sb.total_pages, ps);
        for lpn in 0..sb.data_start {
            bitmap.set(lpn);
        }
        let _ = bitmap.take_dirty_pages();
        for p in 0..sb.bm_pages {
            dev.write(sb.bm_start + p, &bitmap.encode_page(p as usize, ps))?;
        }
        let journal = Journal::mkfs(&mut dev, &sb)?;
        dev.flush()?;
        Ok(FileSystem {
            dev,
            sb,
            mode,
            inodes,
            inode_dirty: vec![false; sb.it_pages as usize],
            bitmap,
            dir: Vec::new(),
            dir_dirty: false,
            maps: HashMap::new(),
            cache: PageCache::new(cfg.cache_pages),
            journal,
            pending_trims: Vec::new(),
            next_tid: 1,
            op_counter: 1,
            stats: FsStats::default(),
            recorder: Telemetry::disabled(),
            clock: None,
            tx,
            snapshot_tids: HashSet::new(),
            mounted_read_only: false,
        })
    }

    /// Mounts an existing volume in a journaling mode, replaying the
    /// journal first. Like [`FileSystem::mkfs`], `Off` mode is rejected;
    /// use [`FileSystem::mount_tx`].
    pub fn mount(dev: D, mode: JournalMode, cache_pages: usize) -> Result<Self> {
        if mode == JournalMode::Off {
            return Err(FsError::NeedsTxDevice);
        }
        Self::mount_with(dev, mode, cache_pages, None)
    }

    /// Mounts an existing volume on a transactional device (any mode,
    /// including `Off`), replaying the journal first.
    pub fn mount_tx(dev: D, mode: JournalMode, cache_pages: usize) -> Result<Self>
    where
        D: TxBlockDevice,
    {
        Self::mount_with(dev, mode, cache_pages, Some(TxOps::new()))
    }

    fn mount_with(
        mut dev: D,
        mode: JournalMode,
        cache_pages: usize,
        tx: Option<TxOps<D>>,
    ) -> Result<Self> {
        let ps = dev.page_size();
        let mut buf = vec![0u8; ps];
        dev.read(0, &mut buf)?;
        let sb = Superblock::decode(&buf)?;
        let (journal, _replayed, mounted_read_only) = Journal::mount(&mut dev, &sb)?;
        // Load the inode table.
        let mut inodes = Vec::with_capacity(sb.inode_count as usize);
        let ipp = sb.inodes_per_page() as usize;
        for p in 0..sb.it_pages {
            dev.read(sb.it_start + p, &mut buf)?;
            for i in 0..ipp {
                if inodes.len() < sb.inode_count as usize {
                    inodes.push(Inode::decode(&buf, i * crate::layout::INODE_BYTES));
                }
            }
        }
        // Load the bitmap.
        let mut bm_bytes = Vec::with_capacity((sb.bm_pages as usize) * ps);
        for p in 0..sb.bm_pages {
            dev.read(sb.bm_start + p, &mut buf)?;
            bm_bytes.extend_from_slice(&buf);
        }
        let bitmap = BlockBitmap::from_bytes(&bm_bytes, sb.total_pages, ps);
        let mut fs = FileSystem {
            dev,
            sb,
            mode,
            inodes,
            inode_dirty: vec![false; sb.it_pages as usize],
            bitmap,
            dir: Vec::new(),
            dir_dirty: false,
            maps: HashMap::new(),
            cache: PageCache::new(cache_pages),
            journal,
            pending_trims: Vec::new(),
            next_tid: 1,
            op_counter: 1,
            stats: FsStats::default(),
            recorder: Telemetry::disabled(),
            clock: None,
            tx,
            snapshot_tids: HashSet::new(),
            mounted_read_only,
        };
        fs.dir = fs.load_dir()?;
        Ok(fs)
    }

    /// The transactional command table, or the error every tx-dependent
    /// path reports when the volume was mounted without one.
    fn tx_ops(&self) -> Result<TxOps<D>> {
        self.tx.ok_or(FsError::NeedsTxDevice)
    }

    // --- accessors ---------------------------------------------------------

    /// Bytes per page/block.
    pub fn page_size(&self) -> usize {
        self.dev.page_size()
    }

    /// Journal mode of this mount.
    pub fn mode(&self) -> JournalMode {
        self.mode
    }

    /// True when mount found the device in end-of-life read-only mode:
    /// journal replay was skipped, so the volume serves the last
    /// checkpointed state and every write path reports
    /// [`FsError::ReadOnly`].
    pub fn mounted_read_only(&self) -> bool {
        self.mounted_read_only
    }

    /// File-system I/O statistics.
    pub fn stats(&self) -> &FsStats {
        &self.stats
    }

    /// Resets FS statistics (device statistics are separate).
    pub fn reset_stats(&mut self) {
        self.stats = FsStats::default();
    }

    /// Access to the underlying device (for statistics).
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Mutable access to the underlying device (failure injection).
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.dev
    }

    /// Unmounts *without* syncing — equivalent to a crash of the host
    /// process. Use [`FileSystem::unmount`] for a clean shutdown.
    pub fn into_device(self) -> D {
        self.dev
    }

    /// Syncs everything and returns the device.
    pub fn unmount(mut self) -> Result<D> {
        self.sync_all()?;
        Ok(self.dev)
    }

    /// Allocates a fresh transaction id (§5.2: ids are managed by the file
    /// system, not SQLite, because SQLite is a library).
    pub fn begin_tx(&mut self) -> Tid {
        let tid = self.next_tid;
        self.next_tid += 1;
        tid
    }

    /// Allocates a transaction id *and* captures a device snapshot for it
    /// (the `BEGIN CONCURRENT` entry point). The transaction's reads see
    /// the volume as of this call; its writes go to the device
    /// immediately, bypassing the shared page cache, and stay invisible
    /// until commit. At commit the device runs first-committer-wins
    /// validation: if another transaction committed an overlapping page
    /// first, the commit fails with `DevError::Conflict` and the device
    /// has already rolled the loser back. `Off` mode only.
    pub fn begin_tx_concurrent(&mut self) -> Result<Tid> {
        if self.mode != JournalMode::Off {
            return Err(FsError::NeedsTxDevice);
        }
        let ops = self.tx_ops()?;
        let tid = self.begin_tx();
        (ops.begin)(&mut self.dev, tid)?;
        self.snapshot_tids.insert(tid);
        Ok(tid)
    }

    /// True if `tid` was opened with [`FileSystem::begin_tx_concurrent`]
    /// and has neither committed nor aborted yet.
    pub fn is_snapshot_tid(&self, tid: Tid) -> bool {
        self.snapshot_tids.contains(&tid)
    }

    // --- namespace ---------------------------------------------------------

    /// Creates an empty file, returning its inode.
    pub fn create(&mut self, name: &str) -> Result<Ino> {
        if name.is_empty() || name.len() > 255 {
            return Err(FsError::BadName);
        }
        if self.dir.iter().any(|(n, _)| n == name) {
            return Err(FsError::Exists);
        }
        let ino = self
            .inodes
            .iter()
            .enumerate()
            .skip(1)
            .find(|(_, i)| i.kind == InodeKind::Free)
            .map(|(i, _)| i as Ino)
            .ok_or(FsError::NoSpace)?;
        self.inodes[ino as usize] = Inode {
            kind: InodeKind::File,
            size: 0,
            mtime: self.bump(),
            map_root: 0,
            direct: [0; NDIRECT],
        };
        self.mark_inode_dirty(ino);
        self.dir.push((name.to_string(), ino));
        self.dir_dirty = true;
        Ok(ino)
    }

    /// Looks a file up by name.
    pub fn open(&self, name: &str) -> Result<Ino> {
        self.dir
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, ino)| ino)
            .ok_or(FsError::NotFound)
    }

    /// True if `name` exists.
    pub fn exists(&self, name: &str) -> bool {
        self.dir.iter().any(|(n, _)| n == name)
    }

    /// Names in the root directory.
    pub fn list(&self) -> Vec<String> {
        self.dir.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Deletes a file, freeing its blocks. (SQLite's rollback-journal
    /// deletion — its commit point — lands here.)
    pub fn unlink(&mut self, name: &str) -> Result<()> {
        let pos = self
            .dir
            .iter()
            .position(|(n, _)| n == name)
            .ok_or(FsError::NotFound)?;
        let (_, ino) = self.dir.remove(pos);
        self.dir_dirty = true;
        self.truncate(ino, 0)?;
        self.inodes[ino as usize] = Inode::free();
        self.mark_inode_dirty(ino);
        self.cache.drop_ino(ino);
        Ok(())
    }

    /// Current size of a file in bytes.
    pub fn size(&self, ino: Ino) -> Result<u64> {
        let inode = self.inodes.get(ino as usize).ok_or(FsError::BadInode)?;
        if inode.kind == InodeKind::Free {
            return Err(FsError::BadInode);
        }
        Ok(inode.size)
    }

    // --- data I/O ----------------------------------------------------------

    /// Writes `data` at byte `offset`, extending the file as needed. In
    /// `Off` mode, `tid` tags the dirtied pages with the writing
    /// transaction so stolen evictions reach the device as `write_tx`.
    pub fn write(&mut self, ino: Ino, offset: u64, data: &[u8], tid: Option<Tid>) -> Result<()> {
        self.check_file(ino)?;
        if let Some(t) = tid {
            if self.snapshot_tids.contains(&t) {
                return self.write_snapshot(ino, offset, data, t);
            }
        }
        let ps = self.page_size() as u64;
        let mut off = offset;
        let mut rest = data;
        while !rest.is_empty() {
            let idx = off / ps;
            let in_page = (off % ps) as usize;
            let take = rest.len().min(ps as usize - in_page);
            let lpn = self.ensure_block(ino, idx)?;
            let full_overwrite = in_page == 0 && take == ps as usize;
            if self.cache.get(lpn).is_none() {
                let mut page = vec![0u8; ps as usize];
                // Only fetch old content when partially overwriting a page
                // that may hold data.
                if !full_overwrite && self.block_may_have_data(ino, idx) {
                    self.read_dev_page(lpn, &mut page, tid)?;
                }
                self.cache.insert(lpn, ino, page, false, None);
            }
            let Some(p) = self.cache.get_mut(lpn) else {
                unreachable!("just inserted")
            };
            p.data[in_page..in_page + take].copy_from_slice(&rest[..take]);
            p.dirty = true;
            if tid.is_some() {
                p.tid = tid;
            }
            off += take as u64;
            rest = &rest[take..];
            self.evict_if_needed()?;
        }
        let end = offset + data.len() as u64;
        let inode = &mut self.inodes[ino as usize];
        if end > inode.size {
            inode.size = end;
        }
        inode.mtime = self.op_counter;
        self.op_counter += 1;
        self.mark_inode_dirty(ino);
        Ok(())
    }

    /// Reads up to `buf.len()` bytes at `offset`; returns bytes read
    /// (short at end of file). `tid` routes reads of the transaction's own
    /// uncommitted pages in `Off` mode.
    pub fn read(
        &mut self,
        ino: Ino,
        offset: u64,
        buf: &mut [u8],
        tid: Option<Tid>,
    ) -> Result<usize> {
        self.check_file(ino)?;
        if let Some(t) = tid {
            if self.snapshot_tids.contains(&t) {
                return self.read_snapshot(ino, offset, buf, t);
            }
        }
        let size = self.inodes[ino as usize].size;
        if offset >= size {
            return Ok(0);
        }
        let want = buf.len().min((size - offset) as usize);
        let ps = self.page_size() as u64;
        let mut done = 0usize;
        while done < want {
            let off = offset + done as u64;
            let idx = off / ps;
            let in_page = (off % ps) as usize;
            let take = (want - done).min(ps as usize - in_page);
            let lpn = self.block_of(ino, idx)?;
            match lpn {
                None => buf[done..done + take].fill(0), // hole
                Some(lpn) => {
                    if let Some(p) = self.cache.get(lpn) {
                        buf[done..done + take].copy_from_slice(&p.data[in_page..in_page + take]);
                    } else {
                        let mut page = vec![0u8; ps as usize];
                        self.read_dev_page(lpn, &mut page, tid)?;
                        buf[done..done + take].copy_from_slice(&page[in_page..in_page + take]);
                        self.cache.insert(lpn, ino, page, false, None);
                        // May immediately evict the page just inserted
                        // under extreme pressure; the bytes are already out.
                        self.evict_if_needed()?;
                    }
                }
            }
            done += take;
        }
        Ok(want)
    }

    /// Snapshot-transaction write path: read-modify-write straight to the
    /// device under `tid`, bypassing the shared page cache (whose copies
    /// track newest committed state, not this transaction's snapshot).
    /// Clean cached copies of the touched pages are evicted so the cache
    /// cannot serve stale bytes to plain readers after this transaction
    /// commits. File size still grows, but mtime maintenance is skipped:
    /// dirtying the shared inode page from every concurrent writer would
    /// make any two of them conflict at commit. Likewise, concurrent
    /// writers that *allocate* (grow files or directories) share bitmap
    /// and inode pages and may conflict — pre-size files for conflict-free
    /// disjoint workloads.
    fn write_snapshot(&mut self, ino: Ino, offset: u64, data: &[u8], tid: Tid) -> Result<()> {
        let ops = self.tx_ops()?;
        let ps = self.page_size() as u64;
        let mut off = offset;
        let mut rest = data;
        while !rest.is_empty() {
            let idx = off / ps;
            let in_page = (off % ps) as usize;
            let take = rest.len().min(ps as usize - in_page);
            let lpn = self.ensure_block(ino, idx)?;
            let full_overwrite = in_page == 0 && take == ps as usize;
            let mut page = vec![0u8; ps as usize];
            if !full_overwrite && self.block_may_have_data(ino, idx) {
                self.stats.reads += 1;
                (ops.read_tx)(&mut self.dev, tid, lpn, &mut page)?;
            }
            page[in_page..in_page + take].copy_from_slice(&rest[..take]);
            (ops.write_tx)(&mut self.dev, tid, lpn, &page)?;
            self.stats.data_writes += 1;
            if self.cache.get(lpn).is_some_and(|p| !p.dirty) {
                self.cache.remove(lpn);
            }
            off += take as u64;
            rest = &rest[take..];
        }
        let end = offset + data.len() as u64;
        if end > self.inodes[ino as usize].size {
            self.inodes[ino as usize].size = end;
            self.mark_inode_dirty(ino);
        }
        Ok(())
    }

    /// Snapshot-transaction read path: every page comes from the device
    /// under `tid` (`read_tx` serves the transaction's own writes first,
    /// then the version visible at its snapshot). The shared page cache is
    /// neither consulted — it reflects newest committed state — nor
    /// populated, so plain readers keep their read-committed view.
    fn read_snapshot(&mut self, ino: Ino, offset: u64, buf: &mut [u8], tid: Tid) -> Result<usize> {
        let ops = self.tx_ops()?;
        let size = self.inodes[ino as usize].size;
        if offset >= size {
            return Ok(0);
        }
        let want = buf.len().min((size - offset) as usize);
        let ps = self.page_size() as u64;
        let mut done = 0usize;
        while done < want {
            let off = offset + done as u64;
            let idx = off / ps;
            let in_page = (off % ps) as usize;
            let take = (want - done).min(ps as usize - in_page);
            match self.block_of(ino, idx)? {
                None => buf[done..done + take].fill(0), // hole
                Some(lpn) => {
                    let mut page = vec![0u8; ps as usize];
                    self.stats.reads += 1;
                    (ops.read_tx)(&mut self.dev, tid, lpn, &mut page)?;
                    buf[done..done + take].copy_from_slice(&page[in_page..in_page + take]);
                }
            }
            done += take;
        }
        Ok(want)
    }

    /// Shrinks a file to `new_size` bytes, freeing blocks past the end.
    /// The tail of the boundary page is zeroed so a later extension reads
    /// zeros in the gap (POSIX truncate semantics).
    pub fn truncate(&mut self, ino: Ino, new_size: u64) -> Result<()> {
        self.check_dir_or_file(ino)?;
        let ps = self.page_size() as u64;
        let keep_blocks = new_size.div_ceil(ps);
        let old_size = self.inodes[ino as usize].size;
        if new_size < old_size && !new_size.is_multiple_of(ps) {
            if let Some(lpn) = self.block_of(ino, new_size / ps)? {
                let cut = (new_size % ps) as usize;
                if self.cache.get(lpn).is_none() {
                    let mut page = vec![0u8; ps as usize];
                    self.read_dev_page(lpn, &mut page, None)?;
                    self.cache.insert(lpn, ino, page, false, None);
                }
                let Some(p) = self.cache.get_mut(lpn) else {
                    unreachable!("just inserted")
                };
                p.data[cut..].fill(0);
                p.dirty = true;
            }
        }
        let inode = self.inodes[ino as usize];
        // Free direct blocks past the cut.
        for i in 0..NDIRECT as u64 {
            if i >= keep_blocks && inode.direct[i as usize] != 0 {
                let lpn = inode.direct[i as usize];
                self.bitmap.clear(lpn);
                self.cache.remove(lpn);
                self.note_freed(lpn);
                self.inodes[ino as usize].direct[i as usize] = 0;
            }
        }
        // Free mapped blocks and, at size 0, the map chain itself.
        self.load_map(ino)?;
        if let Some(map) = self.maps.get_mut(&ino) {
            let cut = keep_blocks.saturating_sub(NDIRECT as u64) as usize;
            let mut freed = Vec::new();
            for i in cut..map.entries.len() {
                if map.entries[i] != 0 {
                    let lpn = map.entries[i];
                    self.bitmap.clear(lpn);
                    self.cache.remove(lpn);
                    freed.push(lpn);
                    map.entries[i] = 0;
                    let epp = map_entries_per_page(self.sb.page_size as usize);
                    map.dirty[i / epp] = true;
                }
            }
            if new_size == 0 {
                for lpn in std::mem::take(&mut map.pages) {
                    self.bitmap.clear(lpn);
                    freed.push(lpn);
                }
                map.entries.clear();
                map.dirty.clear();
                self.inodes[ino as usize].map_root = 0;
                self.maps.remove(&ino);
            }
            for lpn in freed {
                self.note_freed(lpn);
            }
        }
        let inode = &mut self.inodes[ino as usize];
        inode.size = new_size.min(inode.size);
        inode.mtime = self.op_counter;
        self.op_counter += 1;
        self.mark_inode_dirty(ino);
        Ok(())
    }

    // --- telemetry ---------------------------------------------------------

    /// Installs a telemetry handle and the simulated clock that
    /// timestamps its spans. The device layer below carries its own
    /// handle; pass a clone of the same one so the whole stack shares a
    /// single sink.
    pub fn set_recorder(&mut self, clock: SimClock, recorder: Telemetry) {
        self.clock = Some(clock);
        self.recorder = recorder;
    }

    fn span_start(&self) -> Option<Nanos> {
        self.clock.as_ref().map(SimClock::now)
    }

    fn record_fsync(&self, tid: Tid, t_start: Option<Nanos>) {
        if let (Some(clock), Some(t0)) = (&self.clock, t_start) {
            self.recorder
                .record_span(OpClass::FsFsync, tid, 0, t0, clock.now());
        }
    }

    // --- durability --------------------------------------------------------

    /// `fsync(ino)`. In `Off` mode the sync becomes a device transaction:
    /// dirty pages are written as `write_tx` and sealed with one
    /// `commit(tid)` — the paper's single-fsync commit path. In journal
    /// modes this is the classic ext4 sequence with two barriers.
    pub fn fsync(&mut self, ino: Ino, tid: Option<Tid>) -> Result<()> {
        if let Some(t) = tid {
            if self.snapshot_tids.contains(&t) {
                return self.fsync_snapshot(t);
            }
        }
        self.stats.fsyncs += 1;
        let t0 = self.span_start();
        let dirty = self.cache.dirty_of(ino);
        self.sync_pages(&dirty, tid)?;
        self.record_fsync(tid.unwrap_or(0), t0);
        Ok(())
    }

    /// Commit of a snapshot transaction: its data pages are already on
    /// the device (writes bypassed the cache), so only dirty metadata
    /// images ride along before the device commit runs first-committer-
    /// wins validation. A losing transaction surfaces as [`FsError::Dev`]
    /// wrapping `DevError::Conflict`; the device has already rolled it
    /// back, and the in-RAM metadata is re-read from committed state
    /// before the error propagates.
    fn fsync_snapshot(&mut self, tid: Tid) -> Result<()> {
        let ops = self.tx_ops()?;
        self.stats.fsyncs += 1;
        let t0 = self.span_start();
        let metas = self.collect_meta_images()?;
        self.stats.meta_writes += metas.len() as u64;
        let res = (|| {
            if !metas.is_empty() {
                let batch: Vec<(Lpn, &[u8])> =
                    metas.iter().map(|(l, d)| (*l, d.as_slice())).collect();
                (ops.submit_tx)(&mut self.dev, tid, &batch)?;
            }
            (ops.commit)(&mut self.dev, tid)
        })();
        self.snapshot_tids.remove(&tid);
        match res {
            Ok(()) => {
                self.stats.barriers += 1;
                self.record_fsync(tid, t0);
                Ok(())
            }
            Err(e) => {
                self.reload_metadata()?;
                Err(e.into())
            }
        }
    }

    /// Syncs every dirty page of every file plus all metadata.
    pub fn sync_all(&mut self) -> Result<()> {
        self.stats.fsyncs += 1;
        let t0 = self.span_start();
        let dirty = self.cache.dirty_all();
        self.sync_pages(&dirty, None)?;
        if self.mode != JournalMode::Off {
            self.stats.checkpoint_writes += self.journal.checkpoint(&mut self.dev)?;
            self.stats.barriers += 1;
        }
        self.dev.flush()?;
        self.flush_trims()?;
        self.record_fsync(0, t0);
        Ok(())
    }

    /// Metadata-only sync (directory updates after create/unlink — what
    /// SQLite's directory fsync achieves).
    pub fn sync_meta(&mut self, tid: Option<Tid>) -> Result<()> {
        self.stats.fsyncs += 1;
        let t0 = self.span_start();
        self.sync_pages(&[], tid)?;
        self.record_fsync(tid.unwrap_or(0), t0);
        Ok(())
    }

    /// `Off`-mode only: writes a file's dirty pages (and dirty metadata)
    /// to the device tagged with `tid` *without* issuing the commit — the
    /// multi-file transaction path (§4.3): every database file of the
    /// transaction is flushed under one tid, then a single
    /// [`FileSystem::commit_tx`] makes the whole group atomic.
    pub fn fsync_defer_commit(&mut self, ino: Ino, tid: Tid) -> Result<()> {
        if self.mode != JournalMode::Off {
            return Err(FsError::NeedsTxDevice);
        }
        let ops = self.tx_ops()?;
        self.stats.fsyncs += 1;
        let dirty = self.cache.dirty_of(ino);
        let mut pages: Vec<(Lpn, Vec<u8>)> = Vec::with_capacity(dirty.len());
        for lpn in dirty {
            let Some(p) = self.cache.get_mut(lpn) else {
                unreachable!("dirty page in cache")
            };
            p.dirty = false;
            p.tid = None;
            pages.push((lpn, p.data.clone()));
        }
        self.stats.data_writes += pages.len() as u64;
        let metas = self.collect_meta_images()?;
        self.stats.meta_writes += metas.len() as u64;
        pages.extend(metas);
        if !pages.is_empty() {
            // One queued batch; the deferred commit is the barrier that
            // waits for it.
            let batch: Vec<(Lpn, &[u8])> = pages.iter().map(|(l, d)| (*l, d.as_slice())).collect();
            (ops.submit_tx)(&mut self.dev, tid, &batch)?;
        }
        Ok(())
    }

    /// Issues the device commit sealing a multi-file transaction whose
    /// files were flushed with [`FileSystem::fsync_defer_commit`].
    pub fn commit_tx(&mut self, tid: Tid) -> Result<()> {
        if self.mode != JournalMode::Off {
            return Err(FsError::NeedsTxDevice);
        }
        let ops = self.tx_ops()?;
        (ops.commit)(&mut self.dev, tid)?;
        self.stats.barriers += 1;
        Ok(())
    }

    /// `Off`-mode only: split-phase fsync. Writes the file's dirty pages
    /// (and dirty metadata) as one queued batch under `tid`, then issues
    /// `commit_submit` instead of the blocking commit — the transaction
    /// becomes *visible* immediately and the returned ticket names the
    /// group flush that will make it *durable*. Callers overlap the next
    /// transaction's writes with this one's in-flight commit and redeem
    /// the ticket with [`FileSystem::fsync_wait`].
    pub fn fsync_submit(&mut self, ino: Ino, tid: Tid) -> Result<CommitTicket> {
        if self.mode != JournalMode::Off {
            return Err(FsError::NeedsTxDevice);
        }
        if self.snapshot_tids.contains(&tid) {
            return self.fsync_submit_snapshot(tid);
        }
        let ops = self.tx_ops()?;
        self.stats.fsyncs += 1;
        let t0 = self.span_start();
        let dirty = self.cache.dirty_of(ino);
        let mut pages: Vec<(Lpn, Vec<u8>)> = Vec::with_capacity(dirty.len());
        for lpn in dirty {
            let Some(p) = self.cache.get_mut(lpn) else {
                unreachable!("dirty page in cache")
            };
            p.dirty = false;
            p.tid = None;
            pages.push((lpn, p.data.clone()));
        }
        self.stats.data_writes += pages.len() as u64;
        let metas = self.collect_meta_images()?;
        self.stats.meta_writes += metas.len() as u64;
        pages.extend(metas);
        if !pages.is_empty() {
            let batch: Vec<(Lpn, &[u8])> = pages.iter().map(|(l, d)| (*l, d.as_slice())).collect();
            (ops.submit_tx)(&mut self.dev, tid, &batch)?;
        }
        let ticket = (ops.commit_submit)(&mut self.dev, tid)?;
        self.record_fsync(tid, t0);
        Ok(ticket)
    }

    /// Split-phase flavor of [`FileSystem::fsync_snapshot`]: validation
    /// and visibility happen at `commit_submit`, durability at the group
    /// flush named by the returned ticket. Conflicts surface here, not at
    /// the wait.
    fn fsync_submit_snapshot(&mut self, tid: Tid) -> Result<CommitTicket> {
        let ops = self.tx_ops()?;
        self.stats.fsyncs += 1;
        let t0 = self.span_start();
        let metas = self.collect_meta_images()?;
        self.stats.meta_writes += metas.len() as u64;
        let res = (|| {
            if !metas.is_empty() {
                let batch: Vec<(Lpn, &[u8])> =
                    metas.iter().map(|(l, d)| (*l, d.as_slice())).collect();
                (ops.submit_tx)(&mut self.dev, tid, &batch)?;
            }
            (ops.commit_submit)(&mut self.dev, tid)
        })();
        self.snapshot_tids.remove(&tid);
        match res {
            Ok(ticket) => {
                self.record_fsync(tid, t0);
                Ok(ticket)
            }
            Err(e) => {
                self.reload_metadata()?;
                Err(e.into())
            }
        }
    }

    /// Redeems a ticket from [`FileSystem::fsync_submit`], blocking until
    /// the group flush carrying that commit is durable. Counts as the
    /// barrier the split fsync deferred.
    pub fn fsync_wait(&mut self, ticket: CommitTicket) -> Result<()> {
        if self.mode != JournalMode::Off {
            return Err(FsError::NeedsTxDevice);
        }
        let ops = self.tx_ops()?;
        (ops.commit_wait)(&mut self.dev, ticket)?;
        self.stats.barriers += 1;
        Ok(())
    }

    fn sync_pages(&mut self, dirty: &[Lpn], tid: Option<Tid>) -> Result<()> {
        let has_meta = self.has_dirty_meta();
        if dirty.is_empty() && !has_meta {
            return Ok(());
        }
        match self.mode {
            JournalMode::Off => {
                let ops = self.tx_ops()?;
                let tid = match tid {
                    Some(t) => t,
                    None => self.begin_tx(),
                };
                // The whole transaction — data pages plus dirty metadata —
                // goes to the device as one queued batch, which a
                // channel-parallel FTL overlaps across its channels.
                let mut pages: Vec<(Lpn, Vec<u8>)> = Vec::with_capacity(dirty.len());
                for &lpn in dirty {
                    let Some(p) = self.cache.get_mut(lpn) else {
                        unreachable!("dirty page in cache")
                    };
                    p.dirty = false;
                    p.tid = None;
                    pages.push((lpn, p.data.clone()));
                }
                self.stats.data_writes += pages.len() as u64;
                let metas = self.collect_meta_images()?;
                self.stats.meta_writes += metas.len() as u64;
                pages.extend(metas);
                let batch: Vec<(Lpn, &[u8])> =
                    pages.iter().map(|(l, d)| (*l, d.as_slice())).collect();
                (ops.submit_tx)(&mut self.dev, tid, &batch)?;
                // One command replaces both barriers: the device waits for
                // the queued batch and makes the whole transaction durable
                // and atomic.
                (ops.commit)(&mut self.dev, tid)?;
                self.stats.barriers += 1;
            }
            JournalMode::Ordered => {
                // Data first, in place — one queued batch; the journal
                // barrier below completes the queue before the commit
                // page can land.
                let mut pages: Vec<(Lpn, Vec<u8>)> = Vec::with_capacity(dirty.len());
                for &lpn in dirty {
                    let Some(p) = self.cache.get_mut(lpn) else {
                        unreachable!("dirty page in cache")
                    };
                    p.dirty = false;
                    pages.push((lpn, p.data.clone()));
                }
                self.stats.data_writes += pages.len() as u64;
                if !pages.is_empty() {
                    let cmds: Vec<IoCmd<'_>> = pages
                        .iter()
                        .map(|(l, d)| IoCmd::Write { lpn: *l, data: d })
                        .collect();
                    self.dev.submit(&cmds)?;
                }
                let metas = self.collect_meta_images()?;
                self.journal_txn(&metas)?;
            }
            JournalMode::Full => {
                // Data rides inside the journal transaction; home writes
                // are owed at checkpoint (each page written twice).
                let mut entries: Vec<(Lpn, Vec<u8>)> = Vec::with_capacity(dirty.len());
                for &lpn in dirty {
                    let Some(p) = self.cache.get_mut(lpn) else {
                        unreachable!("dirty page in cache")
                    };
                    p.dirty = false;
                    entries.push((lpn, p.data.clone()));
                }
                self.stats.data_writes += entries.len() as u64;
                let metas = self.collect_meta_images()?;
                entries.extend(metas);
                self.journal_txn(&entries)?;
            }
        }
        Ok(())
    }

    /// One ext4-style journal transaction with the classic barrier pair.
    /// A transaction larger than the journal region is split into several
    /// back-to-back commits (JBD2 likewise bounds transaction size).
    fn journal_txn(&mut self, entries: &[(Lpn, Vec<u8>)]) -> Result<()> {
        if entries.is_empty() {
            // Nothing journaled, but the data writes above still need a
            // barrier to be durable.
            self.dev.flush()?;
            self.stats.barriers += 1;
            return Ok(());
        }
        let max_chunk = (self.sb.jr_pages.saturating_sub(3) as usize).max(1);
        for chunk in entries.chunks(max_chunk) {
            if self.journal.needs_checkpoint(chunk.len() as u64) {
                self.stats.checkpoint_writes += self.journal.checkpoint(&mut self.dev)?;
                self.stats.barriers += 1;
            }
            let written = self.journal.append_body(&mut self.dev, chunk)?;
            self.stats.journal_writes += written;
            self.dev.flush()?;
            self.stats.barriers += 1;
            self.journal.append_commit(&mut self.dev)?;
            self.stats.journal_writes += 1;
            self.dev.flush()?;
            self.stats.barriers += 1;
        }
        self.flush_trims()?;
        Ok(())
    }

    /// §5.2's `ioctl(abort)`: drops the transaction's cached dirty pages,
    /// rolls back its stolen writes inside the device, and re-reads
    /// metadata from committed state. Only meaningful in `Off` mode.
    ///
    /// The aborting transaction must be the volume's only in-flight
    /// mutator (SQLite guarantees this with its database write lock).
    pub fn abort_tx(&mut self, tid: Tid) -> Result<()> {
        self.snapshot_tids.remove(&tid);
        self.cache.drop_tid(tid);
        if self.mode == JournalMode::Off {
            let ops = self.tx_ops()?;
            (ops.abort)(&mut self.dev, tid)?;
        }
        self.reload_metadata()
    }

    // --- internals ---------------------------------------------------------

    fn note_freed(&mut self, lpn: Lpn) {
        if self.mode != JournalMode::Off {
            self.pending_trims.push(lpn);
        }
    }

    /// Issues the deferred discard commands; called after a metadata
    /// commit has made the freeing durable. The whole discard set goes
    /// out as one queued batch.
    fn flush_trims(&mut self) -> Result<()> {
        if self.pending_trims.is_empty() {
            return Ok(());
        }
        let cmds: Vec<IoCmd<'_>> = self
            .pending_trims
            .iter()
            .map(|&lpn| IoCmd::Trim { lpn })
            .collect();
        self.dev.submit(&cmds)?;
        self.pending_trims.clear();
        Ok(())
    }

    fn bump(&mut self) -> u64 {
        let v = self.op_counter;
        self.op_counter += 1;
        v
    }

    fn check_file(&self, ino: Ino) -> Result<()> {
        match self.inodes.get(ino as usize) {
            Some(i) if i.kind == InodeKind::File => Ok(()),
            Some(i) if i.kind == InodeKind::Dir => Ok(()),
            _ => Err(FsError::BadInode),
        }
    }

    fn check_dir_or_file(&self, ino: Ino) -> Result<()> {
        self.check_file(ino)
    }

    fn mark_inode_dirty(&mut self, ino: Ino) {
        let page = ino as u64 / self.sb.inodes_per_page();
        self.inode_dirty[page as usize] = true;
    }

    fn read_dev_page(&mut self, lpn: Lpn, buf: &mut [u8], tid: Option<Tid>) -> Result<()> {
        self.stats.reads += 1;
        match (self.mode, tid) {
            (JournalMode::Off, Some(t)) => {
                let ops = self.tx_ops()?;
                (ops.read_tx)(&mut self.dev, t, lpn, buf)?;
            }
            _ => self.dev.read(lpn, buf)?,
        }
        Ok(())
    }

    /// Existing block of file block `idx`, or `None` for a hole.
    fn block_of(&mut self, ino: Ino, idx: u64) -> Result<Option<Lpn>> {
        if (idx as usize) < NDIRECT {
            let lpn = self.inodes[ino as usize].direct[idx as usize];
            return Ok((lpn != 0).then_some(lpn));
        }
        self.load_map(ino)?;
        let Some(map) = self.maps.get(&ino) else {
            unreachable!("loaded above")
        };
        let i = idx as usize - NDIRECT;
        Ok(map.entries.get(i).copied().filter(|&l| l != 0))
    }

    fn block_may_have_data(&mut self, ino: Ino, idx: u64) -> bool {
        // ensure_block may have just allocated the block; a block is worth
        // reading only if it existed before this write, which we detect by
        // whether the file size reaches into it.
        let ps = self.page_size() as u64;
        self.inodes[ino as usize].size > idx * ps
    }

    /// Block of file block `idx`, allocating (and wiring the map) if absent.
    fn ensure_block(&mut self, ino: Ino, idx: u64) -> Result<Lpn> {
        if let Some(lpn) = self.block_of(ino, idx)? {
            return Ok(lpn);
        }
        let lpn = self.bitmap.alloc(self.sb.data_start)?;
        if (idx as usize) < NDIRECT {
            self.inodes[ino as usize].direct[idx as usize] = lpn;
            self.mark_inode_dirty(ino);
            return Ok(lpn);
        }
        let i = idx as usize - NDIRECT;
        let ps = self.sb.page_size as usize;
        let epp = map_entries_per_page(ps);
        // Grow the entry array and the chain to cover index i.
        let needed_pages = (i + 1).div_ceil(epp);
        loop {
            let Some(map) = self.maps.get_mut(&ino) else {
                unreachable!("loaded by block_of")
            };
            if map.pages.len() >= needed_pages {
                break;
            }
            let new_page = self.bitmap.alloc(self.sb.data_start)?;
            let Some(map) = self.maps.get_mut(&ino) else {
                unreachable!("loaded")
            };
            if let Some(last) = map.dirty.last_mut() {
                *last = true; // previous tail gains a next pointer
            }
            map.pages.push(new_page);
            map.dirty.push(true);
            if map.pages.len() == 1 {
                self.inodes[ino as usize].map_root = new_page;
                self.mark_inode_dirty(ino);
            }
        }
        let Some(map) = self.maps.get_mut(&ino) else {
            unreachable!("loaded")
        };
        if map.entries.len() <= i {
            map.entries.resize(i + 1, 0);
        }
        map.entries[i] = lpn;
        map.dirty[i / epp] = true;
        Ok(lpn)
    }

    /// Loads the block-map chain of `ino` into RAM if not present.
    fn load_map(&mut self, ino: Ino) -> Result<()> {
        if self.maps.contains_key(&ino) {
            return Ok(());
        }
        let mut map = BlockMap::default();
        let ps = self.page_size();
        let mut next = self.inodes[ino as usize].map_root;
        let mut buf = vec![0u8; ps];
        while next != 0 {
            self.stats.reads += 1;
            self.dev.read(next, &mut buf)?;
            map.pages.push(next);
            map.dirty.push(false);
            next = get_u64(&buf, 0);
            let count = get_u64(&buf, 8) as usize;
            for i in 0..count {
                let o = 16 + i * 8;
                map.entries.push(get_u64(&buf, o));
            }
        }
        self.maps.insert(ino, map);
        Ok(())
    }

    fn encode_map_page(&self, ino: Ino, page_idx: usize) -> Vec<u8> {
        let ps = self.page_size();
        let epp = map_entries_per_page(ps);
        let map = &self.maps[&ino];
        let mut buf = vec![0u8; ps];
        let next = map.pages.get(page_idx + 1).copied().unwrap_or(0);
        buf[0..8].copy_from_slice(&next.to_le_bytes());
        let start = page_idx * epp;
        let count = map.entries.len().saturating_sub(start).min(epp);
        buf[8..16].copy_from_slice(&(count as u64).to_le_bytes());
        for i in 0..count {
            let o = 16 + i * 8;
            buf[o..o + 8].copy_from_slice(&map.entries[start + i].to_le_bytes());
        }
        buf
    }

    fn has_dirty_meta(&self) -> bool {
        self.dir_dirty
            || self.inode_dirty.iter().any(|&d| d)
            || !self.bitmap.dirty_pages().is_empty()
            || self.maps.values().any(|m| m.dirty.iter().any(|&d| d))
    }

    /// Serializes every dirty metadata page and clears the dirty flags.
    /// Directory content is re-packed into inode 0's blocks first (which
    /// may allocate, dirtying the bitmap and inode table in turn).
    fn collect_meta_images(&mut self) -> Result<Vec<(Lpn, Vec<u8>)>> {
        let mut out: Vec<(Lpn, Vec<u8>)> = Vec::new();
        let ps = self.page_size();
        if self.dir_dirty {
            let bytes = encode_dir(&self.dir);
            let pages = bytes.len().div_ceil(ps).max(1);
            for p in 0..pages {
                let lpn = self.ensure_block(0, p as u64)?;
                let mut img = vec![0u8; ps];
                let start = p * ps;
                let take = bytes.len().saturating_sub(start).min(ps);
                img[..take].copy_from_slice(&bytes[start..start + take]);
                out.push((lpn, img));
            }
            let inode = &mut self.inodes[0];
            inode.size = bytes.len() as u64;
            self.mark_inode_dirty(0);
            self.dir_dirty = false;
        }
        // Block maps (may not allocate; chain pages already allocated).
        let inos: Vec<Ino> = self.maps.keys().copied().collect();
        for ino in inos {
            let dirty: Vec<usize> = {
                let map = &self.maps[&ino];
                map.dirty
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &d)| d.then_some(i))
                    .collect()
            };
            for p in dirty {
                let img = self.encode_map_page(ino, p);
                let lpn = self.maps[&ino].pages[p];
                out.push((lpn, img));
                if let Some(m) = self.maps.get_mut(&ino) {
                    m.dirty[p] = false;
                }
            }
        }
        // Inode-table pages.
        for p in 0..self.inode_dirty.len() {
            if self.inode_dirty[p] {
                out.push((
                    self.sb.it_start + p as u64,
                    encode_inode_page(&self.sb, &self.inodes, p, ps),
                ));
                self.inode_dirty[p] = false;
            }
        }
        // Bitmap pages last: the allocations above may have dirtied them.
        for p in self.bitmap.take_dirty_pages() {
            out.push((self.sb.bm_start + p as u64, self.bitmap.encode_page(p, ps)));
        }
        Ok(out)
    }

    fn evict_if_needed(&mut self) -> Result<()> {
        while self.cache.needs_evict() {
            let Some((lpn, page)) = self.cache.pop_lru() else {
                break;
            };
            if !page.dirty {
                continue;
            }
            self.stats.evictions += 1;
            match (self.mode, page.tid) {
                (JournalMode::Off, Some(tid)) => {
                    // Steal: the uncommitted page reaches the device tagged
                    // with its transaction; X-FTL parks it in the X-L2P.
                    let ops = self.tx_ops()?;
                    (ops.write_tx)(&mut self.dev, tid, lpn, &page.data)?;
                }
                (JournalMode::Full, _) => {
                    // Full journaling may not write data home before its
                    // journal copy commits: evict through a mini journal
                    // transaction.
                    if self.journal.needs_checkpoint(1) {
                        self.stats.checkpoint_writes += self.journal.checkpoint(&mut self.dev)?;
                        self.stats.barriers += 1;
                    }
                    let w = self
                        .journal
                        .append_body(&mut self.dev, &[(lpn, page.data.clone())])?;
                    self.journal.append_commit(&mut self.dev)?;
                    self.stats.journal_writes += w + 1;
                }
                _ => {
                    self.dev.write(lpn, &page.data)?;
                }
            }
        }
        Ok(())
    }

    fn load_dir(&mut self) -> Result<Vec<(String, Ino)>> {
        let size = self.inodes[0].size;
        if size == 0 {
            return Ok(Vec::new());
        }
        let mut bytes = vec![0u8; size as usize];
        // Temporarily mark inode 0 readable through the normal path.
        let n = self.read(0, 0, &mut bytes, None)?;
        bytes.truncate(n);
        Ok(decode_dir(&bytes))
    }

    /// fsck-style consistency check: verifies that every block reachable
    /// from an inode is marked used in the bitmap, that no block is
    /// referenced twice, and that directory entries point at live inodes.
    /// Used by crash-recovery tests to assert volume integrity.
    pub fn check_consistency(&mut self) -> Result<FsckReport> {
        let mut report = FsckReport::default();
        let mut seen = std::collections::HashSet::new();
        let mut claim = |lpn: u64, report: &mut FsckReport, bitmap: &BlockBitmap| {
            if !seen.insert(lpn) {
                report.double_referenced += 1;
            }
            if !bitmap.is_set(lpn) {
                report.unmarked_in_bitmap += 1;
            }
        };
        let inos: Vec<Ino> = (0..self.inodes.len() as Ino).collect();
        for ino in inos {
            if self.inodes[ino as usize].kind == InodeKind::Free {
                continue;
            }
            report.live_inodes += 1;
            for i in 0..NDIRECT {
                let lpn = self.inodes[ino as usize].direct[i];
                if lpn != 0 {
                    claim(lpn, &mut report, &self.bitmap);
                }
            }
            self.load_map(ino)?;
            if let Some(map) = self.maps.get(&ino) {
                let entries = map.entries.clone();
                let pages = map.pages.clone();
                for lpn in pages {
                    claim(lpn, &mut report, &self.bitmap);
                }
                for lpn in entries {
                    if lpn != 0 {
                        claim(lpn, &mut report, &self.bitmap);
                    }
                }
            }
        }
        for (name, ino) in &self.dir {
            let ok = self
                .inodes
                .get(*ino as usize)
                .map(|i| i.kind != InodeKind::Free)
                .unwrap_or(false);
            if !ok {
                report.dangling_dir_entries += 1;
                report.first_dangling = Some(name.clone());
            }
        }
        Ok(report)
    }

    /// Re-reads all metadata from the device, discarding in-RAM changes
    /// (the abort path).
    fn reload_metadata(&mut self) -> Result<()> {
        let ps = self.page_size();
        let mut buf = vec![0u8; ps];
        let ipp = self.sb.inodes_per_page() as usize;
        let mut inodes = Vec::with_capacity(self.sb.inode_count as usize);
        for p in 0..self.sb.it_pages {
            self.dev.read(self.sb.it_start + p, &mut buf)?;
            for i in 0..ipp {
                if inodes.len() < self.sb.inode_count as usize {
                    inodes.push(Inode::decode(&buf, i * crate::layout::INODE_BYTES));
                }
            }
        }
        self.inodes = inodes;
        self.inode_dirty.fill(false);
        let mut bm_bytes = Vec::with_capacity((self.sb.bm_pages as usize) * ps);
        for p in 0..self.sb.bm_pages {
            self.dev.read(self.sb.bm_start + p, &mut buf)?;
            bm_bytes.extend_from_slice(&buf);
        }
        self.bitmap = BlockBitmap::from_bytes(&bm_bytes, self.sb.total_pages, ps);
        self.maps.clear();
        self.dir = self.load_dir()?;
        self.dir_dirty = false;
        Ok(())
    }
}

/// Result of [`FileSystem::check_consistency`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FsckReport {
    /// Inodes in use.
    pub live_inodes: u64,
    /// Blocks referenced by an inode but free in the bitmap.
    pub unmarked_in_bitmap: u64,
    /// Blocks referenced by two different owners.
    pub double_referenced: u64,
    /// Directory entries pointing at free/invalid inodes.
    pub dangling_dir_entries: u64,
    /// Name of the first dangling entry found, for diagnostics.
    pub first_dangling: Option<String>,
}

impl FsckReport {
    /// True when no inconsistency was found.
    pub fn is_clean(&self) -> bool {
        self.unmarked_in_bitmap == 0
            && self.double_referenced == 0
            && self.dangling_dir_entries == 0
    }
}

fn encode_inode_page(sb: &Superblock, inodes: &[Inode], page: usize, ps: usize) -> Vec<u8> {
    let ipp = sb.inodes_per_page() as usize;
    let mut buf = vec![0u8; ps];
    for i in 0..ipp {
        let ino = page * ipp + i;
        if ino < inodes.len() {
            inodes[ino].encode(&mut buf, i * crate::layout::INODE_BYTES);
        }
    }
    buf
}

fn encode_dir(dir: &[(String, Ino)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(dir.len() as u32).to_le_bytes());
    for (name, ino) in dir {
        out.extend_from_slice(&ino.to_le_bytes());
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
    }
    out
}

fn decode_dir(bytes: &[u8]) -> Vec<(String, Ino)> {
    let mut out = Vec::new();
    if bytes.len() < 4 {
        return out;
    }
    let count = get_u32(bytes, 0) as usize;
    let mut off = 4;
    for _ in 0..count {
        if off + 6 > bytes.len() {
            break;
        }
        let ino = get_u32(bytes, off);
        let len = usize::from(get_u16(bytes, off + 4));
        off += 6;
        if off + len > bytes.len() {
            break;
        }
        let name = String::from_utf8_lossy(&bytes[off..off + len]).into_owned();
        off += len;
        out.push((name, ino));
    }
    out
}
