//! Error type for file-system operations.

use std::fmt;

use xftl_ftl::DevError;

/// Errors surfaced by the simulated file system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Underlying device error.
    Dev(DevError),
    /// No file with that name.
    NotFound,
    /// A file with that name already exists.
    Exists,
    /// No free data blocks (or inodes) left.
    NoSpace,
    /// Name longer than 255 bytes or empty.
    BadName,
    /// Byte range beyond the maximum file size the block map can address.
    TooLarge,
    /// Invalid inode number or stale handle.
    BadInode,
    /// The volume's superblock is missing or corrupt.
    BadSuperblock,
    /// The mount mode needs a transactional device (journal `Off` mode
    /// requires X-FTL underneath) but the device lacks the command set.
    NeedsTxDevice,
    /// Operation requires a transaction id in this journal mode.
    NeedsTid,
    /// The underlying device has degraded to read-only mode (end of
    /// life): dirtying operations are refused, reads keep working.
    ReadOnly,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::Dev(e) => write!(f, "device error: {e}"),
            FsError::NotFound => write!(f, "file not found"),
            FsError::Exists => write!(f, "file exists"),
            FsError::NoSpace => write!(f, "no space left on volume"),
            FsError::BadName => write!(f, "invalid file name"),
            FsError::TooLarge => write!(f, "offset beyond maximum file size"),
            FsError::BadInode => write!(f, "invalid inode"),
            FsError::BadSuperblock => write!(f, "missing or corrupt superblock"),
            FsError::NeedsTxDevice => {
                write!(
                    f,
                    "journal mode Off requires a transactional (X-FTL) device"
                )
            }
            FsError::NeedsTid => write!(f, "operation requires a transaction id in this mode"),
            FsError::ReadOnly => write!(f, "volume is read-only (device end-of-life)"),
        }
    }
}

impl std::error::Error for FsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FsError::Dev(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DevError> for FsError {
    fn from(e: DevError) -> Self {
        match e {
            DevError::ReadOnly => FsError::ReadOnly,
            other => FsError::Dev(other),
        }
    }
}

/// Result alias for file-system operations.
pub type Result<T> = std::result::Result<T, FsError>;
