//! File-system level I/O statistics (the "File System" and "fsync calls"
//! columns of the paper's Table 1).

use std::ops::Sub;

/// Cause-attributed file-system I/O counts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FsStats {
    /// `fsync` calls served.
    pub fsyncs: u64,
    /// Device flush (write-barrier) commands issued.
    pub barriers: u64,
    /// File data pages written to their home location.
    pub data_writes: u64,
    /// Metadata pages written (inode table, bitmap, directory, block maps).
    pub meta_writes: u64,
    /// Pages written into the journal (descriptors, images, commit pages).
    pub journal_writes: u64,
    /// Home pages written by journal checkpoints.
    pub checkpoint_writes: u64,
    /// Dirty pages written back by cache eviction (the *steal* path).
    pub evictions: u64,
    /// Device page reads issued (cache misses).
    pub reads: u64,
}

impl FsStats {
    /// All pages this layer wrote to the device, from any cause.
    pub fn total_writes(&self) -> u64 {
        self.data_writes
            + self.meta_writes
            + self.journal_writes
            + self.checkpoint_writes
            + self.evictions
    }

    /// Pages written for purposes other than file data — the paper's
    /// "File System" write column.
    pub fn overhead_writes(&self) -> u64 {
        self.meta_writes + self.journal_writes + self.checkpoint_writes
    }
}

impl Sub for FsStats {
    type Output = FsStats;

    fn sub(self, rhs: FsStats) -> FsStats {
        FsStats {
            fsyncs: self.fsyncs - rhs.fsyncs,
            barriers: self.barriers - rhs.barriers,
            data_writes: self.data_writes - rhs.data_writes,
            meta_writes: self.meta_writes - rhs.meta_writes,
            journal_writes: self.journal_writes - rhs.journal_writes,
            checkpoint_writes: self.checkpoint_writes - rhs.checkpoint_writes,
            evictions: self.evictions - rhs.evictions,
            reads: self.reads - rhs.reads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = FsStats {
            data_writes: 1,
            meta_writes: 2,
            journal_writes: 3,
            checkpoint_writes: 4,
            evictions: 5,
            ..Default::default()
        };
        assert_eq!(s.total_writes(), 15);
        assert_eq!(s.overhead_writes(), 9);
    }

    #[test]
    fn diff() {
        let a = FsStats {
            fsyncs: 5,
            barriers: 9,
            ..Default::default()
        };
        let b = FsStats {
            fsyncs: 2,
            barriers: 4,
            ..Default::default()
        };
        let d = a - b;
        assert_eq!(d.fsyncs, 3);
        assert_eq!(d.barriers, 5);
    }
}
