//! On-device layout: superblock and inode formats.
//!
//! The volume is divided into fixed regions, ext-style:
//!
//! ```text
//! lpn 0            superblock
//! [it_start ..)    inode table        (128 B per inode)
//! [bm_start ..)    block bitmap       (1 bit per device page)
//! [jr_start ..)    journal region     (header page + circular log)
//! [data_start ..)  data blocks        (file contents, block-map pages)
//! ```

use crate::error::{FsError, Result};

/// Inode number. Inode 0 is always the root directory.
pub type Ino = u32;

/// Bytes per on-disk inode.
pub const INODE_BYTES: usize = 128;
/// Number of direct block pointers per inode.
pub const NDIRECT: usize = 8;
/// Superblock magic ("XFTL-FS1").
pub const SB_MAGIC: u64 = 0x5846_544C_2D46_5331;

/// What an inode slot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InodeKind {
    /// Unused inode slot.
    Free,
    /// Regular file.
    File,
    /// Directory (only the root, inode 0, in this volume layout).
    Dir,
}

/// An in-RAM inode. `direct` holds the first [`NDIRECT`] block addresses;
/// larger files chain additional block-map pages from `map_root`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inode {
    /// What the slot holds.
    pub kind: InodeKind,
    /// Logical file size in bytes.
    pub size: u64,
    /// Modification "time" (simulated ns); metadata-dirtying like ext4's.
    pub mtime: u64,
    /// First block-map page (0 = none).
    pub map_root: u64,
    /// Direct block pointers (0 = hole).
    pub direct: [u64; NDIRECT],
}

impl Inode {
    /// A freshly-freed inode slot.
    pub fn free() -> Self {
        Inode {
            kind: InodeKind::Free,
            size: 0,
            mtime: 0,
            map_root: 0,
            direct: [0; NDIRECT],
        }
    }

    /// Serializes into `INODE_BYTES` at `buf[off..]`.
    pub fn encode(&self, buf: &mut [u8], off: usize) {
        let kind = match self.kind {
            InodeKind::Free => 0u32,
            InodeKind::File => 1,
            InodeKind::Dir => 2,
        };
        buf[off..off + 4].copy_from_slice(&kind.to_le_bytes());
        buf[off + 8..off + 16].copy_from_slice(&self.size.to_le_bytes());
        buf[off + 16..off + 24].copy_from_slice(&self.mtime.to_le_bytes());
        buf[off + 24..off + 32].copy_from_slice(&self.map_root.to_le_bytes());
        for (i, d) in self.direct.iter().enumerate() {
            let o = off + 32 + i * 8;
            buf[o..o + 8].copy_from_slice(&d.to_le_bytes());
        }
    }

    /// Parses an inode from `buf[off..]`.
    pub fn decode(buf: &[u8], off: usize) -> Inode {
        let kind = {
            let mut b = [0u8; 4];
            b.copy_from_slice(&buf[off..off + 4]);
            u32::from_le_bytes(b)
        };
        let kind = match kind {
            1 => InodeKind::File,
            2 => InodeKind::Dir,
            _ => InodeKind::Free,
        };
        let g = |o: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[off + o..off + o + 8]);
            u64::from_le_bytes(b)
        };
        let mut direct = [0u64; NDIRECT];
        for (i, d) in direct.iter_mut().enumerate() {
            *d = g(32 + i * 8);
        }
        Inode {
            kind,
            size: g(8),
            mtime: g(16),
            map_root: g(24),
            direct,
        }
    }
}

/// Parsed superblock / region map of a volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Device pages in the volume.
    pub total_pages: u64,
    /// Bytes per page.
    pub page_size: u32,
    /// Inode slots in the table.
    pub inode_count: u32,
    /// First page of the inode table.
    pub it_start: u64,
    /// Pages in the inode table.
    pub it_pages: u64,
    /// First page of the block bitmap.
    pub bm_start: u64,
    /// Pages in the block bitmap.
    pub bm_pages: u64,
    /// First page of the journal region (its header page).
    pub jr_start: u64,
    /// Pages in the journal region.
    pub jr_pages: u64,
    /// First allocatable data page.
    pub data_start: u64,
}

impl Superblock {
    /// Computes the region map for a device of `total_pages` pages of
    /// `page_size` bytes, with `inode_count` inodes and a journal of
    /// `journal_pages` pages.
    pub fn layout(
        total_pages: u64,
        page_size: usize,
        inode_count: u32,
        journal_pages: u64,
    ) -> Result<Superblock> {
        let inodes_per_page = (page_size / INODE_BYTES) as u64;
        let it_pages = (inode_count as u64).div_ceil(inodes_per_page);
        let bits_per_page = (page_size * 8) as u64;
        let bm_pages = total_pages.div_ceil(bits_per_page);
        let it_start = 1;
        let bm_start = it_start + it_pages;
        let jr_start = bm_start + bm_pages;
        let data_start = jr_start + journal_pages;
        if data_start + 8 > total_pages {
            return Err(FsError::NoSpace);
        }
        Ok(Superblock {
            total_pages,
            page_size: page_size as u32,
            inode_count,
            it_start,
            it_pages,
            bm_start,
            bm_pages,
            jr_start,
            jr_pages: journal_pages,
            data_start,
        })
    }

    /// Inodes per inode-table page.
    pub fn inodes_per_page(&self) -> u64 {
        (self.page_size as usize / INODE_BYTES) as u64
    }

    /// Serializes into one device page.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = vec![0u8; self.page_size as usize];
        buf[0..8].copy_from_slice(&SB_MAGIC.to_le_bytes());
        let fields = [
            self.total_pages,
            self.page_size as u64,
            self.inode_count as u64,
            self.it_start,
            self.it_pages,
            self.bm_start,
            self.bm_pages,
            self.jr_start,
            self.jr_pages,
            self.data_start,
        ];
        for (i, f) in fields.iter().enumerate() {
            let o = 8 + i * 8;
            buf[o..o + 8].copy_from_slice(&f.to_le_bytes());
        }
        buf
    }

    /// Parses a superblock page.
    pub fn decode(buf: &[u8]) -> Result<Superblock> {
        if buf.len() < 88 {
            return Err(FsError::BadSuperblock);
        }
        let g = |o: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[o..o + 8]);
            u64::from_le_bytes(b)
        };
        if g(0) != SB_MAGIC {
            return Err(FsError::BadSuperblock);
        }
        Ok(Superblock {
            total_pages: g(8),
            page_size: g(16) as u32,
            inode_count: g(24) as u32,
            it_start: g(32),
            it_pages: g(40),
            bm_start: g(48),
            bm_pages: g(56),
            jr_start: g(64),
            jr_pages: g(72),
            data_start: g(80),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superblock_roundtrip() {
        let sb = Superblock::layout(4096, 512, 64, 32).unwrap();
        let buf = sb.encode();
        assert_eq!(Superblock::decode(&buf).unwrap(), sb);
    }

    #[test]
    fn layout_regions_are_disjoint_and_ordered() {
        let sb = Superblock::layout(4096, 512, 64, 32).unwrap();
        assert_eq!(sb.it_start, 1);
        assert!(sb.bm_start >= sb.it_start + sb.it_pages);
        assert!(sb.jr_start >= sb.bm_start + sb.bm_pages);
        assert_eq!(sb.data_start, sb.jr_start + sb.jr_pages);
        assert!(sb.data_start < sb.total_pages);
    }

    #[test]
    fn layout_rejects_tiny_volume() {
        assert_eq!(Superblock::layout(16, 512, 64, 32), Err(FsError::NoSpace));
    }

    #[test]
    fn inode_roundtrip() {
        let mut ino = Inode::free();
        ino.kind = InodeKind::File;
        ino.size = 123456;
        ino.mtime = 99;
        ino.map_root = 77;
        ino.direct[0] = 100;
        ino.direct[7] = 107;
        let mut buf = vec![0u8; 512];
        ino.encode(&mut buf, 128);
        assert_eq!(Inode::decode(&buf, 128), ino);
    }

    #[test]
    fn bad_superblock_rejected() {
        assert_eq!(Superblock::decode(&[0u8; 512]), Err(FsError::BadSuperblock));
    }
}
