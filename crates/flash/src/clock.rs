//! Deterministic simulated clock.
//!
//! Every component of the stack (flash array, FTL, SATA link, file system,
//! database) charges its latencies to a single shared [`SimClock`]. Elapsed
//! simulated time is therefore a pure function of the workload and the
//! configured timings, which makes every figure in the paper reproducible
//! bit-for-bit and lets tests assert on "execution time" without touching
//! wall-clock time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Nanoseconds, the base unit of simulated time.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICRO: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MILLI: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SECOND: Nanos = 1_000_000_000;

/// A shared, monotonically advancing simulated clock.
///
/// Cloning a `SimClock` yields a handle onto the same underlying instant, so
/// a device, a file system and a database can all advance one timeline.
///
/// ```
/// use xftl_flash::clock::{SimClock, MILLI};
/// let clock = SimClock::new();
/// let view = clock.clone();
/// clock.advance(3 * MILLI);
/// assert_eq!(view.now(), 3 * MILLI);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ns: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock starting at instant zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated instant in nanoseconds since the start of the run.
    pub fn now(&self) -> Nanos {
        self.now_ns.load(Ordering::Relaxed)
    }

    /// Advances the clock by `delta` nanoseconds.
    pub fn advance(&self, delta: Nanos) {
        self.now_ns.fetch_add(delta, Ordering::Relaxed);
    }

    /// Advances the clock to `instant` if it lies in the future; a no-op
    /// otherwise. Used to wait for the completion of overlapped flash
    /// operations, whose finish times are absolute timestamps.
    pub fn advance_to(&self, instant: Nanos) {
        self.now_ns.fetch_max(instant, Ordering::Relaxed);
    }

    /// Current instant expressed in seconds as a float (for reports).
    pub fn now_secs(&self) -> f64 {
        self.now() as f64 / SECOND as f64
    }

    /// Convenience: elapsed simulated time since `start`.
    pub fn since(&self, start: Nanos) -> Nanos {
        self.now().saturating_sub(start)
    }
}

/// A scoped stopwatch over a [`SimClock`].
///
/// ```
/// use xftl_flash::clock::{SimClock, Stopwatch, MICRO};
/// let clock = SimClock::new();
/// let sw = Stopwatch::start(&clock);
/// clock.advance(5 * MICRO);
/// assert_eq!(sw.elapsed(), 5 * MICRO);
/// ```
#[derive(Debug)]
pub struct Stopwatch {
    clock: SimClock,
    start: Nanos,
}

impl Stopwatch {
    /// Begins timing at the clock's current instant.
    pub fn start(clock: &SimClock) -> Self {
        Self {
            clock: clock.clone(),
            start: clock.now(),
        }
    }

    /// Simulated nanoseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Nanos {
        self.clock.since(self.start)
    }

    /// Elapsed time in seconds as a float.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed() as f64 / SECOND as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SimClock::new().now(), 0);
    }

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        c.advance(10);
        c.advance(32);
        assert_eq!(c.now(), 42);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        b.advance(7);
        assert_eq!(a.now(), 7);
    }

    #[test]
    fn advance_to_is_monotone() {
        let c = SimClock::new();
        c.advance_to(100);
        assert_eq!(c.now(), 100);
        c.advance_to(40); // already past: no-op
        assert_eq!(c.now(), 100);
        c.advance_to(250);
        assert_eq!(c.now(), 250);
    }

    #[test]
    fn now_secs_converts() {
        let c = SimClock::new();
        c.advance(2 * SECOND + 500 * MILLI);
        assert!((c.now_secs() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn stopwatch_measures_span() {
        let c = SimClock::new();
        c.advance(100);
        let sw = Stopwatch::start(&c);
        c.advance(250);
        assert_eq!(sw.elapsed(), 250);
        assert!((sw.elapsed_secs() - 250e-9).abs() < 1e-18);
    }

    #[test]
    fn since_saturates() {
        let c = SimClock::new();
        assert_eq!(c.since(10), 0);
    }
}
