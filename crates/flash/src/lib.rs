//! # xftl-flash — simulated NAND flash with deterministic timing
//!
//! This crate is the bottom of the X-FTL reproduction stack. It models the
//! raw NAND array of the paper's OpenSSD testbed (Samsung K9LCG08U1M MLC
//! chips: 8 KB pages, 128 pages per block) and a shared simulated clock that
//! all higher layers charge their latencies to.
//!
//! The simulator is *constraint-faithful*: pages must be erased before they
//! are programmed, erases cover whole blocks, and pages within a block must
//! be programmed in ascending order. Violations are hard errors so that FTL
//! bugs surface in tests instead of silently corrupting data. Each page
//! carries typed out-of-band metadata (logical page number, global program
//! sequence, transaction id, page kind) that the FTL layers use for
//! crash-recovery scans — exactly the information real FTLs keep in the
//! spare area.
//!
//! ## Power loss
//!
//! [`FlashChip::arm_power_fuse`] schedules a power loss after a chosen
//! number of program/erase operations: the in-flight program is *torn*
//! (reads fail a checksum), and the device goes offline until
//! [`FlashChip::power_cycle`]. Flash contents survive; everything the upper
//! layers keep in device RAM or host caches does not. This is the mechanism
//! behind the paper's recovery experiment (Table 5) and our failure
//! injection tests.
//!
//! ## Per-operation faults
//!
//! Beyond whole-device power loss, a [`FaultPlan`] (see [`fault`]) injects
//! the failures real MLC NAND exhibits per operation: program-status
//! failures (page unreadable, block suspect), erase-status failures
//! (block permanently retired — see [`BlockHealth`]), and read bit-flips
//! against a configurable ECC model ([`EccConfig`]) that corrects up to N
//! bits and otherwise fails with [`FlashError::Uncorrectable`]. Plans are
//! seeded and fully deterministic, schedulable by op index, block, page,
//! or LPN, and charge realistic retry/correction latencies to the shared
//! clock.
//!
//! ## Example
//!
//! ```
//! use xftl_flash::{FlashChip, FlashConfig, Oob, Ppa, SimClock};
//!
//! let clock = SimClock::new();
//! let mut chip = FlashChip::new(FlashConfig::tiny(8), clock.clone());
//! let page = vec![7u8; chip.config().geometry.page_size];
//! chip.program(Ppa::new(0, 0), &page, Oob::data(99)).unwrap();
//! let mut buf = vec![0u8; page.len()];
//! let oob = chip.read(Ppa::new(0, 0), &mut buf).unwrap();
//! assert_eq!(oob.lpn, 99);
//! assert!(clock.now() > 0); // latencies were charged
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chip;
pub mod clock;
pub mod config;
pub mod error;
pub mod fault;
pub mod stats;

pub use chip::{BlockHealth, FlashChip, Oob, PageKind, PageProbe, Ppa};
pub use clock::{Nanos, SimClock, Stopwatch, SECOND};
pub use config::{FlashConfig, FlashConfigBuilder, FlashGeometry, FlashTimings};
pub use error::{FlashError, Result};
pub use fault::{AgingModel, EccConfig, EccEvent, FaultKind, FaultOp, FaultPlan, FaultTrigger};
pub use stats::{FlashStats, MAX_CHANNELS, QUEUE_DEPTH_BUCKETS};
