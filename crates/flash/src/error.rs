//! Error type for raw flash operations.

use std::fmt;

use crate::chip::Ppa;

/// Errors surfaced by the simulated NAND array.
///
/// The simulator is strict: operations that real NAND silently corrupts or
/// that a datasheet forbids (overwriting a programmed page, programming
/// pages out of order within a block, reading a torn page) are hard errors,
/// so FTL bugs fail loudly in tests instead of laundering bad data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// Physical address outside the configured geometry.
    OutOfRange(Ppa),
    /// Attempt to program a page that is not in the erased state.
    ProgramOverwrite(Ppa),
    /// Pages within a block must be programmed in ascending order
    /// (an MLC/ONFI constraint the paper's FTL also respects).
    ProgramOutOfOrder {
        /// The out-of-order address.
        ppa: Ppa,
        /// The page index the block expects next.
        expected_page: u32,
    },
    /// Attempt to read a page that was never programmed since last erase.
    ReadErased(Ppa),
    /// The page was being programmed when power was lost; its contents are
    /// indeterminate and the embedded checksum does not verify.
    TornPage(Ppa),
    /// Buffer length does not match the configured page size.
    BadBufferSize {
        /// Configured page size in bytes.
        expected: usize,
        /// Provided buffer length.
        got: usize,
    },
    /// A scheduled power-loss fuse fired; the device is now offline until
    /// it is rebuilt through recovery.
    PowerLost,
    /// The program reported status failure (injected by a
    /// [`crate::FaultPlan`]): the page is left unreadable and the block is
    /// marked suspect. The FTL must re-execute the write elsewhere.
    ProgramFailed(Ppa),
    /// The erase reported status failure: the block is permanently
    /// retired and every future erase of it fails the same way. The FTL
    /// must drop it from the free pool and record it in the bad-block
    /// table.
    EraseFailed(u32),
    /// The read returned more bit errors than the ECC can correct. The
    /// stored data is not returned; whether a retry can succeed depends on
    /// the fault plan (transient background flips vs. a sticky trigger).
    Uncorrectable(Ppa),
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::OutOfRange(ppa) => write!(f, "physical address {ppa} out of range"),
            FlashError::ProgramOverwrite(ppa) => {
                write!(f, "program to non-erased page {ppa}")
            }
            FlashError::ProgramOutOfOrder { ppa, expected_page } => write!(
                f,
                "out-of-order program at {ppa}; next programmable page in block is {expected_page}"
            ),
            FlashError::ReadErased(ppa) => write!(f, "read of erased page {ppa}"),
            FlashError::TornPage(ppa) => write!(f, "torn (interrupted-program) page {ppa}"),
            FlashError::BadBufferSize { expected, got } => {
                write!(f, "buffer size {got} does not match page size {expected}")
            }
            FlashError::PowerLost => write!(f, "simulated power loss: device offline"),
            FlashError::ProgramFailed(ppa) => {
                write!(f, "program-status failure at {ppa}; block marked suspect")
            }
            FlashError::EraseFailed(block) => {
                write!(f, "erase-status failure; block {block} retired")
            }
            FlashError::Uncorrectable(ppa) => {
                write!(f, "uncorrectable ECC error reading {ppa}")
            }
        }
    }
}

impl std::error::Error for FlashError {}

/// Result alias for flash operations.
pub type Result<T> = std::result::Result<T, FlashError>;
